// Multi-vantage aggregation demo: N real vantage-agent *processes*.
//
// The in-process fleet driver (agg::run_fleet) simulates agents and their
// transport; this demo makes both real. The parent forks one child per
// agent; each child regenerates the shared trace deterministically,
// routes its split of the packets (flow-hash disjoint by default, same
// routing as the fleet driver), samples them with its own Bernoulli
// substream, classifies per window and ships one length-prefixed
// serialized agg::FlowSummary per window up a pipe. The parent is the
// aggregator: it polls every live pipe under a real wall-clock per-window
// deadline (--deadline-ms), offers whatever frames arrive, closes each
// window on time whether or not every agent reported, and emits the
// degraded-coverage row stream through a report::ResultSink.
//
// One agent is SIGKILLed mid-run (--kill-agent N --kill-after-window W,
// defaults 1 and 1; --kill-agent -1 disables). Production is lock-stepped
// — a child writes window w's summary, then blocks on a one-byte ack
// before starting w+1 — so the kill lands while the victim is blocked and
// no summaries beyond the kill point ever exist. From the aggregator's
// side the agent simply goes silent: its windows are charged as misses,
// it is quarantined after `quarantine-after` consecutive misses, and
// coverage degrades to (N-1)/N for the rest of the run. The demo exits
// nonzero unless that whole story is visible in the counters: every
// window closed, the victim reaped as SIGKILLed, at least one quarantine,
// and degraded final coverage.
//
// Usage: multi_vantage_demo [--scenario file.scn] [--agents 3]
//        [--duration 20] [--bin 2] [--rates 0.5] [--deadline-ms 250]
//        [--quarantine-after 2] [--kill-agent 1] [--kill-after-window 1]
//        [--out windows.jsonl]
#include <poll.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "flowrank/agg/aggregator.hpp"
#include "flowrank/agg/fleet_run.hpp"
#include "flowrank/agg/flow_summary.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/report/result_sink.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/sim/scenario.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/bytes.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/rng.hpp"

namespace {

using namespace flowrank;

bool write_all(int fd, std::span<const std::uint8_t> bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocks for the parent's one-byte ack; false on EOF (parent is done or
/// gone) — the child then just exits.
bool await_ack(int fd) {
  std::uint8_t byte = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &byte, 1);
    if (n == 1) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

/// One vantage-agent child: streams its split of the trace, summarizes
/// every window, writes [u32 LE length][serialized FlowSummary] frames to
/// `up_fd` and lock-steps on `down_fd` acks. Never returns.
[[noreturn]] void run_agent(const trace::FlowTrace& trace,
                            const agg::FleetConfig& config, std::uint32_t id,
                            std::uint64_t total_windows, int up_fd,
                            int down_fd) {
  std::signal(SIGPIPE, SIG_IGN);
  const std::int64_t window_ns = trace::bin_length_ns(config.window_s);
  // A one-agent fleet reuses the run seed unmixed, matching both the
  // in-process driver and the direct pipeline (bit-identical summaries).
  const std::uint64_t sampler_seed =
      config.agents == 1 ? config.seed
                         : util::mix_stream(config.seed, id);
  sampler::BernoulliSampler sampler(config.sampling_rate, sampler_seed);

  flowtable::FlowTable::Options options;
  options.definition = config.definition;
  flowtable::FlowTable table(options);
  std::uint64_t offered_window = 0;
  std::uint64_t sampled_window = 0;
  std::uint64_t current = 0;

  const auto ship_window = [&](std::uint64_t w) {
    agg::FlowSummary summary =
        agg::summarize_table(table, id, w, config.sampling_rate);
    summary.packets_offered = offered_window;
    summary.packets_sampled = sampled_window;
    table.clear();
    offered_window = 0;
    sampled_window = 0;
    const std::vector<std::uint8_t> bytes = agg::serialize(summary);
    std::vector<std::uint8_t> frame;
    frame.reserve(4 + bytes.size());
    util::put_u32(frame, static_cast<std::uint32_t>(bytes.size()));
    frame.insert(frame.end(), bytes.begin(), bytes.end());
    if (!write_all(up_fd, frame)) ::_exit(2);
    if (!await_ack(down_fd)) ::_exit(0);  // parent finished (or died) early
  };

  trace::PacketStream stream(trace);
  std::vector<packet::PacketRecord> batch;
  std::vector<packet::PacketRecord> routed;
  std::vector<packet::PacketRecord> selected;
  while (stream.next_batch(batch, config.batch_packets) > 0) {
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::uint64_t w =
          static_cast<std::uint64_t>(batch[i].timestamp_ns / window_ns);
      std::size_t j = i + 1;
      while (j < batch.size() &&
             static_cast<std::uint64_t>(batch[j].timestamp_ns / window_ns) ==
                 w) {
        ++j;
      }
      // Stragglers past the declared duration fall outside the run's
      // window count; the demo closes exactly total_windows windows.
      if (w >= total_windows) {
        i = j;
        continue;
      }
      while (current < w) ship_window(current++);
      routed.clear();
      for (std::size_t p = i; p < j; ++p) {
        const packet::PacketRecord& pkt = batch[p];
        if (config.agents > 1) {
          const packet::FlowKey key =
              packet::make_flow_key(pkt.tuple, config.definition);
          const std::uint64_t hash = packet::FlowKeyHash{}(key);
          const std::uint64_t lane =
              config.split == agg::FleetSplit::kFlow
                  ? hash % config.agents
                  : util::mix_stream(
                        hash, static_cast<std::uint64_t>(pkt.timestamp_ns)) %
                        config.agents;
          if (lane != id) continue;
        }
        routed.push_back(pkt);
      }
      if (!routed.empty()) {
        offered_window += routed.size();
        sampler.select_into(routed, selected);
        sampled_window += selected.size();
        table.add_batch(selected);
      }
      i = j;
    }
  }
  while (current < total_windows) ship_window(current++);
  ::_exit(0);
}

/// Parent-side state for one agent's transport lane.
struct Lane {
  pid_t pid = -1;
  int up_fd = -1;    ///< child → parent summary frames
  int down_fd = -1;  ///< parent → child acks (lock-step pacing)
  std::vector<std::uint8_t> buffer;
  std::uint64_t frames = 0;  ///< complete frames offered so far
  bool open = true;
};

std::uint32_t frame_length(std::span<const std::uint8_t> prefix) {
  util::ByteReader reader(prefix, ErrorCategory::kCorruptSummary,
                          "demo frame");
  return reader.get_u32();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowrank;
  using Clock = std::chrono::steady_clock;
  try {
    const util::Cli cli(argc, argv);

    // Full scenario grammar, forced into aggregate mode. The batch
    // defaults carry a 4-rate grid; each agent samples one live stream.
    sim::ScenarioSpec spec = sim::scenario_from_cli(cli);
    spec.aggregate.enabled = true;
    if (spec.sampling_rates.size() != 1) spec.sampling_rates = {0.5};
    if (spec.name == "scenario") spec.name = "multi-vantage demo";

    const agg::FleetConfig config = sim::make_fleet_config(spec);
    const int kill_agent = cli.get_int("kill-agent", 1);
    const int kill_after_window = cli.get_int("kill-after-window", 1);
    const bool kill_enabled =
        kill_agent >= 0 &&
        static_cast<std::size_t>(kill_agent) < config.agents;

    const auto source = sim::make_trace_source(spec);
    const trace::FlowTrace trace = source->flows();
    const std::uint64_t total_windows = static_cast<std::uint64_t>(
        trace::bin_count(trace.config.duration_s, config.window_s));

    std::cout << "multi-vantage demo: " << config.agents << " agent processes, "
              << total_windows << " windows of " << config.window_s
              << " s, rate " << config.sampling_rate * 100 << "%, deadline "
              << config.deadline_ms << " ms";
    if (kill_enabled) {
      std::cout << "; SIGKILL agent " << kill_agent << " after window "
                << kill_after_window;
    }
    std::cout << "\n";

    // Fork the fleet. The materialized trace is shared copy-on-write; each
    // child re-routes and re-samples its own split deterministically.
    std::vector<Lane> lanes(config.agents);
    for (std::size_t a = 0; a < config.agents; ++a) {
      int up[2] = {-1, -1};
      int down[2] = {-1, -1};
      if (::pipe(up) != 0 || ::pipe(down) != 0) {
        throw std::runtime_error("pipe() failed");
      }
      const pid_t pid = ::fork();
      if (pid < 0) throw std::runtime_error("fork() failed");
      if (pid == 0) {
        for (std::size_t b = 0; b < a; ++b) {
          ::close(lanes[b].up_fd);
          ::close(lanes[b].down_fd);
        }
        ::close(up[0]);
        ::close(down[1]);
        run_agent(trace, config, static_cast<std::uint32_t>(a), total_windows,
                  up[1], down[0]);
      }
      ::close(up[1]);
      ::close(down[0]);
      lanes[a].pid = pid;
      lanes[a].up_fd = up[0];
      lanes[a].down_fd = down[1];
    }
    std::signal(SIGPIPE, SIG_IGN);

    agg::AggregatorConfig agg_config;
    agg_config.agents_expected = config.agents;
    agg_config.top_t = config.top_t;
    agg_config.window_s = config.window_s;
    agg_config.quarantine_after = config.quarantine_after;
    agg_config.readmit_after = config.readmit_after;
    agg_config.union_capacity = config.union_capacity;
    agg::Aggregator aggregator(agg_config);

    report::OwnedSink out;
    std::size_t rows = 0;
    if (cli.has("out")) {
      out = report::make_sink(cli.get_string("out", ""), "");
      report::RunMetadata meta;
      meta.experiment = spec.name;
      meta.seed = spec.seed;
      meta.spec_echo = {
          {"mode", "aggregate"},
          {"agents", std::to_string(config.agents)},
          {"bin", std::to_string(config.window_s)},
          {"rates", std::to_string(config.sampling_rate)},
          {"deadline-ms", std::to_string(config.deadline_ms)},
          {"quarantine-after", std::to_string(config.quarantine_after)},
          {"readmit-after", std::to_string(config.readmit_after)},
          {"kill-agent", std::to_string(kill_enabled ? kill_agent : -1)},
          {"kill-after-window", std::to_string(kill_after_window)},
      };
      out.sink->open(agg::window_columns(), meta);
    }

    bool killed = false;
    // Reads whatever a lane has, offers every complete frame, acks it so
    // the child starts its next window — unless this frame is the kill
    // point, in which case the victim dies blocked on the ack and nothing
    // past the kill point is ever produced.
    const auto service_lane = [&](std::size_t a) {
      Lane& lane = lanes[a];
      std::uint8_t chunk[65536];
      const ssize_t n = ::read(lane.up_fd, chunk, sizeof(chunk));
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) return;
        throw std::runtime_error("read() failed on agent pipe");
      }
      if (n == 0) {
        ::close(lane.up_fd);
        if (lane.down_fd >= 0) ::close(lane.down_fd);
        lane.down_fd = -1;
        lane.open = false;
        return;
      }
      lane.buffer.insert(lane.buffer.end(), chunk, chunk + n);
      while (lane.buffer.size() >= 4) {
        const std::uint32_t len =
            frame_length(std::span(lane.buffer.data(), 4));
        if (lane.buffer.size() < 4 + static_cast<std::size_t>(len)) break;
        (void)aggregator.offer(
            static_cast<std::uint32_t>(a),
            std::span<const std::uint8_t>(lane.buffer.data() + 4, len));
        const std::uint64_t delivered_window = lane.frames++;
        lane.buffer.erase(lane.buffer.begin(),
                          lane.buffer.begin() + 4 + static_cast<std::size_t>(len));
        if (kill_enabled && !killed &&
            a == static_cast<std::size_t>(kill_agent) &&
            delivered_window >= static_cast<std::uint64_t>(kill_after_window)) {
          killed = true;
          std::cout << "parent: SIGKILL agent " << a << " (delivered window "
                    << delivered_window << ")\n";
          ::kill(lane.pid, SIGKILL);
          continue;  // no ack: the victim dies blocked, producing nothing more
        }
        if (lane.down_fd >= 0) {
          const std::uint8_t ack = 1;
          (void)write_all(lane.down_fd, std::span(&ack, 1));
        }
      }
    };

    double last_coverage = 1.0;
    for (std::uint64_t w = 0; w < total_windows; ++w) {
      const auto deadline =
          Clock::now() + std::chrono::milliseconds(config.deadline_ms);
      for (;;) {
        bool waiting = false;
        for (const Lane& lane : lanes) {
          if (lane.open && lane.frames <= w) waiting = true;
        }
        if (!waiting) break;
        const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        if (remaining.count() <= 0) break;  // deadline: close without them
        std::vector<pollfd> fds;
        std::vector<std::size_t> fd_lane;
        for (std::size_t a = 0; a < lanes.size(); ++a) {
          if (!lanes[a].open) continue;
          fds.push_back({lanes[a].up_fd, POLLIN, 0});
          fd_lane.push_back(a);
        }
        if (fds.empty()) break;
        const int ready = ::poll(fds.data(), fds.size(),
                                 static_cast<int>(remaining.count()));
        if (ready < 0) {
          if (errno == EINTR) continue;
          throw std::runtime_error("poll() failed");
        }
        if (ready == 0) break;  // deadline
        for (std::size_t i = 0; i < fds.size(); ++i) {
          if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
            service_lane(fd_lane[i]);
          }
        }
      }
      const agg::MergedWindow window = aggregator.close_window(w);
      last_coverage = window.coverage_fraction;
      if (out.sink) out.sink->emit(rows++, agg::window_row(window));
      std::cout << "window " << window.epoch << ": coverage "
                << window.agents_merged << "/" << window.agents_expected
                << ", " << window.merged_flows << " flows, est "
                << window.estimated_packets << " pkts"
                << (window.missed ? (", missed " + std::to_string(window.missed))
                                  : "")
                << (window.quarantined
                        ? (", quarantined " + std::to_string(window.quarantined))
                        : "")
                << "\n";
    }

    // Run is over: release the children (EOF on their ack pipes), drain
    // any final in-flight frames (counted late) and reap the fleet.
    for (Lane& lane : lanes) {
      if (lane.open && lane.down_fd >= 0) {
        ::close(lane.down_fd);
        lane.down_fd = -1;
      }
    }
    for (std::size_t a = 0; a < lanes.size(); ++a) {
      while (lanes[a].open) service_lane(a);
    }
    bool victim_sigkilled = false;
    for (std::size_t a = 0; a < lanes.size(); ++a) {
      int status = 0;
      if (::waitpid(lanes[a].pid, &status, 0) == lanes[a].pid &&
          WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL &&
          kill_enabled && a == static_cast<std::size_t>(kill_agent)) {
        victim_sigkilled = true;
      }
    }
    if (out.sink) out.sink->close(rows);

    const agg::AggregatorCounters& c = aggregator.counters();
    std::cout << "done: " << c.windows_closed << " windows, merged "
              << c.summaries_merged << "/" << c.summaries_offered
              << " summaries, missed " << c.missed_summaries << ", late "
              << c.late_summaries << ", corrupt " << c.corrupt_summaries
              << ", quarantines " << c.quarantines << ", readmissions "
              << c.readmissions << "\n";

    // Self-validation: the advertised failure story must actually be in
    // the counters, or the demo (and the CI smoke job on it) fails.
    std::vector<std::string> violations;
    if (rows != 0 && rows != total_windows) {
      violations.push_back("row count != window count");
    }
    if (c.windows_closed != total_windows) {
      violations.push_back("not every window closed");
    }
    if (kill_enabled) {
      if (!victim_sigkilled) violations.push_back("victim was not SIGKILLed");
      if (c.missed_summaries == 0) {
        violations.push_back("kill produced no missed windows");
      }
      if (c.quarantines == 0) {
        violations.push_back("victim was never quarantined");
      }
      if (!(last_coverage < 1.0)) {
        violations.push_back("final coverage not degraded");
      }
    }
    for (const std::string& v : violations) {
      std::cerr << "demo contract violated: " << v << "\n";
    }
    return violations.empty() ? 0 : 1;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
