// Sampling-rate planner: the paper's inverse question as a CLI tool.
//
// "Given my link's traffic mix (N flows per interval, Pareto shape beta,
// mean flow size) and an accuracy target, what sampling rate do I need to
// (a) rank or (b) merely detect the top-t flows?"
//
// Usage: example_sampling_rate_planner [--n 700000] [--t 10] [--beta 1.5]
//          [--mean 9.6] [--target 1.0] [--paper-model]
#include <iostream>

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/sampling_planner.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  flowrank::core::RankingModelConfig cfg;
  cfg.n = cli.get_int("n", 700000);
  cfg.t = cli.get_int("t", 10);
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(cli.get_double("mean", 9.6),
                                        cli.get_double("beta", 1.5)));
  if (!cli.get_bool("paper-model", false)) {
    // Default to the corrected model (matches simulation); --paper-model
    // switches to the published Gaussian/Eq.(3) formulation.
    cfg.pairwise = flowrank::core::PairwiseModel::kHybrid;
    cfg.counting = flowrank::core::PairCounting::kUnordered;
  }
  const double target = cli.get_double("target", 1.0);

  std::cout << "traffic: N = " << cfg.n << " flows/interval, top t = " << cfg.t
            << ", sizes " << cfg.size_dist->name() << "\n";
  std::cout << "target : <= " << target << " swapped pairs on average\n\n";

  flowrank::util::Table table({"goal", "min_rate_pct", "metric_at_rate", "feasible"});
  for (auto goal : {flowrank::core::PlannerGoal::kRankTopT,
                    flowrank::core::PlannerGoal::kDetectTopT}) {
    const auto plan = flowrank::core::plan_sampling_rate(cfg, goal, target);
    table.add_row(
        std::string(goal == flowrank::core::PlannerGoal::kRankTopT ? "rank top-t"
                                                                   : "detect top-t"),
        plan.sampling_rate * 100.0, plan.metric,
        std::string(plan.feasible ? "yes" : "NO (even max rate misses target)"));
  }
  table.print(std::cout);

  // Context: the metric across the whole operating range.
  std::cout << "\nmetric vs rate (ranking / detection):\n";
  flowrank::util::Table sweep({"rate_pct", "ranking_metric", "detection_metric"});
  for (double p : {0.001, 0.003, 0.01, 0.03, 0.1, 0.3}) {
    cfg.p = p;
    sweep.add_row(p * 100.0, flowrank::core::evaluate_ranking_model(cfg).metric,
                  flowrank::core::evaluate_detection_model(cfg).metric);
  }
  sweep.print(std::cout);
  std::cout << "\nRule of thumb from the paper: ranking needs ~10x the rate\n"
               "detection needs; both drop an order of magnitude when N grows\n"
               "to millions of flows.\n";
  return 0;
}
