// Trace inversion: recover original traffic properties from a sampled
// stream — total flows, mean flow size (Duffield-style estimators, related
// work [9]) and per-flow sizes with confidence intervals — then let the
// adaptive controller (paper future-work #3) pick the next interval's rate.
//
// Usage: example_trace_inversion [--rate 0.02] [--duration 300]
#include <iostream>
#include <vector>

#include "flowrank/estimators/adaptive_rate.hpp"
#include "flowrank/estimators/inversion.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.02);

  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, /*seed=*/5);
  trace_cfg.duration_s = cli.get_double("duration", 300.0);
  trace_cfg.flow_rate_per_s = 800.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);

  // One measurement interval over the whole trace: sample and classify.
  std::vector<flowrank::flowtable::FlowCounter> sampled_flows;
  flowrank::flowtable::BinnedClassifier classifier(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0},
      static_cast<std::int64_t>(trace_cfg.duration_s * 1e9),
      [&](std::size_t, std::vector<flowrank::flowtable::FlowCounter> flows) {
        sampled_flows = std::move(flows);
      });
  flowrank::sampler::BernoulliSampler sampler(rate, /*seed=*/8);
  flowrank::trace::PacketStream stream(trace);
  std::uint64_t sampled_packets = 0;
  while (auto pkt = stream.next()) {
    if (!sampler.offer(*pkt)) continue;
    classifier.add(*pkt);
    ++sampled_packets;
  }
  classifier.finish();

  std::cout << "sampled " << sampled_packets << " packets at " << rate * 100
            << "%; " << sampled_flows.size() << " flows seen\n\n";

  // Population inversion vs ground truth.
  const auto population = flowrank::estimators::estimate_population(
      sampled_flows.size(), sampled_packets, rate, *trace_cfg.size_dist);
  flowrank::util::Table pop({"quantity", "true", "estimated"});
  pop.add_row(std::string("total flows"), trace.flows.size(),
              population.total_flows);
  pop.add_row(std::string("mean flow size (pkts)"),
              static_cast<double>(trace.total_packets()) /
                  static_cast<double>(trace.flows.size()),
              population.mean_flow_packets);
  pop.print(std::cout);

  // Per-flow inversion for the largest sampled flows.
  std::cout << "\nlargest sampled flows, inverted sizes with 95% CIs:\n";
  auto top = flowrank::flowtable::top_k(sampled_flows, 8);
  flowrank::util::Table sizes({"sampled_pkts", "estimate", "ci95_low", "ci95_high"});
  for (const auto& f : top) {
    const auto est = flowrank::estimators::scaled_size_estimate(f.packets, rate);
    sizes.add_row(f.packets, est.estimate, est.ci95_low, est.ci95_high);
  }
  sizes.print(std::cout);

  // Adaptive control: what rate should the next interval use?
  std::vector<std::uint64_t> sampled_sizes;
  sampled_sizes.reserve(sampled_flows.size());
  for (const auto& f : sampled_flows) sampled_sizes.push_back(f.packets);
  flowrank::estimators::AdaptiveRateConfig ada_cfg;
  ada_cfg.top_t = 10;
  ada_cfg.goal = flowrank::core::PlannerGoal::kDetectTopT;
  flowrank::estimators::AdaptiveRateController controller(ada_cfg);
  const auto decision = controller.observe(sampled_sizes, rate);
  std::cout << "\nadaptive controller: estimated N = " << decision.estimated_flows
            << ", beta = " << decision.estimated_beta
            << " -> next-interval rate = " << decision.next_rate * 100 << "%"
            << (decision.feasible ? "" : " (target infeasible, clamped)") << "\n";
  return 0;
}
