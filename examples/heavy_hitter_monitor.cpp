// Heavy-hitter monitor: the paper's motivating application (traffic
// engineering / anomaly detection needs the largest flows) built from the
// library's production pieces:
//
//   packet stream -> (batched) Bernoulli sampler -> Space-Saving tracker
//   (bounded memory, related work [11,13]) -> per-interval top-t report
//   with TCP-seq-refined size estimates (paper future-work #2).
//
// The ingest loop is the batched hot path: packets are pulled in chunks,
// the skip-based sampler picks the sampled subset per chunk, and per-bin
// results are read straight off the flow table with for_each_all/top_k —
// no per-packet virtual calls and no per-bin counter copies.
//
// With --threads N (N > 1) classification runs on the sharded ingest
// pipeline: flows are hash-partitioned across N worker threads, each with
// a private flow table, and per-bin tables are merged at flush time. The
// report is identical to the single-threaded one — sharding never splits
// a flow across workers.
//
// The report compares against ground truth computed from the unsampled
// stream, illustrating how much of the error budget is sampling vs memory.
//
// The monitored trace is pluggable (trace::TraceSource): synthetic by
// default, or a recorded FRT1 file via --trace path.frt1.
//
// Usage: example_heavy_hitter_monitor [--rate 0.05] [--memory 256]
//        [--t 10] [--threads 4] [--trace recording.frt1]
//        (--threads 0 = all hardware threads)
#include <algorithm>
#include <iostream>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/estimators/tcp_seq.hpp"
#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace {

using flowrank::flowtable::FlowCounter;
using flowrank::flowtable::FlowTable;
using flowrank::packet::FlowKey;
using flowrank::packet::FlowKeyHash;

struct IntervalReport {
  std::vector<FlowCounter> true_top;
  std::vector<FlowCounter> sampled_top;
  std::unordered_map<FlowKey, FlowCounter, FlowKeyHash> sampled_by_key;
  // Sharded mode only: per-shard top-t candidates, reduced after finish().
  // Shards partition flows, so a bin's true top-t is contained in the
  // union of its shards' top-t — keeping t flows per shard instead of the
  // full table keeps streaming memory bounded.
  std::vector<FlowCounter> true_top_candidates;
  std::vector<FlowCounter> sampled_top_candidates;
};

}  // namespace

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.05);
  const auto memory = static_cast<std::size_t>(cli.get_int("memory", 256));
  const auto t = static_cast<std::size_t>(cli.get_int("t", 10));
  const double bin_s = cli.get_double("bin", 60.0);
  const int threads_arg = cli.get_int("threads", 1);
  if (threads_arg < 0) {
    std::cerr << "--threads must be >= 0 (0 = all hardware threads)\n";
    return 1;
  }
  const auto threads = flowrank::exec::TaskPool::resolve_parallelism(
      static_cast<std::size_t>(threads_arg));

  // Pluggable source: a recorded FRT1 trace, or the synthetic default.
  std::shared_ptr<const flowrank::trace::TraceSource> source;
  if (cli.has("trace")) {
    source = std::make_shared<flowrank::trace::FileTraceSource>(
        cli.get_string("trace", ""));
  } else {
    auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, /*seed=*/11);
    trace_cfg.duration_s = cli.get_double("duration", 180.0);
    trace_cfg.flow_rate_per_s = 500.0;
    source = std::make_shared<flowrank::trace::SyntheticTraceSource>(trace_cfg,
                                                                     "sprint_5tuple");
  }
  const auto trace = source->flows();

  std::vector<IntervalReport> reports;
  const auto report_at = [&reports](std::size_t bin) -> IntervalReport& {
    if (reports.size() <= bin) reports.resize(bin + 1);
    return reports[bin];
  };

  // Per-bin consumers, shared by the inline and sharded paths. Ground
  // truth keeps only the top-t, selected directly off the table (no
  // full-counter copy); the sampled stream additionally builds a by-key
  // index so the TCP-seq estimator can look up any true-top flow.
  // Timeout-split subflows of the same key are merged so the TCP-seq
  // estimate stays consistent with the packet count.
  const auto index_sampled_flow = [](IntervalReport& report, const FlowCounter& f) {
    auto [it, fresh] = report.sampled_by_key.try_emplace(f.key, f);
    if (!fresh) flowrank::flowtable::merge_counter(it->second, f);
  };
  const auto record_truth = [&](std::size_t bin, const FlowTable& table) {
    report_at(bin).true_top = flowrank::flowtable::top_k(table, t);
  };
  const auto record_sampled = [&](std::size_t bin, const FlowTable& table) {
    IntervalReport& report = report_at(bin);
    report.sampled_top = flowrank::flowtable::top_k(table, t);
    table.for_each_all([&](const FlowCounter& f) { index_sampled_flow(report, f); });
  };

  const flowrank::flowtable::FlowTable::Options table_opts{
      flowrank::packet::FlowDefinition::kFiveTuple, 0};
  const std::int64_t bin_ns = flowrank::trace::bin_length_ns(bin_s);

  flowrank::sampler::BernoulliSampler sampler(rate, /*seed=*/3);
  flowrank::estimators::SpaceSavingTracker tracker(memory);
  flowrank::trace::PacketStream stream(trace);

  constexpr std::size_t kBatch = 4096;
  std::vector<flowrank::packet::PacketRecord> batch, selected;
  batch.reserve(kBatch);
  selected.reserve(kBatch);
  std::uint64_t sampled_packets = 0;

  const auto feed_tracker = [&](const auto& packets) {
    sampled_packets += packets.size();
    for (const auto& pkt : packets) {
      tracker.offer(flowrank::packet::make_flow_key(
          pkt.tuple, flowrank::packet::FlowDefinition::kFiveTuple));
    }
  };

  if (threads == 1) {
    auto truth_classifier =
        flowrank::flowtable::BinnedClassifier::with_table_view(table_opts, bin_ns,
                                                               record_truth);
    auto sampled_classifier =
        flowrank::flowtable::BinnedClassifier::with_table_view(table_opts, bin_ns,
                                                               record_sampled);
    while (stream.next_batch(batch, kBatch) > 0) {
      truth_classifier.add_batch(batch);
      sampler.select_into(batch, selected);
      feed_tracker(selected);
      sampled_classifier.add_batch(selected);
    }
    truth_classifier.finish();
    sampled_classifier.finish();
  } else {
    // Sharded ingest: sampling and the bounded-memory tracker stay on the
    // driver (both are sequential state machines); classification fans
    // out across `threads` hash-sharded workers. Per-shard bin flushes
    // are consumed by the streaming callback — memory stays bounded by
    // top-t candidates per shard plus the sampled by-key index, the same
    // shape as the single-threaded path — and reduced to per-bin top-t
    // after finish().
    std::mutex reports_mutex;
    flowrank::ingest::ShardedPipelineConfig pipe_cfg;
    pipe_cfg.num_shards = threads;
    pipe_cfg.num_streams = 2;  // stream 0 = truth, stream 1 = sampled
    pipe_cfg.bin_ns = bin_ns;
    pipe_cfg.table_options = table_opts;
    pipe_cfg.on_shard_bin = [&](std::size_t /*shard*/, std::size_t stream_id,
                                std::size_t bin, const FlowTable& table) {
      auto top = flowrank::flowtable::top_k(table, t);
      std::lock_guard lock(reports_mutex);
      IntervalReport& report = report_at(bin);
      auto& candidates = stream_id == 0 ? report.true_top_candidates
                                        : report.sampled_top_candidates;
      candidates.insert(candidates.end(), top.begin(), top.end());
      if (stream_id == 1) {
        table.for_each_all([&](const FlowCounter& f) { index_sampled_flow(report, f); });
      }
    };
    flowrank::ingest::ShardedPipeline pipeline(pipe_cfg);
    while (stream.next_batch(batch, kBatch) > 0) {
      pipeline.add_batch(0, batch);
      sampler.select_into(batch, selected);
      feed_tracker(selected);
      pipeline.add_batch(1, selected);
    }
    pipeline.finish();
    for (auto& report : reports) {
      report.true_top =
          flowrank::flowtable::top_k(std::move(report.true_top_candidates), t);
      report.sampled_top =
          flowrank::flowtable::top_k(std::move(report.sampled_top_candidates), t);
    }
  }

  std::cout << "monitor: rate " << rate * 100 << "%, memory " << memory
            << " entries, " << threads << " ingest thread(s), "
            << sampled_packets << " sampled packets\n";

  for (std::size_t bin = 0; bin < reports.size(); ++bin) {
    const auto& report = reports[bin];

    std::size_t hits = 0;
    {
      std::unordered_map<FlowKey, bool, FlowKeyHash> in_sampled;
      for (const auto& f : report.sampled_top) in_sampled[f.key] = true;
      for (const auto& f : report.true_top) hits += in_sampled.count(f.key);
    }

    std::cout << "\ninterval " << bin << ": detected " << hits << "/" << t
              << " of the true top-" << t << "\n";
    flowrank::util::Table table(
        {"rank", "true_pkts", "sampled_pkts", "est_scaled", "est_tcp_seq"});
    for (std::size_t r = 0; r < report.true_top.size(); ++r) {
      const auto it = report.sampled_by_key.find(report.true_top[r].key);
      double sampled_count = 0.0, scaled = 0.0, seq_based = 0.0;
      if (it != report.sampled_by_key.end()) {
        sampled_count = static_cast<double>(it->second.packets);
        scaled = sampled_count / rate;
        seq_based = flowrank::estimators::estimate_size_tcp_seq(
                        it->second, rate, trace.config.packet_size_bytes)
                        .packets;
      }
      table.add_row(r + 1, report.true_top[r].packets, sampled_count, scaled,
                    seq_based);
    }
    table.print(std::cout);
  }
  std::cout << "\nNote how the TCP-seq estimator tracks true sizes far more\n"
               "tightly than s/p scaling for flows with >= 2 sampled packets.\n";
  return 0;
}
