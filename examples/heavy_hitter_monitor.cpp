// Heavy-hitter monitor: the paper's motivating application (traffic
// engineering / anomaly detection needs the largest flows) built from the
// library's production pieces:
//
//   packet stream -> Bernoulli sampler -> Space-Saving tracker (bounded
//   memory, related work [11,13]) -> per-interval top-t report with
//   TCP-seq-refined size estimates (paper future-work #2).
//
// The report compares against ground truth computed from the unsampled
// stream, illustrating how much of the error budget is sampling vs memory.
//
// Usage: example_heavy_hitter_monitor [--rate 0.05] [--memory 256] [--t 10]
#include <iostream>
#include <unordered_map>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/estimators/tcp_seq.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace {

using flowrank::packet::FlowKey;

struct IntervalReport {
  std::vector<flowrank::flowtable::FlowCounter> true_flows;
  std::vector<flowrank::flowtable::FlowCounter> sampled_flows;
};

}  // namespace

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.05);
  const auto memory = static_cast<std::size_t>(cli.get_int("memory", 256));
  const auto t = static_cast<std::size_t>(cli.get_int("t", 10));
  const double bin_s = cli.get_double("bin", 60.0);

  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, /*seed=*/11);
  trace_cfg.duration_s = cli.get_double("duration", 180.0);
  trace_cfg.flow_rate_per_s = 500.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);

  // Ground truth per bin from the unsampled stream.
  std::vector<IntervalReport> reports;
  flowrank::flowtable::BinnedClassifier truth_classifier(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0},
      static_cast<std::int64_t>(bin_s * 1e9),
      [&](std::size_t bin, std::vector<flowrank::flowtable::FlowCounter> flows) {
        if (reports.size() <= bin) reports.resize(bin + 1);
        reports[bin].true_flows = std::move(flows);
      });
  // Sampled stream feeds both a flow table (for seq estimates) and the
  // bounded-memory tracker.
  flowrank::flowtable::BinnedClassifier sampled_classifier(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0},
      static_cast<std::int64_t>(bin_s * 1e9),
      [&](std::size_t bin, std::vector<flowrank::flowtable::FlowCounter> flows) {
        if (reports.size() <= bin) reports.resize(bin + 1);
        reports[bin].sampled_flows = std::move(flows);
      });

  flowrank::sampler::BernoulliSampler sampler(rate, /*seed=*/3);
  flowrank::estimators::SpaceSavingTracker tracker(memory);
  flowrank::trace::PacketStream stream(trace);
  std::uint64_t sampled_packets = 0;
  while (auto pkt = stream.next()) {
    truth_classifier.add(*pkt);
    if (!sampler.offer(*pkt)) continue;
    ++sampled_packets;
    sampled_classifier.add(*pkt);
    tracker.offer(flowrank::packet::make_flow_key(
        pkt->tuple, flowrank::packet::FlowDefinition::kFiveTuple));
  }
  truth_classifier.finish();
  sampled_classifier.finish();

  std::cout << "monitor: rate " << rate * 100 << "%, memory " << memory
            << " entries, " << sampled_packets << " sampled packets\n";

  for (std::size_t bin = 0; bin < reports.size(); ++bin) {
    const auto true_top = flowrank::flowtable::top_k(reports[bin].true_flows, t);
    const auto sampled_top = flowrank::flowtable::top_k(reports[bin].sampled_flows, t);
    std::unordered_map<FlowKey, const flowrank::flowtable::FlowCounter*,
                       flowrank::packet::FlowKeyHash>
        sampled_by_key;
    for (const auto& f : reports[bin].sampled_flows) sampled_by_key[f.key] = &f;

    std::size_t hits = 0;
    {
      std::unordered_map<FlowKey, bool, flowrank::packet::FlowKeyHash> in_sampled;
      for (const auto& f : sampled_top) in_sampled[f.key] = true;
      for (const auto& f : true_top) hits += in_sampled.count(f.key);
    }

    std::cout << "\ninterval " << bin << ": detected " << hits << "/" << t
              << " of the true top-" << t << "\n";
    flowrank::util::Table table(
        {"rank", "true_pkts", "sampled_pkts", "est_scaled", "est_tcp_seq"});
    for (std::size_t r = 0; r < true_top.size(); ++r) {
      const auto it = sampled_by_key.find(true_top[r].key);
      double sampled_count = 0.0, scaled = 0.0, seq_based = 0.0;
      if (it != sampled_by_key.end()) {
        sampled_count = static_cast<double>(it->second->packets);
        scaled = sampled_count / rate;
        seq_based = flowrank::estimators::estimate_size_tcp_seq(
                        *it->second, rate, trace_cfg.packet_size_bytes)
                        .packets;
      }
      table.add_row(r + 1, true_top[r].packets, sampled_count, scaled, seq_based);
    }
    table.print(std::cout);
  }
  std::cout << "\nNote how the TCP-seq estimator tracks true sizes far more\n"
               "tightly than s/p scaling for flows with >= 2 sampled packets.\n";
  return 0;
}
