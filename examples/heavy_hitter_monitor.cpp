// Heavy-hitter monitor: the paper's motivating application (traffic
// engineering / anomaly detection needs the largest flows) built from the
// library's production pieces:
//
//   packet stream -> (batched) Bernoulli sampler -> Space-Saving tracker
//   (bounded memory, related work [11,13]) -> per-interval top-t report
//   with TCP-seq-refined size estimates (paper future-work #2).
//
// The ingest loop is the batched hot path: packets are pulled in chunks,
// the skip-based sampler picks the sampled subset per chunk, and per-bin
// results are read straight off the flow table with for_each_all/top_k —
// no per-packet virtual calls and no per-bin counter copies.
//
// The report compares against ground truth computed from the unsampled
// stream, illustrating how much of the error budget is sampling vs memory.
//
// Usage: example_heavy_hitter_monitor [--rate 0.05] [--memory 256] [--t 10]
#include <algorithm>
#include <iostream>
#include <unordered_map>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/estimators/tcp_seq.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace {

using flowrank::flowtable::FlowCounter;
using flowrank::packet::FlowKey;
using flowrank::packet::FlowKeyHash;

struct IntervalReport {
  std::vector<FlowCounter> true_top;
  std::vector<FlowCounter> sampled_top;
  std::unordered_map<FlowKey, FlowCounter, FlowKeyHash> sampled_by_key;
};

}  // namespace

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.05);
  const auto memory = static_cast<std::size_t>(cli.get_int("memory", 256));
  const auto t = static_cast<std::size_t>(cli.get_int("t", 10));
  const double bin_s = cli.get_double("bin", 60.0);

  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, /*seed=*/11);
  trace_cfg.duration_s = cli.get_double("duration", 180.0);
  trace_cfg.flow_rate_per_s = 500.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);

  std::vector<IntervalReport> reports;
  const auto report_at = [&reports](std::size_t bin) -> IntervalReport& {
    if (reports.size() <= bin) reports.resize(bin + 1);
    return reports[bin];
  };

  // Ground truth per bin from the unsampled stream: only the top-t is
  // retained, selected directly off the table (no full-counter copy).
  auto truth_classifier = flowrank::flowtable::BinnedClassifier::with_table_view(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0},
      static_cast<std::int64_t>(bin_s * 1e9),
      [&](std::size_t bin, const flowrank::flowtable::FlowTable& table) {
        report_at(bin).true_top = flowrank::flowtable::top_k(table, t);
      });
  // Sampled stream feeds both a flow table (for seq estimates) and the
  // bounded-memory tracker.
  auto sampled_classifier = flowrank::flowtable::BinnedClassifier::with_table_view(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0},
      static_cast<std::int64_t>(bin_s * 1e9),
      [&](std::size_t bin, const flowrank::flowtable::FlowTable& table) {
        IntervalReport& report = report_at(bin);
        report.sampled_top = flowrank::flowtable::top_k(table, t);
        table.for_each_all([&report](const FlowCounter& f) {
          auto [it, fresh] = report.sampled_by_key.try_emplace(f.key, f);
          if (fresh) return;
          // Timeout-split subflows of the same key: merge every field so
          // the TCP-seq estimate stays consistent with the packet count.
          FlowCounter& acc = it->second;
          acc.packets += f.packets;
          acc.bytes += f.bytes;
          acc.first_ns = std::min(acc.first_ns, f.first_ns);
          acc.last_ns = std::max(acc.last_ns, f.last_ns);
          if (f.has_tcp_seq) {
            acc.min_tcp_seq = std::min(acc.min_tcp_seq, f.min_tcp_seq);
            acc.max_tcp_seq = std::max(acc.max_tcp_seq, f.max_tcp_seq);
            acc.has_tcp_seq = true;
          }
        });
      });

  flowrank::sampler::BernoulliSampler sampler(rate, /*seed=*/3);
  flowrank::estimators::SpaceSavingTracker tracker(memory);
  flowrank::trace::PacketStream stream(trace);

  constexpr std::size_t kBatch = 4096;
  std::vector<flowrank::packet::PacketRecord> batch, selected;
  batch.reserve(kBatch);
  selected.reserve(kBatch);
  std::uint64_t sampled_packets = 0;
  while (stream.next_batch(batch, kBatch) > 0) {
    truth_classifier.add_batch(batch);
    sampler.select_into(batch, selected);
    sampled_packets += selected.size();
    sampled_classifier.add_batch(selected);
    for (const auto& pkt : selected) {
      tracker.offer(flowrank::packet::make_flow_key(
          pkt.tuple, flowrank::packet::FlowDefinition::kFiveTuple));
    }
  }
  truth_classifier.finish();
  sampled_classifier.finish();

  std::cout << "monitor: rate " << rate * 100 << "%, memory " << memory
            << " entries, " << sampled_packets << " sampled packets\n";

  for (std::size_t bin = 0; bin < reports.size(); ++bin) {
    const auto& report = reports[bin];

    std::size_t hits = 0;
    {
      std::unordered_map<FlowKey, bool, FlowKeyHash> in_sampled;
      for (const auto& f : report.sampled_top) in_sampled[f.key] = true;
      for (const auto& f : report.true_top) hits += in_sampled.count(f.key);
    }

    std::cout << "\ninterval " << bin << ": detected " << hits << "/" << t
              << " of the true top-" << t << "\n";
    flowrank::util::Table table(
        {"rank", "true_pkts", "sampled_pkts", "est_scaled", "est_tcp_seq"});
    for (std::size_t r = 0; r < report.true_top.size(); ++r) {
      const auto it = report.sampled_by_key.find(report.true_top[r].key);
      double sampled_count = 0.0, scaled = 0.0, seq_based = 0.0;
      if (it != report.sampled_by_key.end()) {
        sampled_count = static_cast<double>(it->second.packets);
        scaled = sampled_count / rate;
        seq_based = flowrank::estimators::estimate_size_tcp_seq(
                        it->second, rate, trace_cfg.packet_size_bytes)
                        .packets;
      }
      table.add_row(r + 1, report.true_top[r].packets, sampled_count, scaled,
                    seq_based);
    }
    table.print(std::cout);
  }
  std::cout << "\nNote how the TCP-seq estimator tracks true sizes far more\n"
               "tightly than s/p scaling for flows with >= 2 sampled packets.\n";
  return 0;
}
