// Heavy-hitter monitor: the paper's motivating application (traffic
// engineering / anomaly detection wants the largest flows, continuously)
// run as a live monitor instead of a batch job.
//
// monitor::MonitorLoop pulls batches from any trace::TraceSource through
// the batched Bernoulli sampler into the sharded ingest path under
// rolling measurement windows, inverts each window's sampled counts by
// the effective sampling rate, folds them into EWMA-smoothed per-flow
// estimates and emits periodic top-t snapshots with rank-churn deltas
// and full fault/shed accounting. Every scenario key works here too —
// the spec grammar's monitor/fault.* keys configure the loop, so e.g.
//
//   example_heavy_hitter_monitor --rates 0.05 --bin 30 --t 10 \
//       --fault.corrupt 0.01 --fault.stall-every 64 --fault.stall-ms 20 \
//       --watchdog-ms 5 --out snapshots.jsonl
//
// runs a fault-injected monitor (corrupt records dropped and counted, a
// stalling source caught by the watchdog and survived via early epoch
// rotation) and records the snapshot time-series through a structured
// report::ResultSink.
//
// SIGINT/SIGTERM request a clean shutdown: the loop finishes the batch in
// flight, folds the current window, the final snapshot is emitted and the
// sink is flushed + closed — no torn output, even mid-trace.
//
// Usage: example_heavy_hitter_monitor [--scenario file.scn]
//        [--rates 0.05] [--bin 60] [--t 10] [--shards 4]
//        [--overload shed] [--budget N] [--fault.* ...]
//        [--out snapshots.csv|.jsonl]
#include <atomic>
#include <csignal>
#include <cstdio>
#include <iostream>

#include "flowrank/monitor/monitor_loop.hpp"
#include "flowrank/report/result_sink.hpp"
#include "flowrank/sim/scenario.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/table.hpp"

namespace {

// Async-signal-safe stop request; MonitorLoop polls it between batches.
std::atomic<bool> g_stop{false};

extern "C" void request_stop(int) { g_stop.store(true); }

std::string format_key(const flowrank::packet::FlowKey& key) {
  char buffer[36];
  std::snprintf(buffer, sizeof(buffer), "%016llx:%016llx",
                static_cast<unsigned long long>(key.hi),
                static_cast<unsigned long long>(key.lo));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace flowrank;
  try {
    const util::Cli cli(argc, argv);

    // The full scenario grammar (file + --key overrides), forced into
    // monitor mode. The batch defaults carry a 4-rate grid; a monitor
    // watches one live stream, so default to one moderate rate unless the
    // spec or CLI picked one.
    sim::ScenarioSpec spec = sim::scenario_from_cli(cli);
    spec.monitor.enabled = true;
    if (spec.sampling_rates.size() != 1) spec.sampling_rates = {0.05};
    if (spec.name == "scenario") spec.name = "heavy-hitter monitor";

    monitor::MonitorConfig config = sim::make_monitor_config(spec);
    config.stop_flag = &g_stop;

    report::OwnedSink out;
    std::size_t rows = 0;
    if (cli.has("out")) {
      out = report::make_sink(cli.get_string("out", ""), "");
      report::RunMetadata meta;
      meta.experiment = spec.name;
      meta.seed = spec.seed;
      out.sink->open(monitor::snapshot_columns(), meta);
    }

    std::signal(SIGINT, request_stop);
    std::signal(SIGTERM, request_stop);

    std::cout << "monitor: " << spec.name << " — rate "
              << config.sampling_rate * 100 << "%, window " << config.window_s
              << " s, top-" << config.top_t
              << (config.overload == ingest::OverloadPolicy::kShed ? ", shed"
                                                                   : ", block")
              << " (SIGINT folds the current window and flushes)\n";

    monitor::MonitorLoop loop(sim::make_trace_source(spec), config);
    const monitor::MonitorReport report =
        loop.run([&](const monitor::MonitorSnapshot& snap) {
          if (out.sink) out.sink->emit(rows++, monitor::snapshot_row(snap));
          std::cout << "\nsnapshot " << snap.index << " @ " << snap.time_s
                    << " s: " << snap.window_flows << " flows, "
                    << snap.window_packets << " sampled packets, churn +"
                    << snap.churn_entered << "/-" << snap.churn_exited
                    << ", effective rate " << snap.effective_rate * 100 << "%\n";
          util::Table table({"rank", "flow", "est_pkts_per_window"});
          for (std::size_t r = 0; r < snap.top.size(); ++r) {
            table.add_row(r + 1, format_key(snap.top[r].key),
                          snap.top[r].estimate);
          }
          table.print(std::cout);
        });
    if (out.sink) out.sink->close(rows);

    const monitor::MonitorCounters& c = report.counters;
    std::cout << "\ndone: " << c.windows << " windows, " << report.snapshots
              << " snapshots, peak " << report.peak_tracked_flows
              << " tracked flows\n"
              << "offered " << c.packets_offered << ", sampled "
              << c.packets_sampled << ", ingested " << c.packets_ingested
              << ", shed " << c.shed_packets + c.pipeline_shed_packets
              << ", corrupt " << c.corrupt_records << ", truncated "
              << c.truncated_records << ", stalls " << c.stall_events
              << " (rotations " << c.watchdog_rotations << ")\n";
    if (g_stop.load()) std::cout << "stopped by signal; output is complete\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
