// Quickstart: the paper's question end to end in ~80 lines.
//
// Generate a synthetic Sprint-like trace (or replay a recorded FRT1 one
// via --trace path.frt1 — the pipeline is source-agnostic), run the real
// packet pipeline (stream -> Bernoulli sampler -> binned flow table),
// compare the sampled top-10 against the true top-10, and ask the
// analytic model what it predicted for this configuration.
//
// Usage: example_quickstart [--rate 0.1] [--duration 120] [--t 10]
//        [--trace recording.frt1]
#include <iostream>
#include <memory>

#include "flowrank/core/ranking_model.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.1);
  const double duration = cli.get_double("duration", 120.0);
  const auto t = static_cast<std::size_t>(cli.get_int("t", 10));

  // 1. A flow trace from a pluggable source: Sprint-like synthetic at
  //    laptop scale, or a recorded file.
  std::shared_ptr<const flowrank::trace::TraceSource> source;
  if (cli.has("trace")) {
    source = std::make_shared<flowrank::trace::FileTraceSource>(
        cli.get_string("trace", ""));
  } else {
    auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(/*beta=*/1.5,
                                                                     /*seed=*/42);
    trace_cfg.duration_s = duration;
    trace_cfg.flow_rate_per_s = 400.0;
    source = std::make_shared<flowrank::trace::SyntheticTraceSource>(trace_cfg,
                                                                     "sprint_5tuple");
  }
  const auto trace = source->flows();
  std::cout << "trace: " << source->name() << " — " << trace.flows.size()
            << " flows, " << trace.total_packets() << " packets over "
            << trace.config.duration_s << " s\n";

  // 2. The real packet pipeline at the chosen sampling rate.
  flowrank::sim::SimConfig sim_cfg;
  sim_cfg.bin_seconds = trace.config.duration_s;  // one measurement interval
  sim_cfg.top_t = t;
  sim_cfg.sampling_rates = {rate};
  const auto metrics =
      flowrank::sim::run_packet_level_once(trace, rate, sim_cfg, /*run_seed=*/1);

  std::cout << "\nsampling at " << rate * 100 << "%:\n";
  flowrank::util::Table table({"bin", "swapped_pairs(rank)", "swapped_pairs(detect)",
                               "top_set_recall"});
  for (std::size_t b = 0; b < metrics.size(); ++b) {
    table.add_row(b, metrics[b].ranking_swapped, metrics[b].detection_swapped,
                  metrics[b].top_set_recall);
  }
  table.print(std::cout);

  // 3. What the analytic model predicts for this population size. A
  //    recorded trace carries no size distribution, so the model is
  //    parameterized by the paper's Sprint fit in that case.
  flowrank::core::RankingModelConfig model_cfg;
  model_cfg.n = static_cast<std::int64_t>(trace.flows.size());
  model_cfg.t = static_cast<std::int64_t>(t);
  model_cfg.p = rate;
  model_cfg.size_dist =
      trace.config.size_dist
          ? trace.config.size_dist->clone()
          : std::make_shared<flowrank::dist::Pareto>(
                flowrank::dist::Pareto::from_mean(9.6, 1.5));
  model_cfg.pairwise = flowrank::core::PairwiseModel::kHybrid;
  model_cfg.counting = flowrank::core::PairCounting::kUnordered;
  const auto prediction = flowrank::core::evaluate_ranking_model(model_cfg);
  std::cout << "\nmodel prediction (hybrid, unordered pairs): "
            << prediction.metric << " swapped pairs expected per interval\n";
  std::cout << "the paper deems the ranking acceptable when this is below 1.\n";
  return 0;
}
