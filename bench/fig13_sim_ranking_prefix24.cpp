// Figure 13: trace-driven ranking performance vs time — /24 destination
// prefixes, top-10 (Sec. 8.2).
#include "sim_driver.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  bench::SimFigureSpec spec;
  spec.figure = "Figure 13";
  spec.what = "ranking vs time, /24 prefixes, top 10 flows (synthetic Sprint trace)";
  spec.trace_config = flowrank::trace::FlowTraceConfig::sprint_prefix24(
      cli.get_double("beta", 1.5), static_cast<std::uint64_t>(cli.get_int("seed", 7)));
  spec.definition = flowrank::packet::FlowDefinition::kDstPrefix24;
  return bench::run_sim_figure(cli, spec);
}
