// Figure 13: trace-driven ranking performance vs time — /24 destination
// prefixes, top-10 (Sec. 8.2).
#include "sim_driver.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  bench::SimFigureSpec spec;
  spec.figure = "Figure 13";
  spec.what = "ranking vs time, /24 prefixes, top 10 flows (synthetic Sprint trace)";
  spec.preset = "sprint_prefix24";
  spec.definition = flowrank::packet::FlowDefinition::kDstPrefix24;
  return bench::run_sim_figure(cli, spec);
}
