// Figure 1: optimal sampling rate over a log-scale grid of flow-size
// pairs, for a desired misranking probability Pm,d = 0.1% (Sec. 3.2).
#include "bench_common.hpp"

#include "flowrank/core/optimal_rate.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double target = cli.get_double("target", 1e-3);
  const int grid = static_cast<int>(cli.get_int("grid", 10));

  bench::print_header("Figure 1",
                      "optimal sampling rate (%), log-scale size grid, Pm,d = " +
                          flowrank::util::format_double(target));

  const auto sizes = bench::log_spaced(1.0, 1000.0, grid);
  flowrank::util::Table table({"s1_pkts", "s2_pkts", "optimal_rate_pct"});
  // Diagnostics for the two scaling laws the figure shows.
  double proportional_small = 0.0, proportional_large = 0.0;
  for (double s1d : sizes) {
    for (double s2d : sizes) {
      const auto s1 = static_cast<std::int64_t>(std::llround(s1d));
      const auto s2 = static_cast<std::int64_t>(std::llround(s2d));
      const double rate = flowrank::core::optimal_sampling_rate(s1, s2, target);
      table.add_row(static_cast<long long>(s1), static_cast<long long>(s2),
                    rate * 100.0);
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  // Proportional pairs (alpha = 0.5): rate must fall as sizes grow.
  proportional_small = flowrank::core::optimal_sampling_rate(50, 100, target);
  proportional_large = flowrank::core::optimal_sampling_rate(500, 1000, target);
  const bool narrows = proportional_large < proportional_small;
  bench::print_verdict(
      "high rate needed for similar sizes; for proportional pairs the needed rate "
      "decreases as sizes grow (surface narrows on log scale)",
      narrows,
      "p_opt(50,100) = " + flowrank::util::format_double(proportional_small * 100) +
          "%  vs  p_opt(500,1000) = " +
          flowrank::util::format_double(proportional_large * 100) + "%");
  return 0;
}
