// Figure 2: optimal sampling rate on a linear size grid — shows that for a
// FIXED absolute gap k the required rate grows with flow size (Sec. 3.2).
#include "bench_common.hpp"

#include "flowrank/core/optimal_rate.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double target = cli.get_double("target", 1e-3);

  bench::print_header("Figure 2",
                      "optimal sampling rate (%), linear size grid, Pm,d = " +
                          flowrank::util::format_double(target));

  flowrank::util::Table table({"s1_pkts", "s2_pkts", "optimal_rate_pct"});
  for (std::int64_t s1 = 100; s1 <= 1000; s1 += 100) {
    for (std::int64_t s2 = 100; s2 <= 1000; s2 += 100) {
      const double rate = flowrank::core::optimal_sampling_rate(s1, s2, target);
      table.add_row(static_cast<long long>(s1), static_cast<long long>(s2),
                    rate * 100.0);
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  const double fixed_gap_small = flowrank::core::optimal_sampling_rate(100, 110, target);
  const double fixed_gap_large = flowrank::core::optimal_sampling_rate(900, 910, target);
  bench::print_verdict(
      "for a fixed gap of k packets, larger flows are HARDER to rank (surface "
      "widens on linear scale)",
      fixed_gap_large > fixed_gap_small,
      "p_opt(100,110) = " + flowrank::util::format_double(fixed_gap_small * 100) +
          "%  vs  p_opt(900,910) = " +
          flowrank::util::format_double(fixed_gap_large * 100) + "%");
  return 0;
}
