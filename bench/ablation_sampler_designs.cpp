// Ablation: sampler designs on the same trace.
//
// The paper analyzes random (Bernoulli) sampling and cites [10] for
// "periodic and random sampling provide roughly the same result on high
// speed links". This bench runs the full packet pipeline with random,
// periodic, stratified and flow sampling at the same expected rate and
// compares the resulting top-t ranking quality — reproducing the claimed
// equivalence for packet samplers and the qualitatively different
// behaviour of flow sampling (whole flows survive, so ranking among the
// SAMPLED flows is exact, but the top flows can be missed entirely).
#include <iostream>
#include <memory>
#include <unordered_map>

#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace {

using flowrank::packet::FlowKey;

struct RunOutcome {
  double ranking = 0.0;
  double recall = 0.0;
};

RunOutcome run_pipeline(const flowrank::trace::FlowTrace& trace,
                        flowrank::sampler::PacketSampler& sampler, std::size_t t) {
  std::unordered_map<FlowKey, std::uint64_t, flowrank::packet::FlowKeyHash> original;
  std::unordered_map<FlowKey, std::uint64_t, flowrank::packet::FlowKeyHash> sampled;
  flowrank::trace::PacketStream stream(trace);
  while (auto pkt = stream.next()) {
    const auto key = flowrank::packet::make_flow_key(
        pkt->tuple, flowrank::packet::FlowDefinition::kFiveTuple);
    ++original[key];
    if (sampler.offer(*pkt)) ++sampled[key];
  }
  std::vector<std::uint64_t> true_sizes, sampled_sizes;
  true_sizes.reserve(original.size());
  for (const auto& [key, count] : original) {
    true_sizes.push_back(count);
    const auto it = sampled.find(key);
    sampled_sizes.push_back(it == sampled.end() ? 0 : it->second);
  }
  const auto m = flowrank::metrics::compute_rank_metrics(true_sizes, sampled_sizes, t);
  return {m.ranking_swapped, m.top_set_recall};
}

}  // namespace

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double rate = cli.get_double("rate", 0.05);
  const auto t = static_cast<std::size_t>(cli.get_int("t", 10));
  const int runs = static_cast<int>(cli.get_int("runs", 8));

  std::cout << "# Ablation — sampler designs at equal expected rate " << rate * 100
            << "%, top " << t << "\n";

  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 17);
  trace_cfg.duration_s = cli.get_double("duration", 120.0);
  trace_cfg.flow_rate_per_s = 400.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);
  const auto period = static_cast<std::uint64_t>(1.0 / rate);

  flowrank::util::Table table(
      {"sampler", "swapped_pairs_mean", "swapped_pairs_std", "top_recall"});
  flowrank::numeric::RunningStats random_stats, periodic_stats;
  for (int variant = 0; variant < 4; ++variant) {
    flowrank::numeric::RunningStats ranking, recall;
    for (int run = 0; run < runs; ++run) {
      std::unique_ptr<flowrank::sampler::PacketSampler> sampler;
      switch (variant) {
        case 0:
          sampler = std::make_unique<flowrank::sampler::BernoulliSampler>(
              rate, 100 + run);
          break;
        case 1:
          sampler = std::make_unique<flowrank::sampler::PeriodicSampler>(
              period, static_cast<std::uint64_t>(run) % period);
          break;
        case 2:
          sampler = std::make_unique<flowrank::sampler::StratifiedSampler>(
              period, 200 + run);
          break;
        default:
          sampler = std::make_unique<flowrank::sampler::FlowSampler>(
              rate, flowrank::packet::FlowDefinition::kFiveTuple, 300 + run);
      }
      const auto outcome = run_pipeline(trace, *sampler, t);
      ranking.add(outcome.ranking);
      recall.add(outcome.recall);
    }
    static const char* kNames[] = {"random (paper)", "periodic 1-in-k",
                                   "stratified", "flow sampling"};
    table.add_row(std::string(kNames[variant]), ranking.mean(), ranking.stddev(),
                  recall.mean());
    if (variant == 0) random_stats = ranking;
    if (variant == 1) periodic_stats = ranking;
  }
  table.print(std::cout);

  const bool equivalent =
      std::abs(random_stats.mean() - periodic_stats.mean()) <
      3.0 * (random_stats.stddev() + periodic_stats.stddev() + 1.0);
  std::cout << "\npaper claim : periodic and random sampling behave alike for "
               "ranking ([10], Sec. 2)\n";
  std::cout << "verdict     : " << (equivalent ? "SHAPE REPRODUCED" : "DEVIATION")
            << "\n";
  return 0;
}
