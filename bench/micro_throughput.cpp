// Microbenchmarks: throughput of the hot paths and the ablation the paper
// reports qualitatively — exact discrete model ("hours") vs the
// Gaussian/continuous evaluation ("few seconds"), here measured directly.
//
// The BM_Ingest* group is the headline pair for the batching work: the
// seed per-packet path (virtual sampler call constructing a distribution
// per packet + unordered_map probe per packet, frozen in
// legacy_baseline.hpp) against the batched path (skip-based sampler
// select() + flat open-addressing FlowTable::add_batch()). Run via
// `cmake --build build --target bench-json` to refresh BENCH_micro.json.
#include <algorithm>
#include <atomic>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "legacy_baseline.hpp"

#include "flowrank/agg/flow_summary.hpp"
#include "flowrank/core/discrete_context.hpp"
#include "flowrank/core/discrete_model.hpp"
#include "flowrank/core/misranking.hpp"
#include "flowrank/core/ranking_model.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/flowtable/hash_batch.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/monitor/monitor_loop.hpp"
#include "flowrank/numeric/binomial.hpp"
#include "flowrank/numeric/incbeta.hpp"
#include "flowrank/numeric/quadrature.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/trace/fault_injection.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/binomial_sample.hpp"

namespace {

// --- numeric substrate ------------------------------------------------------

void BM_BinomialCdfLargeN(benchmark::State& state) {
  const std::int64_t n = 1000000;
  double k = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flowrank::numeric::binomial_cdf(static_cast<std::int64_t>(k), n, 1e-5));
    k = k < 40 ? k + 1 : 1;
  }
}
BENCHMARK(BM_BinomialCdfLargeN);

void BM_IncBeta(benchmark::State& state) {
  double x = 0.01;
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::numeric::incbeta(250.0, 12.0, x));
    x = x < 0.99 ? x + 0.01 : 0.01;
  }
}
BENCHMARK(BM_IncBeta);

void BM_GaussLegendre64(benchmark::State& state) {
  const auto f = [](double x) { return x * x * 0.5 + x; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::numeric::integrate_gl(f, 0.0, 1.0, 64));
  }
}
BENCHMARK(BM_GaussLegendre64);

// --- pairwise misranking: exact vs Gaussian vs hybrid ------------------------

void BM_MisrankingExact(benchmark::State& state) {
  const auto size = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::core::misranking_exact(size, size + 50, 0.01));
  }
}
BENCHMARK(BM_MisrankingExact)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MisrankingExactSeedPath(benchmark::State& state) {
  const auto size = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::legacy_misranking_exact(size, size + 50, 0.01));
  }
}
BENCHMARK(BM_MisrankingExactSeedPath)->Arg(100)->Arg(1000)->Arg(10000);

void BM_MisrankingGaussian(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::core::misranking_gaussian(5000.0, 5050.0, 0.01));
  }
}
BENCHMARK(BM_MisrankingGaussian);

void BM_MisrankingHybrid(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::core::misranking_hybrid(5000.0, 5050.0, 0.001));
  }
}
BENCHMARK(BM_MisrankingHybrid);

// --- model evaluation: the paper's "hours vs seconds" ablation ---------------

void BM_RankingModelContinuous(benchmark::State& state) {
  flowrank::core::RankingModelConfig cfg;
  cfg.n = 2000;
  cfg.t = 5;
  cfg.p = 0.2;
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(9.6, 2.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::core::evaluate_ranking_model(cfg));
  }
}
BENCHMARK(BM_RankingModelContinuous);

/// The paper-scale discrete config the compute-layer acceptance numbers
/// are quoted against (S = 3000 support). Arg(0) selects the support cap.
flowrank::core::DiscreteModelConfig discrete_bench_config(std::int64_t max_size) {
  flowrank::core::DiscreteModelConfig cfg;
  cfg.n = 2000;
  cfg.t = 5;
  cfg.p = 0.2;
  cfg.max_size = max_size;
  cfg.tail_tolerance = 1e-4;
  cfg.size_pmf = std::make_shared<flowrank::dist::Discretized>(
      std::make_unique<flowrank::dist::Pareto>(
          flowrank::dist::Pareto::from_mean(9.6, 2.5)));
  return cfg;
}

// Iterations(1): one table build is seconds even post-rework at
// max_size = 3000; letting Benchmark pick an iteration count made the
// full bench run take minutes for no extra signal. The small companion
// (max_size = 600, the figure-spec scale) runs free-iteration so the
// usual variance machinery still covers the kernel.
void BM_RankingModelDiscreteExact(benchmark::State& state) {
  const auto cfg = discrete_bench_config(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::core::evaluate_discrete_ranking_model(cfg));
  }
  state.counters["max_size"] = static_cast<double>(cfg.max_size);
}
BENCHMARK(BM_RankingModelDiscreteExact)
    ->Arg(3000)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RankingModelDiscreteExact)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

// The two halves the context API splits evaluation into: the one-off
// table build (everything that depends only on pmf/p/max-size) and the
// near-free per-(n, t) fold a sweep pays per marginal cell.
void BM_DiscreteModelTableBuild(benchmark::State& state) {
  const auto model_cfg = discrete_bench_config(state.range(0));
  flowrank::core::DiscreteContextConfig cfg;
  cfg.p = model_cfg.p;
  cfg.size_pmf = model_cfg.size_pmf;
  cfg.max_size = model_cfg.max_size;
  cfg.tail_tolerance = model_cfg.tail_tolerance;
  for (auto _ : state) {
    flowrank::core::DiscreteModelContext context(cfg);
    benchmark::DoNotOptimize(context.larger_pair_sums().data());
  }
  state.counters["max_size"] = static_cast<double>(cfg.max_size);
}
BENCHMARK(BM_DiscreteModelTableBuild)
    ->Arg(600)
    ->Unit(benchmark::kMillisecond);

// Sweep-level reuse: one shared context scoring a 3-cell t-sweep per
// iteration (items/iter = 3). Compare 3x the per-cell time against
// BM_RankingModelDiscreteExact/600, which rebuilds the tables for every
// cell — the amortized ratio is the acceptance number for context reuse.
void BM_DiscreteModelSweepReuse(benchmark::State& state) {
  const auto model_cfg = discrete_bench_config(600);
  flowrank::core::DiscreteContextConfig cfg;
  cfg.p = model_cfg.p;
  cfg.size_pmf = model_cfg.size_pmf;
  cfg.max_size = model_cfg.max_size;
  cfg.tail_tolerance = model_cfg.tail_tolerance;
  const flowrank::core::DiscreteModelContext context(cfg);
  const std::int64_t t_sweep[] = {5, 10, 25};
  for (auto _ : state) {
    for (const std::int64_t t : t_sweep) {
      benchmark::DoNotOptimize(context.evaluate(model_cfg.n, t));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 3);
  state.counters["cells"] = 3.0;
}
BENCHMARK(BM_DiscreteModelSweepReuse)->Unit(benchmark::kMillisecond);

// --- packet path -------------------------------------------------------------

void BM_BernoulliSampler(benchmark::State& state) {
  flowrank::sampler::BernoulliSampler sampler(0.01, 1);
  flowrank::packet::PacketRecord pkt;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.offer(pkt));
  }
}
BENCHMARK(BM_BernoulliSampler);

void BM_FlowTableAdd(benchmark::State& state) {
  flowrank::flowtable::FlowTable table({flowrank::packet::FlowDefinition::kFiveTuple, 0});
  flowrank::packet::PacketRecord pkt;
  std::uint32_t i = 0;
  for (auto _ : state) {
    pkt.tuple.src_ip = i++ % 65536;  // 64K concurrent flows
    table.add(pkt);
  }
  state.counters["flows"] = static_cast<double>(table.size());
}
BENCHMARK(BM_FlowTableAdd);

void BM_FlowTableAddLegacy(benchmark::State& state) {
  bench::LegacyFlowTable table({flowrank::packet::FlowDefinition::kFiveTuple, 0});
  flowrank::packet::PacketRecord pkt;
  std::uint32_t i = 0;
  for (auto _ : state) {
    pkt.tuple.src_ip = i++ % 65536;  // 64K concurrent flows
    table.add(pkt);
  }
  state.counters["flows"] = static_cast<double>(table.size());
}
BENCHMARK(BM_FlowTableAddLegacy);

// --- multi-vantage aggregation: parse + invert + union fold ------------------

/// The aggregator's per-window merge path: parse each agent's serialized
/// FlowSummary (framing + FNV-1a checksum validation), invert it at its
/// own sampling rate and left-fold the mergeable Space-Saving union.
/// Arg = union slot budget (0 keeps every key — exact for table kind).
void BM_SummaryMergeUnion(benchmark::State& state) {
  namespace fa = flowrank::agg;
  constexpr std::size_t kAgents = 4;
  constexpr std::size_t kEntries = 4096;
  // Overlapping halves: consecutive agents share kEntries/2 keys, so the
  // fold exercises both the merge-existing and insert-new paths.
  std::vector<std::vector<std::uint8_t>> wire;
  for (std::size_t a = 0; a < kAgents; ++a) {
    fa::FlowSummary summary;
    summary.agent_id = static_cast<std::uint32_t>(a);
    summary.epoch = 0;
    summary.effective_rate = 0.25;
    for (std::size_t i = 0; i < kEntries; ++i) {
      fa::SummaryEntry entry;
      entry.key.hi = 0;
      entry.key.lo = a * (kEntries / 2) + i;
      entry.packets = 1 + (kEntries - i) * (kEntries - i) / kEntries;
      entry.bytes = entry.packets * 500;
      entry.first_ns = static_cast<std::int64_t>(i);
      entry.last_ns = static_cast<std::int64_t>(i + 1);
      summary.entries.push_back(entry);
      summary.packets_sampled += entry.packets;
    }
    summary.packets_offered = summary.packets_sampled * 4;
    wire.push_back(fa::serialize(summary));
  }
  const auto capacity = static_cast<std::size_t>(state.range(0));
  std::size_t merged_flows = 0;
  for (auto _ : state) {
    flowrank::estimators::MergedSketch merged;
    for (const auto& bytes : wire) {
      const fa::FlowSummary summary = fa::parse_summary(bytes);
      const flowrank::estimators::MergedSketch view = fa::inverted_view(summary);
      merged = flowrank::estimators::space_saving_union(merged.view(),
                                                        view.view(), capacity);
    }
    merged_flows = merged.flows.size();
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kAgents * kEntries));
  state.counters["merged_flows"] = static_cast<double>(merged_flows);
}
BENCHMARK(BM_SummaryMergeUnion)->Arg(0)->Arg(256)->Unit(benchmark::kMillisecond);

// --- ingest pipeline: seed per-packet path vs batched path -------------------

/// Synthesizes a measurement interval of packets with a realistic
/// flow-popularity skew (a few heavy hitters over a long tail of small
/// flows). ~190K concurrent flows: Sprint-scale per-bin population.
std::vector<flowrank::packet::PacketRecord> make_ingest_batch(std::size_t count) {
  std::vector<flowrank::packet::PacketRecord> packets(count);
  auto engine = flowrank::util::make_engine(42);
  std::uniform_int_distribution<std::uint32_t> tail_flow(0, (1 << 18) - 1);
  std::uniform_int_distribution<std::uint32_t> coin(0, 9);
  for (std::size_t i = 0; i < count; ++i) {
    auto& pkt = packets[i];
    pkt.timestamp_ns = static_cast<std::int64_t>(i) * 1000;
    // ~30% of packets hit one of 16 heavy flows, the rest the 256K tail.
    pkt.tuple.src_ip = coin(engine) < 3 ? tail_flow(engine) % 16 : tail_flow(engine);
    pkt.tuple.dst_ip = 0x0A000001;
    pkt.tuple.src_port = 1234;
    pkt.tuple.dst_port = 80;
    pkt.tuple.protocol = flowrank::packet::Protocol::kTcp;
    pkt.size_bytes = 500;
  }
  return packets;
}

constexpr double kIngestRate = 0.01;
constexpr std::size_t kIngestPackets = 1 << 19;

// Both ingest benchmarks measure the steady state of a long-running
// monitor: tables are built once and clear()ed at each measurement
// interval (the paper's "memory is cleared"), so the timed region is
// classification work, not allocator churn for the table shell itself.

void BM_IngestSeedPath(benchmark::State& state) {
  const auto packets = make_ingest_batch(kIngestPackets);
  bench::LegacyBernoulli sampler(kIngestRate, 1);
  bench::LegacyFlowTable truth({flowrank::packet::FlowDefinition::kFiveTuple, 0});
  bench::LegacyFlowTable sampled({flowrank::packet::FlowDefinition::kFiveTuple, 0});
  for (auto _ : state) {
    truth.clear();
    sampled.clear();
    for (const auto& pkt : packets) {
      truth.add(pkt);
      if (sampler.offer(pkt)) sampled.add(pkt);
    }
    benchmark::DoNotOptimize(truth.size() + sampled.size());
  }
  state.counters["flows"] = static_cast<double>(truth.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_IngestSeedPath)->Unit(benchmark::kMillisecond);

void BM_IngestBatchPath(benchmark::State& state) {
  const auto packets = make_ingest_batch(kIngestPackets);
  const std::size_t batch_size = 4096;
  std::vector<flowrank::packet::PacketRecord> selected;
  selected.reserve(batch_size);
  flowrank::sampler::BernoulliSampler sampler(kIngestRate, 1);
  // Pre-sized for the expected concurrent-flow population, as a production
  // monitor would be (Options::initial_capacity exists for exactly this;
  // the node-based seed path has no equivalent lever).
  flowrank::flowtable::FlowTable truth(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0, 1 << 19});
  flowrank::flowtable::FlowTable sampled(
      {flowrank::packet::FlowDefinition::kFiveTuple, 0});
  for (auto _ : state) {
    truth.clear();
    sampled.clear();
    const std::span<const flowrank::packet::PacketRecord> all(packets);
    for (std::size_t start = 0; start < all.size(); start += batch_size) {
      const auto batch = all.subspan(start, std::min(batch_size, all.size() - start));
      truth.add_batch(batch);
      sampler.select_into(batch, selected);
      sampled.add_batch(selected);
    }
    benchmark::DoNotOptimize(truth.size() + sampled.size());
  }
  state.counters["flows"] = static_cast<double>(truth.size());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_IngestBatchPath)->Unit(benchmark::kMillisecond);

// Sharded ingest scaling: the same truth + sampled workload as
// BM_Ingest{Seed,Batch}Path pushed through ingest::ShardedPipeline at 1,
// 2 and 4 shards, in steady state: one long-lived pipeline, one
// measurement interval per benchmark iteration (timestamps advance one
// bin per iteration, so every shard table is flushed and clear()ed
// between intervals, exactly like the inline benchmarks), results
// consumed by a streaming on_shard_bin callback so memory stays bounded.
// Rewriting the interval's timestamps is packet-source work the inline
// benchmarks don't pay, so it sits outside the timed region. On a
// single-vCPU runner the shard counts time-slice one core, so the column
// to compare against is the per-packet seed path (BM_IngestSeedPath); on
// a multi-core host the shard sweep shows the parallel speedup directly.
void BM_ShardedIngest(benchmark::State& state) {
  const auto packets = make_ingest_batch(kIngestPackets);
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::size_t batch_size = 4096;
  const std::int64_t interval_ns =
      static_cast<std::int64_t>(kIngestPackets) * 1000;  // one bin per interval

  flowrank::ingest::ShardedPipelineConfig cfg;
  cfg.num_shards = shards;
  cfg.num_streams = 2;  // stream 0 = truth, stream 1 = sampled
  cfg.bin_ns = interval_ns;
  cfg.table_options = {flowrank::packet::FlowDefinition::kFiveTuple, 0,
                       (std::size_t{1} << 19) / shards};
  std::atomic<std::uint64_t> flows_flushed{0};
  cfg.on_shard_bin = [&flows_flushed](std::size_t, std::size_t, std::size_t,
                                      const flowrank::flowtable::FlowTable& table) {
    flows_flushed.fetch_add(table.size(), std::memory_order_relaxed);
  };
  flowrank::ingest::ShardedPipeline pipeline(cfg);
  flowrank::sampler::BernoulliSampler sampler(kIngestRate, 1);
  std::vector<flowrank::packet::PacketRecord> interval(packets);
  std::vector<flowrank::packet::PacketRecord> selected;
  selected.reserve(batch_size);
  std::int64_t bin_base_ns = 0;

  for (auto _ : state) {
    state.PauseTiming();  // packet source: shift this interval's timestamps
    for (std::size_t i = 0; i < interval.size(); ++i) {
      interval[i].timestamp_ns = packets[i].timestamp_ns + bin_base_ns;
    }
    bin_base_ns += interval_ns;
    state.ResumeTiming();

    const std::span<const flowrank::packet::PacketRecord> all(interval);
    for (std::size_t start = 0; start < all.size(); start += batch_size) {
      const auto batch = all.subspan(start, std::min(batch_size, all.size() - start));
      pipeline.add_batch(0, batch);
      sampler.select_into(batch, selected);
      pipeline.add_batch(1, selected);
    }
  }
  pipeline.finish();
  benchmark::DoNotOptimize(flows_flushed.load());
  state.counters["shards"] = static_cast<double>(shards);
  // Overload accounting in the JSON: a queue-bound configuration must be
  // visible as shed/blocked work, not read as silently faster. Zero under
  // the default kBlock policy — nothing is ever dropped here.
  const flowrank::ingest::OverloadStats overload = pipeline.overload_stats();
  state.counters["queue_full_events"] =
      static_cast<double>(overload.queue_full_events);
  state.counters["shed_chunks"] = static_cast<double>(overload.shed_chunks);
  state.counters["shed_packets"] = static_cast<double>(overload.shed_packets);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
// UseRealTime: throughput must reflect end-to-end wall time (workers run
// off the main thread, which Benchmark's CPU clock doesn't see).
BENCHMARK(BM_ShardedIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Repeated short pipelines: the cost model the TaskPool rewrite targets.
// A monitor that opens a fresh ShardedPipeline per measurement job (one
// small interval each) used to pay a thread spawn/join per shard per
// pipeline; on the shared pool the workers are parked once and reused.
// BM_ShortPipelinesPooled runs 64 back-to-back pipelines per iteration on
// the shared pool; BM_ShortPipelinesSpawn forces the old cost model by
// giving every pipeline its own throwaway TaskPool (fresh threads per
// run). Identical classification work; only the startup amortization
// differs, so the pipelines are deliberately short.
constexpr std::size_t kShortPipelines = 64;
constexpr std::size_t kShortPipelinePackets = 2048;

void run_short_pipeline(std::span<const flowrank::packet::PacketRecord> packets,
                        flowrank::exec::TaskPool* pool,
                        std::uint64_t& flows_flushed) {
  flowrank::ingest::ShardedPipelineConfig cfg;
  cfg.num_shards = 2;
  cfg.bin_ns = static_cast<std::int64_t>(kShortPipelinePackets) * 1000;
  cfg.table_options = {flowrank::packet::FlowDefinition::kFiveTuple, 0};
  cfg.pool = pool;
  std::atomic<std::uint64_t> flushed{0};
  cfg.on_shard_bin = [&flushed](std::size_t, std::size_t, std::size_t,
                                const flowrank::flowtable::FlowTable& table) {
    flushed.fetch_add(table.size(), std::memory_order_relaxed);
  };
  flowrank::ingest::ShardedPipeline pipeline(cfg);
  for (std::size_t start = 0; start < packets.size(); start += 4096) {
    pipeline.add_batch(0, packets.subspan(start, std::min<std::size_t>(
                                                     4096, packets.size() - start)));
  }
  pipeline.finish();
  flows_flushed += flushed.load();
}

void BM_ShortPipelinesPooled(benchmark::State& state) {
  const auto packets = make_ingest_batch(kShortPipelinePackets);
  std::uint64_t flows_flushed = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kShortPipelines; ++i) {
      run_short_pipeline(packets, /*pool=*/nullptr, flows_flushed);  // shared pool
    }
  }
  benchmark::DoNotOptimize(flows_flushed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShortPipelines * packets.size()));
}
BENCHMARK(BM_ShortPipelinesPooled)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ShortPipelinesSpawn(benchmark::State& state) {
  const auto packets = make_ingest_batch(kShortPipelinePackets);
  std::uint64_t flows_flushed = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < kShortPipelines; ++i) {
      flowrank::exec::TaskPool fresh(2);  // per-run thread spawn, as pre-rewrite
      run_short_pipeline(packets, &fresh, flows_flushed);
    }
  }
  benchmark::DoNotOptimize(flows_flushed);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kShortPipelines * packets.size()));
}
BENCHMARK(BM_ShortPipelinesSpawn)->Unit(benchmark::kMillisecond)->UseRealTime();

// --- partition-at-source batch hashing --------------------------------------

// The hash-once kernel behind the ring pipeline: one FlowKeyHash per
// packet, reused for shard selection, table probing and hash-threshold
// sampling. One row per compiled-in kernel (registered from main below,
// since availability is a runtime question) — all rows are bit-identical
// in output, so the deltas are pure kernel speed. This measurement is
// what sets the dispatch default in hash_batch.cpp: on x86-64 the SSE2
// kernel's emulated 64-bit lane multiplies lose to scalar imul, so
// hash_batch() runs the scalar loop and the vector rows document why.
void BM_HashBatch(benchmark::State& state,
                  flowrank::flowtable::HashBatchImpl impl) {
  constexpr std::size_t kKeys = 1 << 16;
  std::vector<flowrank::packet::FlowKey> keys(kKeys);
  auto engine = flowrank::util::make_engine(11);
  std::uniform_int_distribution<std::uint64_t> rand64;
  for (auto& key : keys) {
    key.hi = rand64(engine);
    key.lo = rand64(engine);
  }
  std::vector<std::uint64_t> hashes(kKeys);
  for (auto _ : state) {
    flowrank::flowtable::hash_batch_with(impl, keys, /*salt=*/0, hashes);
    benchmark::DoNotOptimize(hashes.data());
  }
  state.SetLabel(std::string(flowrank::flowtable::hash_batch_impl_name(impl)));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kKeys));
}

// One BM_HashBatch row per kernel this binary can run, e.g.
// BM_HashBatch/scalar and BM_HashBatch/sse2 on x86-64. The row whose
// label matches hash_batch_impl_name(hash_batch_impl()) is the one the
// ingest path actually uses.
void register_hash_batch_benchmarks() {
  using flowrank::flowtable::HashBatchImpl;
  for (const auto impl :
       {HashBatchImpl::kScalar, HashBatchImpl::kSse2, HashBatchImpl::kNeon}) {
    if (!flowrank::flowtable::hash_batch_impl_available(impl)) continue;
    const std::string name =
        "BM_HashBatch/" +
        std::string(flowrank::flowtable::hash_batch_impl_name(impl));
    benchmark::RegisterBenchmark(name.c_str(), &BM_HashBatch, impl);
  }
}

void BM_SamplerSelectBatch(benchmark::State& state) {
  const auto packets = make_ingest_batch(1 << 16);
  flowrank::sampler::BernoulliSampler sampler(kIngestRate, 1);
  std::vector<std::uint32_t> indices;
  for (auto _ : state) {
    indices.clear();
    sampler.select(packets, indices);
    benchmark::DoNotOptimize(indices.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_SamplerSelectBatch);

void BM_PacketStreamExpansion(benchmark::State& state) {
  auto cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 3);
  cfg.duration_s = 5.0;
  cfg.flow_rate_per_s = 500.0;
  const auto trace = flowrank::trace::generate_flow_trace(cfg);
  for (auto _ : state) {
    flowrank::trace::PacketStream stream(trace);
    std::uint64_t n = 0;
    while (stream.next()) ++n;
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(trace.total_packets()));
}
BENCHMARK(BM_PacketStreamExpansion)->Unit(benchmark::kMillisecond);

void BM_RankMetrics(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto engine = flowrank::util::make_engine(9);
  const auto pareto = flowrank::dist::Pareto::from_mean(9.6, 1.5);
  std::vector<std::uint64_t> true_sizes(n), sampled(n);
  for (std::size_t i = 0; i < n; ++i) {
    true_sizes[i] = static_cast<std::uint64_t>(pareto.sample(engine));
    sampled[i] = true_sizes[i] / 10;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        flowrank::metrics::compute_rank_metrics(true_sizes, sampled, 10));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RankMetrics)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// Context reuse: the same population scored repeatedly (the Monte-Carlo
// sweep shape — one context per bin, one evaluate per run). Compare
// against BM_RankMetrics at the same n, which rebuilds the context
// (true-ranking sort included) on every call.
void BM_RankMetricsContext(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto engine = flowrank::util::make_engine(9);
  const auto pareto = flowrank::dist::Pareto::from_mean(9.6, 1.5);
  std::vector<std::uint64_t> true_sizes(n), sampled(n);
  for (std::size_t i = 0; i < n; ++i) {
    true_sizes[i] = static_cast<std::uint64_t>(pareto.sample(engine));
    sampled[i] = true_sizes[i] / 10;
  }
  flowrank::metrics::RankMetricsContext context(true_sizes, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(context.evaluate(sampled));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_RankMetricsContext)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// --- Monte-Carlo sweep: binomial sampling + the parallel sweep engine -------

// Thinning kernel head-to-head: the portable sampler vs a per-call
// std::binomial_distribution (what thin_count and run_mc_model used
// through PR 2). Small mean hits the BINV branch, large mean BTPE.
void BM_BinomialSample(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto engine = flowrank::util::make_engine(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flowrank::util::binomial_sample(n, 0.01, engine));
  }
}
BENCHMARK(BM_BinomialSample)->Arg(100)->Arg(1000000);

void BM_BinomialSampleStdSeedPath(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  auto engine = flowrank::util::make_engine(17);
  for (auto _ : state) {
    std::binomial_distribution<std::uint64_t> thin(n, 0.01);
    benchmark::DoNotOptimize(thin(engine));
  }
}
BENCHMARK(BM_BinomialSampleStdSeedPath)->Arg(100)->Arg(1000000);

/// Shared workload for the sweep benchmarks: a generated trace and a
/// figure-shaped SimConfig (4 rates x 15 bins x 20 runs, top-10).
const flowrank::trace::FlowTrace& sweep_trace() {
  static const flowrank::trace::FlowTrace trace = [] {
    auto cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 21);
    cfg.duration_s = 150.0;
    cfg.flow_rate_per_s = 250.0;
    return flowrank::trace::generate_flow_trace(cfg);
  }();
  return trace;
}

flowrank::sim::SimConfig sweep_config() {
  flowrank::sim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  cfg.top_t = 10;
  cfg.sampling_rates = {0.001, 0.01, 0.1, 0.5};
  cfg.runs = 20;
  cfg.seed = 7;
  return cfg;
}

// The whole count-path Monte-Carlo sweep on the SweepEngine at 1, 2 and 4
// threads. Results are bit-identical at every thread count (asserted in
// tests/test_sweep_engine.cpp); only wall time changes. On a single-vCPU
// runner the thread counts time-slice one core, so the honest column to
// compare there is the frozen PR 2 path below; on a multi-core host the
// sweep shows the parallel speedup directly. UseRealTime for the same
// reason as BM_ShardedIngest: workers run off the benchmark's CPU clock.
void BM_BinnedSimSweep(benchmark::State& state) {
  const auto& trace = sweep_trace();
  auto cfg = sweep_config();
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  double cells = 0.0;
  for (auto _ : state) {
    const auto result = flowrank::sim::run_binned_simulation(trace, cfg);
    benchmark::DoNotOptimize(result.series.front().bins.front().ranking.mean());
    cells = static_cast<double>(result.series.size() *
                                result.series.front().bins.size());
  }
  state.counters["threads"] = static_cast<double>(cfg.num_threads);
  state.counters["grid_cells"] = cells;
}
BENCHMARK(BM_BinnedSimSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The frozen PR 2 sweep on the identical workload: sequential grid walk,
// per-flow std::binomial_distribution construction, full
// compute_rank_metrics (true-ranking sort included) per run.
void BM_BinnedSimSweepSeedPath(benchmark::State& state) {
  const auto& trace = sweep_trace();
  const auto cfg = sweep_config();
  for (auto _ : state) {
    const auto result = bench::legacy_run_binned_simulation(trace, cfg);
    benchmark::DoNotOptimize(result.series.front().bins.front().ranking.mean());
  }
}
BENCHMARK(BM_BinnedSimSweepSeedPath)->Unit(benchmark::kMillisecond)->UseRealTime();

// The continuous monitor loop end to end: rolling 2 s windows over a 20 s
// fault-injected trace (1% corrupt/truncated records, flash-crowd bursts
// tripping the shed budget). Counters land in the JSON so a perf entry
// records whether the measured run degraded — a benchmark that silently
// shed half its packets is not comparable to one that kept up.
void BM_MonitorLoop(benchmark::State& state) {
  const auto trace = [] {
    auto cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 31);
    cfg.duration_s = 20.0;
    cfg.flow_rate_per_s = 200.0;
    return flowrank::trace::generate_flow_trace(cfg);
  }();
  flowrank::trace::FaultSpec faults;
  faults.corrupt_fraction = 0.01;
  faults.truncate_fraction = 0.01;
  faults.burst_flows = 500;
  faults.burst_every_s = 5.0;
  const auto source = std::make_shared<flowrank::trace::FaultInjectingTraceSource>(
      std::make_shared<flowrank::trace::FixedTraceSource>(trace, "bench"), faults);

  flowrank::monitor::MonitorConfig cfg;
  cfg.window_s = 2.0;
  cfg.sampling_rate = 0.1;
  cfg.top_t = 10;
  cfg.overload = flowrank::ingest::OverloadPolicy::kShed;
  cfg.window_packet_budget = 300;
  cfg.max_queue_chunks = 1024;

  flowrank::monitor::MonitorCounters counters;
  std::uint64_t packets = 0;
  for (auto _ : state) {
    flowrank::monitor::MonitorLoop loop(source, cfg);  // run() is once-only
    const auto report = loop.run();
    counters = report.counters;
    packets = report.counters.packets_offered;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets));
  state.counters["windows"] = static_cast<double>(counters.windows);
  state.counters["shed_packets"] = static_cast<double>(counters.shed_packets);
  state.counters["pipeline_shed_packets"] =
      static_cast<double>(counters.pipeline_shed_packets);
  state.counters["degradations"] = static_cast<double>(counters.degradations);
  state.counters["corrupt_records"] =
      static_cast<double>(counters.corrupt_records);
  state.counters["truncated_records"] =
      static_cast<double>(counters.truncated_records);
  state.counters["stall_events"] = static_cast<double>(counters.stall_events);
  state.counters["watchdog_rotations"] =
      static_cast<double>(counters.watchdog_rotations);
}
BENCHMARK(BM_MonitorLoop)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

// Hand-rolled main (vs BENCHMARK_MAIN) so the JSON context carries OUR
// binary's build type. Google Benchmark's own `library_build_type` field
// describes how the *system libbenchmark* was compiled (debug on some
// boxes) and says nothing about this binary's optimization level —
// keying a perf baseline on it produced a "debug" BENCH_micro.json from
// a perfectly good Release build. bench/run_bench.sh and
// scripts/check_bench_counters.py gate on flowrank_build_type instead.
#ifndef FLOWRANK_BUILD_TYPE
#define FLOWRANK_BUILD_TYPE "unknown"
#endif

int main(int argc, char** argv) {
  benchmark::AddCustomContext("flowrank_build_type", FLOWRANK_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  register_hash_batch_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
