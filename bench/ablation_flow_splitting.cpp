// Ablation: flow splitting under idle timeouts (paper introduction: "if
// flow duration is defined with a timeout, then a flow can be split into
// multiple subflows if the sampling frequency is too low" [5]).
//
// We classify the SAMPLED stream with an idle-timeout flow table and
// measure how many subflows the true top flows shatter into as the
// sampling rate drops — the mechanism that degrades ranking beyond the
// pure counting noise the models capture.
#include <iostream>
#include <unordered_map>

#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double timeout_s = cli.get_double("timeout", 5.0);

  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 29);
  trace_cfg.duration_s = cli.get_double("duration", 300.0);
  trace_cfg.flow_rate_per_s = 300.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);

  std::cout << "# Ablation — flow splitting with a " << timeout_s
            << " s idle timeout on the sampled stream\n";

  flowrank::util::Table table({"rate_pct", "sampled_flows", "subflows",
                               "split_factor", "largest_flow_subflows"});
  for (double rate : {1.0, 0.5, 0.1, 0.01, 0.001}) {
    flowrank::flowtable::FlowTable table_no_split(
        {flowrank::packet::FlowDefinition::kFiveTuple, 0});
    flowrank::flowtable::FlowTable table_split(
        {flowrank::packet::FlowDefinition::kFiveTuple,
         static_cast<std::int64_t>(timeout_s * 1e9)});
    flowrank::sampler::BernoulliSampler sampler(rate, 31);
    flowrank::trace::PacketStream stream(trace);
    while (auto pkt = stream.next()) {
      if (!sampler.offer(*pkt)) continue;
      table_no_split.add(*pkt);
      table_split.add(*pkt);
    }
    const auto whole = table_no_split.active();
    const auto split = table_split.all();
    // Subflow count of the largest sampled flow.
    flowrank::packet::FlowKey biggest{};
    std::uint64_t biggest_packets = 0;
    for (const auto& f : whole) {
      if (f.packets > biggest_packets) {
        biggest_packets = f.packets;
        biggest = f.key;
      }
    }
    std::size_t biggest_subflows = 0;
    for (const auto& f : split) {
      if (f.key == biggest) ++biggest_subflows;
    }
    table.add_row(rate * 100.0, whole.size(), split.size(),
                  whole.empty() ? 0.0
                                : static_cast<double>(split.size()) /
                                      static_cast<double>(whole.size()),
                  biggest_subflows);
  }
  table.print(std::cout);
  std::cout << "\nAt full capture flows rarely split; as the rate drops, gaps\n"
               "between sampled packets exceed the idle timeout and flows\n"
               "shatter — an additional error source for timeout-based\n"
               "monitors that the paper notes and sets aside.\n";
  return 0;
}
