// Figure 14: trace-driven detection performance vs time — 5-tuple flows,
// top-10 (Sec. 8.2).
#include "sim_driver.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  bench::SimFigureSpec spec;
  spec.figure = "Figure 14";
  spec.what = "detection vs time, 5-tuple, top 10 flows (synthetic Sprint trace)";
  spec.preset = "sprint_5tuple";
  spec.definition = flowrank::packet::FlowDefinition::kFiveTuple;
  spec.expect_detection = true;
  return bench::run_sim_figure(cli, spec);
}
