// Figure 7: ranking metric vs sampling rate for beta in {3,...,1.2} —
// /24 prefix flows, N = 0.1M, t = 10 (Sec. 6.2).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_beta(cli, "Figure 7", bench::kNPrefix24,
                                    bench::kMeanPrefix24, "/24 prefix flows");
}
