// Figure 11: detection metric vs sampling rate for t in {1,2,5,10,25} —
// /24 prefix flows, N = 0.1M (Sec. 7.2).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_detection_vs_t(cli, "Figure 11", bench::kNPrefix24,
                                   bench::kMeanPrefix24, "/24 prefix flows");
}
