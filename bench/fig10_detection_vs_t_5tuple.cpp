// Figure 10: detection metric vs sampling rate for t in {1,2,5,10,25} —
// 5-tuple flows, N = 0.7M, beta = 1.5 (Sec. 7.2).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_detection_vs_t(cli, "Figure 10", bench::kN5Tuple,
                                   bench::kMean5Tuple, "5-tuple flows");
}
