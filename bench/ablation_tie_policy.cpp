// Ablation: how much of the swapped-pair metric is sampled TIES rather
// than strict inversions?
//
// The paper's convention counts a sampled tie between distinct-size flows
// as a misranking (Pm = P{s1 >= s2}); an operator who breaks ties
// arbitrarily might prefer the lenient reading. This ablation quantifies
// the gap across sampling rates — it is large exactly where the paper's
// message is bleakest (low rates), so the convention matters.
#include <iostream>

#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  auto trace_cfg = flowrank::trace::FlowTraceConfig::sprint_5tuple(1.5, 23);
  trace_cfg.duration_s = cli.get_double("duration", 300.0);
  trace_cfg.flow_rate_per_s = 300.0;
  const auto trace = flowrank::trace::generate_flow_trace(trace_cfg);

  std::cout << "# Ablation — tie policy (paper: tie = swap; lenient: tie ok)\n";

  flowrank::sim::SimConfig cfg;
  cfg.bin_seconds = 300.0;
  cfg.top_t = static_cast<std::size_t>(cli.get_int("t", 10));
  cfg.sampling_rates = {0.001, 0.01, 0.1, 0.5};
  cfg.runs = static_cast<int>(cli.get_int("runs", 15));

  flowrank::util::Table table(
      {"rate_pct", "paper_policy", "lenient_policy", "tie_share_pct"});
  cfg.tie_policy = flowrank::metrics::TiePolicy::kPaper;
  const auto paper = flowrank::sim::run_binned_simulation(trace, cfg);
  cfg.tie_policy = flowrank::metrics::TiePolicy::kLenient;
  const auto lenient = flowrank::sim::run_binned_simulation(trace, cfg);
  for (std::size_t r = 0; r < cfg.sampling_rates.size(); ++r) {
    double paper_mean = 0.0, lenient_mean = 0.0;
    int bins = 0;
    for (std::size_t b = 0; b < paper.series[r].bins.size(); ++b) {
      if (paper.series[r].bins[b].ranking.count() == 0) continue;
      paper_mean += paper.series[r].bins[b].ranking.mean();
      lenient_mean += lenient.series[r].bins[b].ranking.mean();
      ++bins;
    }
    paper_mean /= bins;
    lenient_mean /= bins;
    table.add_row(cfg.sampling_rates[r] * 100.0, paper_mean, lenient_mean,
                  paper_mean > 0.0 ? (paper_mean - lenient_mean) / paper_mean * 100.0
                                   : 0.0);
  }
  table.print(std::cout);
  std::cout << "\nTies are a substantial share of the metric at low rates (many\n"
               "flows collapse onto the same small sampled size) and vanish as\n"
               "the rate grows. The paper's qualitative conclusions hold under\n"
               "either policy; absolute crossing rates shift slightly.\n";
  return 0;
}
