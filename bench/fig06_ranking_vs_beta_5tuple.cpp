// Figure 6: ranking metric vs sampling rate for beta in {3,...,1.2} —
// 5-tuple flows, N = 0.7M, t = 10 (Sec. 6.2).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_beta(cli, "Figure 6", bench::kN5Tuple,
                                    bench::kMean5Tuple, "5-tuple flows");
}
