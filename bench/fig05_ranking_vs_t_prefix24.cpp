// Figure 5: ranking metric vs sampling rate for t in {1,2,5,10,25} —
// /24 destination-prefix flows, N = 0.1M, mean 33.2 packets (Sec. 6.1).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_t(cli, "Figure 5", bench::kNPrefix24,
                                 bench::kMeanPrefix24, "/24 prefix flows");
}
