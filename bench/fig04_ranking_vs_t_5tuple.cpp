// Figure 4: ranking metric vs sampling rate for t in {1,2,5,10,25} —
// 5-tuple flows, N = 0.7M, Pareto beta = 1.5, mean 9.6 packets (Sec. 6.1).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_t(cli, "Figure 4", bench::kN5Tuple, bench::kMean5Tuple,
                                 "5-tuple flows");
}
