// Figure 12: trace-driven ranking performance vs time — 5-tuple flows,
// top-10, bins of 1 and 5 minutes, 30 sampling runs (Sec. 8.2).
#include "sim_driver.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  bench::SimFigureSpec spec;
  spec.figure = "Figure 12";
  spec.what = "ranking vs time, 5-tuple, top 10 flows (synthetic Sprint trace)";
  spec.preset = "sprint_5tuple";
  spec.definition = flowrank::packet::FlowDefinition::kFiveTuple;
  return bench::run_sim_figure(cli, spec);
}
