// Frozen copies of the pre-batching ingest path, kept verbatim so the
// seed-path-vs-batch benchmark pair in micro_throughput.cpp keeps
// measuring against the same baseline as the library evolves:
//
//  * LegacyFlowTable   — std::unordered_map-backed classifier (one node
//                        allocation + pointer chase per new flow, hash
//                        probe per packet);
//  * LegacyBernoulli   — per-packet coin flip, constructing a fresh
//                        std::bernoulli_distribution on every offer();
//  * legacy_run_binned_simulation — the PR 2 sequential Monte-Carlo
//                        sweep (per-flow std::binomial_distribution
//                        construction, per-run true-ranking sort).
//
// Bench-only: nothing in the library links this header.
#pragma once

#include <algorithm>
#include <random>
#include <unordered_map>

#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/numeric/binomial.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/packet/records.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/util/rng.hpp"

namespace bench {

class LegacyFlowTable {
 public:
  explicit LegacyFlowTable(flowrank::flowtable::FlowTable::Options options)
      : options_(options) {}

  void add(const flowrank::packet::PacketRecord& pkt) {
    const auto key = flowrank::packet::make_flow_key(pkt.tuple, options_.definition);
    auto [it, inserted] = table_.try_emplace(key);
    flowrank::flowtable::FlowCounter& counter = it->second;

    if (!inserted && options_.idle_timeout_ns > 0 &&
        pkt.timestamp_ns - counter.last_ns > options_.idle_timeout_ns) {
      completed_.push_back(counter);
      counter = flowrank::flowtable::FlowCounter{};
    }

    counter.key = key;
    ++counter.packets;
    counter.bytes += pkt.size_bytes;
    counter.first_ns = std::min(counter.first_ns, pkt.timestamp_ns);
    counter.last_ns = std::max(counter.last_ns, pkt.timestamp_ns);
    if (pkt.tuple.protocol == flowrank::packet::Protocol::kTcp) {
      counter.min_tcp_seq = std::min(counter.min_tcp_seq, pkt.tcp_seq);
      counter.max_tcp_seq = std::max(counter.max_tcp_seq, pkt.tcp_seq);
      counter.has_tcp_seq = true;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  void clear() {
    table_.clear();
    completed_.clear();
  }

 private:
  flowrank::flowtable::FlowTable::Options options_;
  std::unordered_map<flowrank::packet::FlowKey, flowrank::flowtable::FlowCounter,
                     flowrank::packet::FlowKeyHash>
      table_;
  std::vector<flowrank::flowtable::FlowCounter> completed_;
};

/// The seed implementation of the exact two-flow misranking probability
/// (Eq. 1): one independently evaluated binomial pmf and one
/// incomplete-beta cdf per term of the sum. The library version now runs
/// on memoized recurrence sweeps; this copy is the "hours" baseline of
/// the paper's hours-vs-seconds ablation.
inline double legacy_misranking_exact(std::int64_t s1, std::int64_t s2, double p) {
  if (p == 0.0) return 1.0;
  if (s1 == s2) {
    double agree = 0.0;
    for (std::int64_t i = 1; i <= s1; ++i) {
      const double b = flowrank::numeric::binomial_pmf(i, s1, p);
      agree += b * b;
      if (b < 1e-18 && i > static_cast<std::int64_t>(p * s1) + 1) break;
    }
    return 1.0 - agree;
  }
  const std::int64_t small = std::min(s1, s2);
  const std::int64_t big = std::max(s1, s2);
  double acc = 0.0;
  for (std::int64_t i = 0; i <= small; ++i) {
    const double b = flowrank::numeric::binomial_pmf(i, small, p);
    if (b == 0.0) continue;
    acc += b * flowrank::numeric::binomial_cdf(i, big, p);
  }
  return std::min(acc, 1.0);
}

class LegacyBernoulli {
 public:
  LegacyBernoulli(double p, std::uint64_t seed)
      : p_(p), engine_(flowrank::util::make_engine(seed, 0xBE44u)) {}

  [[nodiscard]] bool offer(const flowrank::packet::PacketRecord&) {
    std::bernoulli_distribution coin(p_);
    return coin(engine_);
  }

 private:
  double p_;
  flowrank::util::Engine engine_;
};

/// The PR 2 count-path sweep, frozen verbatim: sequential walk of the
/// rates x bins x runs grid, a fresh std::binomial_distribution per flow
/// per run for the thinning, and one full compute_rank_metrics call per
/// run (re-sorting the run-invariant true ranking every time). This is
/// the single-threaded baseline the SweepEngine + RankMetricsContext +
/// util::binomial_sample path in sim::run_binned_simulation is measured
/// against (BM_BinnedSimSweep vs BM_BinnedSimSweepSeedPath).
inline flowrank::sim::SimResult legacy_run_binned_simulation(
    const flowrank::trace::FlowTrace& trace,
    const flowrank::sim::SimConfig& config) {
  namespace sim = flowrank::sim;
  const flowrank::trace::BinnedCounts counts = flowrank::trace::bin_flow_counts(
      trace, config.bin_seconds, config.definition, /*placement_seed=*/config.seed);

  sim::SimResult result;
  result.config = config;
  result.series.resize(config.sampling_rates.size());

  std::vector<std::uint64_t> true_sizes;
  std::vector<std::uint64_t> sampled_sizes;

  for (std::size_t rate_idx = 0; rate_idx < config.sampling_rates.size(); ++rate_idx) {
    const double p = config.sampling_rates[rate_idx];
    sim::RateSeries& series = result.series[rate_idx];
    series.sampling_rate = p;
    series.bins.resize(counts.bins.size());

    for (std::size_t b = 0; b < counts.bins.size(); ++b) {
      const auto& bin = counts.bins[b];
      series.bins[b].flows_in_bin = bin.size();
      if (bin.size() < config.top_t) continue;  // not enough flows to rank

      true_sizes.resize(bin.size());
      sampled_sizes.resize(bin.size());
      for (std::size_t i = 0; i < bin.size(); ++i) true_sizes[i] = bin[i].packets;

      for (int run = 0; run < config.runs; ++run) {
        auto engine = flowrank::util::make_engine(
            config.seed,
            flowrank::util::mix_streams(rate_idx, static_cast<std::uint64_t>(run), b));
        for (std::size_t i = 0; i < bin.size(); ++i) {
          if (true_sizes[i] == 0 || p == 0.0) {
            sampled_sizes[i] = 0;
          } else if (p == 1.0) {
            sampled_sizes[i] = true_sizes[i];
          } else {
            std::binomial_distribution<std::uint64_t> thin(true_sizes[i], p);
            sampled_sizes[i] = thin(engine);
          }
        }
        const auto m = flowrank::metrics::compute_rank_metrics(
            true_sizes, sampled_sizes, config.top_t, config.tie_policy);
        series.bins[b].ranking.add(m.ranking_swapped);
        series.bins[b].detection.add(m.detection_swapped);
        series.bins[b].recall.add(m.top_set_recall);
      }
    }
  }
  return result;
}

}  // namespace bench
