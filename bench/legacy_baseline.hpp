// Frozen copies of the pre-batching ingest path, kept verbatim so the
// seed-path-vs-batch benchmark pair in micro_throughput.cpp keeps
// measuring against the same baseline as the library evolves:
//
//  * LegacyFlowTable   — std::unordered_map-backed classifier (one node
//                        allocation + pointer chase per new flow, hash
//                        probe per packet);
//  * LegacyBernoulli   — per-packet coin flip, constructing a fresh
//                        std::bernoulli_distribution on every offer().
//
// Bench-only: nothing in the library links this header.
#pragma once

#include <algorithm>
#include <random>
#include <unordered_map>

#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/numeric/binomial.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/packet/records.hpp"
#include "flowrank/util/rng.hpp"

namespace bench {

class LegacyFlowTable {
 public:
  explicit LegacyFlowTable(flowrank::flowtable::FlowTable::Options options)
      : options_(options) {}

  void add(const flowrank::packet::PacketRecord& pkt) {
    const auto key = flowrank::packet::make_flow_key(pkt.tuple, options_.definition);
    auto [it, inserted] = table_.try_emplace(key);
    flowrank::flowtable::FlowCounter& counter = it->second;

    if (!inserted && options_.idle_timeout_ns > 0 &&
        pkt.timestamp_ns - counter.last_ns > options_.idle_timeout_ns) {
      completed_.push_back(counter);
      counter = flowrank::flowtable::FlowCounter{};
    }

    counter.key = key;
    ++counter.packets;
    counter.bytes += pkt.size_bytes;
    counter.first_ns = std::min(counter.first_ns, pkt.timestamp_ns);
    counter.last_ns = std::max(counter.last_ns, pkt.timestamp_ns);
    if (pkt.tuple.protocol == flowrank::packet::Protocol::kTcp) {
      counter.min_tcp_seq = std::min(counter.min_tcp_seq, pkt.tcp_seq);
      counter.max_tcp_seq = std::max(counter.max_tcp_seq, pkt.tcp_seq);
      counter.has_tcp_seq = true;
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  void clear() {
    table_.clear();
    completed_.clear();
  }

 private:
  flowrank::flowtable::FlowTable::Options options_;
  std::unordered_map<flowrank::packet::FlowKey, flowrank::flowtable::FlowCounter,
                     flowrank::packet::FlowKeyHash>
      table_;
  std::vector<flowrank::flowtable::FlowCounter> completed_;
};

/// The seed implementation of the exact two-flow misranking probability
/// (Eq. 1): one independently evaluated binomial pmf and one
/// incomplete-beta cdf per term of the sum. The library version now runs
/// on memoized recurrence sweeps; this copy is the "hours" baseline of
/// the paper's hours-vs-seconds ablation.
inline double legacy_misranking_exact(std::int64_t s1, std::int64_t s2, double p) {
  if (p == 0.0) return 1.0;
  if (s1 == s2) {
    double agree = 0.0;
    for (std::int64_t i = 1; i <= s1; ++i) {
      const double b = flowrank::numeric::binomial_pmf(i, s1, p);
      agree += b * b;
      if (b < 1e-18 && i > static_cast<std::int64_t>(p * s1) + 1) break;
    }
    return 1.0 - agree;
  }
  const std::int64_t small = std::min(s1, s2);
  const std::int64_t big = std::max(s1, s2);
  double acc = 0.0;
  for (std::int64_t i = 0; i <= small; ++i) {
    const double b = flowrank::numeric::binomial_pmf(i, small, p);
    if (b == 0.0) continue;
    acc += b * flowrank::numeric::binomial_cdf(i, big, p);
  }
  return std::min(acc, 1.0);
}

class LegacyBernoulli {
 public:
  LegacyBernoulli(double p, std::uint64_t seed)
      : p_(p), engine_(flowrank::util::make_engine(seed, 0xBE44u)) {}

  [[nodiscard]] bool offer(const flowrank::packet::PacketRecord&) {
    std::bernoulli_distribution coin(p_);
    return coin(engine_);
  }

 private:
  double p_;
  flowrank::util::Engine engine_;
};

}  // namespace bench
