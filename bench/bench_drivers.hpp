// Reusable sweep drivers shared by figure pairs (5-tuple vs /24 variants).
#pragma once

#include "bench_common.hpp"

namespace bench {

/// Figs. 4/5: ranking metric vs sampling rate for t in {1,2,5,10,25}.
inline int run_ranking_vs_t(const flowrank::util::Cli& cli, const std::string& figure,
                            std::int64_t default_n, double mean_packets,
                            const std::string& definition) {
  const auto n = cli.get_int("n", default_n);
  const double beta = cli.get_double("beta", 1.5);
  const auto rates = paper_rate_grid(static_cast<int>(cli.get_int("points", 10)));
  const std::vector<std::int64_t> ts{1, 2, 5, 10, 25};

  print_header(figure, "avg swapped flow pairs vs sampling rate, " + definition +
                           ", N = " + std::to_string(n) +
                           ", beta = " + flowrank::util::format_double(beta));

  flowrank::util::Table table(
      {"rate_pct", "t=1", "t=2", "t=5", "t=10", "t=25", "t10_corrected"});
  std::vector<std::vector<double>> metric_by_t(ts.size());
  for (double p : rates) {
    table.begin_row();
    table.add_cell(p * 100.0);
    double t10_corrected = 0.0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      auto cfg = sprint_config(n, ts[i], beta, mean_packets);
      cfg.p = p;
      const double metric = flowrank::core::evaluate_ranking_model(cfg).metric;
      metric_by_t[i].push_back(metric);
      table.add_cell(metric);
      if (ts[i] == 10) {
        // Library extension: hybrid pairwise + unordered pair counting.
        cfg.pairwise = flowrank::core::PairwiseModel::kHybrid;
        cfg.counting = flowrank::core::PairCounting::kUnordered;
        t10_corrected = flowrank::core::evaluate_ranking_model(cfg).metric;
      }
    }
    table.add_cell(t10_corrected);
  }
  table.print(std::cout);
  std::cout << "\n";

  std::cout << "rate needed for metric < 1:";
  bool monotone_in_t = true;
  double prev_cross = 0.0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const double cross = crossing_rate(rates, metric_by_t[i]);
    std::cout << "  t=" << ts[i] << ": "
              << (std::isnan(cross) ? std::string(">50%")
                                    : flowrank::util::format_double(cross * 100) + "%");
    if (!std::isnan(cross)) {
      if (cross < prev_cross) monotone_in_t = false;
      prev_cross = cross;
    } else {
      prev_cross = 1.0;
    }
  }
  std::cout << "\n";

  const double cross_t5 = crossing_rate(rates, metric_by_t[2]);
  print_verdict(
      "larger t is harder; ~1% ranks only the top few flows; 0.1% never works",
      monotone_in_t && metric_by_t[0].front() > 1.0 && !std::isnan(cross_t5) &&
          cross_t5 > 0.001,
      "crossing rates grow with t (row above); metric at 0.1% for t=1 is " +
          flowrank::util::format_double(metric_by_t[0].front()));
  return 0;
}

/// Figs. 6/7: ranking metric vs sampling rate for beta sweep at t=10.
inline int run_ranking_vs_beta(const flowrank::util::Cli& cli,
                               const std::string& figure, std::int64_t default_n,
                               double mean_packets, const std::string& definition) {
  const auto n = cli.get_int("n", default_n);
  const auto t = cli.get_int("t", 10);
  const auto rates = paper_rate_grid(static_cast<int>(cli.get_int("points", 10)));
  const std::vector<double> betas{3.0, 2.5, 2.0, 1.5, 1.2};

  print_header(figure, "avg swapped flow pairs vs sampling rate varying beta, " +
                           definition + ", N = " + std::to_string(n) +
                           ", t = " + std::to_string(t));

  flowrank::util::Table table(
      {"rate_pct", "beta=3", "beta=2.5", "beta=2", "beta=1.5", "beta=1.2"});
  std::vector<std::vector<double>> metric_by_beta(betas.size());
  for (double p : rates) {
    table.begin_row();
    table.add_cell(p * 100.0);
    for (std::size_t i = 0; i < betas.size(); ++i) {
      auto cfg = sprint_config(n, t, betas[i], mean_packets);
      cfg.p = p;
      const double metric = flowrank::core::evaluate_ranking_model(cfg).metric;
      metric_by_beta[i].push_back(metric);
      table.add_cell(metric);
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  bool heavier_is_better = true;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    for (std::size_t i = 1; i < betas.size(); ++i) {
      if (metric_by_beta[i][r] > metric_by_beta[i - 1][r] * 1.05) {
        heavier_is_better = false;
      }
    }
  }
  print_verdict(
      "heavier tail (smaller beta) ranks better; light tails need near-100% "
      "sampling",
      heavier_is_better && std::isnan(crossing_rate(rates, metric_by_beta[0])),
      "metric decreases with beta at every rate; beta=3 never crosses 1 below 50%");
  return 0;
}

/// Figs. 8/9: ranking metric vs sampling rate varying total flows N.
inline int run_ranking_vs_n(const flowrank::util::Cli& cli, const std::string& figure,
                            std::int64_t base_n, double mean_packets,
                            const std::string& definition) {
  const auto t = cli.get_int("t", 10);
  const double beta = cli.get_double("beta", 1.5);
  const auto rates = paper_rate_grid(static_cast<int>(cli.get_int("points", 10)));
  const std::vector<double> factors{0.2, 0.5, 1.0, 2.5, 4.0, 5.0};

  print_header(figure, "avg swapped flow pairs vs sampling rate varying N, " +
                           definition + ", t = " + std::to_string(t) +
                           ", beta = " + flowrank::util::format_double(beta));

  std::vector<std::string> headers{"rate_pct"};
  for (double f : factors) {
    headers.push_back("N=" + std::to_string(static_cast<long long>(
                                 f * static_cast<double>(base_n))));
  }
  flowrank::util::Table table(headers);
  std::vector<std::vector<double>> metric_by_n(factors.size());
  for (double p : rates) {
    table.begin_row();
    table.add_cell(p * 100.0);
    for (std::size_t i = 0; i < factors.size(); ++i) {
      const auto n = static_cast<std::int64_t>(factors[i] * static_cast<double>(base_n));
      auto cfg = sprint_config(n, t, beta, mean_packets);
      cfg.p = p;
      const double metric = flowrank::core::evaluate_ranking_model(cfg).metric;
      metric_by_n[i].push_back(metric);
      table.add_cell(metric);
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  bool more_flows_better = true;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    for (std::size_t i = 1; i < factors.size(); ++i) {
      if (metric_by_n[i][r] > metric_by_n[i - 1][r] * 1.05) more_flows_better = false;
    }
  }
  const double cross_small = crossing_rate(rates, metric_by_n.front());
  const double cross_large = crossing_rate(rates, metric_by_n.back());
  print_verdict(
      "accuracy improves with N; smallest N needs ~50%+ while largest N crosses "
      "metric=1 at a much lower rate",
      more_flows_better &&
          (std::isnan(cross_small) || cross_large < cross_small),
      "crossing at N_min: " +
          (std::isnan(cross_small) ? std::string(">50%")
                                   : flowrank::util::format_double(cross_small * 100) +
                                         "%") +
          ", at N_max: " +
          (std::isnan(cross_large) ? std::string(">50%")
                                   : flowrank::util::format_double(cross_large * 100) +
                                         "%"));
  return 0;
}

/// Figs. 10/11: detection metric vs sampling rate for t sweep.
inline int run_detection_vs_t(const flowrank::util::Cli& cli, const std::string& figure,
                              std::int64_t default_n, double mean_packets,
                              const std::string& definition) {
  const auto n = cli.get_int("n", default_n);
  const double beta = cli.get_double("beta", 1.5);
  const auto rates = paper_rate_grid(static_cast<int>(cli.get_int("points", 10)));
  const std::vector<std::int64_t> ts{1, 2, 5, 10, 25};

  print_header(figure, "detection: avg swapped in/out pairs vs sampling rate, " +
                           definition + ", N = " + std::to_string(n) +
                           ", beta = " + flowrank::util::format_double(beta));

  flowrank::util::Table table({"rate_pct", "t=1", "t=2", "t=5", "t=10", "t=25"});
  std::vector<std::vector<double>> det_by_t(ts.size());
  std::vector<double> rank_t10;
  for (double p : rates) {
    table.begin_row();
    table.add_cell(p * 100.0);
    for (std::size_t i = 0; i < ts.size(); ++i) {
      auto cfg = sprint_config(n, ts[i], beta, mean_packets);
      cfg.p = p;
      const double metric = flowrank::core::evaluate_detection_model(cfg).metric;
      det_by_t[i].push_back(metric);
      table.add_cell(metric);
      if (ts[i] == 10) {
        rank_t10.push_back(flowrank::core::evaluate_ranking_model(cfg).metric);
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  const double det_cross = crossing_rate(rates, det_by_t[3]);   // t=10
  const double rank_cross = crossing_rate(rates, rank_t10);
  bool detection_easier = true;
  for (std::size_t r = 0; r < rates.size(); ++r) {
    if (det_by_t[3][r] > rank_t10[r] * 1.05) detection_easier = false;
  }
  print_verdict(
      "detection is roughly an order of magnitude easier than ranking (curves "
      "shift down; top-10 detectable at ~10% where ranking needed ~50%)",
      detection_easier && !std::isnan(det_cross) &&
          (std::isnan(rank_cross) || det_cross <= rank_cross),
      "t=10 crossing: detection " +
          (std::isnan(det_cross) ? std::string(">50%")
                                 : flowrank::util::format_double(det_cross * 100) +
                                       "%") +
          " vs ranking " +
          (std::isnan(rank_cross) ? std::string(">50%")
                                  : flowrank::util::format_double(rank_cross * 100) +
                                        "%"));
  return 0;
}

}  // namespace bench
