// The one experiment driver: runs any declarative sim::ExperimentSpec —
// paper figures, ablations, estimator-augmented workloads — and streams
// structured rows to a report::ResultSink. No per-experiment C++.
//
// Usage:
//   flowrank_experiments --list [--dir scenarios/figures]
//   flowrank_experiments --spec scenarios/figures/fig04_ranking_vs_t_5tuple.spec
//   flowrank_experiments --spec ... --out results.jsonl        # format by extension
//   flowrank_experiments --spec ... --out out.csv --format csv
//   flowrank_experiments --spec ... --sweep-rate "0.01..0.5 log 4" --threads 0
//
// Every spec key doubles as a `--key value` override and every sweep axis
// as `--sweep-<param>`, so checked-in specs can be rescaled, re-seeded or
// re-gridded from the command line without editing them (exactly like the
// scenario files they extend). See src/flowrank/sim/experiment.hpp for
// the spec grammar and docs/ARCHITECTURE.md for the engine.
#include <algorithm>
#include <exception>
#include <filesystem>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "flowrank/sim/experiment.hpp"
#include "flowrank/util/cli.hpp"

namespace {

int list_specs(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("not a directory: " + dir +
                             " (pass --dir to point at a spec collection)");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".spec") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cout << "no .spec files in " << dir << "\n";
    return 0;
  }
  for (const auto& path : files) {
    try {
      const auto spec = flowrank::sim::parse_experiment_file(path.string());
      std::cout << path.string() << "\n    " << spec.name;
      if (!spec.description.empty()) std::cout << " — " << spec.description;
      std::cout << "\n";
    } catch (const std::exception& e) {
      std::cout << path.string() << "\n    PARSE ERROR: " << e.what() << "\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const flowrank::util::Cli cli(argc, argv);

    // Strict option validation: a typoed key must not silently run a
    // default experiment.
    const auto& scenario = flowrank::sim::scenario_keys();
    const auto& experiment = flowrank::sim::experiment_keys();
    for (const auto& name : cli.option_names()) {
      const bool driver = name == "spec" || name == "out" || name == "format" ||
                          name == "list" || name == "dir";
      const bool sweep = name.rfind("sweep-", 0) == 0 && name.size() > 6;
      if (driver || sweep ||
          std::find(scenario.begin(), scenario.end(), name) != scenario.end() ||
          std::find(experiment.begin(), experiment.end(), name) !=
              experiment.end()) {
        continue;
      }
      throw std::invalid_argument("unknown option --" + name +
                                  " (see src/flowrank/sim/experiment.hpp)");
    }
    // A bare spec path (forgotten --spec) must not silently run the
    // default experiment.
    if (!cli.positional().empty()) {
      throw std::invalid_argument("unexpected argument '" + cli.positional().front() +
                                  "' (did you mean --spec " +
                                  cli.positional().front() + "?)");
    }

    if (cli.get_bool("list", false)) {
      return list_specs(cli.get_string("dir", "scenarios/figures"));
    }

    const auto spec = flowrank::sim::experiment_from_cli(cli);
    auto sink = flowrank::report::make_sink(cli.get_string("out", "-"),
                                            cli.get_string("format", ""));
    const std::size_t rows = flowrank::sim::run_experiment(spec, *sink.sink);
    if (cli.get_string("out", "-") != "-") {
      std::cerr << spec.name << ": wrote " << rows << " rows to "
                << cli.get_string("out", "-") << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "flowrank_experiments: " << e.what() << "\n";
    return 1;
  }
}
