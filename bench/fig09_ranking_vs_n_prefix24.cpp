// Figure 9: ranking metric vs sampling rate varying N = 0.1M x {0.2,...,5}
// — /24 prefix flows, t = 10, beta = 1.5 (Sec. 6.3).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_n(cli, "Figure 9", bench::kNPrefix24,
                                 bench::kMeanPrefix24, "/24 prefix flows");
}
