#!/usr/bin/env sh
# Builds Release and regenerates BENCH_micro.json from the micro_throughput
# suite (Google Benchmark JSON format). See docs/PERFORMANCE.md for how to
# read the output.
#
# Usage: bench/run_bench.sh [extra --benchmark_* flags]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" --target micro_throughput

"$build_dir/micro_throughput" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $repo_root/BENCH_micro.json"
