#!/usr/bin/env sh
# Builds Release and regenerates BENCH_micro.json from the micro_throughput
# suite (Google Benchmark JSON format). See docs/PERFORMANCE.md for how to
# read the output.
#
# The JSON in the repo is a perf baseline, so this script refuses to export
# from anything but a Release build: a debug-built BENCH_micro.json (it has
# happened) makes every later comparison read as a phantom speedup.
#
# Usage: bench/run_bench.sh [extra --benchmark_* flags]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir="$repo_root/build"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 2)" --target micro_throughput

# Belt and braces: the cache must say Release (a stale or hand-edited build
# tree could differ from what the configure line above asked for), and the
# benchmark binary itself must not report a debug library build.
cache_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
if [ "$cache_type" != "Release" ]; then
  echo "refusing JSON export: build tree is '$cache_type', not Release" >&2
  exit 1
fi

"$build_dir/micro_throughput" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_micro.json" \
  --benchmark_out_format=json \
  "$@"

# micro_throughput stamps its own compile-time build type into the JSON
# context (flowrank_build_type). Note this is NOT Google Benchmark's
# library_build_type, which describes the system libbenchmark and can say
# "debug" under a perfectly good Release build of ours.
if ! grep -q '"flowrank_build_type": *"Release"' "$repo_root/BENCH_micro.json"; then
  echo "BENCH_micro.json does not claim flowrank_build_type=Release; rerun after a clean Release build" >&2
  exit 1
fi

echo "wrote $repo_root/BENCH_micro.json"
