// Figure 16: trace-driven ranking on an Abilene-like trace — more flows,
// short-tailed flow sizes; sampling rates {0.1, 1, 10, 80}% (Sec. 8.3).
//
// The paper's observation: the short tail makes ranking HARDER than the
// Sprint trace; >50% sampling needed and the error explodes below 1%.
#include "sim_driver.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  bench::SimFigureSpec spec;
  spec.figure = "Figure 16";
  spec.what =
      "ranking vs time, 5-tuple, top 10 flows (synthetic Abilene-like trace, "
      "short-tailed sizes)";
  spec.preset = "abilene";
  spec.definition = flowrank::packet::FlowDefinition::kFiveTuple;
  spec.rates = {0.001, 0.01, 0.1, 0.8};
  return bench::run_sim_figure(cli, spec);
}
