// Shared driver for the trace-driven simulation figures (Figs. 12-16).
//
// The paper uses 30-minute traces at the Sprint arrival rates. At the
// 5-tuple rate (2360 flows/s) that is ~4.2M flows; to keep every bench
// binary comfortably under a minute by default we scale the flow arrival
// rate down (bin populations shrink proportionally; all qualitative
// behaviour is preserved — the N-dependence itself is Fig. 8/9's subject).
// Pass --full for the paper-scale run.
#pragma once

#include <cmath>
#include <iostream>
#include <string>

#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace bench {

struct SimFigureSpec {
  std::string figure;
  std::string what;
  flowrank::trace::FlowTraceConfig trace_config;
  flowrank::packet::FlowDefinition definition =
      flowrank::packet::FlowDefinition::kFiveTuple;
  std::vector<double> rates{0.001, 0.01, 0.1, 0.5};
  bool expect_detection = false;  ///< print the detection metric instead
};

inline int run_sim_figure(const flowrank::util::Cli& cli, SimFigureSpec spec) {
  const bool full = cli.get_bool("full", false);
  const double scale = full ? 1.0 : cli.get_double("scale", 0.125);
  spec.trace_config.duration_s = cli.get_double("duration", full ? 1800.0 : 900.0);
  spec.trace_config.flow_rate_per_s *= scale;
  const int runs = static_cast<int>(cli.get_int("runs", full ? 30 : 15));
  // --threads N parallelizes the Monte-Carlo grid on sim::SweepEngine
  // (N = 0: all hardware threads). Output is bit-identical at any N.
  const int threads_arg = static_cast<int>(cli.get_int("threads", 1));
  if (threads_arg < 0) {
    std::cerr << "--threads must be >= 0 (0 = all hardware threads)\n";
    return 1;
  }
  const auto num_threads = static_cast<std::size_t>(threads_arg);

  std::cout << "# " << spec.figure << " — " << spec.what << "\n";
  std::cout << "# trace: " << spec.trace_config.duration_s << " s at "
            << spec.trace_config.flow_rate_per_s << " flows/s (scale " << scale
            << " of paper rate; --full for paper scale), " << runs << " runs\n";

  const auto trace = flowrank::trace::generate_flow_trace(spec.trace_config);

  for (const double bin_seconds : {60.0, 300.0}) {
    flowrank::sim::SimConfig sim_cfg;
    sim_cfg.bin_seconds = bin_seconds;
    sim_cfg.top_t = static_cast<std::size_t>(cli.get_int("t", 10));
    sim_cfg.sampling_rates = spec.rates;
    sim_cfg.runs = runs;
    sim_cfg.definition = spec.definition;
    sim_cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
    sim_cfg.num_threads = num_threads;
    const auto result = flowrank::sim::run_binned_simulation(trace, sim_cfg);

    std::cout << "\n## bin = " << bin_seconds << " s ("
              << (spec.expect_detection ? "detection" : "ranking")
              << " metric: mean/std of swapped pairs per bin over runs)\n";
    std::vector<std::string> headers{"time_s", "flows"};
    for (double r : spec.rates) {
      headers.push_back("p=" + flowrank::util::format_double(r * 100) + "%");
      headers.push_back("std");
    }
    flowrank::util::Table table(headers);
    for (std::size_t b = 0; b < result.series.front().bins.size(); ++b) {
      table.begin_row();
      table.add_cell((static_cast<double>(b) + 1.0) * bin_seconds);
      table.add_cell(result.series.front().bins[b].flows_in_bin);
      for (const auto& series : result.series) {
        const auto& stats = spec.expect_detection ? series.bins[b].detection
                                                  : series.bins[b].ranking;
        table.add_cell(stats.count() > 0 ? stats.mean() : std::nan(""));
        table.add_cell(stats.count() > 0 ? stats.stddev() : std::nan(""));
      }
    }
    table.print(std::cout);
  }

  // Optional cross-validation of the count path against one pass of the
  // production pipeline (batched packet stream -> skip-based Bernoulli
  // sampler -> flat flow table); see docs/PERFORMANCE.md.
  if (cli.get_bool("validate", false)) {
    flowrank::sim::SimConfig v_cfg;
    v_cfg.bin_seconds = 300.0;
    v_cfg.top_t = static_cast<std::size_t>(cli.get_int("t", 10));
    v_cfg.sampling_rates = spec.rates;
    v_cfg.definition = spec.definition;
    const double v_rate = spec.rates.back();
    const auto packet_metrics = flowrank::sim::run_packet_level_once(
        trace, v_rate, v_cfg, /*run_seed=*/static_cast<std::uint64_t>(
            cli.get_int("seed", 7)));
    std::cout << "\n## packet-path validation (batched pipeline, p = "
              << v_rate * 100 << "%)\n";
    flowrank::util::Table v_table({"bin", "ranking_swapped", "detection_swapped"});
    for (std::size_t b = 0; b < packet_metrics.size(); ++b) {
      v_table.add_row(b, packet_metrics[b].ranking_swapped,
                      packet_metrics[b].detection_swapped);
    }
    v_table.print(std::cout);
  }

  // Verdict: metric decreases with rate; the highest rate is accurate.
  flowrank::sim::SimConfig verdict_cfg;
  verdict_cfg.bin_seconds = 300.0;
  verdict_cfg.top_t = static_cast<std::size_t>(cli.get_int("t", 10));
  verdict_cfg.sampling_rates = spec.rates;
  verdict_cfg.runs = runs;
  verdict_cfg.definition = spec.definition;
  verdict_cfg.num_threads = num_threads;
  const auto result = flowrank::sim::run_binned_simulation(trace, verdict_cfg);
  std::vector<double> avg(spec.rates.size(), 0.0);
  int bins_counted = 0;
  for (std::size_t r = 0; r < result.series.size(); ++r) {
    bins_counted = 0;
    for (const auto& bin : result.series[r].bins) {
      if (bin.ranking.count() == 0) continue;
      avg[r] += spec.expect_detection ? bin.detection.mean() : bin.ranking.mean();
      ++bins_counted;
    }
    if (bins_counted > 0) avg[r] /= bins_counted;
  }
  bool monotone = true;
  for (std::size_t r = 1; r < avg.size(); ++r) {
    if (avg[r] > avg[r - 1] * 1.1 + 0.2) monotone = false;
  }
  std::cout << "\nmean metric by rate:";
  for (std::size_t r = 0; r < avg.size(); ++r) {
    std::cout << "  p=" << spec.rates[r] * 100 << "%: "
              << flowrank::util::format_double(avg[r]);
  }
  std::cout << "\npaper claim : accuracy improves with rate; 0.1% never works; "
               "highest rate works\n";
  std::cout << "verdict     : "
            << (monotone && avg.front() > 1.0 ? "SHAPE REPRODUCED"
                                              : "DEVIATION (see EXPERIMENTS.md)")
            << "\n";
  return 0;
}

}  // namespace bench
