// Shared driver for the trace-driven simulation figures (Figs. 12-16),
// built on the declarative scenario layer: each figure is a
// sim::ScenarioSpec (preset + overrides) run at two bin lengths, plus the
// figure-specific monotonicity verdict. All workload knobs — scale,
// duration, runs, threads, seed, beta — are spec keys, so the fig
// binaries contain no pipeline code of their own.
//
// The paper uses 30-minute traces at the Sprint arrival rates. At the
// 5-tuple rate (2360 flows/s) that is ~4.2M flows; to keep every bench
// binary comfortably under a minute by default we scale the flow arrival
// rate down (bin populations shrink proportionally; all qualitative
// behaviour is preserved — the N-dependence itself is Fig. 8/9's subject).
// Pass --full for the paper-scale run.
#pragma once

#include <cmath>
#include <exception>
#include <iostream>
#include <string>

#include "flowrank/sim/scenario.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace bench {

struct SimFigureSpec {
  std::string figure;
  std::string what;
  /// Scenario preset: sprint_5tuple | sprint_prefix24 | abilene.
  std::string preset;
  flowrank::packet::FlowDefinition definition =
      flowrank::packet::FlowDefinition::kFiveTuple;
  std::vector<double> rates{0.001, 0.01, 0.1, 0.5};
  bool expect_detection = false;  ///< print the detection metric instead
};

inline int run_sim_figure_or_throw(const flowrank::util::Cli& cli,
                                   const SimFigureSpec& spec);

inline int run_sim_figure(const flowrank::util::Cli& cli, const SimFigureSpec& spec) {
  try {
    return run_sim_figure_or_throw(cli, spec);
  } catch (const std::exception& e) {
    // Bad option values (e.g. --threads -1, --rates abc) get a clean
    // message and exit code, not std::terminate.
    std::cerr << spec.figure << ": " << e.what() << "\n";
    return 1;
  }
}

inline int run_sim_figure_or_throw(const flowrank::util::Cli& cli,
                                   const SimFigureSpec& spec) {
  namespace fsim = flowrank::sim;

  const bool full = cli.get_bool("full", false);
  const double scale = full ? 1.0 : cli.get_double("scale", 0.125);

  // The figure's workload as a declarative scenario; every CLI option is
  // a spec override on top of these figure defaults.
  fsim::ScenarioSpec scenario;
  scenario.name = spec.figure;
  scenario.preset = spec.preset;
  scenario.definition = spec.definition;
  scenario.sampling_rates = spec.rates;
  scenario.duration_s = full ? 1800.0 : 900.0;
  scenario.flow_rate_scale = scale;
  scenario.runs = full ? 30 : 15;
  scenario.trace_seed = 7;
  scenario.seed = 7;
  // --threads N parallelizes the Monte-Carlo grid on the shared task pool
  // (N = 0: all hardware threads). Output is bit-identical at any N.
  scenario.num_threads = 1;
  flowrank::sim::apply_scenario_overrides(scenario, cli);
  // Historical figure behaviour: one --seed re-seeds trace and sampling
  // together unless --trace-seed separates them.
  if (cli.has("seed") && !cli.has("trace-seed")) scenario.trace_seed = scenario.seed;

  std::cout << "# " << spec.figure << " — " << spec.what << "\n";

  // Materialize the trace once; both bin lengths, the validation pass and
  // the verdict all run over the same flows.
  const auto source = fsim::make_trace_source(scenario);
  const auto trace = source->flows();
  std::cout << "# trace: " << source->name() << ", " << trace.config.duration_s
            << " s at " << trace.config.flow_rate_per_s << " flows/s (scale "
            << scale << " of paper rate; --full for paper scale), "
            << scenario.runs << " runs\n";

  for (const double bin_seconds : {60.0, 300.0}) {
    scenario.bin_seconds = bin_seconds;
    const auto sim_cfg = fsim::make_sim_config(scenario);
    const auto result = fsim::run_binned_simulation(trace, sim_cfg);

    std::cout << "\n## bin = " << bin_seconds << " s ("
              << (spec.expect_detection ? "detection" : "ranking")
              << " metric: mean/std of swapped pairs per bin over runs)\n";
    std::vector<std::string> headers{"time_s", "flows"};
    for (double r : scenario.sampling_rates) {
      headers.push_back("p=" + flowrank::util::format_double(r * 100) + "%");
      headers.push_back("std");
    }
    flowrank::util::Table table(headers);
    for (std::size_t b = 0; b < result.series.front().bins.size(); ++b) {
      table.begin_row();
      table.add_cell((static_cast<double>(b) + 1.0) * bin_seconds);
      table.add_cell(result.series.front().bins[b].flows_in_bin);
      for (const auto& series : result.series) {
        const auto& stats = spec.expect_detection ? series.bins[b].detection
                                                  : series.bins[b].ranking;
        table.add_cell(stats.count() > 0 ? stats.mean() : std::nan(""));
        table.add_cell(stats.count() > 0 ? stats.stddev() : std::nan(""));
      }
    }
    table.print(std::cout);
  }

  // Optional cross-validation of the count path against one pass of the
  // production pipeline (batched packet stream -> skip-based Bernoulli
  // sampler -> flat flow table); see docs/PERFORMANCE.md. --shards N runs
  // the validation pass on the sharded ingest pipeline (0 = all hw).
  if (cli.get_bool("validate", false)) {
    scenario.bin_seconds = 300.0;
    const auto v_cfg = fsim::make_sim_config(scenario);
    const double v_rate = scenario.sampling_rates.back();
    const auto packet_metrics = flowrank::sim::run_packet_level_once(
        trace, v_rate, v_cfg, /*run_seed=*/scenario.seed, scenario.num_shards);
    std::cout << "\n## packet-path validation (batched pipeline, p = "
              << v_rate * 100 << "%)\n";
    flowrank::util::Table v_table({"bin", "ranking_swapped", "detection_swapped"});
    for (std::size_t b = 0; b < packet_metrics.size(); ++b) {
      v_table.add_row(b, packet_metrics[b].ranking_swapped,
                      packet_metrics[b].detection_swapped);
    }
    v_table.print(std::cout);
  }

  // Verdict: metric decreases with rate; the highest rate is accurate.
  scenario.bin_seconds = 300.0;
  const auto verdict_cfg = fsim::make_sim_config(scenario);
  const auto result = flowrank::sim::run_binned_simulation(trace, verdict_cfg);
  std::vector<double> avg(scenario.sampling_rates.size(), 0.0);
  int bins_counted = 0;
  for (std::size_t r = 0; r < result.series.size(); ++r) {
    bins_counted = 0;
    for (const auto& bin : result.series[r].bins) {
      if (bin.ranking.count() == 0) continue;
      avg[r] += spec.expect_detection ? bin.detection.mean() : bin.ranking.mean();
      ++bins_counted;
    }
    if (bins_counted > 0) avg[r] /= bins_counted;
  }
  bool monotone = true;
  for (std::size_t r = 1; r < avg.size(); ++r) {
    if (avg[r] > avg[r - 1] * 1.1 + 0.2) monotone = false;
  }
  std::cout << "\nmean metric by rate:";
  for (std::size_t r = 0; r < avg.size(); ++r) {
    std::cout << "  p=" << scenario.sampling_rates[r] * 100 << "%: "
              << flowrank::util::format_double(avg[r]);
  }
  std::cout << "\npaper claim : accuracy improves with rate; 0.1% never works; "
               "highest rate works\n";
  std::cout << "verdict     : "
            << (monotone && avg.front() > 1.0 ? "SHAPE REPRODUCED"
                                              : "DEVIATION (see EXPERIMENTS.md)")
            << "\n";
  return 0;
}

}  // namespace bench
