// Figure 3: absolute error of the Gaussian approximation vs the exact
// binomial model at p = 1% over flow sizes 1..1000 (Sec. 4).
#include "bench_common.hpp"

#include "flowrank/core/misranking.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  const double p = cli.get_double("p", 0.01);
  const int grid = static_cast<int>(cli.get_int("grid", 12));

  bench::print_header("Figure 3", "Gaussian approximation absolute error, p = " +
                                      flowrank::util::format_double(p * 100) + "%");

  const auto sizes = bench::log_spaced(1.0, 1000.0, grid);
  flowrank::util::Table table({"s1_pkts", "s2_pkts", "abs_error"});
  double max_error_small = 0.0;   // both flows with pS < 1
  double max_error_large = 0.0;   // at least one flow with pS > 3
  for (double s1d : sizes) {
    for (double s2d : sizes) {
      const auto s1 = static_cast<std::int64_t>(std::llround(s1d));
      const auto s2 = static_cast<std::int64_t>(std::llround(s2d));
      const double err = flowrank::core::misranking_abs_error(s1, s2, p);
      table.add_row(static_cast<long long>(s1), static_cast<long long>(s2), err);
      // The equal-size diagonal keeps an irreducible error by construction:
      // the paper's equal-size convention (1 - sum b^2, near 1) cannot be
      // expressed by the Gaussian difference (0.5). The figure's claim is
      // about distinct sizes.
      if (s1 == s2) continue;
      const double ps_max = p * static_cast<double>(std::max(s1, s2));
      if (ps_max < 1.0) max_error_small = std::max(max_error_small, err);
      if (ps_max > 3.0) max_error_large = std::max(max_error_large, err);
    }
  }
  table.print(std::cout);
  std::cout << "\n";

  bench::print_verdict(
      "error is large when pS is order 1 or less for both flows, negligible once "
      "one flow has pS > 3 (size > 300 at 1%)",
      max_error_large < 0.15 && max_error_small > max_error_large,
      "max abs error with pS<1: " + flowrank::util::format_double(max_error_small) +
          "; with pS>3: " + flowrank::util::format_double(max_error_large));
  return 0;
}
