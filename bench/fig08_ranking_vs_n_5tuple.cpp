// Figure 8: ranking metric vs sampling rate varying the total number of
// flows N = 0.7M x {0.2,...,5} — 5-tuple flows, t = 10, beta = 1.5
// (Sec. 6.3).
#include "bench_drivers.hpp"

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  return bench::run_ranking_vs_n(cli, "Figure 8", bench::kN5Tuple, bench::kMean5Tuple,
                                 "5-tuple flows");
}
