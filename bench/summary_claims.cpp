// Sec. 6.4 / Sec. 9 summary claims, checked against the analytic models
// in one place, plus the reproduction's own findings (Gaussian tail bias,
// top-top double counting) quantified as an ablation.
#include "bench_common.hpp"

#include "flowrank/core/mc_model.hpp"
#include "flowrank/core/sampling_planner.hpp"
#include "flowrank/dist/discretized.hpp"

using flowrank::core::PairCounting;
using flowrank::core::PairwiseModel;

int main(int argc, char** argv) {
  const flowrank::util::Cli cli(argc, argv);
  (void)cli;
  bench::print_header("Summary", "Sec. 6.4 claims + reproduction ablations");

  // Claim 1: ranking the top 10 needs > 10% sampling (5-tuple, beta 1.5).
  {
    auto cfg = bench::sprint_config(bench::kN5Tuple, 10, 1.5, bench::kMean5Tuple);
    const auto plan = flowrank::core::plan_sampling_rate(
        cfg, flowrank::core::PlannerGoal::kRankTopT, 1.0, 1e-4, 1.0);
    bench::print_verdict("(1) ranking top-10 at N=0.7M needs a rate above 10%",
                         plan.feasible && plan.sampling_rate > 0.10,
                         "planner: minimum rate = " +
                             flowrank::util::format_double(plan.sampling_rate * 100) +
                             "%");
  }

  // Claim 2: heavier tail ranks better.
  {
    auto heavy = bench::sprint_config(bench::kN5Tuple, 10, 1.2, bench::kMean5Tuple);
    auto light = bench::sprint_config(bench::kN5Tuple, 10, 2.5, bench::kMean5Tuple);
    heavy.p = light.p = 0.1;
    const double mh = flowrank::core::evaluate_ranking_model(heavy).metric;
    const double ml = flowrank::core::evaluate_ranking_model(light).metric;
    bench::print_verdict("(2) the heavier the tail, the better the ranking", mh < ml,
                         "metric at 10%: beta=1.2 -> " +
                             flowrank::util::format_double(mh) + ", beta=2.5 -> " +
                             flowrank::util::format_double(ml));
  }

  // Claim 3: more flows rank better; millions of flows work at ~1%.
  {
    auto small = bench::sprint_config(140000, 10, 1.5, bench::kMean5Tuple);
    auto large = bench::sprint_config(3500000, 10, 1.5, bench::kMean5Tuple);
    small.p = large.p = 0.01;
    const double ms = flowrank::core::evaluate_ranking_model(small).metric;
    const double ml = flowrank::core::evaluate_ranking_model(large).metric;
    // With the corrected model the 3.5M case sits near the acceptability line.
    large.pairwise = PairwiseModel::kHybrid;
    large.counting = PairCounting::kUnordered;
    const double ml_corrected = flowrank::core::evaluate_ranking_model(large).metric;
    bench::print_verdict(
        "(3) ranking improves with N; millions of flows make ~1% usable",
        ml < ms && ml_corrected < ms,
        "metric at 1%: N=140K -> " + flowrank::util::format_double(ms) +
            ", N=3.5M -> " + flowrank::util::format_double(ml) + " (corrected " +
            flowrank::util::format_double(ml_corrected) + ")");
  }

  // Claim 4: /24 aggregation does not significantly help.
  {
    auto tuple5 = bench::sprint_config(bench::kN5Tuple, 10, 1.5, bench::kMean5Tuple);
    auto prefix = bench::sprint_config(bench::kNPrefix24, 10, 1.5, bench::kMeanPrefix24);
    tuple5.p = prefix.p = 0.01;
    const double m5 = flowrank::core::evaluate_ranking_model(tuple5).metric;
    const double m24 = flowrank::core::evaluate_ranking_model(prefix).metric;
    const bool same_ballpark = m24 < m5 * 30 && m5 < m24 * 30;
    bench::print_verdict(
        "(4) no significant difference between 5-tuple and /24 definitions",
        same_ballpark,
        "metric at 1%, t=10: 5-tuple -> " + flowrank::util::format_double(m5) +
            ", /24 -> " + flowrank::util::format_double(m24));
  }

  // Claim 5 (Sec. 7): detection needs an order of magnitude less sampling.
  {
    auto cfg = bench::sprint_config(bench::kN5Tuple, 10, 1.5, bench::kMean5Tuple);
    const auto rank_plan = flowrank::core::plan_sampling_rate(
        cfg, flowrank::core::PlannerGoal::kRankTopT, 1.0, 1e-4, 1.0);
    const auto det_plan = flowrank::core::plan_sampling_rate(
        cfg, flowrank::core::PlannerGoal::kDetectTopT, 1.0, 1e-4, 1.0);
    bench::print_verdict(
        "(5) detection-only reduces the required rate by ~an order of magnitude",
        rank_plan.feasible && det_plan.feasible &&
            det_plan.sampling_rate * 3.0 < rank_plan.sampling_rate,
        "minimum rate: ranking " +
            flowrank::util::format_double(rank_plan.sampling_rate * 100) +
            "% vs detection " +
            flowrank::util::format_double(det_plan.sampling_rate * 100) + "%");
  }

  // Claim 6 (reproduction, compute layer): the exact discrete model — the
  // "original problem" the paper abandoned as intractable — is now cheap
  // enough to check the continuous shortcut directly. Every planner probe
  // below rebuilds the shared pairwise tables (DiscreteModelContext) at a
  // fresh rate, and the two planners must land in the same ballpark.
  {
    // At N=2000 the paper's acceptability line (metric 1) needs near-full
    // sampling, so plan against a mid-range target where the bisection has
    // room to disagree.
    const double target = 50.0;
    auto cont = bench::sprint_config(2000, 10, 2.5, bench::kMean5Tuple);
    const auto cont_plan = flowrank::core::plan_sampling_rate(
        cont, flowrank::core::PlannerGoal::kRankTopT, target, 1e-4, 1.0);
    flowrank::core::DiscreteModelConfig dcfg;
    dcfg.n = 2000;
    dcfg.t = 10;
    dcfg.size_pmf = std::make_shared<flowrank::dist::Discretized>(
        std::make_shared<flowrank::dist::Pareto>(
            flowrank::dist::Pareto::from_mean(bench::kMean5Tuple, 2.5)));
    dcfg.max_size = 600;
    dcfg.tail_tolerance = 1e-4;
    const auto disc_plan =
        flowrank::core::plan_sampling_rate(dcfg, target, 1e-4, 0.999);
    const double ratio = disc_plan.sampling_rate / cont_plan.sampling_rate;
    bench::print_verdict(
        "(6) the exact discrete model backs the continuous shortcut",
        cont_plan.feasible && disc_plan.feasible && ratio < 3.0 && ratio > 1.0 / 3.0,
        "rate for <= 50 swapped pairs at N=2000, t=10: continuous " +
            flowrank::util::format_double(cont_plan.sampling_rate * 100) +
            "% vs exact discrete " +
            flowrank::util::format_double(disc_plan.sampling_rate * 100) + "%");
  }

  // Reproduction ablation: decompose the paper-model vs truth gap at
  // Internet scale (see EXPERIMENTS.md "Model fidelity").
  {
    auto cfg = bench::sprint_config(3500000, 10, 1.5, bench::kMean5Tuple);
    cfg.p = 0.001;
    const double paper_model = flowrank::core::evaluate_ranking_model(cfg).metric;
    cfg.pairwise = PairwiseModel::kHybrid;
    const double hybrid = flowrank::core::evaluate_ranking_model(cfg).metric;
    cfg.counting = PairCounting::kUnordered;
    const double corrected = flowrank::core::evaluate_ranking_model(cfg).metric;
    const auto mc = flowrank::core::run_mc_model(cfg, 10, 99);
    std::cout << "ablation    : N=3.5M, t=10, p=0.1% — paper model "
              << flowrank::util::format_double(paper_model) << " -> hybrid Pm "
              << flowrank::util::format_double(hybrid) << " -> +unordered pairs "
              << flowrank::util::format_double(corrected) << "; Monte Carlo (10 runs) "
              << flowrank::util::format_double(mc.ranking_metric.mean()) << " +- "
              << flowrank::util::format_double(mc.ranking_stderr()) << "\n";
  }
  return 0;
}
