// DEPRECATED shim over the unified experiment engine: runs any
// declarative sim::ScenarioSpec end to end with the historical
// human-readable report. New work should use `flowrank_experiments`
// (src/flowrank/sim/experiment.hpp), which runs the same scenario keys
// plus the model axis / sweep grammar / estimator stages and writes
// structured CSV or JSON-lines through report::ResultSink. This shim
// stays because the checked-in scenarios/*.scn suite and its CI smoke
// predate the experiment layer.
//
// Usage:
//   scenario_runner --scenario scenarios/bursty_onoff.scn [--threads 4]
//   scenario_runner --preset abilene --duration 120 --rates 0.01,0.1
//
// Every spec key (see src/flowrank/sim/scenario.hpp) doubles as a
// `--key value` override, so a checked-in scenario file can be rescaled
// or re-seeded from the command line without editing it.
//
// `--export-trace out.frt1` materializes the spec's trace source and
// writes the flow records instead of running the pipeline — the
// declarative way to produce replay files (scenarios/tiny_sprint.frt1
// was made exactly like this; see scenarios/README.md).
#include <algorithm>
#include <exception>
#include <iostream>
#include <stdexcept>

#include "flowrank/sim/scenario.hpp"
#include "flowrank/util/cli.hpp"

int main(int argc, char** argv) {
  try {
    const flowrank::util::Cli cli(argc, argv);
    // Strict option validation: a typoed key must not silently run a
    // default scenario.
    const auto& keys = flowrank::sim::scenario_keys();
    for (const auto& name : cli.option_names()) {
      if (name != "scenario" && name != "export-trace" &&
          std::find(keys.begin(), keys.end(), name) == keys.end()) {
        throw std::invalid_argument("unknown option --" + name +
                                    " (see src/flowrank/sim/scenario.hpp)");
      }
    }
    std::cerr << "note: scenario_runner is a deprecated shim; prefer "
                 "flowrank_experiments --spec (structured sinks, model axis, "
                 "sweeps, estimators)\n";
    const auto spec = flowrank::sim::scenario_from_cli(cli);

    const std::string export_path = cli.get_string("export-trace", "");
    if (!export_path.empty()) {
      const auto flows =
          flowrank::sim::export_scenario_trace(spec, export_path);
      std::cout << "wrote " << flows << " flows to " << export_path << "\n";
      return 0;
    }

    const auto result = flowrank::sim::run_scenario(spec);
    flowrank::sim::print_scenario_report(std::cout, result);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "scenario_runner: " << e.what() << "\n";
    return 1;
  }
}
