// Shared helpers for the figure-regeneration benchmarks.
//
// Every fig* binary prints: a header describing the paper figure, the data
// series the figure plots (as an aligned table, one row per x-value), and
// a paper-vs-measured verdict on the figure's qualitative claim.
#pragma once

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/ranking_model.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace bench {

/// The paper's Sprint-derived constants (Sec. 6).
constexpr double kMean5Tuple = 9.6;        // packets (4.8 KB / 500 B)
constexpr double kMeanPrefix24 = 33.2;     // packets (16.6 KB / 500 B)
constexpr std::int64_t kN5Tuple = 700000;  // flows per 5-min interval
constexpr std::int64_t kNPrefix24 = 100000;

/// Log-spaced grid from lo to hi inclusive.
inline std::vector<double> log_spaced(double lo, double hi, int count) {
  std::vector<double> out(static_cast<std::size_t>(count));
  const double step = (std::log(hi) - std::log(lo)) / (count - 1);
  for (int i = 0; i < count; ++i) out[static_cast<std::size_t>(i)] = std::exp(std::log(lo) + step * i);
  out.back() = hi;
  return out;
}

/// The sampling-rate grid the paper plots (0.1% .. 50%).
inline std::vector<double> paper_rate_grid(int points = 10) {
  return log_spaced(0.001, 0.5, points);
}

inline flowrank::core::RankingModelConfig sprint_config(std::int64_t n,
                                                        std::int64_t t, double beta,
                                                        double mean_packets) {
  flowrank::core::RankingModelConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(mean_packets, beta));
  return cfg;
}

inline void print_header(const std::string& figure, const std::string& what) {
  std::cout << "# " << figure << " — " << what << "\n";
}

/// Smallest rate in `rates` whose metric is below 1 (the paper's
/// acceptability line), or NaN if none.
inline double crossing_rate(const std::vector<double>& rates,
                            const std::vector<double>& metrics) {
  for (std::size_t i = 0; i < rates.size(); ++i) {
    if (metrics[i] < 1.0) return rates[i];
  }
  return std::nan("");
}

inline void print_verdict(const std::string& claim, bool holds,
                          const std::string& measured) {
  std::cout << "paper claim : " << claim << "\n";
  std::cout << "measured    : " << measured << "\n";
  std::cout << "verdict     : " << (holds ? "SHAPE REPRODUCED" : "DEVIATION (see EXPERIMENTS.md)")
            << "\n\n";
}

}  // namespace bench
