// Shared helpers for the remaining claim-check benchmarks
// (summary_claims and the ablations).
//
// The paper figures themselves no longer live here: each is a declarative
// ExperimentSpec under scenarios/figures/ run by flowrank_experiments
// (see src/flowrank/sim/experiment.hpp); the rate-grid builders moved
// into the sweep grammar and the CSV emission into report::ResultSink.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "flowrank/core/ranking_model.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/util/cli.hpp"
#include "flowrank/util/table.hpp"

namespace bench {

/// The paper's Sprint-derived constants (Sec. 6).
constexpr double kMean5Tuple = 9.6;        // packets (4.8 KB / 500 B)
constexpr double kMeanPrefix24 = 33.2;     // packets (16.6 KB / 500 B)
constexpr std::int64_t kN5Tuple = 700000;  // flows per 5-min interval
constexpr std::int64_t kNPrefix24 = 100000;

inline flowrank::core::RankingModelConfig sprint_config(std::int64_t n,
                                                        std::int64_t t, double beta,
                                                        double mean_packets) {
  flowrank::core::RankingModelConfig cfg;
  cfg.n = n;
  cfg.t = t;
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(mean_packets, beta));
  return cfg;
}

inline void print_header(const std::string& figure, const std::string& what) {
  std::cout << "# " << figure << " — " << what << "\n";
}

inline void print_verdict(const std::string& claim, bool holds,
                          const std::string& measured) {
  std::cout << "paper claim : " << claim << "\n";
  std::cout << "measured    : " << measured << "\n";
  std::cout << "verdict     : " << (holds ? "SHAPE REPRODUCED" : "DEVIATION (see EXPERIMENTS.md)")
            << "\n\n";
}

}  // namespace bench
