#include "flowrank/exec/task_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::exec {

namespace {

void check_parallelism(std::size_t requested, const char* what) {
  if (requested > TaskPool::kMaxParallelism) {
    throw std::invalid_argument(
        std::string("TaskPool: ") + what + " " + std::to_string(requested) +
        " exceeds the sanity cap of " + std::to_string(TaskPool::kMaxParallelism) +
        " (a request this large is almost certainly a configuration bug)");
  }
}

/// Shared state of one parallel_for call. Helpers hold it by shared_ptr so
/// a helper that is still queued when the call returns finds next >= count
/// and retires without ever touching the caller-owned closure.
struct ForJob {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t count = 0;
  util::Mutex mutex;
  util::CondVar done;
  /// First unclaimed index.
  std::size_t next FR_GUARDED_BY(mutex) = 0;
  /// Claimed but not yet retired.
  std::size_t in_flight FR_GUARDED_BY(mutex) = 0;
  /// First exception thrown by a task.
  std::exception_ptr error FR_GUARDED_BY(mutex);
};

/// Claims and runs indices until none are left. Runs on helpers and on the
/// calling thread alike; identical to the pre-extraction SweepEngine loop.
void drain(ForJob& job) {
  for (;;) {
    std::size_t index;
    {
      util::MutexLock lock(job.mutex);
      if (job.next >= job.count) return;
      index = job.next++;
      ++job.in_flight;
    }
    try {
      (*job.fn)(index);
    } catch (...) {
      util::MutexLock lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
      job.next = job.count;  // skip everything still unclaimed
    }
    {
      util::MutexLock lock(job.mutex);
      --job.in_flight;
      if (job.next >= job.count && job.in_flight == 0) job.done.notify_all();
    }
  }
}

}  // namespace

TaskPool::TaskPool(std::size_t initial_workers) {
  check_parallelism(initial_workers, "worker count");
  ensure_workers(initial_workers);
}

// Joining must happen without mutex_ (exiting workers take it to observe
// shutting_down_), and workers_ itself is append-only while the pool is
// live, so the unguarded reads here race with nothing. The analysis skips
// destructors anyway; the annotation documents the reasoning for readers.
TaskPool::~TaskPool() FR_NO_THREAD_SAFETY_ANALYSIS {
  {
    util::MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

TaskPool& TaskPool::shared() {
  static TaskPool pool;
  return pool;
}

void TaskPool::ensure_workers(std::size_t count) {
  check_parallelism(count, "worker count");
  util::MutexLock lock(mutex_);
  while (workers_.size() < count) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

std::size_t TaskPool::worker_count() const {
  util::MutexLock lock(mutex_);
  return workers_.size();
}

std::size_t TaskPool::resolve_parallelism(std::size_t requested) {
  check_parallelism(requested, "parallelism");
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void TaskPool::parallel_for(std::size_t count,
                            const std::function<void(std::size_t)>& fn,
                            std::size_t max_parallelism) {
  if (max_parallelism < 1) {
    throw std::invalid_argument("TaskPool: max_parallelism >= 1");
  }
  check_parallelism(max_parallelism, "parallelism");
  if (count == 0) return;

  std::size_t helpers = 0;
  {
    util::MutexLock lock(mutex_);
    helpers = std::min({max_parallelism - 1, workers_.size(), count - 1});
  }
  if (helpers == 0) {
    // Inline fast path: no locks, same skip-after-throw semantics.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  auto job = std::make_shared<ForJob>();
  job->fn = &fn;
  job->count = count;
  for (std::size_t i = 0; i < helpers; ++i) {
    submit([job] { drain(*job); });
  }

  // The calling thread is one of the job's claimants.
  drain(*job);

  util::MutexLock lock(job->mutex);
  while (job->next < job->count || job->in_flight != 0) {
    job->done.wait(job->mutex);
  }
  if (job->error) {
    std::exception_ptr error = job->error;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TaskPool::submit(std::function<void()> task) {
  {
    util::MutexLock lock(mutex_);
    if (!workers_.empty()) {
      queue_.push_back(std::move(task));
      ++outstanding_;
      wake_workers_.notify_one();
      return;
    }
  }
  // No workers: run inline so a zero-worker pool still makes progress.
  task();
}

void TaskPool::wait_idle() {
  util::MutexLock lock(mutex_);
  while (outstanding_ != 0) idle_.wait(mutex_);
}

void TaskPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      util::MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) wake_workers_.wait(mutex_);
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      util::MutexLock lock(mutex_);
      if (--outstanding_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace flowrank::exec
