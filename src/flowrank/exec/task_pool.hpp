// The one concurrency substrate of the repo.
//
// Before this layer existed the stack carried two independent thread
// pools: sim::SweepEngine's fork-join workers and ingest::ShardedPipeline's
// per-run std::thread-per-shard machinery. Both workloads are the same
// shape underneath — a driver thread hands independent units of work to a
// set of long-lived workers — so both now run on this pool:
//
//  * parallel_for() is the fork-join primitive (Monte-Carlo grids): task
//    indices are claimed dynamically, the caller participates, and the
//    call returns when every index has retired. Determinism is the
//    caller's business and is easy to keep: a task that depends only on
//    its own index (its own RNG stream, its own result slot) yields
//    bit-identical results at any worker count, which is exactly how
//    sim::SweepEngine uses it.
//
//  * submit() is the streaming primitive (ingest shards): fire-and-forget
//    tasks that drain a shard's SPSC ring and return. Tasks must be
//    cooperative — they run to completion and never block waiting for
//    another pool task — so any worker count (including one) makes
//    progress and a pipeline never deadlocks on its own substrate. The
//    ingest drain task is the canonical shape: pop until the ring is
//    empty, retire its exclusive-ownership flag, re-check, and resubmit
//    a successor instead of looping forever (see
//    ingest/sharded_pipeline.cpp for the retire protocol).
//
// The process-wide shared() pool persists across engine instances and
// pipeline runs: repeated short pipelines and sweeps reuse parked workers
// instead of paying thread start-up per run. Workers are added on demand
// (ensure_workers) and only retire at process exit.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::exec {

/// Worker pool shared by the sweep and ingest engines. Thread-safe: any
/// thread may submit() or run a parallel_for() (each parallel_for is
/// driven by its calling thread; concurrent calls interleave fairly on
/// the shared workers).
class TaskPool {
 public:
  /// Hard cap on any requested parallelism (threads, shards, grid
  /// workers). Requests beyond it are configuration bugs — a mistyped
  /// `--threads 40960` would otherwise silently try to spawn thousands
  /// of threads — and fail fast with std::invalid_argument.
  static constexpr std::size_t kMaxParallelism = 4096;

  /// Starts with `initial_workers` workers (0 is valid: parallel_for
  /// then runs entirely on the calling thread and submit() runs inline).
  /// Throws std::invalid_argument beyond kMaxParallelism.
  explicit TaskPool(std::size_t initial_workers = 0);

  /// Joins the workers. Pending submitted tasks are drained first.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// The process-wide pool. Created on first use, grown on demand,
  /// destroyed at exit.
  [[nodiscard]] static TaskPool& shared();

  /// Grows the pool to at least `count` workers (never shrinks). Throws
  /// std::invalid_argument beyond kMaxParallelism.
  void ensure_workers(std::size_t count);

  [[nodiscard]] std::size_t worker_count() const;

  /// Executes fn(i) once for every i in [0, count), spread dynamically
  /// over at most `max_parallelism` threads (the caller plus up to
  /// max_parallelism - 1 pool workers; max_parallelism == 1 runs inline
  /// with no locking). fn must be safe to call concurrently for distinct
  /// i. If a task throws, unclaimed indices are skipped, in-flight ones
  /// finish, and the first exception is rethrown here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t max_parallelism = kMaxParallelism);

  /// Enqueues a fire-and-forget task. Tasks must be cooperative (run to
  /// completion, never wait on another pool task) and must not throw —
  /// an escaping exception terminates the process, as it would have
  /// terminated the dedicated thread it replaces. With zero workers the
  /// task runs inline in submit().
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has retired. parallel_for
  /// helper tasks count too, but parallel_for already waits for its own.
  void wait_idle();

  /// Clamp helper for config plumbing: 0 means "all hardware threads".
  /// Throws std::invalid_argument beyond kMaxParallelism.
  [[nodiscard]] static std::size_t resolve_parallelism(std::size_t requested);

 private:
  void worker_loop();

  mutable util::Mutex mutex_;
  util::CondVar wake_workers_;  ///< task queued (or shutdown)
  util::CondVar idle_;          ///< outstanding_ hit zero
  std::deque<std::function<void()>> queue_ FR_GUARDED_BY(mutex_);
  /// Queued + running tasks.
  std::size_t outstanding_ FR_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ FR_GUARDED_BY(mutex_) = false;
  /// Only grows while the pool is live; the destructor joins without the
  /// lock (workers need it to observe shutdown).
  std::vector<std::thread> workers_ FR_GUARDED_BY(mutex_);
};

}  // namespace flowrank::exec
