#include "flowrank/report/result_sink.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "flowrank/util/error.hpp"
#include "flowrank/util/sync.hpp"

namespace flowrank::report {

namespace {

std::string format_numeric(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

/// JSON string escaping (control characters, quotes, backslash).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// RFC-4180-ish CSV quoting, same convention as util::Table::print_csv.
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

const char* build_version() noexcept {
#ifdef FLOWRANK_GIT_DESCRIBE
  return FLOWRANK_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

Value::Value(double v)
    : text_(format_numeric(v)), numeric_(true), finite_(std::isfinite(v)) {}

Value::Value(std::int64_t v) : text_(std::to_string(v)), numeric_(true) {}

Value::Value(std::uint64_t v) : text_(std::to_string(v)), numeric_(true) {}

Value::Value(std::string v) : text_(std::move(v)) {}

ResultSink::~ResultSink() = default;

void ResultSink::open(const std::vector<std::string>& columns,
                      const RunMetadata& meta) {
  util::MutexLock lock(mutex_);
  if (opened_) throw std::invalid_argument("ResultSink: open() called twice");
  if (columns.empty()) throw std::invalid_argument("ResultSink: no columns");
  opened_ = true;
  columns_ = columns.size();
  if (meta.version.empty()) {
    RunMetadata stamped = meta;
    stamped.version = build_version();
    write_header(columns, stamped);
  } else {
    write_header(columns, meta);
  }
  check_stream("open");
}

void ResultSink::check_stream(const char* when) const {
  if (!stream_ok()) {
    throw Error(ErrorCategory::kIo, "report",
                std::string(when) +
                    ": stream write failed (disk full or closed pipe?)");
  }
}

void ResultSink::emit(std::size_t seq, Row row) {
  util::MutexLock lock(mutex_);
  if (!opened_ || closed_) {
    throw std::invalid_argument("ResultSink: emit() outside open()/close()");
  }
  if (row.size() != columns_) {
    throw std::invalid_argument("ResultSink: row has " + std::to_string(row.size()) +
                                " cells, header has " + std::to_string(columns_));
  }
  if (seq < next_seq_ || pending_.count(seq)) {
    throw std::invalid_argument("ResultSink: duplicate row seq " +
                                std::to_string(seq));
  }
  pending_.emplace(seq, std::move(row));
  // Drain the contiguous prefix: rows reach the stream in seq order no
  // matter which worker finished first.
  for (auto it = pending_.begin(); it != pending_.end() && it->first == next_seq_;
       it = pending_.erase(it), ++next_seq_) {
    write_row(it->second);
  }
  check_stream("emit");
}

void ResultSink::close(std::size_t expected_rows) {
  util::MutexLock lock(mutex_);
  if (closed_) return;
  if (!opened_) {
    throw Error(ErrorCategory::kInternal, "report",
                "ResultSink: close() before open()");
  }
  // closed_ flips only after validation: a close() that throws must keep
  // throwing on retry, not dissolve into an idempotent no-op.
  if (!pending_.empty()) {
    throw Error(ErrorCategory::kInternal, "report",
                "ResultSink: row " + std::to_string(next_seq_) +
                    " was never emitted (" + std::to_string(pending_.size()) +
                    " later rows stranded)");
  }
  if (expected_rows != kNoExpectedRows && next_seq_ != expected_rows) {
    throw Error(ErrorCategory::kInternal, "report",
                "ResultSink: " + std::to_string(next_seq_) + " of " +
                    std::to_string(expected_rows) +
                    " expected rows were emitted");
  }
  // closed_ flips only after the stream check too: a close() that hit a
  // dead stream must keep throwing on retry, not turn into a no-op.
  flush();
  check_stream("close");
  closed_ = true;
}

std::size_t ResultSink::rows_written() const {
  util::MutexLock lock(mutex_);
  return next_seq_;
}

// --- CSV -------------------------------------------------------------------

void CsvResultSink::write_header(const std::vector<std::string>& columns,
                                 const RunMetadata& meta) {
  os_ << "# experiment: " << meta.experiment << "\n";
  os_ << "# version: " << meta.version << "\n";
  os_ << "# seed: " << meta.seed << "\n";
  for (const auto& [key, value] : meta.spec_echo) {
    os_ << "# spec " << key << " = " << value << "\n";
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    os_ << (i ? "," : "") << csv_escape(columns[i]);
  }
  os_ << "\n";
}

void CsvResultSink::write_row(const Row& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    os_ << (i ? "," : "") << csv_escape(row[i].text());
  }
  os_ << "\n";
}

void CsvResultSink::flush() { os_.flush(); }

bool CsvResultSink::stream_ok() const noexcept { return static_cast<bool>(os_); }

// --- JSON lines ------------------------------------------------------------

void JsonlResultSink::write_header(const std::vector<std::string>& columns,
                                   const RunMetadata& meta) {
  columns_ = columns;
  os_ << "{\"type\":\"meta\",\"experiment\":\"" << json_escape(meta.experiment)
      << "\",\"version\":\"" << json_escape(meta.version) << "\",\"seed\":" << meta.seed
      << ",\"spec\":{";
  for (std::size_t i = 0; i < meta.spec_echo.size(); ++i) {
    os_ << (i ? "," : "") << "\"" << json_escape(meta.spec_echo[i].first) << "\":\""
        << json_escape(meta.spec_echo[i].second) << "\"";
  }
  os_ << "},\"columns\":[";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    os_ << (i ? "," : "") << "\"" << json_escape(columns[i]) << "\"";
  }
  os_ << "]}\n";
}

void JsonlResultSink::write_row(const Row& row) {
  os_ << "{\"type\":\"row\"";
  for (std::size_t i = 0; i < row.size(); ++i) {
    os_ << ",\"" << json_escape(columns_[i]) << "\":";
    if (!row[i].numeric()) {
      os_ << "\"" << json_escape(row[i].text()) << "\"";
    } else if (!row[i].finite()) {
      os_ << "null";
    } else {
      os_ << row[i].text();
    }
  }
  os_ << "}\n";
}

void JsonlResultSink::flush() { os_.flush(); }

bool JsonlResultSink::stream_ok() const noexcept {
  return static_cast<bool>(os_);
}

// --- factory ---------------------------------------------------------------

OwnedSink make_sink(const std::string& path, const std::string& format) {
  std::string fmt = format;
  if (fmt.empty()) {
    const auto dot = path.rfind('.');
    const std::string ext = dot == std::string::npos ? "" : path.substr(dot + 1);
    fmt = (ext == "jsonl" || ext == "ndjson") ? "jsonl" : "csv";
  }
  if (fmt != "csv" && fmt != "jsonl") {
    throw std::invalid_argument("report: unknown format '" + format +
                                "' (csv | jsonl)");
  }

  OwnedSink out;
  std::ostream* os = &std::cout;
  if (path != "-") {
    auto file = std::make_unique<std::ofstream>(path, std::ios::binary);
    if (!*file) {
      throw Error(ErrorCategory::kIo, "report", "cannot open " + path);
    }
    os = file.get();
    out.stream = std::move(file);
  }
  if (fmt == "jsonl") {
    out.sink = std::make_unique<JsonlResultSink>(*os);
  } else {
    out.sink = std::make_unique<CsvResultSink>(*os);
  }
  return out;
}

}  // namespace flowrank::report
