// Structured result sinks: every experiment writes rows here instead of
// hand-rolled printf/Table code in each driver.
//
// Contract:
//  * open() writes a run-metadata header (experiment name, tool version,
//    seed, full spec echo) followed by the column names;
//  * emit(seq, row) is thread-safe and may be called from any worker in
//    any order — rows carry their position in the deterministic grid
//    order and the sink reorders internally, so the bytes on disk are
//    identical at any thread count (the golden-file tests assert this
//    byte for byte at threads {1, 4});
//  * close() flushes and fails loudly on a gap (an emitted sequence
//    range with holes means an experiment dropped a row).
//
// Two formats share the pipeline: CSV (spreadsheet/gnuplot friendly,
// metadata as '#' comment lines) and JSON-lines (one object per row,
// metadata in a leading "meta" object; schema-checked in CI).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::report {

/// The tool version stamped into run metadata: `git describe` captured at
/// configure time, or "unknown" outside a git checkout.
[[nodiscard]] const char* build_version() noexcept;

/// One cell of a result row. Doubles format as printf %.10g in both
/// output formats (enough digits to round-trip the metrics while keeping
/// goldens readable); integers and strings verbatim.
class Value {
 public:
  Value(double v);              // NOLINT(google-explicit-constructor)
  Value(std::int64_t v);        // NOLINT(google-explicit-constructor)
  Value(std::uint64_t v);       // NOLINT(google-explicit-constructor)
  Value(int v) : Value(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(std::string v);         // NOLINT(google-explicit-constructor)
  Value(const char* v) : Value(std::string(v)) {}  // NOLINT

  /// Cell text as it appears in CSV output.
  [[nodiscard]] const std::string& text() const noexcept { return text_; }
  /// True when the cell is numeric (JSON emits it unquoted). NaN and
  /// infinities are not representable in JSON and emit as null.
  [[nodiscard]] bool numeric() const noexcept { return numeric_; }
  [[nodiscard]] bool finite() const noexcept { return finite_; }

 private:
  std::string text_;
  bool numeric_ = false;
  bool finite_ = true;
};

using Row = std::vector<Value>;

/// Run provenance written ahead of the data rows.
struct RunMetadata {
  std::string experiment;  ///< spec name
  std::string version;     ///< defaults to build_version() when empty
  std::uint64_t seed = 0;
  /// Full spec echo, key = value, in spec-file key order: the output is
  /// self-describing — a result file names every knob that produced it.
  std::vector<std::pair<std::string, std::string>> spec_echo;
};

/// Abstract streaming sink. Construction is cheap; open() writes the
/// header; emit() may then be called concurrently; close() finishes the
/// file. The destructor does NOT close: close() throws on dropped rows,
/// and a silent destructor-close would swallow exactly that failure —
/// call close() explicitly on every success path.
class ResultSink {
 public:
  virtual ~ResultSink();

  ResultSink(const ResultSink&) = delete;
  ResultSink& operator=(const ResultSink&) = delete;

  /// Writes metadata + column header. Must be called exactly once,
  /// before any emit().
  void open(const std::vector<std::string>& columns, const RunMetadata& meta);

  /// Emits the row at grid position `seq` (0-based, dense). Thread-safe;
  /// rows are written to the stream in ascending seq order regardless of
  /// emission order. Throws std::invalid_argument on a duplicate seq or
  /// a column-count mismatch, and flowrank::Error(kIo) when the backing
  /// stream rejects the write (disk full, closed pipe).
  void emit(std::size_t seq, Row row);

  /// Sentinel for close(): skip the expected-count check.
  static constexpr std::size_t kNoExpectedRows = static_cast<std::size_t>(-1);

  /// Flushes buffered rows; throws std::runtime_error if the emitted
  /// sequence numbers have a hole, or — when `expected_rows` is given —
  /// if fewer rows than that were written (a trailing dropped row is
  /// invisible to the hole check alone; callers that know the grid size,
  /// like run_experiment, pass it). Idempotent on success.
  void close(std::size_t expected_rows = kNoExpectedRows);

  /// Rows written to the stream so far.
  [[nodiscard]] std::size_t rows_written() const;

 protected:
  ResultSink() = default;

  /// The formatting hooks below run with mutex_ held (open/emit/close
  /// serialize all stream access through it); FR_REQUIRES documents and
  /// enforces that they are never called outside it.
  virtual void write_header(const std::vector<std::string>& columns,
                            const RunMetadata& meta) FR_REQUIRES(mutex_) = 0;
  virtual void write_row(const Row& row) FR_REQUIRES(mutex_) = 0;
  virtual void flush() FR_REQUIRES(mutex_) = 0;
  /// True while the backing stream can still accept bytes. The base class
  /// checks this after header/row writes and after flush, and throws
  /// flowrank::Error(kIo) the moment it reports false — a full disk or a
  /// closed pipe surfaces at the write that hit it, not as silently
  /// missing rows discovered (or not) much later.
  [[nodiscard]] virtual bool stream_ok() const noexcept FR_REQUIRES(mutex_) = 0;

  /// Serializes every sink operation; protected so derived formatters can
  /// name it in their own annotations.
  mutable util::Mutex mutex_;

 private:
  /// Throws flowrank::Error(kIo) when stream_ok() is false; `when` names
  /// the operation for the message.
  void check_stream(const char* when) const FR_REQUIRES(mutex_);

  std::size_t columns_ FR_GUARDED_BY(mutex_) = 0;
  bool opened_ FR_GUARDED_BY(mutex_) = false;
  bool closed_ FR_GUARDED_BY(mutex_) = false;
  /// First seq not yet written.
  std::size_t next_seq_ FR_GUARDED_BY(mutex_) = 0;
  /// Out-of-order rows by seq.
  std::map<std::size_t, Row> pending_ FR_GUARDED_BY(mutex_);
};

/// CSV: '#' metadata comment lines, a header row, then data rows.
class CsvResultSink final : public ResultSink {
 public:
  /// Writes to `os`; the stream must outlive the sink.
  explicit CsvResultSink(std::ostream& os) : os_(os) {}

 protected:
  void write_header(const std::vector<std::string>& columns,
                    const RunMetadata& meta) override;
  void write_row(const Row& row) override;
  void flush() override;
  [[nodiscard]] bool stream_ok() const noexcept override;

 private:
  std::ostream& os_;
};

/// JSON-lines: a leading {"type":"meta",...} object, then one
/// {"type":"row",...} object per row keyed by column name.
class JsonlResultSink final : public ResultSink {
 public:
  explicit JsonlResultSink(std::ostream& os) : os_(os) {}

 protected:
  void write_header(const std::vector<std::string>& columns,
                    const RunMetadata& meta) override;
  void write_row(const Row& row) override;
  void flush() override;
  [[nodiscard]] bool stream_ok() const noexcept override;

 private:
  std::ostream& os_;
  std::vector<std::string> columns_;
};

/// Sink + the stream it owns, from a --out style destination.
struct OwnedSink {
  std::unique_ptr<std::ostream> stream;  ///< null when writing to stdout
  std::unique_ptr<ResultSink> sink;
};

/// Builds a sink for `path`: "-" writes CSV to stdout; otherwise the
/// format follows `format` ("csv" | "jsonl" | "" = by file extension,
/// defaulting to CSV). Throws flowrank::Error(kIo) when the file cannot
/// be opened, std::invalid_argument on an unknown format.
[[nodiscard]] OwnedSink make_sink(const std::string& path, const std::string& format);

}  // namespace flowrank::report
