// Monte-Carlo evaluation of the ranking/detection metrics.
//
// Independent check of the analytic models: draw N flow sizes from the
// distribution, thin each binomially at rate p (exactly Bernoulli packet
// sampling), and count swapped pairs with the metrics module. Used by
// tests to validate the quadrature models and by benches to show agreement.
#pragma once

#include <cstdint>

#include "flowrank/core/ranking_model.hpp"
#include "flowrank/numeric/stats.hpp"

namespace flowrank::core {

/// Aggregates over Monte-Carlo runs.
struct McModelResult {
  numeric::RunningStats ranking_metric;    ///< swapped pairs, ranking defn
  numeric::RunningStats detection_metric;  ///< swapped pairs, detection defn
  numeric::RunningStats top_set_recall;    ///< sampled-top recall of true top

  /// Standard error of the ranking metric mean.
  [[nodiscard]] double ranking_stderr() const;
  /// Standard error of the detection metric mean.
  [[nodiscard]] double detection_stderr() const;
};

/// Runs `runs` independent populations (sizes and sampling redrawn each
/// run). Deterministic in `seed`, including across `num_threads`: each run
/// owns its own derived RNG stream and result slot, runs execute on a
/// sim::SweepEngine pool, and per-run partials are folded in run order —
/// so any thread count reproduces the sequential aggregates bit for bit
/// (num_threads: 1 = sequential, 0 = all hardware threads; requires
/// config.size_dist->sample() to be safe for concurrent calls with
/// distinct engines, true of every dist:: implementation). Throws on
/// invalid configuration.
[[nodiscard]] McModelResult run_mc_model(const RankingModelConfig& config,
                                         int runs, std::uint64_t seed,
                                         std::size_t num_threads = 1);

}  // namespace flowrank::core
