// The detection model (Sec. 7): identify the top-t flows *as a set*,
// ignoring their relative order inside the list.
//
// Metric: expected number of swapped pairs whose first element is inside
// the top-t list and whose second element is outside it — t(N-t) pairs:
//
//     metric = t (N - t) * P̄*mt
//
// with (Sec. 7.1)
//   P̄*mt = (1/P̄*t) Σ_{i} Σ_{j<i} p_i p_j P*t(j,i,t,N) Pm(j,i),
//   P̄*t  = t(N-t) / (N(N-1)),
//   P*t(j,i,t,N) = Σ_{k=0}^{t-1} b_{Pi}(k,N-2) P{Bin(N-k-2, P_{j,i}) >= t-k-1},
//   P_{j,i} = (P_j - P_i) / (1 - P_i).
//
// For t = 1 detection and ranking coincide (checked in tests).
#pragma once

#include "flowrank/core/ranking_model.hpp"

namespace flowrank::core {

/// Result of evaluating the detection model.
struct DetectionModelResult {
  double mean_pair_misranking = 0.0;  ///< P̄*mt
  double metric = 0.0;                ///< t (N-t) * P̄*mt
  double pair_count = 0.0;            ///< t (N-t)
};

/// Evaluates the continuous detection model (same configuration struct as
/// the ranking model; same validity requirements).
[[nodiscard]] DetectionModelResult evaluate_detection_model(
    const RankingModelConfig& config);

}  // namespace flowrank::core
