#include "flowrank/core/sampling_planner.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>

namespace flowrank::core {

namespace {

/// The shared inversion skeleton: the metric is monotone decreasing in p,
/// so the minimal feasible rate is a bisection on log p (the metric spans
/// many decades — Figs. 4-11).
PlannerResult bisect_sampling_rate(const std::function<double(double)>& metric_at,
                                   double target, double p_min, double p_max) {
  if (!(target > 0.0)) {
    throw std::invalid_argument("plan_sampling_rate: target must be > 0");
  }
  if (!(p_min > 0.0 && p_min < p_max && p_max <= 1.0)) {
    throw std::invalid_argument("plan_sampling_rate: need 0 < p_min < p_max <= 1");
  }

  PlannerResult result;
  const double at_max = metric_at(p_max);
  if (at_max > target) {
    result.sampling_rate = p_max;
    result.metric = at_max;
    result.feasible = false;
    return result;
  }
  const double at_min = metric_at(p_min);
  if (at_min <= target) {
    result.sampling_rate = p_min;
    result.metric = at_min;
    result.feasible = true;
    return result;
  }

  double lo = std::log(p_min);  // metric > target here
  double hi = std::log(p_max);  // metric <= target here
  double hi_metric = at_max;
  for (int iter = 0; iter < 60 && hi - lo > 1e-4; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double m = metric_at(std::exp(mid));
    if (m <= target) {
      hi = mid;
      hi_metric = m;
    } else {
      lo = mid;
    }
  }
  result.sampling_rate = std::exp(hi);
  result.metric = hi_metric;
  result.feasible = true;
  return result;
}

}  // namespace

PlannerResult plan_sampling_rate(RankingModelConfig config, PlannerGoal goal,
                                 double target, double p_min, double p_max) {
  return bisect_sampling_rate(
      [&](double p) {
        config.p = p;
        return goal == PlannerGoal::kRankTopT ? evaluate_ranking_model(config).metric
                                              : evaluate_detection_model(config).metric;
      },
      target, p_min, p_max);
}

PlannerResult plan_sampling_rate(DiscreteModelConfig config, double target,
                                 double p_min, double p_max) {
  if (!(p_max < 1.0)) {
    throw std::invalid_argument(
        "plan_sampling_rate: the discrete model needs p_max < 1");
  }
  return bisect_sampling_rate(
      [&](double p) {
        // p is part of the pairwise-table key, so each probe rebuilds the
        // context — which is exactly why the table build has to be fast.
        config.p = p;
        return evaluate_discrete_ranking_model(config).metric;
      },
      target, p_min, p_max);
}

}  // namespace flowrank::core
