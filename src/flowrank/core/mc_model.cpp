#include "flowrank/core/mc_model.hpp"

#include <cmath>
#include <random>
#include <stdexcept>
#include <vector>

#include "flowrank/metrics/rank_metrics.hpp"

namespace flowrank::core {

double McModelResult::ranking_stderr() const {
  return ranking_metric.count() < 2
             ? 0.0
             : ranking_metric.stddev() /
                   std::sqrt(static_cast<double>(ranking_metric.count()));
}

double McModelResult::detection_stderr() const {
  return detection_metric.count() < 2
             ? 0.0
             : detection_metric.stddev() /
                   std::sqrt(static_cast<double>(detection_metric.count()));
}

McModelResult run_mc_model(const RankingModelConfig& config, int runs,
                           std::uint64_t seed) {
  if (!config.size_dist) {
    throw std::invalid_argument("run_mc_model: size_dist is required");
  }
  if (config.t < 1 || config.t > config.n) {
    throw std::invalid_argument("run_mc_model: requires 1 <= t <= N");
  }
  if (!(config.p > 0.0 && config.p <= 1.0)) {
    throw std::invalid_argument("run_mc_model: requires p in (0,1]");
  }
  if (runs < 1) throw std::invalid_argument("run_mc_model: runs >= 1");

  McModelResult result;
  const auto n = static_cast<std::size_t>(config.n);
  std::vector<std::uint64_t> true_sizes(n);
  std::vector<std::uint64_t> sampled_sizes(n);

  for (int run = 0; run < runs; ++run) {
    auto engine = util::make_engine(seed, static_cast<std::uint64_t>(run));
    for (std::size_t i = 0; i < n; ++i) {
      const double s = config.size_dist->sample(engine);
      true_sizes[i] =
          static_cast<std::uint64_t>(std::llround(std::max(1.0, s)));
      if (config.p >= 1.0) {
        sampled_sizes[i] = true_sizes[i];
      } else {
        std::binomial_distribution<std::uint64_t> thin(true_sizes[i], config.p);
        sampled_sizes[i] = thin(engine);
      }
    }
    const auto metrics_result = metrics::compute_rank_metrics(
        true_sizes, sampled_sizes, static_cast<std::size_t>(config.t));
    result.ranking_metric.add(metrics_result.ranking_swapped);
    result.detection_metric.add(metrics_result.detection_swapped);
    result.top_set_recall.add(metrics_result.top_set_recall);
  }
  return result;
}

}  // namespace flowrank::core
