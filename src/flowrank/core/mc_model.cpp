#include "flowrank/core/mc_model.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/sim/sweep_engine.hpp"
#include "flowrank/util/binomial_sample.hpp"

namespace flowrank::core {

double McModelResult::ranking_stderr() const {
  return ranking_metric.count() < 2
             ? 0.0
             : ranking_metric.stddev() /
                   std::sqrt(static_cast<double>(ranking_metric.count()));
}

double McModelResult::detection_stderr() const {
  return detection_metric.count() < 2
             ? 0.0
             : detection_metric.stddev() /
                   std::sqrt(static_cast<double>(detection_metric.count()));
}

McModelResult run_mc_model(const RankingModelConfig& config, int runs,
                           std::uint64_t seed, std::size_t num_threads) {
  if (!config.size_dist) {
    throw std::invalid_argument("run_mc_model: size_dist is required");
  }
  if (config.t < 1 || config.t > config.n) {
    throw std::invalid_argument("run_mc_model: requires 1 <= t <= N");
  }
  if (!(config.p > 0.0 && config.p <= 1.0)) {
    throw std::invalid_argument("run_mc_model: requires p in (0,1]");
  }
  if (runs < 1) throw std::invalid_argument("run_mc_model: runs >= 1");

  const auto n = static_cast<std::size_t>(config.n);

  // One slot per run; runs execute in any order on the pool (each derives
  // its own engine stream), and the slots are folded below in run order so
  // the Welford accumulation sequence — and therefore every output bit —
  // matches the sequential path at any thread count.
  struct RunOutput {
    double ranking = 0.0;
    double detection = 0.0;
    double recall = 0.0;
  };
  std::vector<RunOutput> outputs(static_cast<std::size_t>(runs));

  const auto run_one = [&](std::size_t run) {
    // Reused per worker thread across runs (hoisted out of the per-flow
    // loop, where the seed path also constructed a fresh
    // std::binomial_distribution per flow).
    thread_local std::vector<std::uint64_t> true_sizes;
    thread_local std::vector<std::uint64_t> sampled_sizes;
    true_sizes.resize(n);
    sampled_sizes.resize(n);

    auto engine = util::make_engine(seed, static_cast<std::uint64_t>(run));
    for (std::size_t i = 0; i < n; ++i) {
      const double s = config.size_dist->sample(engine);
      true_sizes[i] = static_cast<std::uint64_t>(std::llround(std::max(1.0, s)));
      sampled_sizes[i] = config.p >= 1.0
                             ? true_sizes[i]
                             : util::binomial_sample(true_sizes[i], config.p, engine);
    }
    const auto m = metrics::compute_rank_metrics(
        true_sizes, sampled_sizes, static_cast<std::size_t>(config.t));
    outputs[run] = RunOutput{m.ranking_swapped, m.detection_swapped,
                             m.top_set_recall};
  };

  sim::SweepEngine pool(sim::SweepEngine::resolve_thread_count(num_threads));
  pool.parallel_for(outputs.size(), run_one);

  McModelResult result;
  for (const RunOutput& out : outputs) {
    result.ranking_metric.add(out.ranking);
    result.detection_metric.add(out.detection);
    result.top_set_recall.add(out.recall);
  }
  return result;
}

}  // namespace flowrank::core
