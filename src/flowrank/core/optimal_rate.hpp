// Optimal sampling rate for a pair of flow sizes (Sec. 3.2, Figs. 1-2):
// the smallest p such that the misranking probability stays below a
// desired level Pm,d.
#pragma once

#include <cstdint>

namespace flowrank::core {

/// Which misranking model the solver inverts.
enum class MisrankingModel {
  kExact,     ///< Eq. (1) — binomial sums
  kGaussian,  ///< Eq. (2) — erfc closed form
};

/// Smallest sampling rate p with Pm(S1,S2;p) <= target.
///
/// Pm is monotone decreasing in p, so this is a bracketed root solve.
/// Returns 1.0 when even p = 1 cannot reach the target (equal sizes under
/// the exact model never reach 0 because an unsampled tie counts as
/// misranked); returns `p_min` when the target is already met there.
/// Throws std::invalid_argument on bad sizes/target.
[[nodiscard]] double optimal_sampling_rate(std::int64_t s1, std::int64_t s2,
                                           double target,
                                           MisrankingModel model = MisrankingModel::kExact,
                                           double p_min = 1e-6);

}  // namespace flowrank::core
