// Exact discrete evaluation of the ranking model (Eqs. 1 and 3).
//
// This is the paper's "original problem" — binomial sums over integer
// packet counts — which it abandons for the Gaussian/continuous path
// because it takes hours at Internet scale. We keep it for small
// configurations: it validates the continuous model in tests, and the
// micro benchmarks quantify the speed gap the paper reports.
#pragma once

#include <cstdint>
#include <memory>

#include "flowrank/dist/discretized.hpp"

namespace flowrank::core {

/// Configuration for the exact discrete ranking model.
struct DiscreteModelConfig {
  std::int64_t n = 0;  ///< total number of flows
  std::int64_t t = 0;  ///< top flows of interest
  double p = 0.0;      ///< sampling rate
  /// Size pmf; evaluation cost grows with the size support, so keep the
  /// distribution's effective support modest (<= max_size).
  std::shared_ptr<const dist::Discretized> size_pmf;
  /// Hard cap on the summed size support; the pmf tail beyond it must be
  /// negligible. Throws if the tail mass above it exceeds tail_tolerance.
  std::int64_t max_size = 4096;
  double tail_tolerance = 1e-6;
  /// Use the Gaussian Pm instead of the exact Eq. (1) inside Eq. (3) —
  /// isolates discretization error from Gaussian-approximation error.
  bool gaussian_pairwise = false;
};

/// P̄mt and metric, exactly as in Sec. 5.2.
struct DiscreteModelResult {
  double mean_pair_misranking = 0.0;
  double metric = 0.0;
};

/// Evaluates Eq. (3) by direct summation. Cost roughly
/// O(max_size^2 * t + max_size * min(max_size, ...)) — intended for tests.
[[nodiscard]] DiscreteModelResult evaluate_discrete_ranking_model(
    const DiscreteModelConfig& config);

}  // namespace flowrank::core
