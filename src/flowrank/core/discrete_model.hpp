// Exact discrete evaluation of the ranking model (Eqs. 1 and 3).
//
// This is the paper's "original problem" — binomial sums over integer
// packet counts — which it abandons for the Gaussian/continuous path
// because it took hours at Internet scale. Since the compute-layer
// rework it is fast enough to use as a first-class experiment axis:
// evaluate_discrete_ranking_model() is now a one-shot convenience shim
// over core::DiscreteModelContext (discrete_context.hpp), which builds
// the pairwise tables once and makes every further (n, t) evaluation
// near-free. Sweeps and the planner should hold a context directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "flowrank/dist/discretized.hpp"

namespace flowrank::core {

/// Configuration for the exact discrete ranking model.
struct DiscreteModelConfig {
  std::int64_t n = 0;  ///< total number of flows
  std::int64_t t = 0;  ///< top flows of interest
  double p = 0.0;      ///< sampling rate
  /// Size pmf; evaluation cost grows with the size support, so keep the
  /// distribution's effective support modest (<= max_size).
  std::shared_ptr<const dist::Discretized> size_pmf;
  /// Hard cap on the summed size support; the pmf tail beyond it must be
  /// negligible. Throws if the tail mass above it exceeds tail_tolerance.
  std::int64_t max_size = 4096;
  double tail_tolerance = 1e-6;
  /// Use the Gaussian Pm instead of the exact Eq. (1) inside Eq. (3) —
  /// isolates discretization error from Gaussian-approximation error.
  bool gaussian_pairwise = false;
  /// Gated support-windowed k-sum: when > 0, skip Bin(small, p) pmf mass
  /// up to this tolerance per Eq. (1) sum (half per tail). OFF by default
  /// — the canonical stream stays bit-identical. See
  /// DiscreteContextConfig::window_tolerance for the error bound.
  double window_tolerance = 0.0;
  /// Table-build parallelism on the shared exec::TaskPool (0 = all
  /// hardware threads); never changes results.
  std::size_t num_threads = 1;
};

/// P̄mt and metric, exactly as in Sec. 5.2.
struct DiscreteModelResult {
  double mean_pair_misranking = 0.0;
  double metric = 0.0;
};

/// One-shot evaluation: builds a DiscreteModelContext for the config and
/// evaluates it at (n, t). The build dominates (O(max_size^2) table work);
/// callers evaluating several (n, t) cells or planner probes should build
/// the context once instead.
[[nodiscard]] DiscreteModelResult evaluate_discrete_ranking_model(
    const DiscreteModelConfig& config);

}  // namespace flowrank::core
