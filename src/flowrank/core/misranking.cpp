#include "flowrank/core/misranking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flowrank/numeric/binomial.hpp"
#include "flowrank/numeric/special.hpp"

namespace flowrank::core {

namespace {
void check_args(std::int64_t s1, std::int64_t s2, double p) {
  if (s1 < 1 || s2 < 1) {
    throw std::invalid_argument("misranking: flow sizes must be >= 1 packet");
  }
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("misranking: p in [0,1]");
  }
}
}  // namespace

double misranking_exact(std::int64_t s1, std::int64_t s2, double p) {
  check_args(s1, s2, p);
  if (p == 0.0) return 1.0;  // nothing sampled: both zero, misranked
  if (p == 1.0) return 0.0;  // lossless sampling ranks perfectly
  if (s1 == s2) {
    // 1 - P{s1 = s2 != 0} = 1 - sum_{i=1}^{S} b_p(i,S)^2.
    const auto sweep = numeric::BinomialSweep::shared(s1, p);
    double agree = 0.0;
    for (std::int64_t i = std::max<std::int64_t>(1, sweep->lo()); i <= sweep->hi();
         ++i) {
      const double b = sweep->pmf(i);
      agree += b * b;
    }
    return 1.0 - agree;
  }
  const std::int64_t small = std::min(s1, s2);
  const std::int64_t big = std::max(s1, s2);
  // P{s_small >= s_big} = sum_i b_p(i, small) * P{s_big <= i}, with both
  // rows advanced by the memoized recurrence instead of one incomplete-beta
  // evaluation per term.
  const auto sweep_small = numeric::BinomialSweep::shared(small, p);
  const auto sweep_big = numeric::BinomialSweep::shared(big, p);
  double acc = 0.0;
  for (std::int64_t i = sweep_small->lo(); i <= sweep_small->hi(); ++i) {
    const double b = sweep_small->pmf(i);
    if (b == 0.0) continue;
    acc += b * sweep_big->cdf(i);
  }
  return std::min(acc, 1.0);
}

double misranking_gaussian(double s1, double s2, double p) {
  if (!(s1 > 0.0) || !(s2 > 0.0)) {
    throw std::invalid_argument("misranking_gaussian: sizes must be > 0");
  }
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("misranking_gaussian: p in (0,1]");
  }
  const double variance_scale = 2.0 * (1.0 / p - 1.0) * (s1 + s2);
  if (variance_scale == 0.0) {
    // p == 1: sampling is the identity.
    return s1 == s2 ? 0.5 : 0.0;
  }
  return 0.5 * numeric::erfc(std::abs(s2 - s1) / std::sqrt(variance_scale));
}

double misranking_hybrid(double s1, double s2, double p) {
  if (s1 > s2) std::swap(s1, s2);
  if (!(s1 > 0.0)) {
    throw std::invalid_argument("misranking_hybrid: sizes must be > 0");
  }
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("misranking_hybrid: p in (0,1]");
  }
  const double lambda1 = p * s1;
  if (lambda1 >= 50.0 || p == 1.0) {
    // Both sampled sizes are comfortably away from zero; the Normal
    // difference approximation (the paper's Eq. 2) is accurate here.
    return misranking_gaussian(s1, s2, p);
  }

  // Semi-exact: condition on the smaller flow's sampled size k (binomial,
  // a short effective support since lambda1 < 10) and accumulate
  // P{s_big <= k} with an incrementally-updated CDF.
  const auto n1 = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(s1)));
  const std::int64_t k_max = std::min<std::int64_t>(
      n1, static_cast<std::int64_t>(std::ceil(lambda1 + 12.0 * std::sqrt(lambda1 + 1.0) + 30.0)));

  // Smaller flow pmf, iterated via the binomial recurrence.
  double f1 = std::exp(static_cast<double>(n1) * std::log1p(-p));
  const double odds = p / (1.0 - p);

  // Larger flow CDF branch selection.
  const double mu2 = p * s2;
  const double var2 = p * (1.0 - p) * s2;
  const bool use_normal = var2 >= 400.0;
  const bool use_poisson = !use_normal && p <= 0.05;
  const auto n2 = std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(s2)));

  // Incremental state for the Poisson branch.
  double pois_term = std::exp(-mu2);
  double pois_cdf = pois_term;
  // Incremental state for the exact binomial branch.
  double bin_term = std::exp(static_cast<double>(n2) * std::log1p(-p));
  double bin_cdf = bin_term;

  double acc = 0.0;
  for (std::int64_t k = 0; k <= k_max; ++k) {
    double cdf2;
    if (use_normal) {
      cdf2 = numeric::normal_cdf((static_cast<double>(k) + 0.5 - mu2) /
                                 std::sqrt(var2));
    } else if (use_poisson) {
      cdf2 = pois_cdf;
    } else {
      cdf2 = k <= n2 ? bin_cdf : 1.0;
    }
    acc += f1 * std::min(cdf2, 1.0);

    // Advance all incremental states to k+1.
    if (k < n1) {
      f1 *= static_cast<double>(n1 - k) / static_cast<double>(k + 1) * odds;
    } else {
      f1 = 0.0;
    }
    pois_term *= mu2 / static_cast<double>(k + 1);
    pois_cdf += pois_term;
    if (k + 1 <= n2) {
      bin_term *= static_cast<double>(n2 - k) / static_cast<double>(k + 1) * odds;
      bin_cdf += bin_term;
    }
    if (f1 == 0.0) break;
  }
  return std::min(acc, 1.0);
}

double misranking_abs_error(std::int64_t s1, std::int64_t s2, double p) {
  return std::abs(misranking_exact(s1, s2, p) -
                  misranking_gaussian(static_cast<double>(s1),
                                      static_cast<double>(s2), p));
}

double misranking_vs_one_packet(std::int64_t s, double p) {
  if (s < 1) throw std::invalid_argument("misranking_vs_one_packet: s >= 1");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("misranking_vs_one_packet: p in [0,1]");
  }
  // (1-p)^{S-1} (1 - p + p^2 S), Sec. 3.1.
  return std::exp(static_cast<double>(s - 1) * std::log1p(-p)) *
         (1.0 - p + p * p * static_cast<double>(s));
}

}  // namespace flowrank::core
