#include "flowrank/core/discrete_context.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "flowrank/core/misranking.hpp"
#include "flowrank/exec/task_pool.hpp"
#include "flowrank/numeric/binomial.hpp"

namespace flowrank::core {

namespace {

// Why this file is fast where the old inline evaluation took ~13 s: the
// historical kernel recomputed every Bin(small, p) pmf term with the
// loop-carried recurrence b *= (small-k)/(k+1) * odds *inside* the Eq. (1)
// sum, so the whole O(S^3/6) triple loop was serialized on one ~18-cycle
// divide-multiply dependency chain. Here each pmf row is materialized once
// (O(S^2/2) recurrence steps total) into a packed triangular scratch
// buffer, and Eq. (1) becomes a contiguous dot product of that row against
// the larger flow's cached cdf row. Eight consecutive `small` lanes share
// one pass over the cdf row with eight independent accumulators, so the
// hot loop is bound by floating-point add throughput instead of the
// recurrence latency. Every per-lane addition still happens in strictly
// ascending k order with the exact expressions of the old code, so the
// results are bit-identical — only *independent* lanes interleave.

/// One row of Bin(s, p) pmf values b_p(k, s), k = 0..s: the same seed and
/// recurrence the pre-context code ran inline, so every stored value is
/// bit-identical to what the old incremental loops produced.
void fill_pmf_row(double* row, std::int64_t s, double p) {
  double b = std::pow(1.0 - p, static_cast<double>(s));  // k = 0
  const double odds = p / (1.0 - p);
  for (std::int64_t k = 0; k <= s; ++k) {
    row[static_cast<std::size_t>(k)] = b;
    if (k < s) {
      b *= static_cast<double>(s - k) / static_cast<double>(k + 1) * odds;
    }
  }
}

/// Continues `acc` with row[k] * cdf[k] terms for k in [k_lo, k_hi]
/// (empty when k_lo > k_hi), one add per k in strictly ascending order —
/// accumulating into the caller's running sum, never a fresh one, so the
/// additions happen in exactly the order of the old single-accumulator
/// loop. The 8-lane kernel below uses this for its ragged prologue and
/// epilogue parts around the shared core.
void dot_in_order(double& acc, const double* row, const double* cdf,
                  std::int64_t k_lo, std::int64_t k_hi) {
  for (std::int64_t k = k_lo; k <= k_hi; ++k) {
    acc += row[static_cast<std::size_t>(k)] * cdf[static_cast<std::size_t>(k)];
  }
}

// --- Eq. (1) shared-core kernels --------------------------------------------
//
// The table build's hot loop is, per group of 8 consecutive `small` lanes
// and one (or two) `large` cdf columns, acc[m] += tg[k*8 + m] * c[k] for
// k ascending, where tg is the transposed lane block (tg[k*8 + m] =
// b_p(k, small_m)). Every lane owns one accumulator, so lanes are fully
// independent — which lets them sit in SIMD vector lanes: packed IEEE-754
// multiplies and adds (mulpd/addpd and their AVX forms) compute each lane
// exactly as the scalar instructions do, so every kernel below produces
// bit-identical accumulators and the kernel choice is a pure speed
// decision, resolved once per process (the hash_batch dispatch pattern).
// x86-64 always has the SSE2 pair path; the AVX2 path is used when the
// CPU supports it. The function-level target attribute keeps the rest of
// the build on the default ISA, and since FMA is deliberately NOT enabled
// the compiler cannot contract the multiply-add — the determinism
// contract's "no reassociation, no contraction" rule holds in every
// variant. The scalar form is the portable reference for other ISAs.

#if defined(__x86_64__) || defined(_M_X64)
#define FLOWRANK_DISCRETE_HAVE_X86 1
#include <immintrin.h>
#endif

[[maybe_unused]] void pm_core1_scalar(const double* tg, std::int64_t k0,
                                      std::int64_t k1, const double* c0,
                                      double* acc) {
  double a0 = acc[0], a1 = acc[1], a2 = acc[2], a3 = acc[3];
  double a4 = acc[4], a5 = acc[5], a6 = acc[6], a7 = acc[7];
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const double ck = c0[static_cast<std::size_t>(k)];
    a0 += tk[0] * ck;
    a1 += tk[1] * ck;
    a2 += tk[2] * ck;
    a3 += tk[3] * ck;
    a4 += tk[4] * ck;
    a5 += tk[5] * ck;
    a6 += tk[6] * ck;
    a7 += tk[7] * ck;
  }
  acc[0] = a0;
  acc[1] = a1;
  acc[2] = a2;
  acc[3] = a3;
  acc[4] = a4;
  acc[5] = a5;
  acc[6] = a6;
  acc[7] = a7;
}

[[maybe_unused]] void pm_core2_scalar(const double* tg, std::int64_t k0,
                                      std::int64_t k1, const double* c0,
                                      const double* c1, double* acc_a,
                                      double* acc_b) {
  pm_core1_scalar(tg, k0, k1, c0, acc_a);
  pm_core1_scalar(tg, k0, k1, c1, acc_b);
}

#if defined(FLOWRANK_DISCRETE_HAVE_X86)

void pm_core1_sse2(const double* tg, std::int64_t k0, std::int64_t k1,
                   const double* c0, double* acc) {
  __m128d a01 = _mm_loadu_pd(acc);
  __m128d a23 = _mm_loadu_pd(acc + 2);
  __m128d a45 = _mm_loadu_pd(acc + 4);
  __m128d a67 = _mm_loadu_pd(acc + 6);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m128d ck = _mm_set1_pd(c0[static_cast<std::size_t>(k)]);
    a01 = _mm_add_pd(a01, _mm_mul_pd(_mm_loadu_pd(tk), ck));
    a23 = _mm_add_pd(a23, _mm_mul_pd(_mm_loadu_pd(tk + 2), ck));
    a45 = _mm_add_pd(a45, _mm_mul_pd(_mm_loadu_pd(tk + 4), ck));
    a67 = _mm_add_pd(a67, _mm_mul_pd(_mm_loadu_pd(tk + 6), ck));
  }
  _mm_storeu_pd(acc, a01);
  _mm_storeu_pd(acc + 2, a23);
  _mm_storeu_pd(acc + 4, a45);
  _mm_storeu_pd(acc + 6, a67);
}

void pm_core2_sse2(const double* tg, std::int64_t k0, std::int64_t k1,
                   const double* c0, const double* c1, double* acc_a,
                   double* acc_b) {
  __m128d a01 = _mm_loadu_pd(acc_a);
  __m128d a23 = _mm_loadu_pd(acc_a + 2);
  __m128d a45 = _mm_loadu_pd(acc_a + 4);
  __m128d a67 = _mm_loadu_pd(acc_a + 6);
  __m128d b01 = _mm_loadu_pd(acc_b);
  __m128d b23 = _mm_loadu_pd(acc_b + 2);
  __m128d b45 = _mm_loadu_pd(acc_b + 4);
  __m128d b67 = _mm_loadu_pd(acc_b + 6);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m128d ck0 = _mm_set1_pd(c0[static_cast<std::size_t>(k)]);
    const __m128d ck1 = _mm_set1_pd(c1[static_cast<std::size_t>(k)]);
    const __m128d t01 = _mm_loadu_pd(tk);
    const __m128d t23 = _mm_loadu_pd(tk + 2);
    const __m128d t45 = _mm_loadu_pd(tk + 4);
    const __m128d t67 = _mm_loadu_pd(tk + 6);
    a01 = _mm_add_pd(a01, _mm_mul_pd(t01, ck0));
    a23 = _mm_add_pd(a23, _mm_mul_pd(t23, ck0));
    a45 = _mm_add_pd(a45, _mm_mul_pd(t45, ck0));
    a67 = _mm_add_pd(a67, _mm_mul_pd(t67, ck0));
    b01 = _mm_add_pd(b01, _mm_mul_pd(t01, ck1));
    b23 = _mm_add_pd(b23, _mm_mul_pd(t23, ck1));
    b45 = _mm_add_pd(b45, _mm_mul_pd(t45, ck1));
    b67 = _mm_add_pd(b67, _mm_mul_pd(t67, ck1));
  }
  _mm_storeu_pd(acc_a, a01);
  _mm_storeu_pd(acc_a + 2, a23);
  _mm_storeu_pd(acc_a + 4, a45);
  _mm_storeu_pd(acc_a + 6, a67);
  _mm_storeu_pd(acc_b, b01);
  _mm_storeu_pd(acc_b + 2, b23);
  _mm_storeu_pd(acc_b + 4, b45);
  _mm_storeu_pd(acc_b + 6, b67);
}

__attribute__((target("avx2"))) void pm_core1_avx2(const double* tg,
                                                   std::int64_t k0,
                                                   std::int64_t k1,
                                                   const double* c0,
                                                   double* acc) {
  __m256d a03 = _mm256_loadu_pd(acc);
  __m256d a47 = _mm256_loadu_pd(acc + 4);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m256d ck = _mm256_broadcast_sd(c0 + k);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(_mm256_loadu_pd(tk), ck));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(_mm256_loadu_pd(tk + 4), ck));
  }
  _mm256_storeu_pd(acc, a03);
  _mm256_storeu_pd(acc + 4, a47);
}

__attribute__((target("avx2"))) void pm_core2_avx2(
    const double* tg, std::int64_t k0, std::int64_t k1, const double* c0,
    const double* c1, double* acc_a, double* acc_b) {
  __m256d a03 = _mm256_loadu_pd(acc_a);
  __m256d a47 = _mm256_loadu_pd(acc_a + 4);
  __m256d b03 = _mm256_loadu_pd(acc_b);
  __m256d b47 = _mm256_loadu_pd(acc_b + 4);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m256d t03 = _mm256_loadu_pd(tk);
    const __m256d t47 = _mm256_loadu_pd(tk + 4);
    const __m256d ck0 = _mm256_broadcast_sd(c0 + k);
    const __m256d ck1 = _mm256_broadcast_sd(c1 + k);
    a03 = _mm256_add_pd(a03, _mm256_mul_pd(t03, ck0));
    a47 = _mm256_add_pd(a47, _mm256_mul_pd(t47, ck0));
    b03 = _mm256_add_pd(b03, _mm256_mul_pd(t03, ck1));
    b47 = _mm256_add_pd(b47, _mm256_mul_pd(t47, ck1));
  }
  _mm256_storeu_pd(acc_a, a03);
  _mm256_storeu_pd(acc_a + 4, a47);
  _mm256_storeu_pd(acc_b, b03);
  _mm256_storeu_pd(acc_b + 4, b47);
}

// AVX-512F covers the whole 8-lane group with a single accumulator
// register. Unlike AVX2, the AVX-512F ISA *does* include fused
// multiply-add encodings, so contraction of the separate mul/add
// intrinsics below must be forbidden explicitly to keep each lane's
// arithmetic bit-identical to the scalar path.
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
pm_core1_avx512(const double* tg, std::int64_t k0, std::int64_t k1,
                const double* c0, double* acc) {
  __m512d a = _mm512_loadu_pd(acc);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m512d ck = _mm512_set1_pd(c0[k]);
    a = _mm512_add_pd(a, _mm512_mul_pd(_mm512_loadu_pd(tk), ck));
  }
  _mm512_storeu_pd(acc, a);
}

__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
pm_core2_avx512(const double* tg, std::int64_t k0, std::int64_t k1,
                const double* c0, const double* c1, double* acc_a,
                double* acc_b) {
  __m512d a = _mm512_loadu_pd(acc_a);
  __m512d b = _mm512_loadu_pd(acc_b);
  const double* tk = tg + static_cast<std::size_t>(k0) * 8;
  for (std::int64_t k = k0; k <= k1; ++k, tk += 8) {
    const __m512d t = _mm512_loadu_pd(tk);
    b = _mm512_add_pd(b, _mm512_mul_pd(t, _mm512_set1_pd(c1[k])));
    a = _mm512_add_pd(a, _mm512_mul_pd(t, _mm512_set1_pd(c0[k])));
  }
  _mm512_storeu_pd(acc_a, a);
  _mm512_storeu_pd(acc_b, b);
}

#endif  // FLOWRANK_DISCRETE_HAVE_X86

using Core1Fn = void (*)(const double*, std::int64_t, std::int64_t,
                         const double*, double*);
using Core2Fn = void (*)(const double*, std::int64_t, std::int64_t,
                         const double*, const double*, double*, double*);

struct CoreKernels {
  Core1Fn one;
  Core2Fn two;
};

const CoreKernels& core_kernels() {
  static const CoreKernels kernels = [] {
#if defined(FLOWRANK_DISCRETE_HAVE_X86)
    if (__builtin_cpu_supports("avx512f")) {
      return CoreKernels{pm_core1_avx512, pm_core2_avx512};
    }
    if (__builtin_cpu_supports("avx2")) {
      return CoreKernels{pm_core1_avx2, pm_core2_avx2};
    }
    return CoreKernels{pm_core1_sse2, pm_core2_sse2};
#else
    return CoreKernels{pm_core1_scalar, pm_core2_scalar};
#endif
  }();
  return kernels;
}

/// Eq. (1) for up to 8 consecutive `small` lanes against one cdf row `c`:
/// out[m] = clamp(sum_k lane_row[m][k] * c[k]) over lane m's k range.
/// `tg` is a transposed lane-major copy of the 8 rows (tg[k*8 + m] =
/// lane_row[m][k], exact bit copies), so the shared core reads one
/// contiguous cache line per k — a form the auto-vectorizer handles with
/// baseline SSE2 — instead of touching eight distinct rows. Lane k-ranges
/// differ (by the lane's own upper bound `small`, and by per-size windows
/// when gated), so each lane runs a scalar prologue [k_lo, K0) and
/// epilogue (K1, k_hi] around the shared [K0, K1] core with 8 independent
/// accumulators — every lane's adds stay in ascending k order.
void pm_lane_block(const double* tg, const double* const* lane_row,
                   const std::int64_t* klo, const std::int64_t* khi,
                   std::int64_t lanes, const double* c, double* out) {
  const std::int64_t K0 = *std::max_element(klo, klo + lanes);
  const std::int64_t K1 = *std::min_element(khi, khi + lanes);
  if (lanes < 8 || K0 > K1) {
    // Ragged tail block, or no common core (degenerate windows): plain
    // scalar lanes.
    for (std::int64_t m = 0; m < lanes; ++m) {
      double acc = 0.0;
      dot_in_order(acc, lane_row[m], c, klo[m], khi[m]);
      out[m] = acc < 1.0 ? acc : 1.0;
    }
    return;
  }
  // Ragged per-lane prologue [klo, K0) and epilogue (K1, khi] run scalar
  // around the dispatched [K0, K1] core; the accumulator array is carried
  // through by exact value, so each lane is still one running sum in
  // strictly ascending k order.
  double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::int64_t m = 0; m < 8; ++m) {
    dot_in_order(acc[m], lane_row[m], c, klo[m], K0 - 1);
  }
  core_kernels().one(tg, K0, K1, c, acc);
  for (std::int64_t m = 0; m < 8; ++m) {
    dot_in_order(acc[m], lane_row[m], c, K1 + 1, khi[m]);
    out[m] = acc[m] < 1.0 ? acc[m] : 1.0;
  }
}

/// The paired-column variant: the same 8 lanes against TWO cdf rows
/// c0/c1 (consecutive `large` values) in one pass, GEMM-style register
/// blocking. Each transposed 64-byte lane line now feeds 16 multiply-adds
/// instead of 8, halving load pressure per term — the dominant cost once
/// rows are L2-resident. The two output cells per lane use disjoint
/// accumulators, and every lane still sums in strictly ascending k order
/// with the canonical expressions, so results stay bit-identical; only
/// which independent cells proceed in lockstep changes. Callers must
/// guarantee all 8 lanes lie strictly below BOTH larges.
void pm_lane_block2(const double* tg, const double* const* lane_row,
                    const std::int64_t* klo, const std::int64_t* khi,
                    const double* c0, const double* c1, double* out0,
                    double* out1) {
  const std::int64_t K0 = *std::max_element(klo, klo + 8);
  const std::int64_t K1 = *std::min_element(khi, khi + 8);
  if (K0 > K1) {  // degenerate windows: no shared core
    for (std::int64_t m = 0; m < 8; ++m) {
      double acc0 = 0.0, acc1 = 0.0;
      dot_in_order(acc0, lane_row[m], c0, klo[m], khi[m]);
      dot_in_order(acc1, lane_row[m], c1, klo[m], khi[m]);
      out0[m] = acc0 < 1.0 ? acc0 : 1.0;
      out1[m] = acc1 < 1.0 ? acc1 : 1.0;
    }
    return;
  }
  double acc_a[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  double acc_b[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  for (std::int64_t m = 0; m < 8; ++m) {
    dot_in_order(acc_a[m], lane_row[m], c0, klo[m], K0 - 1);
    dot_in_order(acc_b[m], lane_row[m], c1, klo[m], K0 - 1);
  }
  core_kernels().two(tg, K0, K1, c0, c1, acc_a, acc_b);
  for (std::int64_t m = 0; m < 8; ++m) {
    dot_in_order(acc_a[m], lane_row[m], c0, K1 + 1, khi[m]);
    dot_in_order(acc_b[m], lane_row[m], c1, K1 + 1, khi[m]);
    out0[m] = acc_a[m] < 1.0 ? acc_a[m] : 1.0;
    out1[m] = acc_b[m] < 1.0 ? acc_b[m] : 1.0;
  }
}

}  // namespace

DiscreteModelContext::DiscreteModelContext(const DiscreteContextConfig& config) {
  if (!config.size_pmf) {
    throw std::invalid_argument("discrete model: size_pmf is required");
  }
  if (!(config.p > 0.0 && config.p < 1.0)) {
    throw std::invalid_argument("discrete model: requires p in (0,1)");
  }
  if (!(config.window_tolerance >= 0.0 && config.window_tolerance < 0.1)) {
    throw std::invalid_argument(
        "discrete model: window tolerance is a skipped pmf mass in [0, 0.1), "
        "not a time window");
  }
  const auto& pmf_src = *config.size_pmf;
  const std::int64_t lo = pmf_src.min_packets();
  const std::int64_t hi = config.max_size;
  if (hi <= lo) throw std::invalid_argument("discrete model: max_size too small");
  const double tail = pmf_src.ccdf_geq(hi + 1);
  if (tail > config.tail_tolerance) {
    throw std::invalid_argument(
        "discrete model: pmf tail above max_size exceeds tolerance; "
        "increase max_size or lighten the tail");
  }

  p_ = config.p;
  window_tolerance_ = config.window_tolerance;
  lo_ = lo;
  hi_ = hi;
  const auto count = static_cast<std::size_t>(hi - lo + 1);

  pmf_.resize(count);
  ccdf_.resize(count);
  for (std::int64_t i = lo; i <= hi; ++i) {
    pmf_[static_cast<std::size_t>(i - lo)] = pmf_src.pmf(i);
    ccdf_[static_cast<std::size_t>(i - lo)] = pmf_src.ccdf_geq(i);
  }

  const std::size_t threads = exec::TaskPool::resolve_parallelism(config.num_threads);
  auto& pool = exec::TaskPool::shared();
  if (threads > 1) pool.ensure_workers(threads - 1);

  // Build scratch (freed before the constructor returns; the context
  // itself keeps only O(S) state):
  //  * rows    — packed triangular Bin(s, p) pmf rows, row s = b_p(0..s, s),
  //  * pm      — packed triangular Pm(small, large) for lo <= small < large,
  //              row `large` indexed by small - lo.
  std::vector<std::size_t> row_off(count);
  std::vector<std::size_t> pm_off(count);
  std::size_t row_total = 0, pm_total = 0;
  for (std::size_t r = 0; r < count; ++r) {
    row_off[r] = row_total;
    pm_off[r] = pm_total;
    row_total += static_cast<std::size_t>(lo) + r + 1;
    pm_total += r;
  }
  std::vector<double> pm(pm_total);
  std::vector<double> pm_equal(count);

  std::vector<double> rows;
  // Per-size k-sum windows (full range unless the gate is on).
  std::vector<std::int64_t> win_lo(count, 0), win_hi(count);
  if (!config.gaussian_pairwise) {
    rows.resize(row_total);
    pool.parallel_for(
        count,
        [&](std::size_t r) {
          const std::int64_t s = lo + static_cast<std::int64_t>(r);
          fill_pmf_row(rows.data() + row_off[r], s, p_);
          std::int64_t k_lo = 0, k_hi = s;
          if (window_tolerance_ > 0.0) {
            // Central window of Bin(s, p): trim each tail while the
            // cumulative trimmed mass stays within tolerance/2. The
            // window is never empty (the k_lo scan stops before s).
            const double* row = rows.data() + row_off[r];
            const double half = 0.5 * window_tolerance_;
            double cut = 0.0;
            while (k_lo < s && cut + row[k_lo] <= half) {
              cut += row[k_lo];
              ++k_lo;
            }
            cut = 0.0;
            while (k_hi > k_lo && cut + row[k_hi] <= half) {
              cut += row[k_hi];
              --k_hi;
            }
          }
          win_lo[r] = k_lo;
          win_hi[r] = k_hi;
        },
        threads);
  }

  if (config.gaussian_pairwise) {
    // Gaussian flavor: no pmf rows or cdf needed; rows are independent.
    pool.parallel_for(
        count,
        [&](std::size_t r) {
          const std::int64_t large = lo + static_cast<std::int64_t>(r);
          double* out = pm.data() + pm_off[r];
          pm_equal[r] = misranking_gaussian(static_cast<double>(large),
                                            static_cast<double>(large), p_);
          for (std::int64_t small = lo; small < large; ++small) {
            out[static_cast<std::size_t>(small - lo)] = misranking_gaussian(
                static_cast<double>(small), static_cast<double>(large), p_);
          }
        },
        threads);
  } else {
    // cdf rows of every larger flow, materialized once (same packed
    // layout as `rows`): running prefix sums of the pmf row, clamped at
    // 1 — same values, same order as the old inline loop. The index
    // `large` entry is never read (small < large); it is set to 1.0 as
    // the old code did. The equal-size diagonal (1 - sum_{i>=1}
    // b_p(i, large)^2, ascending i exactly as before) rides along; it is
    // not an Eq. (1) k-sum, so the window gate never touches it.
    std::vector<double> cdf_rows(row_total);
    pool.parallel_for(
        count,
        [&](std::size_t r) {
          const std::int64_t large = lo + static_cast<std::int64_t>(r);
          const double* lrow = rows.data() + row_off[r];
          double* crow = cdf_rows.data() + row_off[r];
          double agree = 0.0;
          for (std::int64_t i = 1; i <= large; ++i) {
            const double b = lrow[static_cast<std::size_t>(i)];
            agree += b * b;
          }
          pm_equal[r] = 1.0 - agree;
          double running = 0.0;
          for (std::int64_t k = 0; k < large; ++k) {
            running += lrow[static_cast<std::size_t>(k)];
            crow[static_cast<std::size_t>(k)] = running < 1.0 ? running : 1.0;
          }
          crow[static_cast<std::size_t>(large)] = 1.0;
        },
        threads);

    // Eq. (1) over the triangle, tiled for cache locality: a naive
    // per-`large` sweep re-streams every smaller pmf row from DRAM
    // (O(S^3/6) * 8 bytes ~ tens of GB at S = 3000, which measured
    // memory-bound). Instead each task owns a tile of kTilePmRows
    // consecutive `small` rows — small enough to stay resident in L2 —
    // and streams every cdf row through it once, so DRAM traffic drops
    // to O(S^2 * S / kTilePmRows) bytes. Tiles write disjoint column
    // ranges of each pm row; every (small, large) cell is still computed
    // by exactly one task with the sequential per-lane arithmetic of
    // pm_lane_block.
    constexpr std::int64_t kTilePmRows = 32;  // 32 rows * S * 8B fits L2
    const auto small_count = static_cast<std::int64_t>(count) - 1;  // lo..hi-1
    const auto tiles = static_cast<std::size_t>(
        (small_count + kTilePmRows - 1) / kTilePmRows);
    pool.parallel_for(
        tiles,
        [&](std::size_t tile) {
          const std::int64_t s0 =
              lo + static_cast<std::int64_t>(tile) * kTilePmRows;
          const std::int64_t s_end = std::min<std::int64_t>(s0 + kTilePmRows, hi);
          // Transposed lane-major copies of the tile's pmf rows, built
          // once per tile and reused for every `large`: chunk g holds
          // tg[k*8 + m] = b_p(k, g0 + m). Exact bit copies, so the
          // lane-block arithmetic is unchanged; lanes past a row's end
          // stay zero and are never read (the shared core stops at the
          // group's min k_hi).
          const std::int64_t n_groups = (s_end - s0 + 7) / 8;
          std::vector<std::size_t> tg_off(static_cast<std::size_t>(n_groups));
          std::vector<std::int64_t> tg_kmax(static_cast<std::size_t>(n_groups));
          std::size_t tg_total = 0;
          for (std::int64_t g = 0; g < n_groups; ++g) {
            const std::int64_t g0 = s0 + g * 8;
            const std::int64_t gl = std::min<std::int64_t>(8, s_end - g0);
            std::int64_t kmax = 0;
            for (std::int64_t m = 0; m < gl; ++m) {
              kmax = std::max(kmax, win_hi[static_cast<std::size_t>(g0 - lo + m)]);
            }
            tg_off[static_cast<std::size_t>(g)] = tg_total;
            tg_kmax[static_cast<std::size_t>(g)] = kmax;
            tg_total += static_cast<std::size_t>(kmax + 1) * 8;
          }
          std::vector<double> tg_buf(tg_total, 0.0);
          for (std::int64_t g = 0; g < n_groups; ++g) {
            const std::int64_t g0 = s0 + g * 8;
            const std::int64_t gl = std::min<std::int64_t>(8, s_end - g0);
            double* tg = tg_buf.data() + tg_off[static_cast<std::size_t>(g)];
            for (std::int64_t m = 0; m < gl; ++m) {
              const auto sr = static_cast<std::size_t>(g0 - lo + m);
              const double* row = rows.data() + row_off[sr];
              const std::int64_t k_end = std::min<std::int64_t>(
                  g0 + m, tg_kmax[static_cast<std::size_t>(g)]);
              for (std::int64_t k = 0; k <= k_end; ++k) {
                tg[static_cast<std::size_t>(k) * 8 +
                   static_cast<std::size_t>(m)] =
                    row[static_cast<std::size_t>(k)];
              }
            }
          }
          // Consecutive `large` columns are processed in pairs wherever
          // every lane of a group lies strictly below both — each lane
          // line then feeds both columns' accumulators (pm_lane_block2).
          // Boundary groups and an unpaired final column fall back to the
          // single-column kernel. Cells are mutually independent, so the
          // pairing changes only which of them proceed in lockstep.
          for (std::int64_t large = s0 + 1; large <= hi;) {
            const bool paired = large + 1 <= hi;
            const auto lr0 = static_cast<std::size_t>(large - lo);
            const double* c0 = cdf_rows.data() + row_off[lr0];
            double* out0 = pm.data() + pm_off[lr0];
            const double* c1 = nullptr;
            double* out1 = nullptr;
            if (paired) {
              c1 = cdf_rows.data() + row_off[lr0 + 1];
              out1 = pm.data() + pm_off[lr0 + 1];
            }
            const std::int64_t g_end0 = std::min(s_end, large);
            const std::int64_t g_end1 =
                paired ? std::min(s_end, large + 1) : g_end0;
            for (std::int64_t g0 = s0; g0 < g_end1; g0 += 8) {
              std::int64_t klo[8], khi[8];
              const double* lane_row[8];
              const std::int64_t lanes_here =
                  std::min<std::int64_t>(8, g_end1 - g0);
              for (std::int64_t m = 0; m < lanes_here; ++m) {
                const auto sr = static_cast<std::size_t>(g0 - lo + m);
                lane_row[m] = rows.data() + row_off[sr];
                klo[m] = win_lo[sr];
                khi[m] = win_hi[sr];
              }
              const double* tg =
                  tg_buf.data() + tg_off[static_cast<std::size_t>((g0 - s0) / 8)];
              double* const o0 = out0 + static_cast<std::size_t>(g0 - lo);
              if (paired && g0 + 8 <= g_end0) {
                pm_lane_block2(tg, lane_row, klo, khi, c0, c1, o0,
                               out1 + static_cast<std::size_t>(g0 - lo));
                continue;
              }
              if (g0 < g_end0) {
                pm_lane_block(tg, lane_row, klo, khi,
                              std::min<std::int64_t>(8, g_end0 - g0), c0, o0);
              }
              if (paired) {
                pm_lane_block(tg, lane_row, klo, khi, lanes_here, c1,
                              out1 + static_cast<std::size_t>(g0 - lo));
              }
            }
            large += paired ? 2 : 1;
          }
        },
        threads);
  }

  // Reduce the table to the Eq. (3) partial sums with the old code's
  // exact per-i summation order (ascending j throughout). Work is
  // blocked by i so the B_i column walks read each pm row once per
  // block, contiguously, instead of one strided cache miss per term.
  a_sum_.assign(count, 0.0);
  b_sum_.assign(count, 0.0);
  constexpr std::size_t kTileSums = 64;
  const std::size_t sum_tiles = (count + kTileSums - 1) / kTileSums;
  pool.parallel_for(
      sum_tiles,
      [&](std::size_t tile) {
        const std::size_t r0 = tile * kTileSums;
        const std::size_t r1 = std::min(r0 + kTileSums, count);
        for (std::size_t r = r0; r < r1; ++r) {
          const double* row = pm.data() + pm_off[r];
          double a_sum = 0.0;
          for (std::size_t j = 0; j < r; ++j) {
            a_sum += pmf_[j] * row[j];
          }
          a_sum_[r] = a_sum;
          b_sum_[r] = pmf_[r] * pm_equal[r];
        }
        // B_i tail sums, row-major: for fixed i the terms still arrive
        // in ascending j order (j is the outer loop), bit-identical to
        // the old per-i column walk.
        for (std::size_t j = r0 + 1; j < count; ++j) {
          const double* row = pm.data() + pm_off[j];
          const double pj = pmf_[j];
          const std::size_t i_end = std::min(j, r1);
          for (std::size_t i = r0; i < i_end; ++i) {
            b_sum_[i] += pj * row[i];
          }
        }
      },
      threads);
}

DiscreteModelResult DiscreteModelContext::evaluate(std::int64_t n,
                                                   std::int64_t t) const {
  if (t < 1 || t > n) {
    throw std::invalid_argument("discrete model: requires 1 <= t <= N");
  }
  // Eq. (3) after the Pt(i,t,N) cancellation:
  //   P̄mt = (N/t) sum_i p_i [ Pt(i,t,N-1) A_i + Pt(i,t-1,N-1) B_i ]
  // with binomials over N-2 trials inside Pt(.,.,N-1).
  const std::int64_t trials = n - 2;
  double pbar = 0.0;
  const std::size_t count = pmf_.size();
  for (std::size_t r = 0; r < count; ++r) {
    const double pi_mass = pmf_[r];
    if (pi_mass <= 0.0) continue;
    const double tail_prob = ccdf_[r];
    const double pt_t = numeric::binomial_cdf(t - 1, trials, tail_prob);
    const double pt_tm1 = numeric::binomial_cdf(t - 2, trials, tail_prob);
    pbar += pi_mass * (pt_t * a_sum_[r] + pt_tm1 * b_sum_[r]);
  }
  pbar *= static_cast<double>(n) / static_cast<double>(t);

  DiscreteModelResult result;
  result.mean_pair_misranking = pbar;
  result.metric = 0.5 * static_cast<double>(2 * n - t - 1) *
                  static_cast<double>(t) * pbar;
  return result;
}

}  // namespace flowrank::core
