#include "flowrank/core/model_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flowrank/numeric/binomial.hpp"
#include "flowrank/numeric/quadrature.hpp"

namespace flowrank::core {

double top_probability(double y, std::int64_t t, std::int64_t n,
                       const QuadratureOptions& opts) {
  if (t <= 0) return 0.0;
  if (y <= 0.0) return 1.0;
  if (y >= 1.0) return t >= n + 1 ? 1.0 : 0.0;
  if (n - 1 <= 0) return 1.0;
  if (n >= opts.poisson_threshold && y < 0.01) {
    return numeric::poisson_cdf(t - 1, static_cast<double>(n - 1) * y);
  }
  return numeric::binomial_cdf(t - 1, n - 1, y);
}

double outer_z_max(std::int64_t t, const QuadratureOptions& opts) {
  const double td = static_cast<double>(t);
  return td + 20.0 * std::sqrt(td) + opts.z_max_pad;
}

double integrate_toward(const std::function<double(double)>& f, double lo, double hi,
                        bool focus_on_lo, const QuadratureOptions& opts) {
  if (!(hi > lo)) return 0.0;
  const double width = hi - lo;
  const double eps = opts.tail_epsilon;
  // Geometric panel edges in distance-from-focus, from eps*width to width.
  const int panels = opts.inner_panels;
  const double log_ratio = std::log(1.0 / eps) / panels;
  double acc = 0.0;
  double prev = eps * width;
  // Sliver adjacent to the focus: integrand there is bounded (Pm <= 1), so
  // one straight panel suffices.
  {
    const double a = focus_on_lo ? lo : hi - prev;
    const double b = focus_on_lo ? lo + prev : hi;
    acc += numeric::integrate_gl(f, a, b, 4);
  }
  for (int i = 1; i <= panels; ++i) {
    const double next = i == panels ? width : eps * width * std::exp(log_ratio * i);
    const double a = focus_on_lo ? lo + prev : hi - next;
    const double b = focus_on_lo ? lo + next : hi - prev;
    acc += numeric::integrate_gl(f, a, b, opts.inner_order);
    prev = next;
  }
  return acc;
}

}  // namespace flowrank::core
