// Build-once compute context for the exact discrete ranking model.
//
// The expensive part of Eq. (3) — the triangular pairwise-misranking
// table Pm(small, large) plus the equal-size diagonal, and their pmf-
// weighted partial sums A_i / B_i — depends only on (size pmf, p,
// max_size, pairwise flavor). It is independent of both the population N
// and the list size t. DiscreteModelContext builds all of it once; every
// (n, t) evaluation afterwards is an O(S) fold of cached sums against two
// binomial cdf terms per support point, so a whole (n, t) sweep costs one
// table build plus near-free marginal cells.
//
// Determinism contract (the repo's standing rule): the table rows are
// independent, so they are built on the shared exec::TaskPool, but the
// per-row arithmetic is sequential and uses exactly the same seed,
// recurrence and summation order as the historical single-threaded
// implementation — results are bit-identical at any thread count and to
// the pre-context code. The one stream-changing knob, the support-
// windowed k-sum, is OFF by default and gated behind window_tolerance
// (PR 3 / PR 9 precedent), with its approximation error bounded below.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "flowrank/core/discrete_model.hpp"
#include "flowrank/dist/discretized.hpp"

namespace flowrank::core {

/// The (n, t)-independent part of DiscreteModelConfig: everything the
/// pairwise tables are keyed on.
struct DiscreteContextConfig {
  double p = 0.0;  ///< sampling rate, in (0,1)
  std::shared_ptr<const dist::Discretized> size_pmf;
  /// Hard cap on the summed size support; the pmf tail beyond it must be
  /// negligible. Throws if the tail mass above it exceeds tail_tolerance.
  std::int64_t max_size = 4096;
  double tail_tolerance = 1e-6;
  /// Use the Gaussian Pm instead of the exact Eq. (1) inside Eq. (3) —
  /// isolates discretization error from Gaussian-approximation error.
  bool gaussian_pairwise = false;
  /// Gated approximation: when > 0, each Eq. (1) k-sum is restricted to
  /// the central window of Bin(small, p) that leaves at most
  /// window_tolerance pmf mass outside (half in each tail). 0 (the
  /// default) keeps the full-range exact sums — the canonical stream.
  /// The induced error is one-sided (the sum only loses non-negative
  /// terms): per pair at most window_tolerance before clamping, hence at
  /// most 2 * window_tolerance * N / t on mean_pair_misranking.
  double window_tolerance = 0.0;
  /// Table-build parallelism on the shared exec::TaskPool (0 = all
  /// hardware threads). Never changes results — see the determinism
  /// contract above.
  std::size_t num_threads = 1;
};

/// The reusable tables. Immutable once built; evaluate() is const and
/// thread-safe, so one context can serve concurrent sweep cells.
class DiscreteModelContext {
 public:
  /// Builds the pairwise table and reduces it to the per-size partial
  /// sums. Throws std::invalid_argument on config errors (missing pmf,
  /// p outside (0,1), support cap too small or tail above tolerance).
  explicit DiscreteModelContext(const DiscreteContextConfig& config);

  /// Eq. (3) fold over the cached sums: O(S) binomial cdf evaluations.
  /// Throws std::invalid_argument unless 1 <= t <= n.
  [[nodiscard]] DiscreteModelResult evaluate(std::int64_t n, std::int64_t t) const;

  [[nodiscard]] double p() const noexcept { return p_; }
  [[nodiscard]] std::int64_t min_size() const noexcept { return lo_; }
  [[nodiscard]] std::int64_t max_size() const noexcept { return hi_; }
  [[nodiscard]] bool windowed() const noexcept { return window_tolerance_ > 0.0; }

  /// Cached reductions, indexed by size - min_size() — the determinism
  /// tests compare these across thread counts bit for bit.
  /// A_i = sum_{j < i} pmf(j) Pm(j, i):
  [[nodiscard]] const std::vector<double>& smaller_pair_sums() const noexcept {
    return a_sum_;
  }
  /// B_i = pmf(i) Pm(i, i) + sum_{j > i} pmf(j) Pm(i, j):
  [[nodiscard]] const std::vector<double>& larger_pair_sums() const noexcept {
    return b_sum_;
  }

 private:
  double p_ = 0.0;
  double window_tolerance_ = 0.0;
  std::int64_t lo_ = 0;  ///< smallest size with positive mass
  std::int64_t hi_ = 0;  ///< support cap (config.max_size)
  std::vector<double> pmf_, ccdf_;    ///< size pmf / P{size >= i} rows
  std::vector<double> a_sum_, b_sum_;  ///< Eq. (3) partial sums
};

}  // namespace flowrank::core
