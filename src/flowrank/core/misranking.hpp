// The paper's basic model (Sec. 3): probability of misranking two flows of
// known sizes under Bernoulli packet sampling, plus the Gaussian
// approximation (Sec. 4) that makes the general models tractable.
#pragma once

#include <cstdint>

namespace flowrank::core {

/// Exact misranking probability, Eq. (1):
///   Pm(S1,S2) = P{s1 >= s2}  for S1 < S2,  s_k ~ Bin(S_k, p).
/// For S1 == S2 the paper's convention applies:
///   Pm = P{s1 != s2 or s1 = s2 = 0} = 1 - sum_{i>=1} b_p(i,S)^2.
/// Symmetric in (S1, S2). Cost O(min(S1,S2)) binomial-cdf evaluations.
/// Throws std::invalid_argument unless S1,S2 >= 1 and p in [0,1].
[[nodiscard]] double misranking_exact(std::int64_t s1, std::int64_t s2, double p);

/// Gaussian approximation, Eq. (2):
///   Pm(S1,S2) = (1/2) erfc( |S2-S1| / sqrt(2 (1/p - 1)(S1+S2)) ).
/// Continuous in the sizes; valid when p*max(S1,S2) is at least a few
/// packets. At p == 1 returns 0 for distinct sizes (sampling is lossless).
[[nodiscard]] double misranking_gaussian(double s1, double s2, double p);

/// Absolute error |exact - gaussian| on integer sizes (Fig. 3).
[[nodiscard]] double misranking_abs_error(std::int64_t s1, std::int64_t s2, double p);

/// Hybrid pairwise misranking probability (library extension, not in the
/// paper): uses the Gaussian form where it is accurate (expected sampled
/// size of the smaller flow >= ~10) and a semi-exact conditional sum
/// otherwise. Rationale: for pairs (huge flow, tiny flow) at low p the
/// Gaussian left tail overestimates P{s_big <= s_small} by orders of
/// magnitude — summed over the ~N tiny companions this inflates the
/// ranking metric at Internet scale (see EXPERIMENTS.md, "Gaussian tail
/// bias"). Continuous sizes; accepts s1, s2 in either order.
[[nodiscard]] double misranking_hybrid(double s1, double s2, double p);

/// Minimum achievable misranking probability for a flow of size S: compare
/// against a 1-packet flow (Sec. 3.1): (1-p)^{S-1} (1 - p + p^2 S).
[[nodiscard]] double misranking_vs_one_packet(std::int64_t s, double p);

}  // namespace flowrank::core
