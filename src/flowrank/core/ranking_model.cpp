#include "flowrank/core/ranking_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "flowrank/core/misranking.hpp"
#include "flowrank/numeric/quadrature.hpp"

namespace flowrank::core {

namespace {

void check_config(const RankingModelConfig& config) {
  if (!config.size_dist) {
    throw std::invalid_argument("ranking model: size_dist is required");
  }
  if (config.t < 1 || config.t > config.n) {
    throw std::invalid_argument("ranking model: requires 1 <= t <= N");
  }
  if (!(config.p > 0.0 && config.p <= 1.0)) {
    throw std::invalid_argument("ranking model: requires p in (0,1]");
  }
}

}  // namespace

RankingModelResult evaluate_ranking_model(const RankingModelConfig& config) {
  check_config(config);
  const auto& dist = *config.size_dist;
  const auto n = config.n;
  const auto t = config.t;
  const double p = config.p;
  const auto& quad = config.quad;

  // Sizes as a function of tail rank y = F̄(x).
  const auto size_at = [&dist](double y) { return dist.tail_quantile(y); };
  const auto pm = [&config](double a, double b, double rate) {
    return config.pairwise == PairwiseModel::kGaussian
               ? misranking_gaussian(a, b, rate)
               : misranking_hybrid(a, b, rate);
  };

  // Eq. (3), continuous, after the Pt(i,t,N) cancellation (see DESIGN.md):
  //   P̄mt = (N/t) ∫_0^1 [ Pt(y;t,N-1) A(y) + Pt(y;t-1,N-1) B(y) ] dy
  //   A(y) = ∫_y^1 Pm(x(v), x(y)) dv   (companion smaller than x(y))
  //   B(y) = ∫_0^y Pm(x(y), x(v)) dv   (companion at least as large)
  const auto integrand = [&](double y) {
    const double x = size_at(y);
    // Pt(i,t,N-1) in the paper is a binomial over N-2 other flows;
    // top_probability(y,t,m) computes P{Bin(m-1,y) <= t-1}, so pass m = N-1.
    const double pt_t_nm1 = top_probability(y, t, n - 1, quad);
    const double pt_tm1_nm1 = top_probability(y, t - 1, n - 1, quad);
    if (pt_t_nm1 <= 0.0 && pt_tm1_nm1 <= 0.0) return 0.0;

    double a_term = 0.0;
    if (pt_t_nm1 > 0.0) {
      const auto pm_smaller = [&](double v) { return pm(size_at(v), x, p); };
      a_term = pt_t_nm1 * integrate_toward(pm_smaller, y, 1.0, /*focus_on_lo=*/true,
                                           quad);
    }
    double b_term = 0.0;
    if (config.counting == PairCounting::kPaper && t >= 2 && pt_tm1_nm1 > 0.0 &&
        y > 0.0) {
      const auto pm_larger = [&](double v) { return pm(x, size_at(v), p); };
      b_term = pt_tm1_nm1 * integrate_toward(pm_larger, 0.0, y, /*focus_on_lo=*/false,
                                             quad);
    }
    return a_term + b_term;
  };

  // Outer integral over the top-flow region: z = N*y in (0, z_max].
  const double z_max = outer_z_max(t, config.quad);
  const double y_max = std::min(1.0, z_max / static_cast<double>(n));
  const double panel_width = y_max / quad.outer_panels;
  double outer = 0.0;
  for (int i = 0; i < quad.outer_panels; ++i) {
    const double lo = panel_width * i;
    const double hi = i + 1 == quad.outer_panels ? y_max : panel_width * (i + 1);
    outer += numeric::integrate_gl(integrand, lo, hi, quad.outer_order);
  }

  RankingModelResult result;
  result.mean_pair_misranking =
      outer * static_cast<double>(n) / static_cast<double>(t);
  result.pair_count =
      0.5 * static_cast<double>(2 * n - t - 1) * static_cast<double>(t);
  result.metric = result.pair_count * result.mean_pair_misranking;
  return result;
}

}  // namespace flowrank::core
