// Shared machinery for the continuous ranking/detection models.
//
// Both models integrate in rank space y = F̄(x) (tail probability of a
// flow size x), where the flow-size measure is uniform on (0,1). Top-t
// membership probabilities are binomial tails in y with huge N; they die
// off super-exponentially past y ≈ t/N, which bounds the outer integrals.
#pragma once

#include <cstdint>
#include <functional>

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::core {

/// Which pairwise misranking probability the general models integrate.
enum class PairwiseModel {
  kGaussian,  ///< the paper's Eq. (2) — reproduces the paper's curves
  kHybrid,    ///< semi-exact for poorly-sampled companions (matches MC at
              ///< Internet scale; see misranking_hybrid)
};

/// How the ranking model counts pairs where both flows are in the top t.
///
/// Eq. (3)'s second sum (companion at least as large as the reference
/// top-t flow) necessarily describes pairs whose BOTH members are top-t:
/// any flow larger than a top-t flow is itself top-t. Each such unordered
/// pair also appears once in the larger member's first sum, so the paper's
/// formula counts every top-top pair twice while its simulation metric
/// (and ours) counts unordered pairs once. kUnordered drops the second
/// sum, which makes the expectation match the simulated metric exactly;
/// kPaper keeps the published formula.
enum class PairCounting {
  kPaper,      ///< Eq. (3) as published (top-top pairs counted twice)
  kUnordered,  ///< each unordered pair once (matches the simulation metric)
};

/// Quadrature tuning shared by the models. Defaults reproduce the paper's
/// curves to plotting accuracy in well under a second per point.
struct QuadratureOptions {
  int outer_panels = 24;      ///< panels across the top-flow region
  int outer_order = 16;       ///< GL order per outer panel
  int inner_panels = 24;      ///< log-spaced panels for the companion flow
  int inner_order = 12;       ///< GL order per inner panel
  double tail_epsilon = 1e-9; ///< inner integration cutoff around singular ends
  double z_max_pad = 80.0;    ///< outer cutoff: z_max = t + 20*sqrt(t) + pad
  /// Use the Poisson limit for binomial top-probabilities when N is large;
  /// exact incomplete-beta evaluation otherwise (and always when N below
  /// the threshold).
  std::int64_t poisson_threshold = 50000;
};

/// P{flow of tail-rank y is among the top t of N flows}
///   = P{Bin(N-1, y) <= t-1}.
/// `opts` selects exact vs Poisson-limit evaluation.
[[nodiscard]] double top_probability(double y, std::int64_t t, std::int64_t n,
                                     const QuadratureOptions& opts);

/// Upper edge (in z = N*y units) beyond which top_probability is
/// negligible against N^2-scale pair counts.
[[nodiscard]] double outer_z_max(std::int64_t t, const QuadratureOptions& opts);

/// Integrates `f(v)` over v in [lo, hi] with panels geometrically
/// concentrated toward the `focus` endpoint (which must be lo or hi).
/// Used for companion-flow integrals whose integrand varies fastest where
/// the companion size approaches the reference flow's size.
[[nodiscard]] double integrate_toward(const std::function<double(double)>& f,
                                      double lo, double hi, bool focus_on_lo,
                                      const QuadratureOptions& opts);

}  // namespace flowrank::core
