#include "flowrank/core/discrete_model.hpp"

#include <stdexcept>

#include "flowrank/core/discrete_context.hpp"

namespace flowrank::core {

DiscreteModelResult evaluate_discrete_ranking_model(const DiscreteModelConfig& config) {
  // Validation order preserved from the pre-context implementation
  // (size_pmf, then the t range, then everything the context checks).
  if (!config.size_pmf) {
    throw std::invalid_argument("discrete model: size_pmf is required");
  }
  if (config.t < 1 || config.t > config.n) {
    throw std::invalid_argument("discrete model: requires 1 <= t <= N");
  }
  DiscreteContextConfig ctx_config;
  ctx_config.p = config.p;
  ctx_config.size_pmf = config.size_pmf;
  ctx_config.max_size = config.max_size;
  ctx_config.tail_tolerance = config.tail_tolerance;
  ctx_config.gaussian_pairwise = config.gaussian_pairwise;
  ctx_config.window_tolerance = config.window_tolerance;
  ctx_config.num_threads = config.num_threads;
  return DiscreteModelContext(ctx_config).evaluate(config.n, config.t);
}

}  // namespace flowrank::core
