#include "flowrank/core/discrete_model.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "flowrank/core/misranking.hpp"
#include "flowrank/numeric/binomial.hpp"

namespace flowrank::core {

namespace {

/// Pm(small, large) for small < large via Eq. (1), given the prefix-sum
/// cdf row of the larger flow: Pm = sum_k b_p(k, small) * P{s_large <= k}.
double pairwise_exact(std::int64_t small, const std::vector<double>& large_cdf_row,
                      double p) {
  double acc = 0.0;
  // Incremental binomial pmf over k for Bin(small, p).
  double b = std::pow(1.0 - p, static_cast<double>(small));  // k = 0
  const double odds = p / (1.0 - p);
  for (std::int64_t k = 0; k <= small; ++k) {
    acc += b * large_cdf_row[static_cast<std::size_t>(k)];
    if (k < small) {
      b *= static_cast<double>(small - k) / static_cast<double>(k + 1) * odds;
    }
  }
  return acc < 1.0 ? acc : 1.0;
}

/// Pm for equal sizes: 1 - sum_{i>=1} b_p(i,S)^2.
double pairwise_equal_exact(std::int64_t s, double p) {
  double agree = 0.0;
  double b = std::pow(1.0 - p, static_cast<double>(s));  // i = 0
  const double odds = p / (1.0 - p);
  for (std::int64_t i = 0; i <= s; ++i) {
    if (i >= 1) agree += b * b;
    if (i < s) b *= static_cast<double>(s - i) / static_cast<double>(i + 1) * odds;
  }
  return 1.0 - agree;
}

}  // namespace

DiscreteModelResult evaluate_discrete_ranking_model(const DiscreteModelConfig& config) {
  if (!config.size_pmf) {
    throw std::invalid_argument("discrete model: size_pmf is required");
  }
  if (config.t < 1 || config.t > config.n) {
    throw std::invalid_argument("discrete model: requires 1 <= t <= N");
  }
  if (!(config.p > 0.0 && config.p < 1.0)) {
    throw std::invalid_argument("discrete model: requires p in (0,1)");
  }
  const auto& pmf_src = *config.size_pmf;
  const std::int64_t lo = pmf_src.min_packets();
  const std::int64_t hi = config.max_size;
  if (hi <= lo) throw std::invalid_argument("discrete model: max_size too small");
  const double tail = pmf_src.ccdf_geq(hi + 1);
  if (tail > config.tail_tolerance) {
    throw std::invalid_argument(
        "discrete model: pmf tail above max_size exceeds tolerance; "
        "increase max_size or lighten the tail");
  }

  const auto count = static_cast<std::size_t>(hi - lo + 1);
  const auto idx = [lo](std::int64_t i) { return static_cast<std::size_t>(i - lo); };

  std::vector<double> pmf(count), ccdf(count);
  for (std::int64_t i = lo; i <= hi; ++i) {
    pmf[idx(i)] = pmf_src.pmf(i);
    ccdf[idx(i)] = pmf_src.ccdf_geq(i);
  }

  // Pairwise misranking table: pm[s][l] for lo <= s < l <= hi in a
  // triangular layout, plus the equal-size diagonal.
  std::vector<std::vector<double>> pm(count);
  std::vector<double> pm_equal(count);
  std::vector<double> cdf_row(static_cast<std::size_t>(hi) + 1);
  for (std::int64_t large = lo; large <= hi; ++large) {
    if (config.gaussian_pairwise) {
      pm_equal[idx(large)] = misranking_gaussian(static_cast<double>(large),
                                                 static_cast<double>(large), config.p);
    } else {
      pm_equal[idx(large)] = pairwise_equal_exact(large, config.p);
    }
    auto& row = pm[idx(large)];
    row.resize(idx(large));  // entries for small = lo .. large-1
    if (row.empty()) continue;
    if (config.gaussian_pairwise) {
      for (std::int64_t small = lo; small < large; ++small) {
        row[idx(small)] = misranking_gaussian(static_cast<double>(small),
                                              static_cast<double>(large), config.p);
      }
      continue;
    }
    // cdf row of the larger flow up to the small flow's max useful k.
    double b = std::pow(1.0 - config.p, static_cast<double>(large));
    const double odds = config.p / (1.0 - config.p);
    double running = 0.0;
    for (std::int64_t k = 0; k < large; ++k) {
      running += b;
      cdf_row[static_cast<std::size_t>(k)] = running < 1.0 ? running : 1.0;
      b *= static_cast<double>(large - k) / static_cast<double>(k + 1) * odds;
    }
    cdf_row[static_cast<std::size_t>(large)] = 1.0;
    for (std::int64_t small = lo; small < large; ++small) {
      row[idx(small)] = pairwise_exact(small, cdf_row, config.p);
    }
  }

  // Eq. (3) after the Pt(i,t,N) cancellation:
  //   P̄mt = (N/t) sum_i p_i [ Pt(i,t,N-1) A_i + Pt(i,t-1,N-1) B_i ]
  // with binomials over N-2 trials inside Pt(.,.,N-1).
  const std::int64_t trials = config.n - 2;
  double pbar = 0.0;
  for (std::int64_t i = lo; i <= hi; ++i) {
    const double pi_mass = pmf[idx(i)];
    if (pi_mass <= 0.0) continue;
    const double tail_prob = ccdf[idx(i)];
    const double pt_t = numeric::binomial_cdf(config.t - 1, trials, tail_prob);
    const double pt_tm1 = numeric::binomial_cdf(config.t - 2, trials, tail_prob);

    double a_sum = 0.0;
    for (std::int64_t j = lo; j < i; ++j) {
      a_sum += pmf[idx(j)] * pm[idx(i)][idx(j)];
    }
    double b_sum = pi_mass * pm_equal[idx(i)];
    for (std::int64_t j = i + 1; j <= hi; ++j) {
      b_sum += pmf[idx(j)] * pm[idx(j)][idx(i)];
    }
    pbar += pi_mass * (pt_t * a_sum + pt_tm1 * b_sum);
  }
  pbar *= static_cast<double>(config.n) / static_cast<double>(config.t);

  DiscreteModelResult result;
  result.mean_pair_misranking = pbar;
  result.metric = 0.5 * static_cast<double>(2 * config.n - config.t - 1) *
                  static_cast<double>(config.t) * pbar;
  return result;
}

}  // namespace flowrank::core
