#include "flowrank/core/optimal_rate.hpp"

#include <stdexcept>

#include "flowrank/core/misranking.hpp"
#include "flowrank/numeric/roots.hpp"

namespace flowrank::core {

double optimal_sampling_rate(std::int64_t s1, std::int64_t s2, double target,
                             MisrankingModel model, double p_min) {
  if (!(target > 0.0 && target < 1.0)) {
    throw std::invalid_argument("optimal_sampling_rate: target in (0,1)");
  }
  if (!(p_min > 0.0 && p_min < 1.0)) {
    throw std::invalid_argument("optimal_sampling_rate: p_min in (0,1)");
  }
  const auto pm = [&](double p) {
    return model == MisrankingModel::kExact
               ? misranking_exact(s1, s2, p)
               : misranking_gaussian(static_cast<double>(s1),
                                     static_cast<double>(s2), p);
  };
  const double at_min = pm(p_min);
  if (at_min <= target) return p_min;
  const double at_one = pm(1.0);
  if (at_one > target) return 1.0;  // unreachable even without sampling loss
  const auto result = numeric::brent([&](double p) { return pm(p) - target; }, p_min,
                                     1.0, 1e-10, 300);
  return result.x;
}

}  // namespace flowrank::core
