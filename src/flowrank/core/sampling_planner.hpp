// Inverse problem: given a traffic mix and an accuracy target, what is the
// minimum sampling rate? This operationalizes the paper's "given a desired
// accuracy, we find the required minimum sampling rate" perspective and is
// what the sampling_rate_planner example exposes.
#pragma once

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/ranking_model.hpp"

namespace flowrank::core {

/// Which accuracy goal the planner inverts.
enum class PlannerGoal {
  kRankTopT,    ///< ranking metric (order within the list matters)
  kDetectTopT,  ///< detection metric (set membership only)
};

/// Planner output.
struct PlannerResult {
  double sampling_rate = 0.0;  ///< minimal p meeting the target
  double metric = 0.0;         ///< achieved metric at that p
  bool feasible = false;       ///< false when even p=pmax misses the target
};

/// Finds the minimal sampling rate p in [p_min, p_max] such that the
/// model metric is <= `target` (the paper's acceptability line is 1).
/// The metric is monotone decreasing in p, so this is a bisection on
/// log p. `config.p` is ignored.
[[nodiscard]] PlannerResult plan_sampling_rate(RankingModelConfig config,
                                               PlannerGoal goal, double target = 1.0,
                                               double p_min = 1e-4,
                                               double p_max = 1.0);

}  // namespace flowrank::core
