// Inverse problem: given a traffic mix and an accuracy target, what is the
// minimum sampling rate? This operationalizes the paper's "given a desired
// accuracy, we find the required minimum sampling rate" perspective and is
// what the sampling_rate_planner example exposes.
#pragma once

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/discrete_model.hpp"
#include "flowrank/core/ranking_model.hpp"

namespace flowrank::core {

/// Which accuracy goal the planner inverts.
enum class PlannerGoal {
  kRankTopT,    ///< ranking metric (order within the list matters)
  kDetectTopT,  ///< detection metric (set membership only)
};

/// Planner output.
struct PlannerResult {
  double sampling_rate = 0.0;  ///< minimal p meeting the target
  double metric = 0.0;         ///< achieved metric at that p
  bool feasible = false;       ///< false when even p=pmax misses the target
};

/// Finds the minimal sampling rate p in [p_min, p_max] such that the
/// model metric is <= `target` (the paper's acceptability line is 1).
/// The metric is monotone decreasing in p, so this is a bisection on
/// log p. `config.p` is ignored.
[[nodiscard]] PlannerResult plan_sampling_rate(RankingModelConfig config,
                                               PlannerGoal goal, double target = 1.0,
                                               double p_min = 1e-4,
                                               double p_max = 1.0);

/// Discrete-model goal: same bisection, but every probe evaluates the
/// exact discrete ranking model (Eqs. 1 and 3) instead of the continuous
/// quadrature — what the future adaptive controller retunes against.
/// Each probe changes p, so each rebuilds the pairwise tables; keep
/// `config.max_size` modest (and consider `config.window_tolerance`) when
/// planning in a loop. `config.p` is ignored. Unlike the continuous
/// overload, p_max must stay strictly below 1 (the discrete model's
/// domain is p in (0,1)).
[[nodiscard]] PlannerResult plan_sampling_rate(DiscreteModelConfig config,
                                               double target = 1.0,
                                               double p_min = 1e-4,
                                               double p_max = 0.999);

}  // namespace flowrank::core
