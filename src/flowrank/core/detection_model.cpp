#include "flowrank/core/detection_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "flowrank/core/misranking.hpp"
#include "flowrank/numeric/binomial.hpp"
#include "flowrank/numeric/quadrature.hpp"

namespace flowrank::core {

namespace {

/// P*t(v,u): joint probability that the reference flow (tail rank u) is in
/// the top t while the companion flow (tail rank v > u, i.e. smaller) is
/// not. The k-sum runs over how many of the other N-2 flows already exceed
/// the reference flow.
double joint_in_out_probability(double u, double v, std::int64_t t, std::int64_t n,
                                const QuadratureOptions& quad) {
  // P_{j,i} in the paper: probability a generic flow lands between the
  // companion and the reference size, conditioned on being below the
  // reference: (P_j - P_i)/(1 - P_i) with P_i = u, P_j = v.
  const double between = u >= 1.0 ? 0.0 : (v - u) / (1.0 - u);
  const std::int64_t m = n - 2;  // other flows
  if (m < 0) return 0.0;

  // b_u(k, m) iteratively; the k-sum has at most t terms (t <= 25-ish).
  double log_b = static_cast<double>(m) * std::log1p(-u);  // k = 0 term, log
  const double log_odds = u > 0.0 ? std::log(u) - std::log1p(-u)
                                  : -std::numeric_limits<double>::infinity();
  double acc = 0.0;
  for (std::int64_t k = 0; k < t; ++k) {
    const double b = std::exp(log_b);
    if (b > 0.0) {
      // Need >= t-k-1 of the remaining m-k flows between v and u.
      const std::int64_t need = t - k - 1;
      double tail;
      if (need <= 0) {
        tail = 1.0;
      } else if (m - k >= quad.poisson_threshold && between < 0.01) {
        tail = 1.0 - numeric::poisson_cdf(need - 1,
                                          static_cast<double>(m - k) * between);
      } else {
        tail = numeric::binomial_sf(need - 1, m - k, between);
      }
      acc += b * tail;
    }
    // Advance b_u(k,m) -> b_u(k+1,m).
    if (u <= 0.0) break;
    log_b += std::log(static_cast<double>(m - k)) -
             std::log(static_cast<double>(k + 1)) + log_odds;
  }
  return std::min(acc, 1.0);
}

}  // namespace

DetectionModelResult evaluate_detection_model(const RankingModelConfig& config) {
  if (!config.size_dist) {
    throw std::invalid_argument("detection model: size_dist is required");
  }
  if (config.t < 1 || config.t >= config.n) {
    throw std::invalid_argument("detection model: requires 1 <= t < N");
  }
  if (!(config.p > 0.0 && config.p <= 1.0)) {
    throw std::invalid_argument("detection model: requires p in (0,1]");
  }
  const auto& dist = *config.size_dist;
  const auto n = config.n;
  const auto t = config.t;
  const double p = config.p;
  const auto& quad = config.quad;

  const auto size_at = [&dist](double y) { return dist.tail_quantile(y); };
  const auto pm = [&config](double a, double b, double rate) {
    return config.pairwise == PairwiseModel::kGaussian
               ? misranking_gaussian(a, b, rate)
               : misranking_hybrid(a, b, rate);
  };

  // metric = t(N-t) P̄*mt
  //        = N(N-1) ∫_0^1 du ∫_u^1 dv P*t(v,u) Pm(x(v), x(u)).
  const auto inner = [&](double u) {
    const double x_ref = size_at(u);
    const auto f = [&](double v) {
      const double joint = joint_in_out_probability(u, v, t, n, quad);
      if (joint <= 0.0) return 0.0;
      return joint * pm(size_at(v), x_ref, p);
    };
    return integrate_toward(f, u, 1.0, /*focus_on_lo=*/true, quad);
  };

  const double z_max = outer_z_max(t, quad);
  const double u_max = std::min(1.0, z_max / static_cast<double>(n));
  const double panel_width = u_max / quad.outer_panels;
  double outer = 0.0;
  for (int i = 0; i < quad.outer_panels; ++i) {
    const double lo = panel_width * i;
    const double hi = i + 1 == quad.outer_panels ? u_max : panel_width * (i + 1);
    outer += numeric::integrate_gl(inner, lo, hi, quad.outer_order);
  }

  DetectionModelResult result;
  result.pair_count = static_cast<double>(t) * static_cast<double>(n - t);
  result.metric = static_cast<double>(n) * static_cast<double>(n - 1) * outer;
  result.mean_pair_misranking = result.metric / result.pair_count;
  return result;
}

}  // namespace flowrank::core
