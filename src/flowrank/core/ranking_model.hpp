// The general ranking model (Sec. 5): how well does the sampled top-t list
// match the true top-t list, *including order*?
//
// Performance metric (Sec. 5.1): the expected number of swapped flow
// pairs, over pairs whose first element is a top-t flow and whose second
// element is any other flow — (2N-t-1)t/2 pairs in total:
//
//     metric = (2N - t - 1) * t / 2 * P̄mt
//
// where P̄mt is the probability that a random such pair is swapped after
// sampling. The paper deems the ranking acceptable when metric < 1.
//
// Evaluation follows the paper's own computational path: the Gaussian
// approximation Eq. (2) for the pairwise misranking probability and a
// continuous flow-size distribution, turning Eq. (3) into integrals
// (Sec. 5.2: "reduces the computation time ... to few seconds").
#pragma once

#include <cstdint>
#include <memory>

#include "flowrank/core/model_common.hpp"
#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::core {

/// Inputs of the ranking model.
struct RankingModelConfig {
  std::int64_t n = 0;  ///< total number of flows N in the measurement interval
  std::int64_t t = 0;  ///< number of top flows to rank
  double p = 0.0;      ///< packet sampling rate
  std::shared_ptr<const dist::FlowSizeDistribution> size_dist;
  QuadratureOptions quad;
  /// Pairwise probability plugged into Eq. (3). kGaussian is the paper's
  /// computational path; kHybrid corrects its small-flow tail bias.
  PairwiseModel pairwise = PairwiseModel::kGaussian;
  /// Top-top pair accounting (see PairCounting). kPaper reproduces the
  /// published curves; kUnordered matches the simulated metric.
  PairCounting counting = PairCounting::kPaper;
};

/// Result of evaluating the model at one configuration.
struct RankingModelResult {
  double mean_pair_misranking = 0.0;  ///< P̄mt
  double metric = 0.0;                ///< (2N-t-1) t/2 * P̄mt, "avg swapped pairs"
  double pair_count = 0.0;            ///< (2N-t-1) t/2
};

/// Evaluates the continuous ranking model.
/// Throws std::invalid_argument on inconsistent configuration
/// (requires 1 <= t <= N, 0 < p <= 1, a size distribution).
[[nodiscard]] RankingModelResult evaluate_ranking_model(const RankingModelConfig& config);

}  // namespace flowrank::core
