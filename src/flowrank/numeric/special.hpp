// Special functions used throughout the analytic models.
//
// Everything here is numerically stable for the regimes the paper needs:
// binomial coefficients with N up to several million flows, tail
// probabilities down to ~1e-300, and Normal tail integrals.
#pragma once

#include <cstdint>

namespace flowrank::numeric {

/// ln Γ(x) for x > 0 (reentrant lgamma_r under the hood — std::lgamma
/// writes the global `signgam`, racing across pool workers).
[[nodiscard]] double log_gamma(double x);

/// ln n! with a cached table for small n and lgamma for large n.
[[nodiscard]] double log_factorial(std::int64_t n);

/// ln C(n, k). Returns -inf when k < 0 or k > n.
[[nodiscard]] double log_choose(std::int64_t n, std::int64_t k);

/// log(exp(a) + exp(b)) without overflow.
[[nodiscard]] double log_sum_exp(double a, double b);

/// log(1 - exp(x)) for x <= 0, accurate near both ends.
[[nodiscard]] double log1m_exp(double x);

/// Standard Normal CDF Φ(x) via erfc (absolute accuracy ~1e-15).
[[nodiscard]] double normal_cdf(double x);

/// Standard Normal survival function 1 - Φ(x), accurate for large x.
[[nodiscard]] double normal_sf(double x);

/// Complementary error function; forwards to std::erfc (kept behind a
/// named function so models read like the paper's equations).
[[nodiscard]] double erfc(double x);

}  // namespace flowrank::numeric
