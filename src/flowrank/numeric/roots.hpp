// Scalar root finding for the inverse problems in the paper: solving
// Pm(S1,S2) = Pm,d for the optimal sampling rate (Sec. 3.2) and the
// minimum sampling rate for a target ranking metric (planner).
#pragma once

#include <functional>

namespace flowrank::numeric {

/// Result of a bracketed root search.
struct RootResult {
  double x = 0.0;        ///< Best estimate of the root.
  double fx = 0.0;       ///< f at the estimate.
  int iterations = 0;    ///< Iterations consumed.
  bool converged = false;
};

/// Bisection on [lo, hi]; f(lo) and f(hi) must have opposite signs
/// (zero endpoints count). Throws std::invalid_argument otherwise.
[[nodiscard]] RootResult bisect(const std::function<double(double)>& f, double lo,
                                double hi, double x_tol = 1e-12, int max_iter = 200);

/// Brent's method on [lo, hi]; same bracketing contract as bisect, but
/// superlinear convergence for smooth f.
[[nodiscard]] RootResult brent(const std::function<double(double)>& f, double lo,
                               double hi, double x_tol = 1e-12, int max_iter = 200);

}  // namespace flowrank::numeric
