#include "flowrank/numeric/special.hpp"

#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace flowrank::numeric {

namespace {
constexpr int kFactorialCache = 1024;

const std::array<double, kFactorialCache>& factorial_table() {
  static const auto table = [] {
    std::array<double, kFactorialCache> t{};
    t[0] = 0.0;
    for (int i = 1; i < kFactorialCache; ++i) {
      t[i] = t[i - 1] + std::log(static_cast<double>(i));
    }
    return t;
  }();
  return table;
}
}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("log_gamma: requires x > 0");
  }
  return std::lgamma(x);
}

double log_factorial(std::int64_t n) {
  if (n < 0) throw std::domain_error("log_factorial: requires n >= 0");
  if (n < kFactorialCache) return factorial_table()[static_cast<std::size_t>(n)];
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_sum_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log1p(std::exp(-(std::abs(a - b))));
}

double log1m_exp(double x) {
  if (x > 0.0) throw std::domain_error("log1m_exp: requires x <= 0");
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  // Mächler (2012): switch at ln 2 for accuracy.
  if (x > -0.6931471805599453) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_sf(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double erfc(double x) { return std::erfc(x); }

}  // namespace flowrank::numeric
