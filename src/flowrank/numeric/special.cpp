#include "flowrank/numeric/special.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

namespace flowrank::numeric {

namespace {
// ln n! values are memoized in a lazily grown table: the exact models
// sweep binomial coefficients with n in the tens of thousands (flow sizes)
// and the table means each ln n! is computed once per thread rather than
// via lgamma on every pmf term. Beyond the cap (512 KiB per thread) a
// query costs one lgamma, same as the pre-memo path — growth doubles up
// to the requested index, so the cap also bounds the eager fill a single
// large-n query can trigger.
constexpr std::size_t kFactorialCacheCap = 1 << 16;
// Below this index entries come from the exact cumulative recurrence (the
// error of ~1e3 rounded additions is negligible); above it each entry is
// an independent lgamma call so the cumulative rounding never compounds
// across a million terms.
constexpr std::size_t kCumulativeLimit = 1024;

double cached_log_factorial(std::size_t n) {
  thread_local std::vector<double> table{0.0, 0.0};  // 0! and 1!
  if (n >= table.size()) {
    std::size_t new_size = table.size();
    while (new_size <= n) new_size *= 2;
    table.reserve(new_size);
    for (std::size_t i = table.size(); i < new_size; ++i) {
      table.push_back(i < kCumulativeLimit
                          ? table[i - 1] + std::log(static_cast<double>(i))
                          : std::lgamma(static_cast<double>(i) + 1.0));
    }
  }
  return table[n];
}
}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("log_gamma: requires x > 0");
  }
  return std::lgamma(x);
}

double log_factorial(std::int64_t n) {
  if (n < 0) throw std::domain_error("log_factorial: requires n >= 0");
  if (static_cast<std::size_t>(n) < kFactorialCacheCap) {
    return cached_log_factorial(static_cast<std::size_t>(n));
  }
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_sum_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log1p(std::exp(-(std::abs(a - b))));
}

double log1m_exp(double x) {
  if (x > 0.0) throw std::domain_error("log1m_exp: requires x <= 0");
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  // Mächler (2012): switch at ln 2 for accuracy.
  if (x > -0.6931471805599453) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_sf(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double erfc(double x) { return std::erfc(x); }

}  // namespace flowrank::numeric
