#include "flowrank/numeric/special.hpp"

#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <vector>

// std::lgamma is not thread-safe: C99 requires it to store the sign of
// Γ(x) in the global `signgam`, so two pool workers evaluating pmf terms
// concurrently race on that write (caught by the full-suite TSan job).
// POSIX's lgamma_r returns the sign through an out-parameter instead and
// touches no globals; glibc's lgamma is lgamma_r plus the signgam store,
// so switching changes no returned bits. Under -std=c++20 (strict ANSI)
// glibc hides the declaration, so declare it ourselves; `noexcept`
// matches glibc's __THROW.
#if defined(__GLIBC__)
#if defined(__STRICT_ANSI__)
extern "C" double lgamma_r(double, int*) noexcept;
#endif
#define FLOWRANK_HAVE_LGAMMA_R 1
#elif defined(__APPLE__) || (defined(_POSIX_C_SOURCE) && _POSIX_C_SOURCE >= 200112L)
#define FLOWRANK_HAVE_LGAMMA_R 1
#endif

namespace flowrank::numeric {

namespace {
// The only lgamma spelling allowed in this repo (the linter bans the
// rest); x > 0 everywhere we call it, so the sign is discarded.
double lgamma_threadsafe(double x) {
#if defined(FLOWRANK_HAVE_LGAMMA_R)
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);  // single-threaded fallback platforms only
#endif
}

// ln n! values are memoized in a lazily grown table: the exact models
// sweep binomial coefficients with n in the tens of thousands (flow sizes)
// and the table means each ln n! is computed once per thread rather than
// via lgamma on every pmf term. Beyond the cap (512 KiB per thread) a
// query costs one lgamma, same as the pre-memo path — growth doubles up
// to the requested index, so the cap also bounds the eager fill a single
// large-n query can trigger.
constexpr std::size_t kFactorialCacheCap = 1 << 16;
// Below this index entries come from the exact cumulative recurrence (the
// error of ~1e3 rounded additions is negligible); above it each entry is
// an independent lgamma call so the cumulative rounding never compounds
// across a million terms.
constexpr std::size_t kCumulativeLimit = 1024;

double cached_log_factorial(std::size_t n) {
  thread_local std::vector<double> table{0.0, 0.0};  // 0! and 1!
  if (n >= table.size()) {
    std::size_t new_size = table.size();
    while (new_size <= n) new_size *= 2;
    table.reserve(new_size);
    for (std::size_t i = table.size(); i < new_size; ++i) {
      table.push_back(i < kCumulativeLimit
                          ? table[i - 1] + std::log(static_cast<double>(i))
                          : lgamma_threadsafe(static_cast<double>(i) + 1.0));
    }
  }
  return table[n];
}
}  // namespace

double log_gamma(double x) {
  if (!(x > 0.0)) {
    throw std::domain_error("log_gamma: requires x > 0");
  }
  return lgamma_threadsafe(x);
}

double log_factorial(std::int64_t n) {
  if (n < 0) throw std::domain_error("log_factorial: requires n >= 0");
  if (static_cast<std::size_t>(n) < kFactorialCacheCap) {
    return cached_log_factorial(static_cast<std::size_t>(n));
  }
  return lgamma_threadsafe(static_cast<double>(n) + 1.0);
}

double log_choose(std::int64_t n, std::int64_t k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double log_sum_exp(double a, double b) {
  if (a == -std::numeric_limits<double>::infinity()) return b;
  if (b == -std::numeric_limits<double>::infinity()) return a;
  const double m = a > b ? a : b;
  return m + std::log1p(std::exp(-(std::abs(a - b))));
}

double log1m_exp(double x) {
  if (x > 0.0) throw std::domain_error("log1m_exp: requires x <= 0");
  if (x == 0.0) return -std::numeric_limits<double>::infinity();
  // Mächler (2012): switch at ln 2 for accuracy.
  if (x > -0.6931471805599453) return std::log(-std::expm1(x));
  return std::log1p(-std::exp(x));
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_sf(double x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

double erfc(double x) { return std::erfc(x); }

}  // namespace flowrank::numeric
