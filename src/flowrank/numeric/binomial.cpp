#include "flowrank/numeric/binomial.hpp"

#include <bit>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "flowrank/numeric/incbeta.hpp"
#include "flowrank/numeric/special.hpp"

namespace flowrank::numeric {

namespace {
void check_binomial_args(std::int64_t n, double p) {
  if (n < 0) throw std::domain_error("binomial: requires n >= 0");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::domain_error("binomial: requires p in [0,1]");
  }
}
}  // namespace

BinomialSweep::BinomialSweep(std::int64_t n, double p) : n_(n), p_(p) {
  check_binomial_args(n, p);
  if (p_ <= 0.0 || p_ >= 1.0 || n_ == 0) {
    // Degenerate: all mass at one point (0 or n).
    lo_ = hi_ = p_ >= 1.0 ? n_ : 0;
    pmf_.push_back(1.0);
    cdf_.push_back(1.0);
    return;
  }
  odds_ = p_ / (1.0 - p_);
  const double mu = static_cast<double>(n_) * p_;
  const double sigma = std::sqrt(mu * (1.0 - p_));
  const double pad = 12.0 * sigma + 40.0;
  lo_ = std::max<std::int64_t>(0, static_cast<std::int64_t>(std::floor(mu - pad)));
  hi_ = std::min<std::int64_t>(n_, static_cast<std::int64_t>(std::ceil(mu + pad)));
  // Exact anchors at the window's low edge; the recurrence takes over from
  // here. Both anchor evaluations are O(1).
  pmf_.push_back(std::exp(binomial_log_pmf(lo_, n_, p_)));
  cdf_.push_back(lo_ == 0 ? pmf_.front() : binomial_cdf(lo_, n_, p_));
}

void BinomialSweep::ensure(std::int64_t k) {
  const auto want = static_cast<std::size_t>(std::min(k, hi_) - lo_);
  while (pmf_.size() <= want) {
    const auto prev_k = lo_ + static_cast<std::int64_t>(pmf_.size()) - 1;
    const double step = static_cast<double>(n_ - prev_k) /
                        static_cast<double>(prev_k + 1) * odds_;
    pmf_.push_back(pmf_.back() * step);
    cdf_.push_back(std::min(cdf_.back() + pmf_.back(), 1.0));
  }
}

double BinomialSweep::pmf(std::int64_t k) {
  if (k < lo_ || k > hi_) return 0.0;
  ensure(k);
  return pmf_[static_cast<std::size_t>(k - lo_)];
}

double BinomialSweep::cdf(std::int64_t k) {
  if (k < lo_) return 0.0;
  if (k >= hi_) {
    // The window always covers the upper tail (hi_ == n or pmf(hi_) ~ 0).
    return 1.0;
  }
  ensure(k);
  return cdf_[static_cast<std::size_t>(k - lo_)];
}

std::shared_ptr<BinomialSweep> BinomialSweep::shared(std::int64_t n, double p) {
  struct KeyHash {
    std::size_t operator()(const std::pair<std::int64_t, double>& key) const noexcept {
      std::uint64_t z = static_cast<std::uint64_t>(key.first);
      const std::uint64_t bits = std::bit_cast<std::uint64_t>(key.second);
      z ^= bits * 0x9e3779b97f4a7c15ULL;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  using Cache = std::unordered_map<std::pair<std::int64_t, double>,
                                   std::shared_ptr<BinomialSweep>, KeyHash>;
  constexpr std::size_t kMaxEntries = 256;
  thread_local Cache cache;
  const std::pair<std::int64_t, double> key{n, p};
  auto it = cache.find(key);
  if (it == cache.end()) {
    // Shared ownership: a reset here must not invalidate sweeps callers
    // obtained from earlier shared() calls in the same expression.
    if (cache.size() >= kMaxEntries) cache.clear();
    it = cache.emplace(key, std::make_shared<BinomialSweep>(n, p)).first;
  }
  return it->second;
}

double binomial_log_pmf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  if (p == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p == 1.0) {
    return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::int64_t k, std::int64_t n, double p) {
  return std::exp(binomial_log_pmf(k, n, p));
}

double binomial_cdf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n here
  // Small supports: direct sum is cheaper and exact.
  if (n <= 64) {
    double acc = 0.0;
    for (std::int64_t i = 0; i <= k; ++i) acc += binomial_pmf(i, n, p);
    return acc < 1.0 ? acc : 1.0;
  }
  // P{Bin(n,p) <= k} = I_{1-p}(n-k, k+1).
  return incbeta(static_cast<double>(n - k), static_cast<double>(k) + 1.0, 1.0 - p);
}

double binomial_sf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0) return 1.0;
  if (k >= n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  if (n <= 64) {
    double acc = 0.0;
    for (std::int64_t i = k + 1; i <= n; ++i) acc += binomial_pmf(i, n, p);
    return acc < 1.0 ? acc : 1.0;
  }
  // P{Bin(n,p) > k} = I_p(k+1, n-k).
  return incbeta(static_cast<double>(k) + 1.0, static_cast<double>(n - k), p);
}

double poisson_log_pmf(std::int64_t k, double lambda) {
  if (!(lambda >= 0.0)) throw std::domain_error("poisson: requires lambda >= 0");
  if (k < 0) return -std::numeric_limits<double>::infinity();
  if (lambda == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(k) * std::log(lambda) - lambda - log_factorial(k);
}

double poisson_pmf(std::int64_t k, double lambda) {
  return std::exp(poisson_log_pmf(k, lambda));
}

double poisson_cdf(std::int64_t k, double lambda) {
  if (!(lambda >= 0.0)) throw std::domain_error("poisson: requires lambda >= 0");
  if (k < 0) return 0.0;
  if (lambda == 0.0) return 1.0;
  // Sum ascending in pmf ratio form; fine because k is small (t-ish) in all
  // call sites, but keep it robust for moderately large k anyway.
  double term = std::exp(-lambda);
  double acc = term;
  for (std::int64_t i = 1; i <= k; ++i) {
    term *= lambda / static_cast<double>(i);
    acc += term;
    if (term < 1e-320) break;
  }
  return acc < 1.0 ? acc : 1.0;
}

}  // namespace flowrank::numeric
