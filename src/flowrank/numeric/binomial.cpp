#include "flowrank/numeric/binomial.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "flowrank/numeric/incbeta.hpp"
#include "flowrank/numeric/special.hpp"

namespace flowrank::numeric {

namespace {
void check_binomial_args(std::int64_t n, double p) {
  if (n < 0) throw std::domain_error("binomial: requires n >= 0");
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::domain_error("binomial: requires p in [0,1]");
  }
}
}  // namespace

double binomial_log_pmf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  if (p == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  if (p == 1.0) {
    return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return log_choose(n, k) + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

double binomial_pmf(std::int64_t k, std::int64_t n, double p) {
  return std::exp(binomial_log_pmf(k, n, p));
}

double binomial_cdf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0) return 0.0;
  if (k >= n) return 1.0;
  if (p == 0.0) return 1.0;
  if (p == 1.0) return 0.0;  // k < n here
  // Small supports: direct sum is cheaper and exact.
  if (n <= 64) {
    double acc = 0.0;
    for (std::int64_t i = 0; i <= k; ++i) acc += binomial_pmf(i, n, p);
    return acc < 1.0 ? acc : 1.0;
  }
  // P{Bin(n,p) <= k} = I_{1-p}(n-k, k+1).
  return incbeta(static_cast<double>(n - k), static_cast<double>(k) + 1.0, 1.0 - p);
}

double binomial_sf(std::int64_t k, std::int64_t n, double p) {
  check_binomial_args(n, p);
  if (k < 0) return 1.0;
  if (k >= n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  if (n <= 64) {
    double acc = 0.0;
    for (std::int64_t i = k + 1; i <= n; ++i) acc += binomial_pmf(i, n, p);
    return acc < 1.0 ? acc : 1.0;
  }
  // P{Bin(n,p) > k} = I_p(k+1, n-k).
  return incbeta(static_cast<double>(k) + 1.0, static_cast<double>(n - k), p);
}

double poisson_log_pmf(std::int64_t k, double lambda) {
  if (!(lambda >= 0.0)) throw std::domain_error("poisson: requires lambda >= 0");
  if (k < 0) return -std::numeric_limits<double>::infinity();
  if (lambda == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(k) * std::log(lambda) - lambda - log_factorial(k);
}

double poisson_pmf(std::int64_t k, double lambda) {
  return std::exp(poisson_log_pmf(k, lambda));
}

double poisson_cdf(std::int64_t k, double lambda) {
  if (!(lambda >= 0.0)) throw std::domain_error("poisson: requires lambda >= 0");
  if (k < 0) return 0.0;
  if (lambda == 0.0) return 1.0;
  // Sum ascending in pmf ratio form; fine because k is small (t-ish) in all
  // call sites, but keep it robust for moderately large k anyway.
  double term = std::exp(-lambda);
  double acc = term;
  for (std::int64_t i = 1; i <= k; ++i) {
    term *= lambda / static_cast<double>(i);
    acc += term;
    if (term < 1e-320) break;
  }
  return acc < 1.0 ? acc : 1.0;
}

}  // namespace flowrank::numeric
