#include "flowrank/numeric/quadrature.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::numeric {

namespace {

GaussLegendreRule compute_rule(int n) {
  GaussLegendreRule rule;
  rule.nodes.resize(static_cast<std::size_t>(n));
  rule.weights.resize(static_cast<std::size_t>(n));
  // Newton iteration from the Chebyshev-like initial guess; standard
  // Golub-Welsch-free construction (Numerical Recipes gauleg).
  const int m = (n + 1) / 2;
  for (int i = 0; i < m; ++i) {
    double z = std::cos(M_PI * (i + 0.75) / (n + 0.5));
    double pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      double p1 = 1.0;
      double p2 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p3 = p2;
        p2 = p1;
        p1 = ((2.0 * j + 1.0) * z * p2 - j * p3) / (j + 1.0);
      }
      pp = n * (z * p1 - p2) / (z * z - 1.0);
      const double z1 = z;
      z = z1 - p1 / pp;
      if (std::abs(z - z1) < 1e-15) break;
    }
    rule.nodes[static_cast<std::size_t>(i)] = -z;
    rule.nodes[static_cast<std::size_t>(n - 1 - i)] = z;
    const double w = 2.0 / ((1.0 - z * z) * pp * pp);
    rule.weights[static_cast<std::size_t>(i)] = w;
    rule.weights[static_cast<std::size_t>(n - 1 - i)] = w;
  }
  return rule;
}

}  // namespace

const GaussLegendreRule& gauss_legendre(int order) {
  if (order < 1 || order > 128) {
    throw std::domain_error("gauss_legendre: order must be in [1,128]");
  }
  static util::Mutex mutex;
  static std::map<int, GaussLegendreRule> cache FR_GUARDED_BY(mutex);
  util::MutexLock lock(mutex);
  auto it = cache.find(order);
  if (it == cache.end()) {
    it = cache.emplace(order, compute_rule(order)).first;
  }
  return it->second;
}

double integrate_gl(const std::function<double(double)>& f, double a, double b,
                    int order) {
  const auto& rule = gauss_legendre(order);
  const double mid = 0.5 * (a + b);
  const double half = 0.5 * (b - a);
  double acc = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    acc += rule.weights[i] * f(mid + half * rule.nodes[i]);
  }
  return acc * half;
}

double integrate_gl_log(const std::function<double(double)>& f, double a, double b,
                        int panels, int order) {
  if (!(a > 0.0) || !(b > a)) {
    throw std::domain_error("integrate_gl_log: requires 0 < a < b");
  }
  if (panels < 1) throw std::domain_error("integrate_gl_log: panels >= 1");
  const double log_a = std::log(a);
  const double step = (std::log(b) - log_a) / panels;
  double acc = 0.0;
  for (int i = 0; i < panels; ++i) {
    const double lo = std::exp(log_a + step * i);
    const double hi = i + 1 == panels ? b : std::exp(log_a + step * (i + 1));
    acc += integrate_gl(f, lo, hi, order);
  }
  return acc;
}

namespace {
double adaptive_impl(const std::function<double(double)>& f, double a, double b,
                     double coarse, double abs_tol, double rel_tol, int depth) {
  const double mid = 0.5 * (a + b);
  const double left = integrate_gl(f, a, mid, 16);
  const double right = integrate_gl(f, mid, b, 16);
  const double fine = left + right;
  const double err = std::abs(fine - coarse);
  if (depth <= 0 || err <= abs_tol + rel_tol * std::abs(fine)) {
    return fine;
  }
  return adaptive_impl(f, a, mid, left, 0.5 * abs_tol, rel_tol, depth - 1) +
         adaptive_impl(f, mid, b, right, 0.5 * abs_tol, rel_tol, depth - 1);
}
}  // namespace

double integrate_adaptive(const std::function<double(double)>& f, double a, double b,
                          double abs_tol, double rel_tol, int max_depth) {
  if (!(b >= a)) throw std::domain_error("integrate_adaptive: requires b >= a");
  if (a == b) return 0.0;
  const double coarse = integrate_gl(f, a, b, 16);
  return adaptive_impl(f, a, b, coarse, abs_tol, rel_tol, max_depth);
}

}  // namespace flowrank::numeric
