#include "flowrank/numeric/roots.hpp"

#include <cmath>
#include <stdexcept>

namespace flowrank::numeric {

namespace {
void check_bracket(double flo, double fhi) {
  if (std::isnan(flo) || std::isnan(fhi)) {
    throw std::invalid_argument("root finding: f is NaN at a bracket endpoint");
  }
  if (flo * fhi > 0.0) {
    throw std::invalid_argument("root finding: endpoints do not bracket a root");
  }
}
}  // namespace

RootResult bisect(const std::function<double(double)>& f, double lo, double hi,
                  double x_tol, int max_iter) {
  if (!(hi >= lo)) throw std::invalid_argument("bisect: requires hi >= lo");
  double flo = f(lo);
  double fhi = f(hi);
  check_bracket(flo, fhi);
  RootResult result;
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    ++result.iterations;
    if (fmid == 0.0 || hi - lo < x_tol) {
      return {mid, fmid, result.iterations, true};
    }
    if (flo * fmid < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fmid;
    }
  }
  result.x = 0.5 * (lo + hi);
  result.fx = f(result.x);
  result.converged = hi - lo < x_tol * 16;
  return result;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 double x_tol, int max_iter) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  check_bracket(fa, fb);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  double c = a, fc = fa;
  double d = b - a, e = d;
  RootResult result;
  for (int iter = 0; iter < max_iter; ++iter) {
    ++result.iterations;
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol1 = 2.0 * 1e-16 * std::abs(b) + 0.5 * x_tol;
    const double xm = 0.5 * (c - b);
    if (std::abs(xm) <= tol1 || fb == 0.0) {
      return {b, fb, result.iterations, true};
    }
    if (std::abs(e) >= tol1 && std::abs(fa) > std::abs(fb)) {
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * xm * s;
        q = 1.0 - s;
      } else {
        const double q0 = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * xm * q0 * (q0 - r) - (b - a) * (r - 1.0));
        q = (q0 - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      const double min1 = 3.0 * xm * q - std::abs(tol1 * q);
      const double min2 = std::abs(e * q);
      if (2.0 * p < (min1 < min2 ? min1 : min2)) {
        e = d;
        d = p / q;
      } else {
        d = xm;
        e = d;
      }
    } else {
      d = xm;
      e = d;
    }
    a = b;
    fa = fb;
    if (std::abs(d) > tol1) {
      b += d;
    } else {
      b += xm > 0.0 ? tol1 : -tol1;
    }
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  result.x = b;
  result.fx = fb;
  result.converged = false;
  return result;
}

}  // namespace flowrank::numeric
