// Numerical integration used by the continuous ranking/detection models.
//
// The model integrands are smooth (erfc of smooth arguments times binomial
// tail weights) but live on wildly different scales: the top-t weight is
// concentrated in a ~t/N-wide sliver of rank space while misranking mass
// against small flows spans the whole (0,1] interval. We therefore provide
// fixed-order Gauss-Legendre panels plus helpers that lay panels out
// geometrically in log space.
#pragma once

#include <functional>
#include <vector>

namespace flowrank::numeric {

/// Nodes/weights of an n-point Gauss-Legendre rule on [-1, 1].
/// Computed once per order via Newton iteration on Legendre polynomials
/// and cached; accurate to ~1e-15 for n <= 128.
struct GaussLegendreRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// Returns the cached rule for the given order (1 <= order <= 128).
[[nodiscard]] const GaussLegendreRule& gauss_legendre(int order);

/// Integrates f over [a, b] with a single Gauss-Legendre panel.
[[nodiscard]] double integrate_gl(const std::function<double(double)>& f, double a,
                                  double b, int order = 32);

/// Integrates f over [a, b] by splitting into `panels` geometrically spaced
/// panels (ratio chosen so that panel edges are log-uniform between a and b;
/// requires 0 < a < b). Ideal for integrands that vary on a log scale.
[[nodiscard]] double integrate_gl_log(const std::function<double(double)>& f, double a,
                                      double b, int panels, int order = 32);

/// Adaptive integration: recursively bisects until the difference between
/// order and 2*order Gauss panels is below abs_tol + rel_tol*|I|.
/// `max_depth` bounds recursion; on hitting the bound the best estimate is
/// returned (the models treat quadrature noise far below metric scales).
[[nodiscard]] double integrate_adaptive(const std::function<double(double)>& f,
                                        double a, double b, double abs_tol = 1e-12,
                                        double rel_tol = 1e-9, int max_depth = 18);

}  // namespace flowrank::numeric
