// Regularized incomplete beta function I_x(a, b).
//
// This is the workhorse behind stable binomial CDFs with huge N:
//   P{Bin(n,p) <= k} = I_{1-p}(n-k, k+1).
// Implemented with the standard Lentz continued fraction plus a log-space
// prefactor so it remains finite for a, b up to ~1e8 and extreme x.
#pragma once

namespace flowrank::numeric {

/// Regularized incomplete beta I_x(a,b) for a,b > 0 and x in [0,1].
/// Throws std::domain_error outside the domain.
[[nodiscard]] double incbeta(double a, double b, double x);

}  // namespace flowrank::numeric
