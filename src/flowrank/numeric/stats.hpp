// Descriptive statistics and tail-index estimation.
//
// RunningStats backs the multi-run simulation aggregates (mean ± stddev per
// bin, exactly what Figs. 12-16 plot). The Hill estimator backs the adaptive
// sampling-rate controller (paper future-work #3), which needs the Pareto
// shape of the *observed* traffic.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace flowrank::numeric {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile (linear interpolation between order statistics).
/// q in [0,1]; data need not be sorted. Throws on empty input.
[[nodiscard]] double quantile(std::span<const double> data, double q);

/// Hill estimator of the Pareto tail index beta using the k largest order
/// statistics: beta_hat = k / sum_{i<k} ln(X_(i)/X_(k)). Throws when the
/// data has fewer than k+1 positive values or k < 1.
[[nodiscard]] double hill_tail_index(std::span<const double> data, std::size_t k);

/// Kendall rank correlation tau-a over paired observations, counting ties
/// as discordant-neutral: tau = (C - D) / (n(n-1)/2). O(n^2) on ties-heavy
/// data is avoided with a merge-sort inversion count on the untied part.
[[nodiscard]] double kendall_tau(std::span<const double> x, std::span<const double> y);

}  // namespace flowrank::numeric
