// Binomial and Poisson distributions, stable for the paper's regimes.
//
// Two very different regimes coexist in the models:
//  * sampled flow sizes: Bin(S, p) with S up to ~1e6 packets,
//  * top-t membership: Bin(N-1, Pi) with N up to ~3.5e6 flows and Pi
//    as small as 1e-12.
// All pmf/cdf evaluations go through log space or the regularized
// incomplete beta so no intermediate under/overflows.
#pragma once

#include <cstdint>

namespace flowrank::numeric {

/// log P{Bin(n, p) = k}. Returns -inf outside the support.
[[nodiscard]] double binomial_log_pmf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) = k}.
[[nodiscard]] double binomial_pmf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) <= k}. Uses direct summation for tiny supports and the
/// regularized incomplete beta identity otherwise.
[[nodiscard]] double binomial_cdf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) > k} = 1 - cdf(k), computed without cancellation.
[[nodiscard]] double binomial_sf(std::int64_t k, std::int64_t n, double p);

/// log P{Pois(lambda) = k}.
[[nodiscard]] double poisson_log_pmf(std::int64_t k, double lambda);

/// P{Pois(lambda) = k}.
[[nodiscard]] double poisson_pmf(std::int64_t k, double lambda);

/// P{Pois(lambda) <= k} by stable summation from the mode outward.
[[nodiscard]] double poisson_cdf(std::int64_t k, double lambda);

}  // namespace flowrank::numeric
