// Binomial and Poisson distributions, stable for the paper's regimes.
//
// Two very different regimes coexist in the models:
//  * sampled flow sizes: Bin(S, p) with S up to ~1e6 packets,
//  * top-t membership: Bin(N-1, Pi) with N up to ~3.5e6 flows and Pi
//    as small as 1e-12.
// All pmf/cdf evaluations go through log space or the regularized
// incomplete beta so no intermediate under/overflows.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace flowrank::numeric {

/// log P{Bin(n, p) = k}. Returns -inf outside the support.
[[nodiscard]] double binomial_log_pmf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) = k}.
[[nodiscard]] double binomial_pmf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) <= k}. Uses direct summation for tiny supports and the
/// regularized incomplete beta identity otherwise.
[[nodiscard]] double binomial_cdf(std::int64_t k, std::int64_t n, double p);

/// P{Bin(n, p) > k} = 1 - cdf(k), computed without cancellation.
[[nodiscard]] double binomial_sf(std::int64_t k, std::int64_t n, double p);

/// Memoized pmf/cdf rows of one Bin(n, p).
///
/// The exact models sweep binomial pmf and cdf values over long contiguous
/// ranges of k — evaluating each term independently costs a log-gamma (pmf)
/// or an incomplete-beta continued fraction (cdf) per term, which is what
/// made the paper's exact evaluation take "hours". BinomialSweep anchors
/// the recurrence
///     pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
/// once (in log space, exactly) at the low edge of the distribution's
/// significant support window and then materializes pmf/cdf terms lazily,
/// so any number of queries over a row costs O(1) amortized per term.
///
/// Outside the window (beyond ~12 sigma + 40 terms from the mean) the pmf
/// is below 1e-30 and is reported as 0 (cdf as 0 below / 1 above), which
/// is far under the rounding noise of the sums these rows feed.
class BinomialSweep {
 public:
  /// Throws std::domain_error unless n >= 0 and p in [0,1].
  BinomialSweep(std::int64_t n, double p);

  /// First / last k of the significant support window (inclusive).
  [[nodiscard]] std::int64_t lo() const noexcept { return lo_; }
  [[nodiscard]] std::int64_t hi() const noexcept { return hi_; }

  /// P{Bin(n,p) = k}; 0 outside the window.
  [[nodiscard]] double pmf(std::int64_t k);

  /// P{Bin(n,p) <= k}; 0 below the window, 1 above it.
  [[nodiscard]] double cdf(std::int64_t k);

  [[nodiscard]] std::int64_t n() const noexcept { return n_; }
  [[nodiscard]] double p() const noexcept { return p_; }

  /// Thread-local memo keyed by (n, p): repeated sweeps over the same
  /// distribution (the common case in the model evaluations, which fix p
  /// and vary the companion flow) reuse the materialized rows. The memo
  /// is bounded and resets when it exceeds its cap; the returned
  /// shared_ptr keeps a sweep alive across that reset, so callers may
  /// hold several at once.
  [[nodiscard]] static std::shared_ptr<BinomialSweep> shared(std::int64_t n,
                                                             double p);

 private:
  /// Materializes terms up to k (clamped to the window).
  void ensure(std::int64_t k);

  std::int64_t n_;
  double p_;
  double odds_ = 0.0;            ///< p / (1-p)
  std::int64_t lo_ = 0, hi_ = 0; ///< significant support window
  std::vector<double> pmf_;      ///< pmf_[i] = pmf(lo_ + i)
  std::vector<double> cdf_;      ///< cdf_[i] = cdf(lo_ + i)
};

/// log P{Pois(lambda) = k}.
[[nodiscard]] double poisson_log_pmf(std::int64_t k, double lambda);

/// P{Pois(lambda) = k}.
[[nodiscard]] double poisson_pmf(std::int64_t k, double lambda);

/// P{Pois(lambda) <= k} by stable summation from the mode outward.
[[nodiscard]] double poisson_cdf(std::int64_t k, double lambda);

}  // namespace flowrank::numeric
