#include "flowrank/numeric/incbeta.hpp"

#include <cmath>
#include <stdexcept>

#include "flowrank/numeric/special.hpp"
#include "flowrank/util/error.hpp"

namespace flowrank::numeric {

namespace {

// Continued fraction for I_x(a,b), Numerical-Recipes style modified
// Lentz algorithm. Valid (fast-converging) for x < (a+1)/(a+b+2).
double betacf(double a, double b, double x) {
  constexpr int kMaxIter = 500;
  constexpr double kEps = 3e-16;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  // Convergence failure is a programming/domain error, not a runtime state
  // the models should silently absorb.
  throw Error(ErrorCategory::kInternal, "numeric",
              "incbeta: continued fraction did not converge");
}

}  // namespace

double incbeta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0)) {
    throw std::domain_error("incbeta: requires a, b > 0");
  }
  if (!(x >= 0.0 && x <= 1.0)) {
    throw std::domain_error("incbeta: requires x in [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;

  const double log_prefactor = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                               a * std::log(x) + b * std::log1p(-x);
  const double front = std::exp(log_prefactor);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betacf(a, b, x) / a;
  }
  return 1.0 - std::exp(log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                        b * std::log1p(-x) + a * std::log(x)) *
                   betacf(b, a, 1.0 - x) / b;
}

}  // namespace flowrank::numeric
