#include "flowrank/numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace flowrank::numeric {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ +
         delta * delta * static_cast<double>(n_) * static_cast<double>(other.n_) / total;
  mean_ += delta * static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double quantile(std::span<const double> data, double q) {
  if (data.empty()) throw std::invalid_argument("quantile: empty data");
  if (!(q >= 0.0 && q <= 1.0)) throw std::invalid_argument("quantile: q in [0,1]");
  std::vector<double> sorted(data.begin(), data.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double hill_tail_index(std::span<const double> data, std::size_t k) {
  if (k < 1) throw std::invalid_argument("hill_tail_index: k >= 1 required");
  std::vector<double> positive;
  positive.reserve(data.size());
  for (double v : data) {
    if (v > 0.0) positive.push_back(v);
  }
  if (positive.size() < k + 1) {
    throw std::invalid_argument("hill_tail_index: need more than k positive samples");
  }
  std::partial_sort(positive.begin(),
                    positive.begin() + static_cast<std::ptrdiff_t>(k + 1),
                    positive.end(), std::greater<>());
  const double x_k = positive[k];
  double acc = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += std::log(positive[i] / x_k);
  }
  if (acc <= 0.0) {
    throw std::invalid_argument("hill_tail_index: degenerate (all top values equal)");
  }
  return static_cast<double>(k) / acc;
}

namespace {

// Counts inversions of `v` via merge sort; O(n log n).
std::size_t count_inversions(std::vector<double>& v) {
  const std::size_t n = v.size();
  if (n < 2) return 0;
  std::vector<double> buffer(n);
  std::size_t inversions = 0;
  for (std::size_t width = 1; width < n; width *= 2) {
    for (std::size_t lo = 0; lo + width < n; lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if (v[i] <= v[j]) {
          buffer[k++] = v[i++];
        } else {
          inversions += mid - i;
          buffer[k++] = v[j++];
        }
      }
      while (i < mid) buffer[k++] = v[i++];
      while (j < hi) buffer[k++] = v[j++];
      std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(lo),
                buffer.begin() + static_cast<std::ptrdiff_t>(hi),
                v.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

}  // namespace

double kendall_tau(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("kendall_tau: size mismatch");
  }
  const std::size_t n = x.size();
  if (n < 2) throw std::invalid_argument("kendall_tau: need at least 2 pairs");
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (x[a] != x[b]) return x[a] < x[b];
    return y[a] < y[b];
  });
  // After sorting by x, discordant pairs among x-distinct entries are
  // inversions in y. Pairs tied in x or tied in y count as neither
  // concordant nor discordant (numerator only: tau-a with tie-neutrality).
  std::vector<double> y_sorted(n);
  for (std::size_t i = 0; i < n; ++i) y_sorted[i] = y[order[i]];

  // Count pairs tied in x and pairs tied in both.
  std::size_t tied_x_pairs = 0;
  {
    std::size_t run = 1;
    for (std::size_t i = 1; i <= n; ++i) {
      if (i < n && x[order[i]] == x[order[i - 1]]) {
        ++run;
      } else {
        tied_x_pairs += run * (run - 1) / 2;
        run = 1;
      }
    }
  }
  std::size_t tied_y_pairs = 0;
  {
    std::vector<double> ys(y.begin(), y.end());
    std::sort(ys.begin(), ys.end());
    std::size_t run = 1;
    for (std::size_t i = 1; i <= n; ++i) {
      if (i < n && ys[i] == ys[i - 1]) {
        ++run;
      } else {
        tied_y_pairs += run * (run - 1) / 2;
        run = 1;
      }
    }
  }
  // Inversions in y (ties in y sorted stably do not create inversions since
  // we use <=; ties within x-groups were ordered by y so they are already
  // ascending and contribute none).
  std::vector<double> work = y_sorted;
  const std::size_t discordant = count_inversions(work);
  const double total_pairs = 0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  // Concordant = total - discordant - ties (counting each tied pair once).
  // Pairs tied in both x and y are inside tied_x_pairs; avoid double count by
  // the inclusion below being approximate only when both-tied pairs exist in
  // different groups, which cannot happen (both-tied implies same x).
  const double tie_pairs = static_cast<double>(tied_x_pairs + tied_y_pairs);
  double concordant =
      total_pairs - static_cast<double>(discordant) - tie_pairs;
  if (concordant < 0.0) concordant = 0.0;  // overlapping tie classes
  return (concordant - static_cast<double>(discordant)) / total_pairs;
}

}  // namespace flowrank::numeric
