// Packet sampling strategies.
//
// The paper's analysis assumes random (Bernoulli) sampling; periodic and
// stratified sampling are what routers actually ship ([4], [14]) and [10]
// shows they behave like random sampling on high-speed links — we provide
// all three so that claim can be tested here too.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "flowrank/packet/records.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::sampler {

/// Decides, packet by packet, whether a packet enters the sampled stream.
class PacketSampler {
 public:
  virtual ~PacketSampler() = default;

  /// Returns true if this packet is selected.
  [[nodiscard]] virtual bool offer(const packet::PacketRecord& pkt) = 0;

  /// Expected fraction of packets selected.
  [[nodiscard]] virtual double rate() const noexcept = 0;

  /// Resets internal state (period phase, RNG is NOT reseeded).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Random sampling: every packet selected independently with probability p.
class BernoulliSampler final : public PacketSampler {
 public:
  /// Throws std::invalid_argument unless 0 <= p <= 1.
  BernoulliSampler(double p, std::uint64_t seed);

  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override { return p_; }
  void reset() override {}
  [[nodiscard]] std::string name() const override;

 private:
  double p_;
  util::Engine engine_;
};

/// Periodic sampling: one packet every `period` packets (deterministic).
class PeriodicSampler final : public PacketSampler {
 public:
  /// Selects packet indices congruent to `phase` modulo `period`.
  /// Throws std::invalid_argument unless period >= 1 and phase < period.
  explicit PeriodicSampler(std::uint64_t period, std::uint64_t phase = 0);

  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override {
    return 1.0 / static_cast<double>(period_);
  }
  void reset() override { counter_ = 0; }
  [[nodiscard]] std::string name() const override;

 private:
  std::uint64_t period_;
  std::uint64_t phase_;
  std::uint64_t counter_ = 0;
};

/// Stratified sampling: exactly one uniformly-chosen packet out of every
/// consecutive group of `period` packets.
class StratifiedSampler final : public PacketSampler {
 public:
  /// Throws std::invalid_argument unless period >= 1.
  StratifiedSampler(std::uint64_t period, std::uint64_t seed);

  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override {
    return 1.0 / static_cast<double>(period_);
  }
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  void draw_pick();

  std::uint64_t period_;
  util::Engine engine_;
  std::uint64_t position_ = 0;  // position within the current group
  std::uint64_t pick_ = 0;      // selected offset within the current group
};

/// Flow sampling ([8], [11]): a flow is either fully sampled or fully
/// dropped, decided by hashing its key — "if a flow is sampled, then all
/// packets belonging to that flow are sampled as well" (footnote 2).
class FlowSampler final : public PacketSampler {
 public:
  /// `q` is the per-flow selection probability; `def` the aggregation the
  /// decision applies to. Hash-based, so it needs no flow state.
  FlowSampler(double q, packet::FlowDefinition def, std::uint64_t seed);

  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override { return q_; }
  void reset() override {}
  [[nodiscard]] std::string name() const override;

  /// Key-level decision, usable without a packet.
  [[nodiscard]] bool selects(const packet::FlowKey& key) const noexcept;

 private:
  double q_;
  packet::FlowDefinition def_;
  std::uint64_t salt_;
  std::uint64_t threshold_;
};

/// Binomial thinning of a packet count: the count-level equivalent of
/// Bernoulli-sampling `count` packets at rate p.
[[nodiscard]] std::uint64_t thin_count(std::uint64_t count, double p,
                                       util::Engine& engine);

}  // namespace flowrank::sampler
