// Packet sampling strategies.
//
// The paper's analysis assumes random (Bernoulli) sampling; periodic and
// stratified sampling are what routers actually ship ([4], [14]) and [10]
// shows they behave like random sampling on high-speed links — we provide
// all three so that claim can be tested here too.
//
// The hot entry point is select(): it classifies a whole batch of packets
// at once using skip-based arithmetic (draw the gap to the next sampled
// packet instead of one coin per packet), which is how line-rate monitors
// keep per-packet cost near zero. offer() remains as a per-packet
// compatibility shim over the same internal state machine, so the two
// paths select bit-identical packet sets for the same seed.
#pragma once

#include <cstdint>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "flowrank/packet/records.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::sampler {

/// Decides which packets enter the sampled stream.
class PacketSampler {
 public:
  virtual ~PacketSampler() = default;

  /// Appends to `out_indices` the indices (into `batch`) of the selected
  /// packets, in increasing order. This is the batched hot path; the
  /// default implementation loops offer(), skip-based samplers override it.
  virtual void select(std::span<const packet::PacketRecord> batch,
                      std::vector<std::uint32_t>& out_indices);

  /// Convenience over select(): clears `selected` and refills it with
  /// copies of the selected packets, ready for FlowTable::add_batch.
  void select_into(std::span<const packet::PacketRecord> batch,
                   std::vector<packet::PacketRecord>& selected);

  /// Per-packet compatibility shim: returns true if this packet is
  /// selected. Equivalent to select() on a one-packet batch.
  [[nodiscard]] virtual bool offer(const packet::PacketRecord& pkt) = 0;

  /// Expected fraction of packets selected.
  [[nodiscard]] virtual double rate() const noexcept = 0;

  /// Resets internal state (period phase, skip countdown; the RNG is NOT
  /// reseeded).
  virtual void reset() = 0;

  [[nodiscard]] virtual std::string name() const = 0;

 private:
  std::vector<std::uint32_t> scratch_indices_;  ///< select_into() workspace
};

/// Random sampling: every packet selected independently with probability p.
///
/// Implemented with geometric skips: the gap until the next selected packet
/// is Geometric(p), so the RNG is touched once per *selected* packet
/// instead of once per packet — at p = 1% that is a 100x reduction in
/// random-number draws on the fast path.
class BernoulliSampler final : public PacketSampler {
 public:
  /// Throws std::invalid_argument unless 0 <= p <= 1.
  BernoulliSampler(double p, std::uint64_t seed);

  void select(std::span<const packet::PacketRecord> batch,
              std::vector<std::uint32_t>& out_indices) override;
  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override { return p_; }
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  /// Draws the number of packets skipped before the next selected one.
  [[nodiscard]] std::uint64_t draw_gap();

  double p_;
  double inv_log_q_ = 0.0;  ///< 1 / log(1-p), cached for the gap transform
  util::Engine engine_;
  std::uint64_t countdown_ = 0;  ///< packets to pass over before selecting
};

/// Periodic sampling: one packet every `period` packets (deterministic).
class PeriodicSampler final : public PacketSampler {
 public:
  /// Selects packet indices congruent to `phase` modulo `period`.
  /// Throws std::invalid_argument unless period >= 1 and phase < period.
  explicit PeriodicSampler(std::uint64_t period, std::uint64_t phase = 0);

  void select(std::span<const packet::PacketRecord> batch,
              std::vector<std::uint32_t>& out_indices) override;
  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override {
    return 1.0 / static_cast<double>(period_);
  }
  void reset() override { counter_ = 0; }
  [[nodiscard]] std::string name() const override;

 private:
  std::uint64_t period_;
  std::uint64_t phase_;
  std::uint64_t counter_ = 0;
};

/// Stratified sampling: exactly one uniformly-chosen packet out of every
/// consecutive group of `period` packets.
class StratifiedSampler final : public PacketSampler {
 public:
  /// Throws std::invalid_argument unless period >= 1.
  StratifiedSampler(std::uint64_t period, std::uint64_t seed);

  void select(std::span<const packet::PacketRecord> batch,
              std::vector<std::uint32_t>& out_indices) override;
  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override {
    return 1.0 / static_cast<double>(period_);
  }
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  void draw_pick();

  std::uint64_t period_;
  util::Engine engine_;
  std::uniform_int_distribution<std::uint64_t> pick_dist_;
  std::uint64_t position_ = 0;  // position within the current group
  std::uint64_t pick_ = 0;      // selected offset within the current group
};

/// Flow sampling ([8], [11]): a flow is either fully sampled or fully
/// dropped, decided by hashing its key — "if a flow is sampled, then all
/// packets belonging to that flow are sampled as well" (footnote 2).
class FlowSampler final : public PacketSampler {
 public:
  /// `q` is the per-flow selection probability; `def` the aggregation the
  /// decision applies to. Hash-based, so it needs no flow state.
  FlowSampler(double q, packet::FlowDefinition def, std::uint64_t seed);

  void select(std::span<const packet::PacketRecord> batch,
              std::vector<std::uint32_t>& out_indices) override;
  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override { return q_; }
  void reset() override {}
  [[nodiscard]] std::string name() const override;

  /// Key-level decision, usable without a packet.
  [[nodiscard]] bool selects(const packet::FlowKey& key) const noexcept;

 private:
  double q_;
  packet::FlowDefinition def_;
  std::uint64_t salt_;
  std::uint64_t threshold_;
  // select() batch workspace: keys + salted hashes for the SIMD kernel.
  std::vector<packet::FlowKey> scratch_keys_;
  std::vector<std::uint64_t> scratch_hashes_;
};

/// Counter-split Bernoulli sampling: packet number n of a stream is
/// selected iff a SplitMix-derived hash of (seed, n) falls under the
/// rate threshold.
///
/// This is the gated per-shard ingest sampler. Selection is a pure
/// per-packet function of the packet's global stream index, so any
/// partitioning of the stream — one shard or many — selects exactly the
/// same packets: each ingest shard can thin its own substream in
/// parallel (no sequential skip-stream in front of the parallel region)
/// while staying bit-identical across shard counts. The selected set is
/// canonically DIFFERENT from BernoulliSampler's geometric-skip stream
/// at the same (rate, seed), which is why the pipeline gate enabling it
/// ships off by default, like the PR 3 binomial switch (see
/// docs/PERFORMANCE.md "Scale-up ingest").
class SplitStreamSampler final : public PacketSampler {
 public:
  /// Throws std::invalid_argument unless 0 <= p <= 1.
  SplitStreamSampler(double p, std::uint64_t seed);

  /// The pure per-index decision. Pipeline shards call this with the
  /// stream index carried alongside each partitioned record; offer()/
  /// select() below are the same decision driven by an internal
  /// position counter (for drivers that see the stream in order).
  [[nodiscard]] bool selects(std::uint64_t index) const noexcept {
    return util::mix_stream(seed_, index) <= threshold_;
  }

  void select(std::span<const packet::PacketRecord> batch,
              std::vector<std::uint32_t>& out_indices) override;
  [[nodiscard]] bool offer(const packet::PacketRecord& pkt) override;
  [[nodiscard]] double rate() const noexcept override { return p_; }
  void reset() override { position_ = 0; }
  [[nodiscard]] std::string name() const override;

 private:
  double p_;
  std::uint64_t seed_;
  std::uint64_t threshold_;
  std::uint64_t position_ = 0;  ///< next stream index to examine
};

/// Binomial thinning of a packet count: the count-level equivalent of
/// Bernoulli-sampling `count` packets at rate p. Backed by
/// util::binomial_sample, so the variate stream is the canonical portable
/// one (identical across standard libraries), not the
/// implementation-defined std::binomial_distribution stream.
[[nodiscard]] std::uint64_t thin_count(std::uint64_t count, double p,
                                       util::Engine& engine);

}  // namespace flowrank::sampler
