#include "flowrank/sampler/smart_sampler.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace flowrank::sampler {

SmartSampler::SmartSampler(double z, std::uint64_t seed)
    : z_(z), engine_(util::make_engine(seed, 0x53A4u)) {
  if (!(z > 0.0)) throw std::invalid_argument("SmartSampler: z must be > 0");
}

double SmartSampler::selection_probability(double packets) const noexcept {
  return packets >= z_ ? 1.0 : packets / z_;
}

std::vector<SmartSampledFlow> SmartSampler::sample(
    const std::vector<packet::FlowRecord>& flows) {
  std::vector<SmartSampledFlow> out;
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  for (const auto& flow : flows) {
    const auto size = static_cast<double>(flow.packets);
    if (unif(engine_) < selection_probability(size)) {
      out.push_back(SmartSampledFlow{flow, std::max(size, z_)});
    }
  }
  return out;
}

}  // namespace flowrank::sampler
