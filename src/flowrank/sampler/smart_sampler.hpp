// Smart (size-dependent) sampling of flow records, after Duffield & Lund
// [8]: select a flow record of size x with probability min(1, x/z) and
// report the Horvitz-Thompson-corrected size max(x, z). Large flows are
// always kept; the estimator of total traffic stays unbiased.
//
// In the paper this is related work that motivates the contrast with
// packet sampling; we implement it as a baseline comparator.
#pragma once

#include <cstdint>
#include <vector>

#include "flowrank/packet/records.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::sampler {

/// A smart-sampled flow record with its unbiased size estimate.
struct SmartSampledFlow {
  packet::FlowRecord flow;
  double estimated_packets = 0.0;  ///< max(packets, z): unbiased under HT
};

/// Size-dependent flow-record sampler with threshold `z` (packets).
class SmartSampler {
 public:
  /// Throws std::invalid_argument unless z > 0.
  SmartSampler(double z, std::uint64_t seed);

  /// Applies smart sampling to a collection of flow records.
  [[nodiscard]] std::vector<SmartSampledFlow> sample(
      const std::vector<packet::FlowRecord>& flows);

  /// Selection probability for a flow of the given size.
  [[nodiscard]] double selection_probability(double packets) const noexcept;

  [[nodiscard]] double threshold() const noexcept { return z_; }

 private:
  double z_;
  util::Engine engine_;
};

}  // namespace flowrank::sampler
