#include "flowrank/sampler/packet_sampler.hpp"

#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <stdexcept>

#include "flowrank/flowtable/hash_batch.hpp"
#include "flowrank/util/binomial_sample.hpp"

namespace flowrank::sampler {

namespace {
/// Countdown value meaning "never select" (p == 0).
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

}  // namespace

void PacketSampler::select(std::span<const packet::PacketRecord> batch,
                           std::vector<std::uint32_t>& out_indices) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (offer(batch[i])) out_indices.push_back(static_cast<std::uint32_t>(i));
  }
}

void PacketSampler::select_into(std::span<const packet::PacketRecord> batch,
                                std::vector<packet::PacketRecord>& selected) {
  scratch_indices_.clear();
  select(batch, scratch_indices_);
  selected.clear();
  for (const std::uint32_t i : scratch_indices_) selected.push_back(batch[i]);
}

BernoulliSampler::BernoulliSampler(double p, std::uint64_t seed)
    : p_(p), engine_(util::make_engine(seed, 0xBE44u)) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BernoulliSampler: p in [0,1]");
  }
  if (p_ > 0.0 && p_ < 1.0) inv_log_q_ = 1.0 / std::log1p(-p_);
  countdown_ = draw_gap();
}

std::uint64_t BernoulliSampler::draw_gap() {
  if (p_ >= 1.0) return 0;
  if (p_ <= 0.0) return kNever;
  // Geometric(p) via inversion: floor(log(U) / log(1-p)), U in (0,1].
  const double gap = std::floor(std::log(util::uniform_unit_open(engine_)) * inv_log_q_);
  if (gap >= 9.2e18) return kNever - 1;  // beyond any realistic trace
  return static_cast<std::uint64_t>(gap);
}

bool BernoulliSampler::offer(const packet::PacketRecord&) {
  if (countdown_ == 0) {
    countdown_ = draw_gap();
    return true;
  }
  --countdown_;
  return false;
}

void BernoulliSampler::select(std::span<const packet::PacketRecord> batch,
                              std::vector<std::uint32_t>& out_indices) {
  const std::uint64_t n = batch.size();
  std::uint64_t i = 0;
  while (countdown_ < n - i) {
    i += countdown_;
    out_indices.push_back(static_cast<std::uint32_t>(i));
    countdown_ = draw_gap();
    ++i;
  }
  countdown_ -= n - i;
}

void BernoulliSampler::reset() { countdown_ = draw_gap(); }

std::string BernoulliSampler::name() const {
  std::ostringstream os;
  os << "bernoulli(p=" << p_ << ")";
  return os.str();
}

PeriodicSampler::PeriodicSampler(std::uint64_t period, std::uint64_t phase)
    : period_(period), phase_(phase) {
  if (period < 1) throw std::invalid_argument("PeriodicSampler: period >= 1");
  if (phase >= period) throw std::invalid_argument("PeriodicSampler: phase < period");
}

bool PeriodicSampler::offer(const packet::PacketRecord&) {
  const bool selected = counter_ % period_ == phase_;
  ++counter_;
  return selected;
}

void PeriodicSampler::select(std::span<const packet::PacketRecord> batch,
                             std::vector<std::uint32_t>& out_indices) {
  const std::uint64_t n = batch.size();
  // Offset within the batch of the first selected packet.
  const std::uint64_t pos = counter_ % period_;
  std::uint64_t i = pos <= phase_ ? phase_ - pos : period_ - pos + phase_;
  for (; i < n; i += period_) {
    out_indices.push_back(static_cast<std::uint32_t>(i));
  }
  counter_ += n;
}

std::string PeriodicSampler::name() const {
  std::ostringstream os;
  os << "periodic(1-in-" << period_ << ")";
  return os.str();
}

StratifiedSampler::StratifiedSampler(std::uint64_t period, std::uint64_t seed)
    : period_(period),
      engine_(util::make_engine(seed, 0x57A7u)),
      pick_dist_(0, period >= 1 ? period - 1 : 0) {
  if (period < 1) throw std::invalid_argument("StratifiedSampler: period >= 1");
  draw_pick();
}

void StratifiedSampler::draw_pick() { pick_ = pick_dist_(engine_); }

bool StratifiedSampler::offer(const packet::PacketRecord&) {
  const bool selected = position_ == pick_;
  ++position_;
  if (position_ == period_) {
    position_ = 0;
    draw_pick();
  }
  return selected;
}

void StratifiedSampler::select(std::span<const packet::PacketRecord> batch,
                               std::vector<std::uint32_t>& out_indices) {
  const std::uint64_t n = batch.size();
  std::uint64_t i = 0;
  while (i < n) {
    // The batch segment that falls inside the current group.
    const std::uint64_t take = std::min(period_ - position_, n - i);
    if (pick_ >= position_ && pick_ < position_ + take) {
      out_indices.push_back(static_cast<std::uint32_t>(i + (pick_ - position_)));
    }
    position_ += take;
    i += take;
    if (position_ == period_) {
      position_ = 0;
      draw_pick();
    }
  }
}

void StratifiedSampler::reset() {
  position_ = 0;
  draw_pick();
}

std::string StratifiedSampler::name() const {
  std::ostringstream os;
  os << "stratified(1-in-" << period_ << ")";
  return os.str();
}

FlowSampler::FlowSampler(double q, packet::FlowDefinition def, std::uint64_t seed)
    : q_(q), def_(def), salt_(util::derive_seed(seed, 0xF10Du)) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("FlowSampler: q in [0,1]");
  }
  // Map q onto the full 64-bit hash range. q=1 must select everything.
  threshold_ = q >= 1.0 ? ~0ULL
                        : static_cast<std::uint64_t>(
                              q * 18446744073709551615.0);  // 2^64 - 1
}

bool FlowSampler::selects(const packet::FlowKey& key) const noexcept {
  std::uint64_t z = key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL) ^ salt_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z <= threshold_;
}

bool FlowSampler::offer(const packet::PacketRecord& pkt) {
  return selects(packet::make_flow_key(pkt.tuple, def_));
}

void FlowSampler::select(std::span<const packet::PacketRecord> batch,
                         std::vector<std::uint32_t>& out_indices) {
  // Stateless hash-threshold test, no RNG at all. The salted hashes run
  // through the batch SIMD kernel — folding salt_ into the first mixing
  // step reproduces selects() bit for bit (tests/test_hash_batch.cpp),
  // so this path and offer() still agree exactly.
  const std::size_t n = batch.size();
  scratch_keys_.resize(n);
  scratch_hashes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_keys_[i] = packet::make_flow_key(batch[i].tuple, def_);
  }
  flowtable::hash_batch(scratch_keys_, salt_, scratch_hashes_);
  for (std::size_t i = 0; i < n; ++i) {
    if (scratch_hashes_[i] <= threshold_) {
      out_indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
}

std::string FlowSampler::name() const {
  std::ostringstream os;
  os << "flow-sampling(q=" << q_ << ", " << packet::to_string(def_) << ")";
  return os.str();
}

SplitStreamSampler::SplitStreamSampler(double p, std::uint64_t seed)
    : p_(p), seed_(util::derive_seed(seed, 0x5117u)) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("SplitStreamSampler: p in [0,1]");
  }
  // Same threshold mapping as FlowSampler: p onto the full 64-bit range,
  // with p=1 selecting everything.
  threshold_ = p >= 1.0 ? ~0ULL
                        : static_cast<std::uint64_t>(
                              p * 18446744073709551615.0);  // 2^64 - 1
}

bool SplitStreamSampler::offer(const packet::PacketRecord&) {
  return selects(position_++);
}

void SplitStreamSampler::select(std::span<const packet::PacketRecord> batch,
                                std::vector<std::uint32_t>& out_indices) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (selects(position_ + i)) {
      out_indices.push_back(static_cast<std::uint32_t>(i));
    }
  }
  position_ += batch.size();
}

std::string SplitStreamSampler::name() const {
  std::ostringstream os;
  os << "split-bernoulli(p=" << p_ << ")";
  return os.str();
}

std::uint64_t thin_count(std::uint64_t count, double p, util::Engine& engine) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("thin_count: p in [0,1]");
  }
  // util::binomial_sample rather than std::binomial_distribution: no
  // per-call distribution construction, O(1) draws for large counts, and
  // a variate stream that is identical across standard libraries (the
  // std:: one is implementation-defined, which silently forked the
  // "deterministic" figure data between libstdc++ and libc++).
  return util::binomial_sample(count, p, engine);
}

}  // namespace flowrank::sampler
