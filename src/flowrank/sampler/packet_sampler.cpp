#include "flowrank/sampler/packet_sampler.hpp"

#include <random>
#include <sstream>
#include <stdexcept>

namespace flowrank::sampler {

BernoulliSampler::BernoulliSampler(double p, std::uint64_t seed)
    : p_(p), engine_(util::make_engine(seed, 0xBE44u)) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BernoulliSampler: p in [0,1]");
  }
}

bool BernoulliSampler::offer(const packet::PacketRecord&) {
  std::bernoulli_distribution coin(p_);
  return coin(engine_);
}

std::string BernoulliSampler::name() const {
  std::ostringstream os;
  os << "bernoulli(p=" << p_ << ")";
  return os.str();
}

PeriodicSampler::PeriodicSampler(std::uint64_t period, std::uint64_t phase)
    : period_(period), phase_(phase) {
  if (period < 1) throw std::invalid_argument("PeriodicSampler: period >= 1");
  if (phase >= period) throw std::invalid_argument("PeriodicSampler: phase < period");
}

bool PeriodicSampler::offer(const packet::PacketRecord&) {
  const bool selected = counter_ % period_ == phase_;
  ++counter_;
  return selected;
}

std::string PeriodicSampler::name() const {
  std::ostringstream os;
  os << "periodic(1-in-" << period_ << ")";
  return os.str();
}

StratifiedSampler::StratifiedSampler(std::uint64_t period, std::uint64_t seed)
    : period_(period), engine_(util::make_engine(seed, 0x57A7u)) {
  if (period < 1) throw std::invalid_argument("StratifiedSampler: period >= 1");
  draw_pick();
}

void StratifiedSampler::draw_pick() {
  std::uniform_int_distribution<std::uint64_t> unif(0, period_ - 1);
  pick_ = unif(engine_);
}

bool StratifiedSampler::offer(const packet::PacketRecord&) {
  const bool selected = position_ == pick_;
  ++position_;
  if (position_ == period_) {
    position_ = 0;
    draw_pick();
  }
  return selected;
}

void StratifiedSampler::reset() {
  position_ = 0;
  draw_pick();
}

std::string StratifiedSampler::name() const {
  std::ostringstream os;
  os << "stratified(1-in-" << period_ << ")";
  return os.str();
}

FlowSampler::FlowSampler(double q, packet::FlowDefinition def, std::uint64_t seed)
    : q_(q), def_(def), salt_(util::derive_seed(seed, 0xF10Du)) {
  if (!(q >= 0.0 && q <= 1.0)) {
    throw std::invalid_argument("FlowSampler: q in [0,1]");
  }
  // Map q onto the full 64-bit hash range. q=1 must select everything.
  threshold_ = q >= 1.0 ? ~0ULL
                        : static_cast<std::uint64_t>(
                              q * 18446744073709551615.0);  // 2^64 - 1
}

bool FlowSampler::selects(const packet::FlowKey& key) const noexcept {
  std::uint64_t z = key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL) ^ salt_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z <= threshold_;
}

bool FlowSampler::offer(const packet::PacketRecord& pkt) {
  return selects(packet::make_flow_key(pkt.tuple, def_));
}

std::string FlowSampler::name() const {
  std::ostringstream os;
  os << "flow-sampling(q=" << q_ << ", " << packet::to_string(def_) << ")";
  return os.str();
}

std::uint64_t thin_count(std::uint64_t count, double p, util::Engine& engine) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("thin_count: p in [0,1]");
  }
  if (count == 0 || p == 0.0) return 0;
  if (p == 1.0) return count;
  std::binomial_distribution<std::uint64_t> bin(count, p);
  return bin(engine);
}

}  // namespace flowrank::sampler
