// Flow classification: packets → per-flow counters.
//
// This is the "link monitor" of the paper's problem statement: it
// classifies (sampled or unsampled) packets into flows under either flow
// definition and accumulates counters. Optional idle-timeout splitting
// reproduces the flow-splitting effect discussed in the introduction
// ("a flow can be split into multiple subflows if the sampling frequency
// is too low", flow timeout per Claffy et al. [5]).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/packet/records.hpp"

namespace flowrank::flowtable {

/// Accumulated state of one flow (or subflow) in the table.
struct FlowCounter {
  packet::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t last_ns = std::numeric_limits<std::int64_t>::min();
  std::uint32_t min_tcp_seq = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_tcp_seq = 0;
  bool has_tcp_seq = false;
};

/// Hash-table flow classifier.
class FlowTable {
 public:
  struct Options {
    packet::FlowDefinition definition = packet::FlowDefinition::kFiveTuple;
    /// Idle gap (ns) after which a new packet starts a new subflow.
    /// 0 disables timeout splitting.
    std::int64_t idle_timeout_ns = 0;
  };

  explicit FlowTable(Options options);

  /// Accounts one packet.
  void add(const packet::PacketRecord& pkt);

  /// Live flows (unordered). Subflows closed by timeout splitting are in
  /// completed().
  [[nodiscard]] std::vector<FlowCounter> active() const;

  /// Subflows terminated by the idle timeout, in completion order.
  [[nodiscard]] const std::vector<FlowCounter>& completed() const noexcept {
    return completed_;
  }

  /// All flows: completed subflows followed by active ones.
  [[nodiscard]] std::vector<FlowCounter> all() const;

  /// Number of live table entries.
  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }

  /// Clears all state (end of measurement interval, "memory is cleared").
  void clear();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  Options options_;
  std::unordered_map<packet::FlowKey, FlowCounter, packet::FlowKeyHash> table_;
  std::vector<FlowCounter> completed_;
};

/// Returns the top `t` flows by packet count, descending; ties broken by
/// key for determinism. `t` larger than the input returns everything.
[[nodiscard]] std::vector<FlowCounter> top_k(std::vector<FlowCounter> flows,
                                             std::size_t t);

}  // namespace flowrank::flowtable
