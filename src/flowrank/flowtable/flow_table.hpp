// Flow classification: packets → per-flow counters.
//
// This is the "link monitor" of the paper's problem statement: it
// classifies (sampled or unsampled) packets into flows under either flow
// definition and accumulates counters. Optional idle-timeout splitting
// reproduces the flow-splitting effect discussed in the introduction
// ("a flow can be split into multiple subflows if the sampling frequency
// is too low", flow timeout per Claffy et al. [5]).
//
// The table is a flat open-addressing hash table (power-of-two capacity,
// linear probing) rather than a node-based std::unordered_map, stored as
// two parallel arrays: a dense array of cached 64-bit hashes that probes
// walk (8 bytes per slot, so even a million-flow table probes within ~8 MB
// of sequential memory) and a counter array touched exactly once per
// packet. add_batch() precomputes the batch's keys and hashes and issues
// software prefetches a fixed distance ahead, hiding the DRAM latency
// that dominates random-access classification at line rate. Entries are
// never individually deleted — a timeout split rewrites the slot in place
// (the finished subflow moves to completed_), so no tombstones are ever
// needed and probe chains never degrade.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/packet/records.hpp"

namespace flowrank::flowtable {

/// Accumulated state of one flow (or subflow) in the table.
struct FlowCounter {
  packet::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_ns = std::numeric_limits<std::int64_t>::max();
  std::int64_t last_ns = std::numeric_limits<std::int64_t>::min();
  std::uint32_t min_tcp_seq = std::numeric_limits<std::uint32_t>::max();
  std::uint32_t max_tcp_seq = 0;
  bool has_tcp_seq = false;
};

/// Folds `from` into `into`: counts add, time and TCP-seq ranges widen.
/// Both counters must describe the same flow key.
void merge_counter(FlowCounter& into, const FlowCounter& from) noexcept;

/// Hash-table flow classifier.
class FlowTable {
 public:
  struct Options {
    packet::FlowDefinition definition = packet::FlowDefinition::kFiveTuple;
    /// Idle gap (ns) after which a new packet starts a new subflow.
    /// 0 disables timeout splitting.
    std::int64_t idle_timeout_ns = 0;
    /// Initial slot count (rounded up to a power of two, >= 64).
    std::size_t initial_capacity = 1024;
  };

  explicit FlowTable(Options options);

  /// Accounts one packet.
  void add(const packet::PacketRecord& pkt);

  /// Accounts a batch of packets (the hot ingest path). Equivalent to
  /// calling add() on each packet in order.
  void add_batch(std::span<const packet::PacketRecord> batch);

  /// add_batch() with the key hashes already computed (the
  /// partition-at-source path: ingest::ShardedPipeline hashes each
  /// packet once at the driver and carries the hash with the record).
  /// `hashes[i]` must be the table-ready hash of batch[i]'s key —
  /// flowtable::hash_batch_table_ready() output — so pass 1 here only
  /// rebuilds keys (cheap bit-packing) and never re-hashes. Bit-
  /// identical to add_batch(batch).
  void add_batch(std::span<const packet::PacketRecord> batch,
                 std::span<const std::uint64_t> hashes);

  /// Invokes `fn(const FlowCounter&)` for every live table entry, in slot
  /// order, without copying. Subflows closed by timeout splitting are in
  /// completed().
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (std::size_t i = 0; i < hashes_.size(); ++i) {
      if (hashes_[i] != kEmptyHash) fn(counters_[i]);
    }
  }

  /// Invokes `fn(const FlowCounter&)` for every flow: completed subflows
  /// first (in completion order), then live entries.
  template <typename Fn>
  void for_each_all(Fn&& fn) const {
    for (const FlowCounter& counter : completed_) fn(counter);
    for_each_active(fn);
  }

  /// Live flows (unordered). Copies; prefer for_each_active() on hot paths.
  [[nodiscard]] std::vector<FlowCounter> active() const;

  /// Subflows terminated by the idle timeout, in completion order.
  [[nodiscard]] const std::vector<FlowCounter>& completed() const noexcept {
    return completed_;
  }

  /// All flows: completed subflows followed by active ones. Copies;
  /// prefer for_each_all() on hot paths.
  [[nodiscard]] std::vector<FlowCounter> all() const;

  /// Number of live table entries.
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Current slot count (power of two).
  [[nodiscard]] std::size_t capacity() const noexcept { return hashes_.size(); }

  /// Folds one flow counter into the table: a fresh key takes the counter
  /// whole, an existing key merges via merge_counter(). This is the
  /// primitive cross-agent aggregation builds per-window tables from
  /// (reconstructing a table from FlowSummary entries or shard flushes),
  /// and the per-key step of merge_from(). Conservation holds exactly:
  /// per-key packet/byte sums and time/seq spans are independent of
  /// insertion order.
  void insert_counter(const FlowCounter& counter);

  /// Merges another table's flows into this one (the shard-merge step of
  /// the sharded ingest pipeline, and the overlapping-key case of
  /// cross-agent aggregation): `other`'s completed subflows are appended
  /// to completed(), its active entries are unioned in by key
  /// (insert_counter() per entry). When the two tables hold disjoint key
  /// sets — the invariant of hash-sharded ingest — the merged table is
  /// element-wise identical to one classified serially; only iteration
  /// order may differ. Overlapping keys merge conservatively, including
  /// legitimate zero-packet entries (freshness is decided by slot
  /// occupancy, not a packets == 0 heuristic that would clobber them).
  void merge_from(const FlowTable& other);

  /// Clears all state (end of measurement interval, "memory is cleared").
  /// Capacity is retained so the next interval does not re-grow.
  void clear();

  [[nodiscard]] const Options& options() const noexcept { return options_; }

 private:
  /// Sentinel hash marking an empty slot; real hashes are remapped off it.
  static constexpr std::uint64_t kEmptyHash = 0;

  [[nodiscard]] static std::uint64_t hash_key(const packet::FlowKey& key) noexcept;
  /// Finds the slot for `key`, inserting an empty counter if absent.
  [[nodiscard]] std::size_t find_or_insert(const packet::FlowKey& key,
                                           std::uint64_t hash);
  /// Pass 2 of both add_batch overloads: probe + accumulate over
  /// batch_keys_ (already filled) using the given table-ready hashes.
  void probe_batch(std::span<const packet::PacketRecord> batch,
                   std::span<const std::uint64_t> hashes);
  void accumulate(FlowCounter& counter, const packet::FlowKey& key,
                  const packet::PacketRecord& pkt);
  void grow();

  Options options_;
  std::vector<std::uint64_t> hashes_;    ///< probe array, power-of-two sized
  std::vector<FlowCounter> counters_;    ///< parallel to hashes_
  std::size_t mask_ = 0;                 ///< hashes_.size() - 1
  std::size_t size_ = 0;                 ///< occupied slots
  std::size_t grow_at_ = 0;              ///< grow when size_ reaches this
  std::vector<FlowCounter> completed_;
  // Per-batch scratch (kept to avoid reallocating every add_batch call).
  std::vector<packet::FlowKey> batch_keys_;
  std::vector<std::uint64_t> batch_hashes_;
};

/// Returns the top `t` flows by packet count, descending; ties broken by
/// key for determinism. `t` larger than the input returns everything.
[[nodiscard]] std::vector<FlowCounter> top_k(std::vector<FlowCounter> flows,
                                             std::size_t t);

/// Top `t` over all flows of a table (completed + active) without
/// materializing the full flow vector: selection via a bounded min-heap,
/// O(n log t) time and O(t) extra space.
[[nodiscard]] std::vector<FlowCounter> top_k(const FlowTable& table, std::size_t t);

}  // namespace flowrank::flowtable
