// The paper's "binning method" (Sec. 8): packets are classified into flows
// for one measurement interval; at each interval boundary the table is
// reported and cleared, truncating flows that span the boundary.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "flowrank/flowtable/flow_table.hpp"

namespace flowrank::flowtable {

/// Streams packets through a FlowTable, emitting a snapshot per bin.
class BinnedClassifier {
 public:
  /// Called at the end of each bin with (bin index, flows observed in it).
  using BinCallback =
      std::function<void(std::size_t bin, std::vector<FlowCounter> flows)>;

  /// Non-copying variant: called at the end of each bin with the table
  /// still populated (completed subflows + active entries). The reference
  /// is only valid during the call; use for_each_all()/for_each_active()
  /// or top_k(table, t) to read it.
  using TableCallback =
      std::function<void(std::size_t bin, const FlowTable& table)>;

  /// `bin_ns` is the measurement-interval length. Throws on bin_ns <= 0.
  BinnedClassifier(FlowTable::Options table_options, std::int64_t bin_ns,
                   BinCallback on_bin);

  /// Builds a classifier with the non-copying per-bin callback. (A named
  /// factory rather than an overload: generic lambdas would make the two
  /// std::function constructors ambiguous.)
  [[nodiscard]] static BinnedClassifier with_table_view(
      FlowTable::Options table_options, std::int64_t bin_ns,
      TableCallback on_bin);

  /// Adds a packet. Packets must arrive in non-decreasing timestamp order;
  /// crossing a bin boundary flushes the previous bin first.
  void add(const packet::PacketRecord& pkt);

  /// Adds a batch of time-ordered packets: runs of packets falling into
  /// the same bin are classified with FlowTable::add_batch, with bin
  /// flushes only at the (rare) boundaries inside the batch.
  void add_batch(std::span<const packet::PacketRecord> batch);

  /// add_batch() with carried table-ready key hashes (parallel to
  /// `batch`; see FlowTable::add_batch's hashed overload). Bin-run
  /// segmentation is identical — both spans are subdivided together.
  void add_batch(std::span<const packet::PacketRecord> batch,
                 std::span<const std::uint64_t> hashes);

  /// Flushes the final (possibly partial) bin. Call once at end of trace.
  void finish();

  /// Epoch rotation for continuous monitors: flushes every bin strictly
  /// before `bin` (exactly as if a packet of `bin` had arrived) and
  /// forgets the flush-at-finish obligation, so a quiet classifier does
  /// not emit a spurious empty bin later. No-op when `bin` is not ahead
  /// of the current bin. Packets added afterwards must land in bins
  /// >= `bin`.
  void flush_through(std::size_t bin);

  /// Index of the bin currently being filled.
  [[nodiscard]] std::size_t current_bin() const noexcept { return current_bin_; }

 private:
  struct TableViewTag {};
  BinnedClassifier(TableViewTag, FlowTable::Options table_options,
                   std::int64_t bin_ns, TableCallback on_bin);

  void flush_bin();
  /// Flushes all bins strictly before `bin`.
  void advance_to_bin(std::size_t bin);

  FlowTable table_;
  std::int64_t bin_ns_;
  /// Single flush path: a BinCallback is adapted to this at construction.
  TableCallback on_bin_;
  std::size_t current_bin_ = 0;
  bool saw_packet_ = false;
};

}  // namespace flowrank::flowtable
