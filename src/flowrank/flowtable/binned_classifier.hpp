// The paper's "binning method" (Sec. 8): packets are classified into flows
// for one measurement interval; at each interval boundary the table is
// reported and cleared, truncating flows that span the boundary.
#pragma once

#include <functional>
#include <vector>

#include "flowrank/flowtable/flow_table.hpp"

namespace flowrank::flowtable {

/// Streams packets through a FlowTable, emitting a snapshot per bin.
class BinnedClassifier {
 public:
  /// Called at the end of each bin with (bin index, flows observed in it).
  using BinCallback =
      std::function<void(std::size_t bin, std::vector<FlowCounter> flows)>;

  /// `bin_ns` is the measurement-interval length. Throws on bin_ns <= 0.
  BinnedClassifier(FlowTable::Options table_options, std::int64_t bin_ns,
                   BinCallback on_bin);

  /// Adds a packet. Packets must arrive in non-decreasing timestamp order;
  /// crossing a bin boundary flushes the previous bin first.
  void add(const packet::PacketRecord& pkt);

  /// Flushes the final (possibly partial) bin. Call once at end of trace.
  void finish();

  /// Index of the bin currently being filled.
  [[nodiscard]] std::size_t current_bin() const noexcept { return current_bin_; }

 private:
  void flush_bin();

  FlowTable table_;
  std::int64_t bin_ns_;
  BinCallback on_bin_;
  std::size_t current_bin_ = 0;
  bool saw_packet_ = false;
};

}  // namespace flowrank::flowtable
