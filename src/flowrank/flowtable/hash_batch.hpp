// Batch FlowKey hashing: the partition-at-source kernel.
//
// The scale-up ingest path computes each packet's 64-bit key hash
// exactly once, at the driver, and carries it with the record so shard
// selection, flow-table probing and hash-threshold sampling all reuse
// it (see docs/ARCHITECTURE.md "Partition at source"). hash_batch() is
// that one computation over a whole batch: the packet::FlowKeyHash
// SplitMix finalizer over two 64-bit words, with SSE2 (x86-64) and
// NEON (aarch64) two-lane kernels alongside the scalar loop. The
// dispatcher currently picks scalar everywhere — emulated 64-bit lane
// multiplies lose to pipelined scalar imul (measured in BM_HashBatch;
// rationale in hash_batch.cpp) — so the vector kernels are opt-in
// until a native-mullo ISA kernel exists.
//
// Every path is bit-identical: the vector lanes implement the same
// multiply/xor/shift chain modulo 2^64 that the scalar kernel does, so
// the dispatch choice is unobservable in results — tests compare all
// compiled-in implementations against packet::FlowKeyHash on random
// keys (tests/test_hash_batch.cpp).
//
// The optional salt reproduces sampler::FlowSampler's salted variant:
// folding `salt` into the first mixing step with salt == 0 yields
// exactly FlowKeyHash, and with the sampler's salt yields exactly
// FlowSampler::selects' pre-threshold value.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "flowrank/packet/flow_key.hpp"

namespace flowrank::flowtable {

/// Which hash_batch implementation is in use / requested in tests.
enum class HashBatchImpl { kScalar, kSse2, kNeon };

/// The implementation the runtime dispatcher selected for this process
/// (probed once; fastest *measured* kernel, not widest ISA — see
/// probe_dispatch in hash_batch.cpp).
[[nodiscard]] HashBatchImpl hash_batch_impl() noexcept;

/// "scalar" | "sse2" | "neon" — stamped into benchmark counters/docs.
[[nodiscard]] std::string_view hash_batch_impl_name(HashBatchImpl impl) noexcept;

/// True when `impl` was compiled into this binary (kScalar always is).
[[nodiscard]] bool hash_batch_impl_available(HashBatchImpl impl) noexcept;

/// out[i] = SplitMix(keys[i], salt) for the whole batch, using the
/// dispatched implementation. salt == 0 gives packet::FlowKeyHash
/// bit-for-bit. Requires out.size() >= keys.size().
void hash_batch(std::span<const packet::FlowKey> keys, std::uint64_t salt,
                std::span<std::uint64_t> out) noexcept;

/// hash_batch pinned to one implementation — the test hook for proving
/// cross-path bit-identity. Throws std::invalid_argument when `impl`
/// was not compiled in (query hash_batch_impl_available first).
void hash_batch_with(HashBatchImpl impl, std::span<const packet::FlowKey> keys,
                     std::uint64_t salt, std::span<std::uint64_t> out);

/// FlowTable's open-addressing slots reserve hash 0 as "empty", so a
/// key whose mix lands on 0 is remapped to an arbitrary odd constant.
/// Carried (precomputed) hashes must already be table-ready; this is
/// the single definition of that remap, shared with FlowTable.
[[nodiscard]] constexpr std::uint64_t table_ready_hash(std::uint64_t raw) noexcept {
  return raw == 0 ? 0x9e3779b97f4a7c15ULL : raw;
}

/// hash_batch with salt 0 followed by the table_ready_hash remap: the
/// form the ingest driver carries alongside each PacketRecord.
void hash_batch_table_ready(std::span<const packet::FlowKey> keys,
                            std::span<std::uint64_t> out) noexcept;

}  // namespace flowrank::flowtable
