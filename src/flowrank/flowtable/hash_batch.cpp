#include "flowrank/flowtable/hash_batch.hpp"

#include <cstddef>
#include <stdexcept>

#if defined(__x86_64__) || defined(_M_X64)
#define FLOWRANK_HASH_BATCH_HAVE_SSE2 1
#include <emmintrin.h>
#elif defined(__aarch64__)
#define FLOWRANK_HASH_BATCH_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace flowrank::flowtable {

namespace {

// SplitMix multipliers, identical to packet::FlowKeyHash.
constexpr std::uint64_t kMix1 = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kMix2 = 0xbf58476d1ce4e5b9ULL;
constexpr std::uint64_t kMix3 = 0x94d049bb133111ebULL;

// The vector paths load FlowKey pairs straight into 128-bit lanes.
static_assert(sizeof(packet::FlowKey) == 16 &&
                  offsetof(packet::FlowKey, hi) == 0 &&
                  offsetof(packet::FlowKey, lo) == 8,
              "hash_batch vector loads assume FlowKey is {hi, lo} packed "
              "into 16 bytes");

void hash_batch_scalar(const packet::FlowKey* keys, std::size_t count,
                       std::uint64_t salt, std::uint64_t* out) noexcept {
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t z = keys[i].hi ^ (keys[i].lo * kMix1) ^ salt;
    z = (z ^ (z >> 30)) * kMix2;
    z = (z ^ (z >> 27)) * kMix3;
    out[i] = z ^ (z >> 31);
  }
}

#if defined(FLOWRANK_HASH_BATCH_HAVE_SSE2)

// 64x64 -> low-64 multiply per lane. SSE2 has no 64-bit mullo (that
// arrives with AVX-512DQ), so compose it from 32x32 -> 64 partial
// products: lo*lo + ((lo*hi + hi*lo) << 32), exactly the scalar
// product modulo 2^64.
inline __m128i mullo64_sse2(__m128i a, __m128i b) noexcept {
  const __m128i a_hi = _mm_srli_epi64(a, 32);
  const __m128i b_hi = _mm_srli_epi64(b, 32);
  const __m128i lo_lo = _mm_mul_epu32(a, b);
  const __m128i cross =
      _mm_add_epi64(_mm_mul_epu32(a, b_hi), _mm_mul_epu32(a_hi, b));
  return _mm_add_epi64(lo_lo, _mm_slli_epi64(cross, 32));
}

void hash_batch_sse2(const packet::FlowKey* keys, std::size_t count,
                     std::uint64_t salt, std::uint64_t* out) noexcept {
  const __m128i mix1 = _mm_set1_epi64x(static_cast<long long>(kMix1));
  const __m128i mix2 = _mm_set1_epi64x(static_cast<long long>(kMix2));
  const __m128i mix3 = _mm_set1_epi64x(static_cast<long long>(kMix3));
  const __m128i salt2 = _mm_set1_epi64x(static_cast<long long>(salt));
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    // Two consecutive keys are {hi0, lo0} {hi1, lo1}; unpack into a
    // {hi0, hi1} lane pair and a {lo0, lo1} lane pair.
    const __m128i k0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i));
    const __m128i k1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(keys + i + 1));
    const __m128i hi = _mm_unpacklo_epi64(k0, k1);
    const __m128i lo = _mm_unpackhi_epi64(k0, k1);
    __m128i z = _mm_xor_si128(_mm_xor_si128(hi, mullo64_sse2(lo, mix1)), salt2);
    z = mullo64_sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 30)), mix2);
    z = mullo64_sse2(_mm_xor_si128(z, _mm_srli_epi64(z, 27)), mix3);
    z = _mm_xor_si128(z, _mm_srli_epi64(z, 31));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), z);
  }
  hash_batch_scalar(keys + i, count - i, salt, out + i);
}

#endif  // FLOWRANK_HASH_BATCH_HAVE_SSE2

#if defined(FLOWRANK_HASH_BATCH_HAVE_NEON)

// Same 32-bit partial-product composition as the SSE2 path; vmull_u32
// supplies the 32x32 -> 64 widening multiplies.
inline uint64x2_t mullo64_neon(uint64x2_t a, uint64x2_t b) noexcept {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t lo_lo = vmull_u32(a_lo, b_lo);
  const uint64x2_t cross =
      vaddq_u64(vmull_u32(a_lo, b_hi), vmull_u32(a_hi, b_lo));
  return vaddq_u64(lo_lo, vshlq_n_u64(cross, 32));
}

void hash_batch_neon(const packet::FlowKey* keys, std::size_t count,
                     std::uint64_t salt, std::uint64_t* out) noexcept {
  const uint64x2_t mix1 = vdupq_n_u64(kMix1);
  const uint64x2_t mix2 = vdupq_n_u64(kMix2);
  const uint64x2_t mix3 = vdupq_n_u64(kMix3);
  const uint64x2_t salt2 = vdupq_n_u64(salt);
  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t k0 =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(keys + i));
    const uint64x2_t k1 =
        vld1q_u64(reinterpret_cast<const std::uint64_t*>(keys + i + 1));
    const uint64x2_t hi = vzip1q_u64(k0, k1);
    const uint64x2_t lo = vzip2q_u64(k0, k1);
    uint64x2_t z = veorq_u64(veorq_u64(hi, mullo64_neon(lo, mix1)), salt2);
    z = mullo64_neon(veorq_u64(z, vshrq_n_u64(z, 30)), mix2);
    z = mullo64_neon(veorq_u64(z, vshrq_n_u64(z, 27)), mix3);
    z = veorq_u64(z, vshrq_n_u64(z, 31));
    vst1q_u64(out + i, z);
  }
  hash_batch_scalar(keys + i, count - i, salt, out + i);
}

#endif  // FLOWRANK_HASH_BATCH_HAVE_NEON

using HashBatchFn = void (*)(const packet::FlowKey*, std::size_t,
                             std::uint64_t, std::uint64_t*) noexcept;

struct Dispatch {
  HashBatchImpl impl;
  HashBatchFn fn;
};

/// Probes once per process. The default is SCALAR even where the
/// vector kernels are compiled in: without a native 64-bit lane
/// multiply (AVX-512DQ's vpmullq / SVE's 64-bit mul), each of the
/// three SplitMix multiplies costs 3 widening multiplies plus
/// shift/add fix-up per lane pair, and BM_HashBatch measures the SSE2
/// kernel at ~0.6x the scalar one (426 vs 689 M keys/s, gcc 12 -O3
/// x86-64) — scalar imul is one fully-pipelined uop per element. The
/// vector kernels stay compiled, bit-identity-tested and selectable
/// via hash_batch_with so a future native-mullo kernel can flip the
/// default on measurement, not on ISA availability.
Dispatch probe_dispatch() noexcept {
  return {HashBatchImpl::kScalar, &hash_batch_scalar};
}

const Dispatch& active_dispatch() noexcept {
  static const Dispatch dispatch = probe_dispatch();
  return dispatch;
}

}  // namespace

HashBatchImpl hash_batch_impl() noexcept { return active_dispatch().impl; }

std::string_view hash_batch_impl_name(HashBatchImpl impl) noexcept {
  switch (impl) {
    case HashBatchImpl::kSse2:
      return "sse2";
    case HashBatchImpl::kNeon:
      return "neon";
    case HashBatchImpl::kScalar:
      break;
  }
  return "scalar";
}

bool hash_batch_impl_available(HashBatchImpl impl) noexcept {
  switch (impl) {
    case HashBatchImpl::kScalar:
      return true;
    case HashBatchImpl::kSse2:
#if defined(FLOWRANK_HASH_BATCH_HAVE_SSE2)
      return __builtin_cpu_supports("sse2");
#else
      return false;
#endif
    case HashBatchImpl::kNeon:
#if defined(FLOWRANK_HASH_BATCH_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

void hash_batch(std::span<const packet::FlowKey> keys, std::uint64_t salt,
                std::span<std::uint64_t> out) noexcept {
  active_dispatch().fn(keys.data(), keys.size(), salt, out.data());
}

void hash_batch_with(HashBatchImpl impl, std::span<const packet::FlowKey> keys,
                     std::uint64_t salt, std::span<std::uint64_t> out) {
  if (!hash_batch_impl_available(impl)) {
    throw std::invalid_argument(
        "hash_batch_with: implementation not compiled into this binary");
  }
  switch (impl) {
    case HashBatchImpl::kScalar:
      hash_batch_scalar(keys.data(), keys.size(), salt, out.data());
      return;
    case HashBatchImpl::kSse2:
#if defined(FLOWRANK_HASH_BATCH_HAVE_SSE2)
      hash_batch_sse2(keys.data(), keys.size(), salt, out.data());
#endif
      return;
    case HashBatchImpl::kNeon:
#if defined(FLOWRANK_HASH_BATCH_HAVE_NEON)
      hash_batch_neon(keys.data(), keys.size(), salt, out.data());
#endif
      return;
  }
}

void hash_batch_table_ready(std::span<const packet::FlowKey> keys,
                            std::span<std::uint64_t> out) noexcept {
  hash_batch(keys, 0, out);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    out[i] = table_ready_hash(out[i]);
  }
}

}  // namespace flowrank::flowtable
