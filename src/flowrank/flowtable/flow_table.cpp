#include "flowrank/flowtable/flow_table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "flowrank/flowtable/hash_batch.hpp"

namespace flowrank::flowtable {

namespace {
/// Ordering used by both top_k overloads: packet count descending, ties
/// broken by key ascending so results are deterministic across table
/// layouts and platforms.
bool by_size_desc(const FlowCounter& a, const FlowCounter& b) {
  if (a.packets != b.packets) return a.packets > b.packets;
  return a.key < b.key;
}
}  // namespace

void merge_counter(FlowCounter& into, const FlowCounter& from) noexcept {
  into.packets += from.packets;
  into.bytes += from.bytes;
  into.first_ns = std::min(into.first_ns, from.first_ns);
  into.last_ns = std::max(into.last_ns, from.last_ns);
  if (from.has_tcp_seq) {
    into.min_tcp_seq = std::min(into.min_tcp_seq, from.min_tcp_seq);
    into.max_tcp_seq = std::max(into.max_tcp_seq, from.max_tcp_seq);
    into.has_tcp_seq = true;
  }
}

FlowTable::FlowTable(Options options) : options_(options) {
  const std::size_t wanted = std::max<std::size_t>(options_.initial_capacity, 64);
  hashes_.resize(std::bit_ceil(wanted), kEmptyHash);
  counters_.resize(hashes_.size());
  mask_ = hashes_.size() - 1;
  grow_at_ = hashes_.size() - hashes_.size() / 4;  // load factor 0.75
}

std::uint64_t FlowTable::hash_key(const packet::FlowKey& key) noexcept {
  static_assert(kEmptyHash == 0 && table_ready_hash(kEmptyHash) != kEmptyHash,
                "table_ready_hash must remap the empty-slot sentinel");
  // 0 marks an empty slot; table_ready_hash remaps the (1-in-2^64) real
  // hash that collides with it. Key equality is always checked, so the
  // remap constant is arbitrary. The same remap is applied by
  // hash_batch_table_ready(), so carried (precomputed) hashes and this
  // per-key path agree bit for bit.
  return table_ready_hash(packet::FlowKeyHash{}(key));
}

std::size_t FlowTable::find_or_insert(const packet::FlowKey& key,
                                      std::uint64_t hash) {
  std::size_t idx = static_cast<std::size_t>(hash) & mask_;
  while (true) {
    const std::uint64_t slot_hash = hashes_[idx];
    if (slot_hash == kEmptyHash) {
      if (size_ >= grow_at_) {
        grow();
        return find_or_insert(key, hash);
      }
      hashes_[idx] = hash;
      counters_[idx] = FlowCounter{};
      counters_[idx].key = key;
      ++size_;
      return idx;
    }
    if (slot_hash == hash && counters_[idx].key == key) return idx;
    idx = (idx + 1) & mask_;
  }
}

void FlowTable::grow() {
  std::vector<std::uint64_t> old_hashes = std::move(hashes_);
  std::vector<FlowCounter> old_counters = std::move(counters_);
  hashes_.assign(old_hashes.size() * 2, kEmptyHash);
  counters_.assign(hashes_.size(), FlowCounter{});
  mask_ = hashes_.size() - 1;
  grow_at_ = hashes_.size() - hashes_.size() / 4;
  for (std::size_t i = 0; i < old_hashes.size(); ++i) {
    if (old_hashes[i] == kEmptyHash) continue;
    std::size_t idx = static_cast<std::size_t>(old_hashes[i]) & mask_;
    while (hashes_[idx] != kEmptyHash) idx = (idx + 1) & mask_;
    hashes_[idx] = old_hashes[i];
    counters_[idx] = old_counters[i];
  }
}

void FlowTable::accumulate(FlowCounter& counter, const packet::FlowKey& key,
                           const packet::PacketRecord& pkt) {
  if (counter.packets != 0 && options_.idle_timeout_ns > 0 &&
      pkt.timestamp_ns - counter.last_ns > options_.idle_timeout_ns) {
    // Idle gap exceeded: the existing entry becomes a finished subflow and
    // this packet opens a fresh one under the same key (slot rewritten in
    // place — no deletion, no tombstone).
    completed_.push_back(counter);
    counter = FlowCounter{};
    counter.key = key;
  }

  ++counter.packets;
  counter.bytes += pkt.size_bytes;
  counter.first_ns = std::min(counter.first_ns, pkt.timestamp_ns);
  counter.last_ns = std::max(counter.last_ns, pkt.timestamp_ns);
  if (pkt.tuple.protocol == packet::Protocol::kTcp) {
    counter.min_tcp_seq = std::min(counter.min_tcp_seq, pkt.tcp_seq);
    counter.max_tcp_seq = std::max(counter.max_tcp_seq, pkt.tcp_seq);
    counter.has_tcp_seq = true;
  }
}

void FlowTable::add(const packet::PacketRecord& pkt) {
  const packet::FlowKey key = packet::make_flow_key(pkt.tuple, options_.definition);
  const std::uint64_t hash = hash_key(key);
  accumulate(counters_[find_or_insert(key, hash)], key, pkt);
}

void FlowTable::add_batch(std::span<const packet::PacketRecord> batch) {
  const std::size_t n = batch.size();
  batch_keys_.resize(n);
  batch_hashes_.resize(n);
  // Pass 1: collapse tuples to keys (sequential bit-packing), then hash
  // the whole batch through the SIMD kernel, so pass 2 is pure table
  // work. hash_batch_table_ready == hash_key per element.
  for (std::size_t i = 0; i < n; ++i) {
    batch_keys_[i] = packet::make_flow_key(batch[i].tuple, options_.definition);
  }
  hash_batch_table_ready(batch_keys_, batch_hashes_);
  probe_batch(batch, batch_hashes_);
}

void FlowTable::add_batch(std::span<const packet::PacketRecord> batch,
                          std::span<const std::uint64_t> hashes) {
  assert(hashes.size() == batch.size());
  const std::size_t n = batch.size();
  batch_keys_.resize(n);
  // Only the keys are rebuilt here; the carried hashes were computed
  // once at the ingest driver (partition at source).
  for (std::size_t i = 0; i < n; ++i) {
    batch_keys_[i] = packet::make_flow_key(batch[i].tuple, options_.definition);
  }
  probe_batch(batch, hashes);
}

void FlowTable::probe_batch(std::span<const packet::PacketRecord> batch,
                            std::span<const std::uint64_t> hashes) {
  // Probe + accumulate, prefetching the slot a fixed distance ahead.
  // Random flow-table slots rarely sit in cache at production table
  // sizes; the prefetch overlaps that DRAM fetch with the current
  // packet's work instead of stalling on it.
  constexpr std::size_t kPrefetchDistance = 16;
  const std::size_t n = batch.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDistance < n) {
      const std::size_t pidx =
          static_cast<std::size_t>(hashes[i + kPrefetchDistance]) & mask_;
      __builtin_prefetch(hashes_.data() + pidx, /*rw=*/0);
      __builtin_prefetch(counters_.data() + pidx, /*rw=*/1);
    }
    accumulate(counters_[find_or_insert(batch_keys_[i], hashes[i])],
               batch_keys_[i], batch[i]);
  }
}

std::vector<FlowCounter> FlowTable::active() const {
  std::vector<FlowCounter> out;
  out.reserve(size_);
  for_each_active([&out](const FlowCounter& counter) { out.push_back(counter); });
  return out;
}

std::vector<FlowCounter> FlowTable::all() const {
  std::vector<FlowCounter> out;
  out.reserve(completed_.size() + size_);
  for_each_all([&out](const FlowCounter& counter) { out.push_back(counter); });
  return out;
}

void FlowTable::insert_counter(const FlowCounter& counter) {
  const std::uint64_t hash = hash_key(counter.key);
  // Freshness is decided by whether find_or_insert actually inserted
  // (size_ advanced), never by counters_[idx].packets == 0 — a merged-in
  // zero-packet counter is a legitimate entry (e.g. a summary of an idle
  // flow) and must merge, not be clobbered by a later counter for the
  // same key.
  const std::size_t size_before = size_;
  const std::size_t idx = find_or_insert(counter.key, hash);
  if (size_ != size_before) {
    counters_[idx] = counter;  // fresh slot: take the counter whole
  } else {
    merge_counter(counters_[idx], counter);
  }
}

void FlowTable::merge_from(const FlowTable& other) {
  completed_.insert(completed_.end(), other.completed_.begin(),
                    other.completed_.end());
  other.for_each_active(
      [this](const FlowCounter& counter) { insert_counter(counter); });
}

void FlowTable::clear() {
  // Only the probe array needs wiping: counters are re-initialized on
  // insert, so stale ones behind empty hashes are unreachable.
  std::fill(hashes_.begin(), hashes_.end(), kEmptyHash);
  size_ = 0;
  completed_.clear();
}

std::vector<FlowCounter> top_k(std::vector<FlowCounter> flows, std::size_t t) {
  if (t == 0) return {};
  if (t >= flows.size()) {
    std::sort(flows.begin(), flows.end(), by_size_desc);
    return flows;
  }
  // Partition the top t to the front (linear), then order just the head.
  const auto head_end = flows.begin() + static_cast<std::ptrdiff_t>(t);
  std::nth_element(flows.begin(), head_end - 1, flows.end(), by_size_desc);
  std::sort(flows.begin(), head_end, by_size_desc);
  flows.resize(t);
  return flows;
}

std::vector<FlowCounter> top_k(const FlowTable& table, std::size_t t) {
  if (t == 0) return {};
  // Min-heap of the best t seen so far: heap top is the current cutoff.
  const auto worse = [](const FlowCounter& a, const FlowCounter& b) {
    return by_size_desc(a, b);  // makes the heap top the smallest kept flow
  };
  std::vector<FlowCounter> heap;
  heap.reserve(t + 1);
  table.for_each_all([&](const FlowCounter& counter) {
    if (heap.size() < t) {
      heap.push_back(counter);
      std::push_heap(heap.begin(), heap.end(), worse);
      return;
    }
    if (by_size_desc(counter, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), worse);
      heap.back() = counter;
      std::push_heap(heap.begin(), heap.end(), worse);
    }
  });
  std::sort_heap(heap.begin(), heap.end(), worse);  // best-ranked first
  return heap;
}

}  // namespace flowrank::flowtable
