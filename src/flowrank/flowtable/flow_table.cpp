#include "flowrank/flowtable/flow_table.hpp"

#include <algorithm>

namespace flowrank::flowtable {

FlowTable::FlowTable(Options options) : options_(options) {}

void FlowTable::add(const packet::PacketRecord& pkt) {
  const packet::FlowKey key = packet::make_flow_key(pkt.tuple, options_.definition);
  auto [it, inserted] = table_.try_emplace(key);
  FlowCounter& counter = it->second;

  if (!inserted && options_.idle_timeout_ns > 0 &&
      pkt.timestamp_ns - counter.last_ns > options_.idle_timeout_ns) {
    // Idle gap exceeded: the existing entry becomes a finished subflow and
    // this packet opens a fresh one under the same key.
    completed_.push_back(counter);
    counter = FlowCounter{};
  }

  counter.key = key;
  ++counter.packets;
  counter.bytes += pkt.size_bytes;
  counter.first_ns = std::min(counter.first_ns, pkt.timestamp_ns);
  counter.last_ns = std::max(counter.last_ns, pkt.timestamp_ns);
  if (pkt.tuple.protocol == packet::Protocol::kTcp) {
    counter.min_tcp_seq = std::min(counter.min_tcp_seq, pkt.tcp_seq);
    counter.max_tcp_seq = std::max(counter.max_tcp_seq, pkt.tcp_seq);
    counter.has_tcp_seq = true;
  }
}

std::vector<FlowCounter> FlowTable::active() const {
  std::vector<FlowCounter> out;
  out.reserve(table_.size());
  for (const auto& [key, counter] : table_) out.push_back(counter);
  return out;
}

std::vector<FlowCounter> FlowTable::all() const {
  std::vector<FlowCounter> out = completed_;
  out.reserve(completed_.size() + table_.size());
  for (const auto& [key, counter] : table_) out.push_back(counter);
  return out;
}

void FlowTable::clear() {
  table_.clear();
  completed_.clear();
}

std::vector<FlowCounter> top_k(std::vector<FlowCounter> flows, std::size_t t) {
  const auto by_size_desc = [](const FlowCounter& a, const FlowCounter& b) {
    if (a.packets != b.packets) return a.packets > b.packets;
    return a.key < b.key;
  };
  if (t >= flows.size()) {
    std::sort(flows.begin(), flows.end(), by_size_desc);
    return flows;
  }
  std::partial_sort(flows.begin(), flows.begin() + static_cast<std::ptrdiff_t>(t),
                    flows.end(), by_size_desc);
  flows.resize(t);
  return flows;
}

}  // namespace flowrank::flowtable
