#include "flowrank/flowtable/binned_classifier.hpp"

#include <stdexcept>

namespace flowrank::flowtable {

BinnedClassifier::BinnedClassifier(FlowTable::Options table_options,
                                   std::int64_t bin_ns, BinCallback on_bin)
    : BinnedClassifier(
          TableViewTag{}, table_options, bin_ns,
          on_bin ? TableCallback([cb = std::move(on_bin)](
                       std::size_t bin, const FlowTable& table) {
              cb(bin, table.all());
            })
                 : TableCallback{}) {}

BinnedClassifier::BinnedClassifier(TableViewTag, FlowTable::Options table_options,
                                   std::int64_t bin_ns, TableCallback on_bin)
    : table_(table_options), bin_ns_(bin_ns), on_bin_(std::move(on_bin)) {
  if (bin_ns <= 0) throw std::invalid_argument("BinnedClassifier: bin_ns > 0");
  if (!on_bin_) throw std::invalid_argument("BinnedClassifier: callback required");
}

BinnedClassifier BinnedClassifier::with_table_view(
    FlowTable::Options table_options, std::int64_t bin_ns, TableCallback on_bin) {
  return BinnedClassifier(TableViewTag{}, table_options, bin_ns,
                          std::move(on_bin));
}

void BinnedClassifier::advance_to_bin(std::size_t bin) {
  while (bin > current_bin_) {
    flush_bin();
    ++current_bin_;
  }
}

void BinnedClassifier::add(const packet::PacketRecord& pkt) {
  advance_to_bin(static_cast<std::size_t>(pkt.timestamp_ns / bin_ns_));
  table_.add(pkt);
  saw_packet_ = true;
}

void BinnedClassifier::add_batch(std::span<const packet::PacketRecord> batch) {
  std::size_t start = 0;
  while (start < batch.size()) {
    const auto bin =
        static_cast<std::size_t>(batch[start].timestamp_ns / bin_ns_);
    // Extend the run of packets that share this bin.
    std::size_t end = start + 1;
    while (end < batch.size() &&
           static_cast<std::size_t>(batch[end].timestamp_ns / bin_ns_) == bin) {
      ++end;
    }
    advance_to_bin(bin);
    table_.add_batch(batch.subspan(start, end - start));
    start = end;
  }
  if (!batch.empty()) saw_packet_ = true;
}

void BinnedClassifier::add_batch(std::span<const packet::PacketRecord> batch,
                                 std::span<const std::uint64_t> hashes) {
  std::size_t start = 0;
  while (start < batch.size()) {
    const auto bin =
        static_cast<std::size_t>(batch[start].timestamp_ns / bin_ns_);
    std::size_t end = start + 1;
    while (end < batch.size() &&
           static_cast<std::size_t>(batch[end].timestamp_ns / bin_ns_) == bin) {
      ++end;
    }
    advance_to_bin(bin);
    table_.add_batch(batch.subspan(start, end - start),
                     hashes.subspan(start, end - start));
    start = end;
  }
  if (!batch.empty()) saw_packet_ = true;
}

void BinnedClassifier::finish() {
  if (saw_packet_) flush_bin();
  saw_packet_ = false;
}

void BinnedClassifier::flush_through(std::size_t bin) {
  if (bin <= current_bin_) return;
  advance_to_bin(bin);
  saw_packet_ = false;
}

void BinnedClassifier::flush_bin() {
  on_bin_(current_bin_, table_);
  table_.clear();
}

}  // namespace flowrank::flowtable
