#include "flowrank/flowtable/binned_classifier.hpp"

#include <stdexcept>

namespace flowrank::flowtable {

BinnedClassifier::BinnedClassifier(FlowTable::Options table_options,
                                   std::int64_t bin_ns, BinCallback on_bin)
    : table_(table_options), bin_ns_(bin_ns), on_bin_(std::move(on_bin)) {
  if (bin_ns <= 0) throw std::invalid_argument("BinnedClassifier: bin_ns > 0");
  if (!on_bin_) throw std::invalid_argument("BinnedClassifier: callback required");
}

void BinnedClassifier::add(const packet::PacketRecord& pkt) {
  const auto bin = static_cast<std::size_t>(pkt.timestamp_ns / bin_ns_);
  while (bin > current_bin_) {
    flush_bin();
    ++current_bin_;
  }
  table_.add(pkt);
  saw_packet_ = true;
}

void BinnedClassifier::finish() {
  if (saw_packet_) flush_bin();
  saw_packet_ = false;
}

void BinnedClassifier::flush_bin() {
  on_bin_(current_bin_, table_.all());
  table_.clear();
}

}  // namespace flowrank::flowtable
