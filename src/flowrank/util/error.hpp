// Structured error taxonomy.
//
// The trace/ingest/report layers used to throw bare std::runtime_error,
// which left callers — above all the continuous monitor, which must keep
// running through corrupt input but fail loudly on a wedged shard — no
// way to tell a malformed record from a full disk from a broken internal
// invariant. flowrank::Error carries an explicit category plus the
// subsystem context, and still derives from std::runtime_error so every
// existing catch site (and test expectation) keeps working.
#pragma once

#include <stdexcept>
#include <string>

namespace flowrank {

/// What went wrong, at the granularity callers dispatch on.
enum class ErrorCategory {
  kCorruptInput,  ///< malformed external data (bad magic, truncated record)
  kIo,            ///< the environment failed us (unreadable file, full disk)
  kSpec,          ///< invalid configuration (spec file / CLI grammar)
  kOverload,      ///< declared capacity exceeded under a non-degrading policy
  kStalled,       ///< watchdog: a source or shard missed its deadline
  kInternal,      ///< a library invariant broke (always a bug)
  kCorruptSummary,  ///< a per-agent FlowSummary failed framing/checksum validation
};

/// Stable lower-case name for a category ("corrupt-input", "io", ...).
[[nodiscard]] const char* error_category_name(ErrorCategory category) noexcept;

/// A categorized error. what() reads "context: message [category]" so
/// uncategorized catch sites still log everything.
class Error : public std::runtime_error {
 public:
  Error(ErrorCategory category, std::string context, const std::string& message);

  [[nodiscard]] ErrorCategory category() const noexcept { return category_; }
  /// The subsystem that threw ("trace_io", "ingest", "report", ...).
  [[nodiscard]] const std::string& context() const noexcept { return context_; }

 private:
  ErrorCategory category_;
  std::string context_;
};

}  // namespace flowrank
