// Deterministic random number utilities.
//
// All stochastic components in flowrank (trace generation, samplers,
// Monte-Carlo model validation, trace-driven simulation) draw their
// randomness through this header so that every experiment is exactly
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <random>

namespace flowrank::util {

/// SplitMix64 step. Used both as a tiny standalone generator and as the
/// canonical way to derive independent child seeds from a master seed.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives the `stream`-th child seed from `master`. Children are
/// statistically independent for practical purposes; use one stream per
/// simulation run / per component.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t master,
                                                  std::uint64_t stream) noexcept {
  std::uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
  // Two rounds of splitmix to decorrelate nearby stream indices.
  (void)splitmix64(s);
  return splitmix64(s);
}

/// Folds one more coordinate into a stream id, splitmix-style. Unlike
/// shift-packing ((a << 40) ^ (b << 20) ^ c), which silently collides as
/// soon as a coordinate outgrows its bit field (e.g. >= 2^20 bins of a
/// long trace aliasing the run index), every coordinate is diffused over
/// all 64 bits before the next one is folded in, so distinct tuples give
/// distinct streams up to a ~2^-64 accidental collision.
[[nodiscard]] constexpr std::uint64_t mix_stream(std::uint64_t stream,
                                                 std::uint64_t coordinate) noexcept {
  std::uint64_t s = stream ^ (0x94d049bb133111ebULL * (coordinate + 1));
  (void)splitmix64(s);
  return splitmix64(s);
}

/// Stream id for a (a, b, c) coordinate triple, e.g. (rate index, run,
/// bin). Feed the result to make_engine() as the stream argument.
[[nodiscard]] constexpr std::uint64_t mix_streams(std::uint64_t a, std::uint64_t b,
                                                  std::uint64_t c) noexcept {
  return mix_stream(mix_stream(a, b), c);
}

/// Engine used across the library. mt19937_64 is deterministic across
/// platforms, which matters for golden-value tests.
using Engine = std::mt19937_64;

/// Makes an engine for (master seed, stream id).
[[nodiscard]] inline Engine make_engine(std::uint64_t master,
                                        std::uint64_t stream = 0) {
  return Engine{derive_seed(master, stream)};
}

/// Uniform draw on (0, 1]: always a valid ccdf value to invert and a
/// valid log() argument (uniform_real_distribution yields [0, 1)).
[[nodiscard]] inline double uniform_unit_open(Engine& engine) {
  std::uniform_real_distribution<double> unif(0.0, 1.0);
  return 1.0 - unif(engine);
}

}  // namespace flowrank::util
