#include "flowrank/util/binomial_sample.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace flowrank::util {

namespace {

/// Uniform on [0, 1) from the top 53 bits of one engine() output. Built
/// by hand so the variate stream is pinned to the engine's bit stream,
/// not to a standard-library distribution's unspecified algorithm.
inline double next_unit(Engine& engine) {
  return static_cast<double>(engine() >> 11) * 0x1.0p-53;
}

/// Restart bound of the BINV walk: past ~10 sigma the remaining tail
/// mass is far below one ulp of the consumed uniform; restart with a
/// fresh uniform instead of walking to n (the guard numpy and GSL use
/// against u landing in rounding dust).
inline double binv_bound(double nd, double p, double q) {
  const double np = nd * p;
  return std::min(nd, np + 10.0 * std::sqrt(np * q + 1.0));
}

/// BINV walk given its precomputed setup (qn = q^n = pmf(0)): inversion
/// by the recurrence pmf(k+1)/pmf(k) = (n-k)/(k+1)·p/q. One uniform per
/// variate, expected n·p + 1 recurrence steps.
std::uint64_t binv_walk(double nd, double p, double q, double qn, double bound,
                        Engine& engine) {
  double x = 0.0;
  double px = qn;
  double u = next_unit(engine);
  while (u > px) {
    x += 1.0;
    if (x > bound) {
      x = 0.0;
      px = qn;
      u = next_unit(engine);
      continue;
    }
    u -= px;
    px *= ((nd - x + 1.0) * p) / (x * q);
  }
  return static_cast<std::uint64_t>(x);
}

/// One-shot BINV. Requires p <= 0.5 and n·p <= kBinomialInversionMaxMean,
/// which keeps q^n well above the smallest normal double
/// (q^n >= exp(-30·ln4) ~ 1e-19).
std::uint64_t sample_binv(std::uint64_t n, double p, Engine& engine) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double qn = std::exp(nd * std::log(q));  // pmf(0)
  return binv_walk(nd, p, q, qn, binv_bound(nd, p, q), engine);
}

/// Stirling-series tail of ln k!: ln k! - [(k+1/2)·ln k - k + ln√(2π)],
/// evaluated at x = k+1 via the standard 4-term expansion (exact enough
/// for the BTPE final test for all k >= 0 reached here).
inline double stirling_tail(double x) {
  const double x2 = x * x;
  return (13860.0 - (462.0 - (132.0 - (99.0 - 140.0 / x2) / x2) / x2) / x2) /
         x / 166320.0;
}

/// BTPE (Kachitvichyanukul & Schmeiser, "Binomial random variate
/// generation", CACM 31(2), 1988): a triangle + parallelogram + two
/// exponential tails majorizing hat over the scaled pmf, with the
/// published squeeze tests so most variates cost one (u, v) pair and a
/// handful of multiplies. Requires p <= 0.5 and n·p above the inversion
/// threshold. Step numbering follows the paper.
std::uint64_t sample_btpe(std::uint64_t n, double p, Engine& engine) {
  const double nd = static_cast<double>(n);
  const double r = p;
  const double q = 1.0 - r;
  const double fm = nd * r + r;
  const double m = std::floor(fm);  // mode
  const double nrq = nd * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = m + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + m);
  double a = (fm - xl) / (fm - xl * r);
  const double laml = a * (1.0 + 0.5 * a);
  a = (xr - fm) / (xr * q);
  const double lamr = a * (1.0 + 0.5 * a);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  for (;;) {
    // Step 1: region selection.
    const double u = next_unit(engine) * p4;
    double v = next_unit(engine);
    double y;
    bool need_accept_test = true;
    if (u <= p1) {
      // Triangular central region: accept immediately.
      y = std::floor(xm - p1 * v + u);
      need_accept_test = false;
    } else if (u <= p2) {
      // Step 2: parallelogram.
      const double x = xl + (u - p1) / c;
      v = v * c + 1.0 - std::abs(m - x + 0.5) / p1;
      if (v > 1.0) continue;
      y = std::floor(x);
    } else if (u <= p3) {
      // Step 3: left exponential tail.
      const double x = xl + std::log(v) / laml;
      if (x < 0.0) continue;
      y = std::floor(x);
      v = v * (u - p2) * laml;
    } else {
      // Step 4: right exponential tail.
      const double x = xr - std::log(v) / lamr;
      if (x > nd) continue;
      y = std::floor(x);
      v = v * (u - p3) * lamr;
    }

    if (need_accept_test) {
      // Step 5: accept v <= f(y)/f(m).
      const double k = std::abs(y - m);
      if (k <= 20.0 || k >= nrq / 2.0 - 1.0) {
        // 5.1: evaluate the ratio by the pmf recurrence.
        const double s = r / q;
        a = s * (nd + 1.0);
        double big_f = 1.0;
        if (m < y) {
          for (double i = m + 1.0; i <= y; i += 1.0) big_f *= (a / i - s);
        } else if (m > y) {
          for (double i = y + 1.0; i <= m; i += 1.0) big_f /= (a / i - s);
        }
        if (v > big_f) continue;
      } else {
        // 5.2: squeeze on ln v, then 5.3: the exact Stirling test.
        const double rho =
            (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
        const double t = -k * k / (2.0 * nrq);
        const double log_v = std::log(v);
        if (log_v < t - rho) {
          // accepted by the lower squeeze
        } else if (log_v > t + rho) {
          continue;
        } else {
          const double x1 = y + 1.0;
          const double f1 = m + 1.0;
          const double z = nd + 1.0 - m;
          const double w = nd - y + 1.0;
          const double bound = xm * std::log(f1 / x1) +
                               (nd - m + 0.5) * std::log(z / w) +
                               (y - m) * std::log(w * r / (x1 * q)) +
                               stirling_tail(f1) + stirling_tail(z) +
                               stirling_tail(x1) + stirling_tail(w);
          if (log_v > bound) continue;
        }
      }
    }
    // Step 6: y is a Bin(n, p) variate for p <= 0.5.
    return static_cast<std::uint64_t>(y);
  }
}

}  // namespace

std::uint64_t binomial_sample(std::uint64_t n, double p, Engine& engine) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("binomial_sample: p in [0,1]");
  }
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const bool flip = p > 0.5;
  const double pp = flip ? 1.0 - p : p;
  const std::uint64_t k =
      static_cast<double>(n) * pp <= kBinomialInversionMaxMean
          ? sample_binv(n, pp, engine)
          : sample_btpe(n, pp, engine);
  return flip ? n - k : k;
}

namespace {
/// Largest n whose inversion setup is memoized by BinomialThinner. The
/// sweeps' flow-size distributions are heavy-tailed: nearly all flows are
/// small and repeat, the rare huge ones take the BTPE branch anyway
/// (n·p' > 30) or just recompute.
constexpr std::size_t kThinnerCacheMax = 4096;
}  // namespace

BinomialThinner::BinomialThinner(double p) : p_(p) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BinomialThinner: p in [0,1]");
  }
  flip_ = p > 0.5;
  pp_ = flip_ ? 1.0 - p : p;
  log_q_ = std::log(1.0 - pp_);
}

std::uint64_t BinomialThinner::operator()(std::uint64_t n, Engine& engine) {
  if (n == 0 || p_ == 0.0) return 0;
  if (p_ == 1.0) return n;

  const double nd = static_cast<double>(n);
  std::uint64_t k;
  if (nd * pp_ <= kBinomialInversionMaxMean) {
    const double q = 1.0 - pp_;
    if (n < kThinnerCacheMax) {
      if (n >= cache_.size()) cache_.resize(n + 1);
      InversionSetup& setup = cache_[n];
      if (setup.qn < 0.0) {
        // The exact doubles sample_binv computes: same exp/log
        // expressions, so the walk — and the stream — are bit-identical.
        setup.qn = std::exp(nd * log_q_);
        setup.bound = binv_bound(nd, pp_, q);
      }
      k = binv_walk(nd, pp_, q, setup.qn, setup.bound, engine);
    } else {
      k = binv_walk(nd, pp_, q, std::exp(nd * log_q_), binv_bound(nd, pp_, q),
                    engine);
    }
  } else {
    k = sample_btpe(n, pp_, engine);
  }
  return flip_ ? n - k : k;
}

}  // namespace flowrank::util
