// Clang thread-safety annotation macros.
//
// The repo's concurrency contract — results bit-identical at any
// thread/shard count, every shared member reached only under its lock —
// was enforced purely dynamically (TSan over the test suite) until this
// layer. These macros attach Clang's static thread-safety analysis
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) to the lock
// protocol itself, so "member touched without its mutex" is a compile
// error under `clang++ -Wthread-safety -Werror` (a dedicated CI job)
// instead of a race TSan may or may not catch at runtime.
//
// Conventions (enforced by scripts/lint_flowrank.py):
//  * concurrency code uses util::Mutex / util::MutexLock / util::CondVar
//    (util/sync.hpp) — raw std::mutex has no capability annotations, so
//    the analysis cannot see through it;
//  * every member a mutex protects carries FR_GUARDED_BY(mutex);
//  * a private method called only under a lock carries FR_REQUIRES(mutex)
//    instead of re-locking;
//  * code the analysis cannot model (e.g. joining workers in a destructor
//    while they still hold the mutex briefly) is annotated
//    FR_NO_THREAD_SAFETY_ANALYSIS with a comment saying why it is safe.
//
// All macros expand to nothing on compilers without the attribute (GCC,
// MSVC), so annotated code builds everywhere and only Clang checks it.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define FR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define FR_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Marks a class as a lockable capability ("mutex", "role", ...).
#define FR_CAPABILITY(x) FR_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define FR_SCOPED_CAPABILITY FR_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define FR_GUARDED_BY(x) FR_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself
/// may be read freely).
#define FR_PT_GUARDED_BY(x) FR_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that may only be called while holding the given capabilities.
#define FR_REQUIRES(...) \
  FR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that may only be called while NOT holding them (deadlock
/// documentation: it will acquire them itself).
#define FR_EXCLUDES(...) FR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires the capability and leaves it held on return.
#define FR_ACQUIRE(...) \
  FR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define FR_RELEASE(...) \
  FR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns the given value:
/// FR_TRY_ACQUIRE(true) or FR_TRY_ACQUIRE(true, mutex). The success value
/// rides in __VA_ARGS__ so a one-argument use expands without a stray
/// trailing comma.
#define FR_TRY_ACQUIRE(...) \
  FR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function returning a reference to the capability that guards it.
#define FR_RETURN_CAPABILITY(x) FR_THREAD_ANNOTATION(lock_returned(x))

/// Asserts (to the analysis only) that the capability is already held.
#define FR_ASSERT_CAPABILITY(x) \
  FR_THREAD_ANNOTATION(assert_capability(x))

/// Opt a function out of the analysis entirely. Every use must carry a
/// comment explaining why the code is safe despite the analysis not being
/// able to prove it.
#define FR_NO_THREAD_SAFETY_ANALYSIS \
  FR_THREAD_ANNOTATION(no_thread_safety_analysis)
