// Lightweight tabular output: aligned console tables and CSV.
//
// Benchmarks regenerate paper figures as data series; this class prints
// them both human-readably (aligned columns) and machine-readably (CSV)
// without pulling in a formatting library.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace flowrank::util {

/// A simple column-oriented table. Cells are stored as strings; numeric
/// convenience overloads format with sensible precision.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent add_cell calls fill it left to right.
  void begin_row();

  /// Appends a string cell to the current row.
  void add_cell(std::string value);
  /// Appends a formatted double (uses %.6g).
  void add_cell(double value);
  /// Appends an integer cell.
  void add_cell(long long value);
  void add_cell(unsigned long long value);
  void add_cell(int value) { add_cell(static_cast<long long>(value)); }
  void add_cell(std::size_t value) { add_cell(static_cast<unsigned long long>(value)); }

  /// Convenience: append a whole row at once.
  template <typename... Ts>
  void add_row(Ts&&... cells) {
    begin_row();
    (add_cell(std::forward<Ts>(cells)), ...);
  }

  /// Number of data rows so far.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Writes the table with space-aligned columns.
  void print(std::ostream& os) const;
  /// Writes the table as RFC-4180-ish CSV (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double like printf("%.6g").
[[nodiscard]] std::string format_double(double value);

}  // namespace flowrank::util
