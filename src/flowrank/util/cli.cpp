#include "flowrank/util/cli.hpp"

#include <stdexcept>

namespace flowrank::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc < 1) throw std::invalid_argument("Cli: argc must be >= 1");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("Cli: bare '--' not supported");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself an option; otherwise a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::vector<std::string> Cli::option_names() const {
  std::vector<std::string> names;
  names.reserve(options_.size());
  for (const auto& [name, value] : options_) names.push_back(name);
  return names;  // std::map iteration: already sorted
}

std::string Cli::get_string(const std::string& name, std::string fallback) const {
  auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: option --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("Cli: option --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Cli: option --" + name + " expects a boolean, got '" + v +
                              "'");
}

}  // namespace flowrank::util
