// Portable, fast binomial sampling.
//
// std::binomial_distribution has two problems on the Monte-Carlo hot
// paths. It is slow: every construction recomputes log-gamma setup
// terms, and libstdc++'s small-mean branch draws O(n·p) geometric
// waiting times per variate. And it is *implementation-defined*: the
// standard fixes only the distribution, not the algorithm, so the same
// seed produces different streams under libstdc++ and libc++ — which
// silently breaks "deterministic" golden figure data across toolchains.
//
// binomial_sample() replaces it with the two classic algorithms whose
// variate streams are fully specified by this file alone:
//  * n·p' <= 30 (p' = min(p, 1-p)): BINV — inversion by the pmf
//    recurrence, one uniform per variate, O(n·p') multiplies;
//  * n·p' > 30: BTPE (Kachitvichyanukul & Schmeiser 1988) — the
//    triangle/parallelogram/exponential-tails squeeze-accept method,
//    ~1.1 uniform pairs per variate independent of n.
// Uniforms are built directly from engine() output bits (53-bit
// mantissa), so the stream depends only on util::Engine (mt19937_64,
// itself bit-portable) — no standard-library distribution is involved.
#pragma once

#include <cstdint>
#include <vector>

#include "flowrank/util/rng.hpp"

namespace flowrank::util {

/// One draw of Bin(n, p). The algorithm — and therefore the stream — is
/// fixed by this file across standard libraries; the only residual
/// platform dependence is sub-ulp libm exp/log rounding, which matters
/// only when an accept decision lands within one ulp of its threshold
/// (astronomically rarer than the wholesale algorithm differences of
/// std::binomial_distribution). Throws std::invalid_argument unless p is
/// in [0, 1]. n = 0, p = 0 and p = 1 short-circuit without consuming
/// randomness (matching sampler::thin_count's contract).
[[nodiscard]] std::uint64_t binomial_sample(std::uint64_t n, double p,
                                            Engine& engine);

/// The n·p' threshold between the inversion and squeeze-accept branches
/// (exposed so tests can straddle it exactly).
inline constexpr double kBinomialInversionMaxMean = 30.0;

/// Repeated thinning at one fixed rate: binomial_sample with the
/// per-(n, p) setup memoized.
///
/// The Monte-Carlo sweeps thin every flow of a bin at the same p, run
/// after run, and flow sizes repeat heavily under the paper's
/// heavy-tailed distributions — so the inversion branch's exp/log setup
/// (the dominant cost for small flows) is cached per n. The variate
/// stream is IDENTICAL to binomial_sample(n, p, engine): memoization
/// reuses setup constants, never changes which uniforms are drawn, and
/// the cached values are the very doubles the one-shot path computes.
///
/// Not thread-safe (per-instance cache); give each worker its own.
class BinomialThinner {
 public:
  /// Throws std::invalid_argument unless p is in [0, 1].
  explicit BinomialThinner(double p);

  /// One draw of Bin(n, p): same distribution, same stream, less setup.
  [[nodiscard]] std::uint64_t operator()(std::uint64_t n, Engine& engine);

  [[nodiscard]] double p() const noexcept { return p_; }

 private:
  struct InversionSetup {
    double qn = -1.0;     ///< q^n (pmf at 0); -1 = not yet computed
    double bound = 0.0;   ///< restart bound of the BINV walk
  };

  double p_;
  double pp_;     ///< min(p, 1-p)
  double log_q_;  ///< ln(1 - pp_), shared by every cached setup
  bool flip_;     ///< p > 1/2: sample at pp_ and return n - k
  /// Inversion-branch setups indexed by n, grown lazily up to kCacheMax.
  std::vector<InversionSetup> cache_;
};

}  // namespace flowrank::util
