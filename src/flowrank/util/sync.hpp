// Annotated synchronization primitives.
//
// std::mutex carries no capability annotations on libstdc++, so Clang's
// thread-safety analysis (see util/thread_annotations.hpp) cannot track
// it. These are the repo's lockable types: zero-cost wrappers over the
// std primitives whose lock/unlock operations are annotated, which is
// what lets FR_GUARDED_BY members and FR_REQUIRES methods be checked at
// compile time. scripts/lint_flowrank.py bans raw std::mutex /
// std::lock_guard / std::unique_lock outside this header so concurrency
// code cannot silently bypass the analysis.
//
// Usage mirrors the std types:
//
//   util::Mutex mutex_;
//   std::size_t count_ FR_GUARDED_BY(mutex_) = 0;
//   util::CondVar changed_;
//
//   void bump() {
//     util::MutexLock lock(mutex_);
//     ++count_;
//     changed_.notify_all();
//   }
//   void wait_for_ten() {
//     util::MutexLock lock(mutex_);
//     while (count_ < 10) changed_.wait(mutex_);  // guarded reads stay
//   }                                             // inside the lock scope
//
// CondVar waits take the Mutex itself (condition_variable_any semantics)
// and use explicit while-loops rather than predicate lambdas: the
// analysis checks each function body in isolation, so a predicate lambda
// touching guarded members would need its own annotations — the loop form
// keeps every guarded access inside the already-annotated scope.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::util {

/// Annotated std::mutex. Self-locking classes hold one per protected
/// region and mark members FR_GUARDED_BY(it).
class FR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FR_ACQUIRE() { mutex_.lock(); }
  void unlock() FR_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() FR_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  std::mutex mutex_;
};

/// RAII lock over Mutex (the std::lock_guard/std::unique_lock of this
/// codebase). Supports early unlock() for the rare scope that must drop
/// the lock before a rethrow.
class FR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) FR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() FR_RELEASE() {
    if (held_) mutex_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases early; the destructor then does nothing.
  void unlock() FR_RELEASE() {
    mutex_.unlock();
    held_ = false;
  }

 private:
  Mutex& mutex_;
  bool held_ = true;
};

/// Condition variable waiting directly on util::Mutex. Waits release and
/// reacquire the mutex internally (std::condition_variable_any), which
/// the analysis models as "held across the call" — exactly the invariant
/// the surrounding while-loop relies on.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

  /// Blocks until notified (spurious wakeups possible: always wait in a
  /// `while (!condition)` loop).
  void wait(Mutex& mutex) FR_REQUIRES(mutex) { cv_.wait(mutex); }

  /// Blocks until notified or `deadline`; std::cv_status::timeout after
  /// the deadline passes. Same while-loop discipline as wait().
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      FR_REQUIRES(mutex) {
    return cv_.wait_until(mutex, deadline);
  }

 private:
  std::condition_variable_any cv_;
};

}  // namespace flowrank::util
