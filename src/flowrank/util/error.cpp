#include "flowrank/util/error.hpp"

#include <utility>

namespace flowrank {

const char* error_category_name(ErrorCategory category) noexcept {
  switch (category) {
    case ErrorCategory::kCorruptInput: return "corrupt-input";
    case ErrorCategory::kIo: return "io";
    case ErrorCategory::kSpec: return "spec";
    case ErrorCategory::kOverload: return "overload";
    case ErrorCategory::kStalled: return "stalled";
    case ErrorCategory::kInternal: return "internal";
    case ErrorCategory::kCorruptSummary: return "corrupt-summary";
  }
  return "?";
}

Error::Error(ErrorCategory category, std::string context,
             const std::string& message)
    : std::runtime_error(context + ": " + message + " [" +
                         error_category_name(category) + "]"),
      category_(category),
      context_(std::move(context)) {}

}  // namespace flowrank
