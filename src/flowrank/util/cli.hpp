// Minimal command-line option parser for examples and benchmark binaries.
//
// Supports `--name=value`, `--name value`, and boolean flags `--name`.
// Unknown options throw, so typos in experiment scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flowrank::util {

/// Parses argv into a key/value map and exposes typed getters.
class Cli {
 public:
  /// Parses arguments. Throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// True if --name was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters; return `fallback` when the option is absent.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Names of every --option present, in sorted order. Lets strict
  /// drivers reject unknown options (typos) instead of ignoring them.
  [[nodiscard]] std::vector<std::string> option_names() const;

  /// Positional (non --option) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace flowrank::util
