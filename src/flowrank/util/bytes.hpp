// Fixed-width little-endian byte helpers: the one place in the library
// where typed values become bytes and bytes become typed values.
//
// Everything that serializes — the FRT1 trace format (trace/trace_io) and
// the per-agent FlowSummary wire format (agg/flow_summary) — goes through
// these helpers instead of reinterpret_cast / memcpy over structs, so the
// on-disk and on-wire layouts are explicit field sequences: endianness-
// and padding-independent, and a truncated buffer is a checked error, not
// undefined behavior. The repo linter (scripts/lint_flowrank.py, rule
// raw-byte-cast) bans raw byte reinterpretation everywhere else in
// src/flowrank/.
//
// Writers append to a std::vector<std::uint8_t>; readers wrap a span with
// ByteReader, which throws flowrank::Error in the caller's category on
// any out-of-bounds read. fnv1a64() is the checksum both formats' callers
// use: its per-byte step (h ^= byte; h *= prime) is a bijection of the
// 64-bit state for fixed input, so any single corrupted bit in the
// covered bytes changes the final hash with certainty, not just with
// high probability.
#pragma once

#include <bit>
#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "flowrank/util/error.hpp"

namespace flowrank::util {

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t value) {
  out.push_back(value);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

inline void put_i64(std::vector<std::uint8_t>& out, std::int64_t value) {
  put_u64(out, static_cast<std::uint64_t>(value));
}

/// IEEE-754 bit pattern, little-endian — doubles round-trip exactly.
inline void put_f64(std::vector<std::uint8_t>& out, double value) {
  put_u64(out, std::bit_cast<std::uint64_t>(value));
}

/// Overwrites 4 bytes at `offset` (for length fields patched after the
/// payload is built). The destination range must already exist.
inline void patch_u32(std::vector<std::uint8_t>& out, std::size_t offset,
                      std::uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (8 * i));
  }
}

/// Bounds-checked sequential reader over a byte buffer. Every get_* that
/// would run past the end throws flowrank::Error in the category/context
/// the reader was constructed with (kCorruptSummary for agent summaries,
/// kCorruptInput for trace files), so callers never consume garbage.
class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, ErrorCategory category,
             std::string context)
      : data_(data), category_(category), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }

  [[nodiscard]] std::uint16_t get_u16() {
    need(2);
    std::uint16_t value = 0;
    for (int i = 0; i < 2; ++i) {
      value = static_cast<std::uint16_t>(
          value | static_cast<std::uint16_t>(data_[pos_ + static_cast<std::size_t>(i)])
                      << (8 * i));
    }
    pos_ += 2;
    return value;
  }

  [[nodiscard]] std::uint32_t get_u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  [[nodiscard]] std::uint64_t get_u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
               << (8 * i);
    }
    pos_ += 8;
    return value;
  }

  [[nodiscard]] std::int64_t get_i64() {
    return static_cast<std::int64_t>(get_u64());
  }

  [[nodiscard]] double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }

  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw Error(category_, context_,
                  "truncated buffer: need " + std::to_string(n) + " bytes at offset " +
                      std::to_string(pos_) + ", have " + std::to_string(remaining()));
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  ErrorCategory category_;
  std::string context_;
};

/// FNV-1a 64-bit hash over `data`, continuing from `state` (pass the
/// default offset basis for a fresh hash; pass a previous return value to
/// hash split buffers as one).
[[nodiscard]] inline std::uint64_t fnv1a64(
    std::span<const std::uint8_t> data,
    std::uint64_t state = 0xcbf29ce484222325ULL) noexcept {
  for (const std::uint8_t byte : data) {
    state ^= byte;
    state *= 0x100000001b3ULL;
  }
  return state;
}

/// Stream adapters: the only sanctioned byte<->char reinterpretation in
/// the library (iostreams traffic in char).
inline void write_bytes(std::ostream& os, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return;
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

/// Fills `into` from the stream; false on a short read or stream failure.
[[nodiscard]] inline bool read_bytes(std::istream& is,
                                     std::span<std::uint8_t> into) {
  if (into.empty()) return static_cast<bool>(is);
  is.read(reinterpret_cast<char*>(into.data()),
          static_cast<std::streamsize>(into.size()));
  return static_cast<std::size_t>(is.gcount()) == into.size();
}

}  // namespace flowrank::util
