#include "flowrank/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace flowrank::util {

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::begin_row() {
  if (!rows_.empty() && rows_.back().size() != headers_.size()) {
    throw std::logic_error("Table: previous row is incomplete");
  }
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
}

void Table::add_cell(std::string value) {
  if (rows_.empty()) begin_row();
  if (rows_.back().size() >= headers_.size()) {
    throw std::logic_error("Table: row has too many cells");
  }
  rows_.back().push_back(std::move(value));
}

void Table::add_cell(double value) { add_cell(format_double(value)); }

void Table::add_cell(long long value) { add_cell(std::to_string(value)); }

void Table::add_cell(unsigned long long value) { add_cell(std::to_string(value)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << quote(cells[c]);
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace flowrank::util
