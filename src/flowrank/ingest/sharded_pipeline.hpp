// Sharded multi-threaded ingest (the ROADMAP's line-rate scaling step).
//
// The inherently sequential stages — pulling the packet stream and (in the
// default configuration) running the skip-based sampler, whose state
// machine must see every packet in order — stay on the driver thread.
// Everything downstream is embarrassingly parallel per flow: the driver
// partitions each time-ordered batch by flow-key hash % num_shards, so
// every flow's packets land on exactly one shard, and each shard worker
// owns a private FlowTable-backed BinnedClassifier. At each bin flush a
// shard folds its table into the bin's merged view; because shard key sets
// are disjoint and partitioning preserves per-flow packet order, the
// merged per-bin flow counters are bit-identical to a single-threaded
// classification of the same stream, at any shard count.
//
// Partition at source: the 64-bit key hash is computed exactly once per
// packet, at the driver, through the SIMD batch kernel
// (flowtable::hash_batch), and carried alongside the record. Shard
// selection consumes it here, and the per-shard FlowTable probes with it
// directly (the hashed add_batch overload), so no stage downstream ever
// re-hashes a key.
//
// Shard hand-off runs over single-producer single-consumer rings
// (ingest/spsc_ring.hpp): the driver is the only writer and the shard's
// drain task — at most one live at a time — the only reader, so steady-
// state pushes and pops are two acquire/release index updates on
// separate cache lines, no mutex anywhere on the packet path. The
// OverloadPolicy semantics sit on top of the rings: kShed drops the
// chunk when a ring is full; kBlock parks the driver on a slow-path
// condvar that the drain task only signals when a waiter flag says
// someone is parked. Drain-task scheduling is a seq_cst flag handshake
// (enqueue-side exchange vs retire-side store + ring re-check) so a
// chunk pushed while a task is retiring is never stranded.
//
// Disjointness is also what makes the merge cheap: no two shards ever
// contribute the same key to a bin, so the merged view is a plain
// concatenation of per-shard snapshots (memcpy-class work per bin) rather
// than a second round of hash probing. FlowTable::merge_from remains the
// primitive for callers that want a probe-able merged table.
//
// Since the exec layer extraction the pipeline spawns no threads of its
// own: shard work runs as cooperative drain tasks on the shared
// exec::TaskPool (or a caller-provided pool). A shard schedules at most
// one drain task at a time, and the task pops its ring in FIFO order, so
// each shard's packets are still classified sequentially in arrival
// order — the bit-identity argument is untouched.
//
// This is the hash-shard-and-merge shape of multi-core packet pipelines
// (cf. pktgen's per-core generators and heyp's sharded host agents),
// specialized to the paper's binning method.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/ingest/spsc_ring.hpp"
#include "flowrank/packet/records.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::ingest {

/// What add_batch does when a shard ring is full.
enum class OverloadPolicy {
  /// Block the driver until the worker catches up (lossless; the default
  /// and the only mode batch experiments use — results stay bit-identical
  /// at any shard count).
  kBlock,
  /// Drop the chunk and count it. A monitor that must keep up with the
  /// link pairs this with sampling-rate degradation so the loss is a
  /// declared, counted rate change instead of silent tail drops.
  kShed,
};

/// Loss and pressure counters, readable at any time from any thread.
struct OverloadStats {
  std::uint64_t queue_full_events = 0;  ///< enqueues that found a full ring
  std::uint64_t shed_chunks = 0;        ///< chunks dropped under kShed
  std::uint64_t shed_packets = 0;       ///< packets inside those chunks
};

/// The gated per-shard sampler (ISSUE 9 layer 3): when enabled, the
/// driver stops running a sequential sampler in front of the partition
/// point and instead stamps each source-stream packet with its global
/// stream index; every shard then thins its own substream with
/// sampler::SplitStreamSampler (a pure per-index decision) and
/// classifies the survivors into `sampled_stream`. Selection is
/// independent of the partitioning, so the sampled classification is
/// bit-identical across shard counts — but it is a DIFFERENT canonical
/// stream than BernoulliSampler's geometric skips at the same (rate,
/// seed), so this ships off by default behind the `sampler-split` spec
/// key (see docs/PERFORMANCE.md "Scale-up ingest").
struct SplitSamplerConfig {
  bool enabled = false;
  double rate = 1.0;        ///< per-packet selection probability, [0, 1]
  std::uint64_t seed = 0;   ///< master seed (stream derived internally)
  std::size_t source_stream = 0;   ///< stream whose packets are thinned
  std::size_t sampled_stream = 1;  ///< stream the survivors classify into
};

struct ShardedPipelineConfig {
  /// Shard workers; each owns one FlowTable per stream. 0 = one shard per
  /// hardware thread. Capped at exec::TaskPool::kMaxParallelism — beyond
  /// that the constructor throws instead of queueing thousands of tasks.
  std::size_t num_shards = 1;
  /// Independent packet streams classified side by side (e.g. stream 0 =
  /// unsampled truth, stream 1 = sampled). >= 1.
  std::size_t num_streams = 1;
  /// Measurement-interval length; derive via trace::bin_length_ns. > 0.
  std::int64_t bin_ns = 0;
  /// Options for every per-shard table (initial_capacity is per shard).
  flowtable::FlowTable::Options table_options;
  /// Backpressure: add_batch blocks (kBlock) or drops (kShed) once this
  /// many chunks sit in a shard's ring.
  std::size_t max_queue_chunks = 8;
  /// Full-ring behavior; see OverloadPolicy.
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// kBlock only: longest time add_batch may wait on one full shard ring
  /// before declaring the shard wedged and throwing
  /// flowrank::Error(kStalled). 0 = wait forever (batch semantics).
  std::uint32_t block_deadline_ms = 0;
  /// Packets staged per (stream, shard) before a chunk is handed to the
  /// worker. Staging across add_batch calls amortizes the ring/wakeup
  /// cost per chunk over many packets; correctness is unaffected (each
  /// worker still sees its packets in arrival order), only the latency of
  /// bin flushes relative to add_batch calls changes.
  std::size_t chunk_packets = 8192;
  /// Pool the shard tasks run on; nullptr = exec::TaskPool::shared().
  /// Must outlive the pipeline. (The benchmark suite passes a private
  /// throwaway pool to measure exactly what per-run thread spawn costs.)
  exec::TaskPool* pool = nullptr;
  /// Streaming consumer for long-running monitors: when set, each shard's
  /// per-bin table is handed to this callback at flush time — on the
  /// flushing worker's thread, concurrently across shards, so it must be
  /// thread-safe — and NO per-bin snapshots are retained (bin_flows()
  /// stays empty, memory stays bounded by the live tables). When unset,
  /// flushes are concatenated into the per-bin views served by
  /// bin_flows() after finish().
  std::function<void(std::size_t shard, std::size_t stream, std::size_t bin,
                     const flowtable::FlowTable& table)>
      on_shard_bin;
  /// Gated per-shard split sampler; disabled (canonical Bernoulli path
  /// untouched) by default.
  SplitSamplerConfig split_sampler;
};

/// Driver-side facade over the shard workers. Not thread-safe itself: one
/// driver thread calls add_batch()/finish(); results are read after
/// finish() returns.
class ShardedPipeline {
 public:
  /// Sets up the shards and grows the pool to num_shards workers. Throws
  /// std::invalid_argument on a bad config.
  explicit ShardedPipeline(ShardedPipelineConfig config);

  /// Drains the shards (finish() is called if it has not been). A shard
  /// error is swallowed here — the destructor is noexcept — so success
  /// paths must call finish() explicitly to observe it.
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Partitions a time-ordered batch of `stream` by flow-key hash (one
  /// SIMD hash per packet, carried with the record from here on) and
  /// enqueues the per-shard slices. Blocks when a shard's ring is full.
  /// Batches of each stream must arrive in non-decreasing timestamp order.
  void add_batch(std::size_t stream,
                 std::span<const packet::PacketRecord> batch);

  /// Drains the rings and flushes every shard's final bin. Must be
  /// called before reading results. Idempotent. Rethrows the first
  /// exception a shard task raised, if any.
  void finish();

  /// Epoch rotation for continuous monitors: drains every shard ring
  /// (blocking the driver until workers retire), then flushes every bin
  /// strictly before `next_bin` on every classifier — tables clear and
  /// are reused, exactly the batch path's boundary behavior. add_batch
  /// may continue afterwards with packets in bins >= `next_bin`. Rethrows
  /// the first shard-task exception, if any.
  void rotate_epoch(std::size_t next_bin);

  /// Overload counters so far (atomic snapshot, any thread, any time).
  [[nodiscard]] OverloadStats overload_stats() const noexcept;

  /// Bins seen by `stream` (valid after finish()): one past the highest
  /// bin any of its packets landed in, 0 for a packet-less stream (always
  /// 0 when a streaming on_shard_bin callback consumed the flushes).
  [[nodiscard]] std::size_t bin_count(std::size_t stream) const;

  /// Merged per-bin view: every shard's flows for (stream, bin) — each
  /// shard's completed subflows followed by its active entries, exactly
  /// the multiset a single-threaded table's for_each_all() yields. Shard
  /// order within the span is unspecified (it depends on flush timing);
  /// contents are not.
  [[nodiscard]] std::span<const flowtable::FlowCounter> bin_flows(
      std::size_t stream, std::size_t bin) const;

  /// The configuration in effect (num_shards resolved, pool filled in).
  [[nodiscard]] const ShardedPipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  /// One partitioned slice: records plus their carried table-ready key
  /// hashes (parallel vectors), and — only when the split sampler is on —
  /// each record's global stream index.
  struct Batch {
    std::vector<packet::PacketRecord> packets;
    std::vector<std::uint64_t> hashes;
    std::vector<std::uint64_t> indices;

    void clear() noexcept {
      packets.clear();
      hashes.clear();
      indices.clear();
    }
  };

  struct Chunk {
    std::uint32_t stream = 0;
    Batch data;
  };

  struct Shard {
    Shard(std::size_t ring_capacity, std::size_t spare_capacity)
        : ring(ring_capacity), free_ring(spare_capacity) {}

    /// Driver -> drain-task chunk hand-off (the hot path).
    SpscRing<Chunk> ring;
    /// Drain-task -> driver buffer recycling (roles reversed: the drain
    /// task produces, the driver consumes). Overflow simply frees the
    /// buffer.
    SpscRing<Batch> free_ring;
    /// True while a drain task is queued or running for this shard. At
    /// most one at a time, so the shard's chunks are classified strictly
    /// in FIFO order — the invariant bit-identity rests on. seq_cst
    /// handshake with the ring emptiness re-check (see drain_shard /
    /// enqueue); own line so retire/schedule flips never bounce the ring
    /// indices.
    alignas(kCacheLineBytes) std::atomic<bool> task_active{false};
    /// Nonzero while the driver is parked on `wakeup` (full-ring block
    /// or drain_all). The drain task checks it after every pop and only
    /// then takes the mutex to notify, keeping the hot path lock-free.
    alignas(kCacheLineBytes) std::atomic<std::uint32_t> driver_waiting{0};
    /// Slow-path wait state only; never touched on the packet path.
    util::Mutex mutex;
    util::CondVar wakeup;
    /// One classifier per stream, owned (and only touched) by the drain
    /// task — which runs exclusively, so this is single-threaded state
    /// handed from pool worker to pool worker through the task_active
    /// release/acquire edge (plus the pool's own submit ordering).
    /// Exclusive hand-off, not mutual exclusion: FR_GUARDED_BY cannot
    /// express it — TSan checks it dynamically.
    std::vector<flowtable::BinnedClassifier> classifiers;
    /// Split-sampler thinning scratch (drain task only, same hand-off).
    Batch sampled_scratch;
  };

  /// Pops and classifies chunks until the ring is empty, then retires.
  void drain_shard(std::size_t shard_index);
  /// Classifies one chunk (and, under the split sampler, thins + feeds
  /// the sampled stream). Errors land in first_error_.
  void classify_chunk(Shard& shard, const Chunk& chunk);
  /// Hands pending_[stream][shard] to the worker and replaces it with a
  /// recycled buffer.
  void flush_pending(std::size_t stream, std::size_t shard_index);
  void enqueue(std::size_t shard_index, std::size_t stream, Batch&& data);
  /// kBlock slow path: parks on the shard condvar until the chunk fits
  /// (or the block deadline declares the shard wedged).
  void block_until_pushed(std::size_t shard_index, Chunk& chunk);
  [[nodiscard]] Batch take_buffer(Shard& shard);
  void on_bin_flush(std::size_t shard, std::size_t stream, std::size_t bin,
                    const flowtable::FlowTable& table);
  /// Blocks until every ringed chunk is classified and every drain task
  /// has retired (driver thread only).
  void drain_all();
  /// Rethrows and clears the first shard-task exception, if any.
  void rethrow_pending_error();

  ShardedPipelineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Driver-side staging: pending_[stream][shard] accumulates partitioned
  /// packets (and carried hashes/indices) until chunk_packets are ready.
  std::vector<std::vector<Batch>> pending_;
  /// Driver-local recycled buffers (shed chunks land here; take_buffer
  /// checks it before the shard's free ring).
  std::vector<Batch> driver_spares_;
  /// Per-stream packets seen so far: the global index base the split
  /// sampler stamps from.
  std::vector<std::uint64_t> stream_packet_counts_;
  /// add_batch workspace for the batch key/hash computation.
  std::vector<packet::FlowKey> scratch_keys_;
  std::vector<std::uint64_t> scratch_hashes_;
  /// Engaged iff config_.split_sampler.enabled.
  std::optional<sampler::SplitStreamSampler> split_sampler_;

  mutable util::Mutex merged_mutex_;
  /// merged_[stream][bin]: concatenated per-shard flow snapshots, built
  /// up as shards flush; grown under the lock. Unused (left empty) when
  /// config_.on_shard_bin streams flushes out instead.
  std::vector<std::vector<std::vector<flowtable::FlowCounter>>> merged_
      FR_GUARDED_BY(merged_mutex_);
  /// First exception thrown inside a shard task; rethrown by finish().
  util::Mutex error_mutex_;
  std::exception_ptr first_error_ FR_GUARDED_BY(error_mutex_);
  bool finished_ = false;

  // Overload counters: written by the driver only, read from any thread
  // via overload_stats(); bumped on overload events, far off the packet
  // path, so they share a line deliberately.
  std::atomic<std::uint64_t> queue_full_events_{0};  // shared-cacheline-ok: driver-written stats counter, off the hot path
  std::atomic<std::uint64_t> shed_chunks_{0};        // shared-cacheline-ok: driver-written stats counter, off the hot path
  std::atomic<std::uint64_t> shed_packets_{0};       // shared-cacheline-ok: driver-written stats counter, off the hot path
};

}  // namespace flowrank::ingest
