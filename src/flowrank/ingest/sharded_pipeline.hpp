// Sharded multi-threaded ingest (the ROADMAP's line-rate scaling step).
//
// The inherently sequential stages — pulling the packet stream and running
// the skip-based sampler, whose state machines must see every packet in
// order — stay on the driver thread. Everything downstream is
// embarrassingly parallel per flow: the driver partitions each
// time-ordered batch by FlowKeyHash % num_shards, so every flow's packets
// land on exactly one shard, and each shard worker owns a private
// FlowTable-backed BinnedClassifier. At each bin flush a shard folds its
// table into the bin's merged view; because shard key sets are disjoint
// and partitioning preserves per-flow packet order, the merged per-bin
// flow counters are bit-identical to a single-threaded classification of
// the same stream, at any shard count.
//
// Disjointness is also what makes the merge cheap: no two shards ever
// contribute the same key to a bin, so the merged view is a plain
// concatenation of per-shard snapshots (memcpy-class work per bin) rather
// than a second round of hash probing. FlowTable::merge_from remains the
// primitive for callers that want a probe-able merged table.
//
// Since the exec layer extraction the pipeline spawns no threads of its
// own: shard work runs as cooperative drain tasks on the shared
// exec::TaskPool (or a caller-provided pool). A shard schedules at most
// one drain task at a time, and the task pops its bounded queue in FIFO
// order, so each shard's packets are still classified sequentially in
// arrival order — the bit-identity argument is untouched. What changes is
// the cost model: repeated short pipelines reuse parked pool workers
// instead of paying a thread spawn/join per shard per run.
//
// This is the hash-shard-and-merge shape of multi-core packet pipelines
// (cf. pktgen's per-core generators and heyp's sharded host agents),
// specialized to the paper's binning method.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/packet/records.hpp"
#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::ingest {

/// What add_batch does when a shard queue is full.
enum class OverloadPolicy {
  /// Block the driver until the worker catches up (lossless; the default
  /// and the only mode batch experiments use — results stay bit-identical
  /// at any shard count).
  kBlock,
  /// Drop the chunk and count it. A monitor that must keep up with the
  /// link pairs this with sampling-rate degradation so the loss is a
  /// declared, counted rate change instead of silent tail drops.
  kShed,
};

/// Loss and pressure counters, readable at any time from any thread.
struct OverloadStats {
  std::uint64_t queue_full_events = 0;  ///< enqueues that found a full queue
  std::uint64_t shed_chunks = 0;        ///< chunks dropped under kShed
  std::uint64_t shed_packets = 0;       ///< packets inside those chunks
};

struct ShardedPipelineConfig {
  /// Shard workers; each owns one FlowTable per stream. 0 = one shard per
  /// hardware thread. Capped at exec::TaskPool::kMaxParallelism — beyond
  /// that the constructor throws instead of queueing thousands of tasks.
  std::size_t num_shards = 1;
  /// Independent packet streams classified side by side (e.g. stream 0 =
  /// unsampled truth, stream 1 = sampled). >= 1.
  std::size_t num_streams = 1;
  /// Measurement-interval length; derive via trace::bin_length_ns. > 0.
  std::int64_t bin_ns = 0;
  /// Options for every per-shard table (initial_capacity is per shard).
  flowtable::FlowTable::Options table_options;
  /// Backpressure: add_batch blocks (kBlock) or drops (kShed) once this
  /// many chunks queue per shard.
  std::size_t max_queue_chunks = 8;
  /// Full-queue behavior; see OverloadPolicy.
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// kBlock only: longest time add_batch may wait on one full shard queue
  /// before declaring the shard wedged and throwing
  /// flowrank::Error(kStalled). 0 = wait forever (batch semantics).
  std::uint32_t block_deadline_ms = 0;
  /// Packets staged per (stream, shard) before a chunk is handed to the
  /// worker. Staging across add_batch calls amortizes the queue/wakeup
  /// cost per chunk over many packets; correctness is unaffected (each
  /// worker still sees its packets in arrival order), only the latency of
  /// bin flushes relative to add_batch calls changes.
  std::size_t chunk_packets = 8192;
  /// Pool the shard tasks run on; nullptr = exec::TaskPool::shared().
  /// Must outlive the pipeline. (The benchmark suite passes a private
  /// throwaway pool to measure exactly what per-run thread spawn costs.)
  exec::TaskPool* pool = nullptr;
  /// Streaming consumer for long-running monitors: when set, each shard's
  /// per-bin table is handed to this callback at flush time — on the
  /// flushing worker's thread, concurrently across shards, so it must be
  /// thread-safe — and NO per-bin snapshots are retained (bin_flows()
  /// stays empty, memory stays bounded by the live tables). When unset,
  /// flushes are concatenated into the per-bin views served by
  /// bin_flows() after finish().
  std::function<void(std::size_t shard, std::size_t stream, std::size_t bin,
                     const flowtable::FlowTable& table)>
      on_shard_bin;
};

/// Driver-side facade over the shard workers. Not thread-safe itself: one
/// driver thread calls add_batch()/finish(); results are read after
/// finish() returns.
class ShardedPipeline {
 public:
  /// Sets up the shards and grows the pool to num_shards workers. Throws
  /// std::invalid_argument on a bad config.
  explicit ShardedPipeline(ShardedPipelineConfig config);

  /// Drains the shards (finish() is called if it has not been). A shard
  /// error is swallowed here — the destructor is noexcept — so success
  /// paths must call finish() explicitly to observe it.
  ~ShardedPipeline();

  ShardedPipeline(const ShardedPipeline&) = delete;
  ShardedPipeline& operator=(const ShardedPipeline&) = delete;

  /// Partitions a time-ordered batch of `stream` by flow-key hash and
  /// enqueues the per-shard slices. Blocks when a shard's queue is full.
  /// Batches of each stream must arrive in non-decreasing timestamp order.
  void add_batch(std::size_t stream,
                 std::span<const packet::PacketRecord> batch);

  /// Drains the queues and flushes every shard's final bin. Must be
  /// called before reading results. Idempotent. Rethrows the first
  /// exception a shard task raised, if any.
  void finish();

  /// Epoch rotation for continuous monitors: drains every shard queue
  /// (blocking the driver until workers retire), then flushes every bin
  /// strictly before `next_bin` on every classifier — tables clear and
  /// are reused, exactly the batch path's boundary behavior. add_batch
  /// may continue afterwards with packets in bins >= `next_bin`. Rethrows
  /// the first shard-task exception, if any.
  void rotate_epoch(std::size_t next_bin);

  /// Overload counters so far (atomic snapshot, any thread, any time).
  [[nodiscard]] OverloadStats overload_stats() const noexcept;

  /// Bins seen by `stream` (valid after finish()): one past the highest
  /// bin any of its packets landed in, 0 for a packet-less stream (always
  /// 0 when a streaming on_shard_bin callback consumed the flushes).
  [[nodiscard]] std::size_t bin_count(std::size_t stream) const;

  /// Merged per-bin view: every shard's flows for (stream, bin) — each
  /// shard's completed subflows followed by its active entries, exactly
  /// the multiset a single-threaded table's for_each_all() yields. Shard
  /// order within the span is unspecified (it depends on flush timing);
  /// contents are not.
  [[nodiscard]] std::span<const flowtable::FlowCounter> bin_flows(
      std::size_t stream, std::size_t bin) const;

  /// The configuration in effect (num_shards resolved, pool filled in).
  [[nodiscard]] const ShardedPipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Chunk {
    std::uint32_t stream = 0;
    std::vector<packet::PacketRecord> packets;
  };

  struct Shard {
    util::Mutex mutex;
    util::CondVar can_push;  ///< driver waits: queue full / not idle
    std::deque<Chunk> queue FR_GUARDED_BY(mutex);
    /// Recycled packet buffers, handed back to the driver.
    std::vector<std::vector<packet::PacketRecord>> spare_buffers
        FR_GUARDED_BY(mutex);
    /// True while a drain task is queued or running for this shard. At
    /// most one at a time, so the shard's chunks are classified strictly
    /// in FIFO order — the invariant bit-identity rests on.
    bool task_scheduled FR_GUARDED_BY(mutex) = false;
    /// One classifier per stream, owned (and only touched) by the drain
    /// task — which runs exclusively, so this is single-threaded state
    /// handed from pool worker to pool worker under the shard mutex.
    /// Exclusive hand-off, not mutual exclusion: the drain task reads it
    /// outside the lock, which FR_GUARDED_BY cannot express — the
    /// task_scheduled protocol above is what makes it safe (and TSan
    /// checks it dynamically).
    std::vector<flowtable::BinnedClassifier> classifiers;
  };

  /// Pops and classifies chunks until the queue is empty, then retires.
  void drain_shard(std::size_t shard_index);
  /// Hands pending_[stream][shard] to the worker and replaces it with a
  /// recycled buffer.
  void flush_pending(std::size_t stream, std::size_t shard_index);
  void enqueue(std::size_t shard_index, std::size_t stream,
               std::vector<packet::PacketRecord>&& packets);
  [[nodiscard]] std::vector<packet::PacketRecord> take_buffer(Shard& shard);
  void on_bin_flush(std::size_t shard, std::size_t stream, std::size_t bin,
                    const flowtable::FlowTable& table);
  /// Blocks until every queued chunk is classified and every drain task
  /// has retired (driver thread only).
  void drain_all();
  /// Rethrows and clears the first shard-task exception, if any.
  void rethrow_pending_error();

  ShardedPipelineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Driver-side staging: pending_[stream][shard] accumulates partitioned
  /// packets until chunk_packets of them are ready to enqueue.
  std::vector<std::vector<std::vector<packet::PacketRecord>>> pending_;

  mutable util::Mutex merged_mutex_;
  /// merged_[stream][bin]: concatenated per-shard flow snapshots, built
  /// up as shards flush; grown under the lock. Unused (left empty) when
  /// config_.on_shard_bin streams flushes out instead.
  std::vector<std::vector<std::vector<flowtable::FlowCounter>>> merged_
      FR_GUARDED_BY(merged_mutex_);
  /// First exception thrown inside a shard task; rethrown by finish().
  util::Mutex error_mutex_;
  std::exception_ptr first_error_ FR_GUARDED_BY(error_mutex_);
  bool finished_ = false;

  std::atomic<std::uint64_t> queue_full_events_{0};
  std::atomic<std::uint64_t> shed_chunks_{0};
  std::atomic<std::uint64_t> shed_packets_{0};
};

}  // namespace flowrank::ingest
