#include "flowrank/ingest/sharded_pipeline.hpp"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "flowrank/flowtable/hash_batch.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/sync.hpp"

namespace flowrank::ingest {

namespace {
/// Insurance against a theoretically lost condvar wakeup: parked drivers
/// re-check their predicate at least this often. The notify protocols
/// below argue no wakeup is actually lost; the timed wait turns any gap
/// in that argument into a bounded stall instead of a deadlock.
constexpr std::chrono::milliseconds kParkRecheck{50};
}  // namespace

ShardedPipeline::ShardedPipeline(ShardedPipelineConfig config)
    : config_(std::move(config)) {
  // 0 = one shard per hardware thread; > kMaxParallelism throws here
  // rather than flooding the pool with thousands of tasks.
  config_.num_shards = exec::TaskPool::resolve_parallelism(config_.num_shards);
  if (config_.num_streams < 1) {
    throw std::invalid_argument("ShardedPipeline: num_streams >= 1");
  }
  if (config_.bin_ns <= 0) {
    throw std::invalid_argument("ShardedPipeline: bin_ns > 0");
  }
  if (config_.max_queue_chunks < 1) {
    throw std::invalid_argument("ShardedPipeline: max_queue_chunks >= 1");
  }
  if (config_.chunk_packets < 1) {
    throw std::invalid_argument("ShardedPipeline: chunk_packets >= 1");
  }
  if (config_.split_sampler.enabled) {
    const SplitSamplerConfig& sp = config_.split_sampler;
    if (sp.source_stream >= config_.num_streams ||
        sp.sampled_stream >= config_.num_streams ||
        sp.source_stream == sp.sampled_stream) {
      throw std::invalid_argument(
          "ShardedPipeline: split_sampler streams must be distinct and "
          "< num_streams");
    }
    split_sampler_.emplace(sp.rate, sp.seed);  // validates rate in [0, 1]
  }
  if (config_.pool == nullptr) config_.pool = &exec::TaskPool::shared();
  // Grow the pool once so every shard can drain concurrently; workers are
  // parked between pipelines, so repeated short runs spawn nothing.
  config_.pool->ensure_workers(config_.num_shards);

  merged_.resize(config_.num_streams);
  pending_.resize(config_.num_streams);
  for (auto& per_shard : pending_) per_shard.resize(config_.num_shards);
  stream_packet_counts_.assign(config_.num_streams, 0);
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    // The free ring holds a couple more buffers than the chunk ring so a
    // worker finishing a burst can park every buffer it popped.
    auto shard = std::make_unique<Shard>(config_.max_queue_chunks,
                                         config_.max_queue_chunks + 2);
    shard->classifiers.reserve(config_.num_streams);
    for (std::size_t stream = 0; stream < config_.num_streams; ++stream) {
      shard->classifiers.push_back(flowtable::BinnedClassifier::with_table_view(
          config_.table_options, config_.bin_ns,
          [this, s, stream](std::size_t bin, const flowtable::FlowTable& table) {
            on_bin_flush(s, stream, bin, table);
          }));
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedPipeline::~ShardedPipeline() {
  // The destructor is noexcept, so a shard error rethrown by finish()
  // here would terminate the process. Success paths call finish()
  // explicitly and get the exception; an abandoning destructor only
  // needs the drain.
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void ShardedPipeline::classify_chunk(Shard& shard, const Chunk& chunk) {
  try {
    shard.classifiers[chunk.stream].add_batch(chunk.data.packets,
                                              chunk.data.hashes);
    const SplitSamplerConfig& sp = config_.split_sampler;
    if (split_sampler_ && chunk.stream == sp.source_stream) {
      // Gated per-shard sampling: thin this shard's slice of the source
      // stream by the carried global indices (a pure per-index decision,
      // so the union over shards is the same set at any shard count) and
      // classify the survivors — hashes ride along, no re-hash.
      Batch& sampled = shard.sampled_scratch;
      sampled.clear();
      const Batch& data = chunk.data;
      for (std::size_t i = 0; i < data.packets.size(); ++i) {
        if (split_sampler_->selects(data.indices[i])) {
          sampled.packets.push_back(data.packets[i]);
          sampled.hashes.push_back(data.hashes[i]);
        }
      }
      shard.classifiers[sp.sampled_stream].add_batch(sampled.packets,
                                                     sampled.hashes);
    }
  } catch (...) {
    util::MutexLock lock(error_mutex_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ShardedPipeline::drain_shard(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  while (true) {
    Chunk chunk;
    while (shard.ring.try_pop(chunk)) {
      // The pop freed a slot; wake a driver blocked on the full ring (or
      // parked in drain_all). Checking the waiter flag first keeps the
      // no-waiter hot path free of the mutex. The fence pairs with the
      // driver's fetch_add+fence in block_until_pushed/drain_all: one of
      // the two sides is guaranteed to see the other's write.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (shard.driver_waiting.load(std::memory_order_seq_cst) != 0) {
        util::MutexLock lock(shard.mutex);
        shard.wakeup.notify_all();
      }
      classify_chunk(shard, chunk);
      chunk.data.clear();
      // Recycle the buffer to the driver; if the free ring is full the
      // buffer simply dies (allocation is off the hot path).
      (void)shard.free_ring.try_push(chunk.data);
    }
    // Retire: drop the task flag, then re-check the ring. A driver that
    // pushed before our store sees task_active == true and does not
    // schedule — the re-check guarantees we (or a replacement task we
    // yield to) still drain that chunk. The fence pairs with the
    // driver's push-then-fence-then-exchange sequence in enqueue().
    shard.task_active.store(false, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!shard.ring.empty()) {
      if (shard.task_active.exchange(true, std::memory_order_seq_cst)) {
        return;  // a replacement task is already scheduled; it drains
      }
      continue;  // reclaimed the flag: keep draining ourselves
    }
    // Fully retired; a driver in drain_all() may be waiting for exactly
    // this transition.
    if (shard.driver_waiting.load(std::memory_order_seq_cst) != 0) {
      util::MutexLock lock(shard.mutex);
      shard.wakeup.notify_all();
    }
    return;
  }
}

ShardedPipeline::Batch ShardedPipeline::take_buffer(Shard& shard) {
  if (!driver_spares_.empty()) {
    Batch buffer = std::move(driver_spares_.back());
    driver_spares_.pop_back();
    buffer.clear();
    return buffer;
  }
  Batch buffer;
  if (shard.free_ring.try_pop(buffer)) buffer.clear();
  return buffer;
}

void ShardedPipeline::block_until_pushed(std::size_t shard_index,
                                         Chunk& chunk) {
  Shard& shard = *shards_[shard_index];
  // A full ring means a drain task is live (tasks retire only on an empty
  // ring), so there is a worker making progress and a wakeup coming.
  const bool bounded = config_.block_deadline_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.block_deadline_ms);
  util::MutexLock lock(shard.mutex);
  shard.driver_waiting.fetch_add(1, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  try {
    // try_push appears exactly once, in the loop head, and the loop exits
    // the moment it succeeds — the chunk can never be pushed twice.
    while (!shard.ring.try_push(chunk)) {
      auto wake = std::chrono::steady_clock::now() + kParkRecheck;
      if (bounded) {
        if (deadline <= std::chrono::steady_clock::now()) {
          throw Error(ErrorCategory::kStalled, "ingest",
                      "shard " + std::to_string(shard_index) +
                          " wedged: queue full for " +
                          std::to_string(config_.block_deadline_ms) + " ms");
        }
        if (deadline < wake) wake = deadline;
      }
      (void)shard.wakeup.wait_until(shard.mutex, wake);
    }
  } catch (...) {
    shard.driver_waiting.fetch_sub(1, std::memory_order_seq_cst);
    throw;
  }
  shard.driver_waiting.fetch_sub(1, std::memory_order_seq_cst);
}

void ShardedPipeline::enqueue(std::size_t shard_index, std::size_t stream,
                              Batch&& data) {
  Shard& shard = *shards_[shard_index];
  Chunk chunk{static_cast<std::uint32_t>(stream), std::move(data)};
  if (!shard.ring.try_push(chunk)) {
    queue_full_events_.fetch_add(1, std::memory_order_relaxed);
    if (config_.overload == OverloadPolicy::kShed) {
      // A full ring means a drain task is live (tasks retire only on an
      // empty ring), so dropping here loses no wakeup. Recycle the
      // buffer; the packets are gone and the counters say so. (The
      // driver cannot push to the free ring — that would add a second
      // producer — so shed buffers land in the driver-local spare pool.)
      shed_chunks_.fetch_add(1, std::memory_order_relaxed);
      shed_packets_.fetch_add(chunk.data.packets.size(),
                              std::memory_order_relaxed);
      chunk.data.clear();
      driver_spares_.push_back(std::move(chunk.data));
      return;
    }
    block_until_pushed(shard_index, chunk);
  }
  // Schedule a drain task unless one is already queued or running. The
  // fence orders the ring push before the flag read against the retiring
  // task's store-flag-then-recheck-ring sequence: either we observe the
  // retirement (exchange returns false, we schedule), or the retiring
  // task observes our push (re-check non-empty, it reclaims or yields to
  // the task we schedule). Either way the chunk is drained.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (!shard.task_active.exchange(true, std::memory_order_seq_cst)) {
    config_.pool->submit([this, shard_index] { drain_shard(shard_index); });
  }
}

void ShardedPipeline::flush_pending(std::size_t stream,
                                    std::size_t shard_index) {
  Batch refill = take_buffer(*shards_[shard_index]);
  std::swap(pending_[stream][shard_index], refill);
  enqueue(shard_index, stream, std::move(refill));
}

void ShardedPipeline::add_batch(std::size_t stream,
                                std::span<const packet::PacketRecord> batch) {
  if (finished_) {
    throw std::logic_error("ShardedPipeline: add_batch after finish");
  }
  if (stream >= config_.num_streams) {
    throw std::out_of_range("ShardedPipeline: bad stream index");
  }
  if (batch.empty()) return;

  // Partition at source: one SIMD batch hash per packet, computed here
  // and carried with the record. Shard selection below and every
  // downstream FlowTable probe reuse it; no stage re-hashes a key.
  const std::size_t n = batch.size();
  scratch_keys_.resize(n);
  scratch_hashes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_keys_[i] =
        packet::make_flow_key(batch[i].tuple, config_.table_options.definition);
  }
  flowtable::hash_batch_table_ready(scratch_keys_, scratch_hashes_);

  const bool stamp_indices =
      split_sampler_.has_value() && stream == config_.split_sampler.source_stream;
  const std::uint64_t index_base = stream_packet_counts_[stream];
  auto& pending = pending_[stream];
  if (config_.num_shards == 1) {
    Batch& dst = pending[0];
    dst.packets.insert(dst.packets.end(), batch.begin(), batch.end());
    dst.hashes.insert(dst.hashes.end(), scratch_hashes_.begin(),
                      scratch_hashes_.end());
    if (stamp_indices) {
      for (std::size_t i = 0; i < n; ++i) {
        dst.indices.push_back(index_base + i);
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      Batch& dst = pending[scratch_hashes_[i] % config_.num_shards];
      dst.packets.push_back(batch[i]);
      dst.hashes.push_back(scratch_hashes_[i]);
      if (stamp_indices) dst.indices.push_back(index_base + i);
    }
  }
  stream_packet_counts_[stream] += n;
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    if (pending[s].packets.size() >= config_.chunk_packets) {
      flush_pending(stream, s);
    }
  }
}

void ShardedPipeline::drain_all() {
  for (std::size_t stream = 0; stream < config_.num_streams; ++stream) {
    for (std::size_t s = 0; s < config_.num_shards; ++s) {
      if (!pending_[stream][s].packets.empty()) flush_pending(stream, s);
    }
  }
  // Wait (on the driver thread, never on a pool worker) for every shard's
  // drain task to retire with an empty ring; after that no task touches
  // the shard until the next enqueue. The waiter flag + fence pair with
  // the drain task's retire sequence exactly like block_until_pushed.
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    util::MutexLock lock(shard.mutex);
    shard.driver_waiting.fetch_add(1, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    while (shard.task_active.load(std::memory_order_seq_cst) ||
           !shard.ring.empty()) {
      (void)shard.wakeup.wait_until(
          shard.mutex, std::chrono::steady_clock::now() + kParkRecheck);
    }
    shard.driver_waiting.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void ShardedPipeline::rethrow_pending_error() {
  std::exception_ptr error;
  {
    util::MutexLock lock(error_mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardedPipeline::finish() {
  if (finished_) return;
  drain_all();
  finished_ = true;
  // Final (possibly partial) bin flushes, concurrent across shards like
  // any other flush; each shard's own flushes stay sequential.
  config_.pool->parallel_for(
      shards_.size(),
      [this](std::size_t s) {
        for (auto& classifier : shards_[s]->classifiers) classifier.finish();
      },
      config_.num_shards);
  rethrow_pending_error();
}

void ShardedPipeline::rotate_epoch(std::size_t next_bin) {
  if (finished_) {
    throw std::logic_error("ShardedPipeline: rotate_epoch after finish");
  }
  drain_all();
  // Window-boundary flushes across all shards and streams; like finish()
  // they run concurrently across shards, sequentially within one.
  config_.pool->parallel_for(
      shards_.size(),
      [this, next_bin](std::size_t s) {
        for (auto& classifier : shards_[s]->classifiers) {
          classifier.flush_through(next_bin);
        }
      },
      config_.num_shards);
  rethrow_pending_error();
}

OverloadStats ShardedPipeline::overload_stats() const noexcept {
  OverloadStats stats;
  stats.queue_full_events = queue_full_events_.load(std::memory_order_relaxed);
  stats.shed_chunks = shed_chunks_.load(std::memory_order_relaxed);
  stats.shed_packets = shed_packets_.load(std::memory_order_relaxed);
  return stats;
}

void ShardedPipeline::on_bin_flush(std::size_t shard, std::size_t stream,
                                   std::size_t bin,
                                   const flowtable::FlowTable& table) {
  if (config_.on_shard_bin) {
    config_.on_shard_bin(shard, stream, bin, table);
    return;
  }
  // Disjoint shard key sets: retaining the merged view is pure
  // concatenation, no re-probing. The lock is held once per bin per shard
  // per stream — far off the packet path.
  util::MutexLock lock(merged_mutex_);
  auto& bins = merged_[stream];
  if (bins.size() <= bin) bins.resize(bin + 1);
  auto& flows = bins[bin];
  flows.reserve(flows.size() + table.completed().size() + table.size());
  table.for_each_all(
      [&flows](const flowtable::FlowCounter& f) { flows.push_back(f); });
}

// After finish() the shard tasks have all retired, so these reads are
// quiescent; they still take merged_mutex_ because "finished and idle" is
// a protocol fact the static analysis cannot see, and the lock is
// uncontended here anyway (results are read once per run).
std::size_t ShardedPipeline::bin_count(std::size_t stream) const {
  if (!finished_) {
    throw std::logic_error("ShardedPipeline: results read before finish");
  }
  util::MutexLock lock(merged_mutex_);
  if (stream >= merged_.size()) {
    throw std::out_of_range("ShardedPipeline: bad stream index");
  }
  return merged_[stream].size();
}

std::span<const flowtable::FlowCounter> ShardedPipeline::bin_flows(
    std::size_t stream, std::size_t bin) const {
  if (!finished_) {
    throw std::logic_error("ShardedPipeline: results read before finish");
  }
  util::MutexLock lock(merged_mutex_);
  if (stream >= merged_.size() || bin >= merged_[stream].size()) {
    throw std::out_of_range("ShardedPipeline: bad stream/bin index");
  }
  return merged_[stream][bin];
}

}  // namespace flowrank::ingest
