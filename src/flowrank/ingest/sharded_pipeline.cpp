#include "flowrank/ingest/sharded_pipeline.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/sync.hpp"

namespace flowrank::ingest {

ShardedPipeline::ShardedPipeline(ShardedPipelineConfig config)
    : config_(std::move(config)) {
  // 0 = one shard per hardware thread; > kMaxParallelism throws here
  // rather than flooding the pool with thousands of tasks.
  config_.num_shards = exec::TaskPool::resolve_parallelism(config_.num_shards);
  if (config_.num_streams < 1) {
    throw std::invalid_argument("ShardedPipeline: num_streams >= 1");
  }
  if (config_.bin_ns <= 0) {
    throw std::invalid_argument("ShardedPipeline: bin_ns > 0");
  }
  if (config_.max_queue_chunks < 1) {
    throw std::invalid_argument("ShardedPipeline: max_queue_chunks >= 1");
  }
  if (config_.chunk_packets < 1) {
    throw std::invalid_argument("ShardedPipeline: chunk_packets >= 1");
  }
  if (config_.pool == nullptr) config_.pool = &exec::TaskPool::shared();
  // Grow the pool once so every shard can drain concurrently; workers are
  // parked between pipelines, so repeated short runs spawn nothing.
  config_.pool->ensure_workers(config_.num_shards);

  merged_.resize(config_.num_streams);
  pending_.resize(config_.num_streams);
  for (auto& per_shard : pending_) per_shard.resize(config_.num_shards);
  shards_.reserve(config_.num_shards);
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->classifiers.reserve(config_.num_streams);
    for (std::size_t stream = 0; stream < config_.num_streams; ++stream) {
      shard->classifiers.push_back(flowtable::BinnedClassifier::with_table_view(
          config_.table_options, config_.bin_ns,
          [this, s, stream](std::size_t bin, const flowtable::FlowTable& table) {
            on_bin_flush(s, stream, bin, table);
          }));
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedPipeline::~ShardedPipeline() {
  // The destructor is noexcept, so a shard error rethrown by finish()
  // here would terminate the process. Success paths call finish()
  // explicitly and get the exception; an abandoning destructor only
  // needs the drain.
  try {
    finish();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void ShardedPipeline::drain_shard(std::size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  while (true) {
    Chunk chunk;
    {
      util::MutexLock lock(shard.mutex);
      if (shard.queue.empty()) {
        // Retire: the next enqueue (or none) schedules a fresh task. The
        // driver may be waiting in finish() for exactly this transition.
        shard.task_scheduled = false;
        shard.can_push.notify_all();
        return;
      }
      chunk = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.can_push.notify_one();
    }
    try {
      shard.classifiers[chunk.stream].add_batch(chunk.packets);
    } catch (...) {
      util::MutexLock lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    chunk.packets.clear();
    {
      util::MutexLock lock(shard.mutex);
      shard.spare_buffers.push_back(std::move(chunk.packets));
    }
  }
}

std::vector<packet::PacketRecord> ShardedPipeline::take_buffer(Shard& shard) {
  util::MutexLock lock(shard.mutex);
  if (shard.spare_buffers.empty()) return {};
  auto buffer = std::move(shard.spare_buffers.back());
  shard.spare_buffers.pop_back();
  return buffer;
}

void ShardedPipeline::enqueue(std::size_t shard_index, std::size_t stream,
                              std::vector<packet::PacketRecord>&& packets) {
  Shard& shard = *shards_[shard_index];
  bool schedule = false;
  {
    util::MutexLock lock(shard.mutex);
    if (shard.queue.size() >= config_.max_queue_chunks) {
      queue_full_events_.fetch_add(1, std::memory_order_relaxed);
      if (config_.overload == OverloadPolicy::kShed) {
        // A full queue means a drain task is live (tasks retire only on
        // an empty queue), so dropping here loses no wakeup. Recycle the
        // buffer; the packets are gone and the counters say so.
        shed_chunks_.fetch_add(1, std::memory_order_relaxed);
        shed_packets_.fetch_add(packets.size(), std::memory_order_relaxed);
        packets.clear();
        shard.spare_buffers.push_back(std::move(packets));
        return;
      }
      if (config_.block_deadline_ms > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.block_deadline_ms);
        while (shard.queue.size() >= config_.max_queue_chunks) {
          if (shard.can_push.wait_until(shard.mutex, deadline) ==
                  std::cv_status::timeout &&
              shard.queue.size() >= config_.max_queue_chunks) {
            throw Error(ErrorCategory::kStalled, "ingest",
                        "shard " + std::to_string(shard_index) +
                            " wedged: queue full for " +
                            std::to_string(config_.block_deadline_ms) + " ms");
          }
        }
      } else {
        while (shard.queue.size() >= config_.max_queue_chunks) {
          shard.can_push.wait(shard.mutex);
        }
      }
    }
    shard.queue.push_back(
        Chunk{static_cast<std::uint32_t>(stream), std::move(packets)});
    if (!shard.task_scheduled) {
      shard.task_scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    config_.pool->submit([this, shard_index] { drain_shard(shard_index); });
  }
}

void ShardedPipeline::flush_pending(std::size_t stream,
                                    std::size_t shard_index) {
  auto refill = take_buffer(*shards_[shard_index]);
  refill.clear();
  std::swap(pending_[stream][shard_index], refill);
  enqueue(shard_index, stream, std::move(refill));
}

void ShardedPipeline::add_batch(std::size_t stream,
                                std::span<const packet::PacketRecord> batch) {
  if (finished_) {
    throw std::logic_error("ShardedPipeline: add_batch after finish");
  }
  if (stream >= config_.num_streams) {
    throw std::out_of_range("ShardedPipeline: bad stream index");
  }
  if (batch.empty()) return;

  auto& pending = pending_[stream];
  if (config_.num_shards == 1) {
    pending[0].insert(pending[0].end(), batch.begin(), batch.end());
  } else {
    for (const auto& pkt : batch) {
      const packet::FlowKey key =
          packet::make_flow_key(pkt.tuple, config_.table_options.definition);
      pending[packet::FlowKeyHash{}(key) % config_.num_shards].push_back(pkt);
    }
  }
  for (std::size_t s = 0; s < config_.num_shards; ++s) {
    if (pending[s].size() >= config_.chunk_packets) flush_pending(stream, s);
  }
}

void ShardedPipeline::drain_all() {
  for (std::size_t stream = 0; stream < config_.num_streams; ++stream) {
    for (std::size_t s = 0; s < config_.num_shards; ++s) {
      if (!pending_[stream][s].empty()) flush_pending(stream, s);
    }
  }
  // Wait (on the driver thread, never on a pool worker) for every shard's
  // drain task to retire with an empty queue; after that no task touches
  // the shard until the next enqueue.
  for (auto& shard : shards_) {
    util::MutexLock lock(shard->mutex);
    while (shard->task_scheduled || !shard->queue.empty()) {
      shard->can_push.wait(shard->mutex);
    }
  }
}

void ShardedPipeline::rethrow_pending_error() {
  std::exception_ptr error;
  {
    util::MutexLock lock(error_mutex_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ShardedPipeline::finish() {
  if (finished_) return;
  drain_all();
  finished_ = true;
  // Final (possibly partial) bin flushes, concurrent across shards like
  // any other flush; each shard's own flushes stay sequential.
  config_.pool->parallel_for(
      shards_.size(),
      [this](std::size_t s) {
        for (auto& classifier : shards_[s]->classifiers) classifier.finish();
      },
      config_.num_shards);
  rethrow_pending_error();
}

void ShardedPipeline::rotate_epoch(std::size_t next_bin) {
  if (finished_) {
    throw std::logic_error("ShardedPipeline: rotate_epoch after finish");
  }
  drain_all();
  // Window-boundary flushes across all shards and streams; like finish()
  // they run concurrently across shards, sequentially within one.
  config_.pool->parallel_for(
      shards_.size(),
      [this, next_bin](std::size_t s) {
        for (auto& classifier : shards_[s]->classifiers) {
          classifier.flush_through(next_bin);
        }
      },
      config_.num_shards);
  rethrow_pending_error();
}

OverloadStats ShardedPipeline::overload_stats() const noexcept {
  OverloadStats stats;
  stats.queue_full_events = queue_full_events_.load(std::memory_order_relaxed);
  stats.shed_chunks = shed_chunks_.load(std::memory_order_relaxed);
  stats.shed_packets = shed_packets_.load(std::memory_order_relaxed);
  return stats;
}

void ShardedPipeline::on_bin_flush(std::size_t shard, std::size_t stream,
                                   std::size_t bin,
                                   const flowtable::FlowTable& table) {
  if (config_.on_shard_bin) {
    config_.on_shard_bin(shard, stream, bin, table);
    return;
  }
  // Disjoint shard key sets: retaining the merged view is pure
  // concatenation, no re-probing. The lock is held once per bin per shard
  // per stream — far off the packet path.
  util::MutexLock lock(merged_mutex_);
  auto& bins = merged_[stream];
  if (bins.size() <= bin) bins.resize(bin + 1);
  auto& flows = bins[bin];
  flows.reserve(flows.size() + table.completed().size() + table.size());
  table.for_each_all(
      [&flows](const flowtable::FlowCounter& f) { flows.push_back(f); });
}

// After finish() the shard tasks have all retired, so these reads are
// quiescent; they still take merged_mutex_ because "finished and idle" is
// a protocol fact the static analysis cannot see, and the lock is
// uncontended here anyway (results are read once per run).
std::size_t ShardedPipeline::bin_count(std::size_t stream) const {
  if (!finished_) {
    throw std::logic_error("ShardedPipeline: results read before finish");
  }
  util::MutexLock lock(merged_mutex_);
  if (stream >= merged_.size()) {
    throw std::out_of_range("ShardedPipeline: bad stream index");
  }
  return merged_[stream].size();
}

std::span<const flowtable::FlowCounter> ShardedPipeline::bin_flows(
    std::size_t stream, std::size_t bin) const {
  if (!finished_) {
    throw std::logic_error("ShardedPipeline: results read before finish");
  }
  util::MutexLock lock(merged_mutex_);
  if (stream >= merged_.size() || bin >= merged_[stream].size()) {
    throw std::out_of_range("ShardedPipeline: bad stream/bin index");
  }
  return merged_[stream][bin];
}

}  // namespace flowrank::ingest
