// Single-producer single-consumer ring buffer: the shard hand-off
// primitive of ingest::ShardedPipeline.
//
// Each pipeline shard is fed by exactly one writer (the driver thread)
// and drained by exactly one reader (the shard's drain task — the
// at-most-one-drain-task invariant makes the consumer side single-
// threaded even though successive tasks may run on different pool
// workers). That pairing lets the hand-off run on two monotonically
// increasing indices with acquire/release atomics only:
//
//   * the producer owns tail_ and advances it after writing a slot;
//   * the consumer owns head_ and advances it after moving a slot out;
//   * each side keeps a local cache of the other's index and re-reads
//     the shared atomic only when the cached value says "full"/"empty",
//     so steady-state pushes and pops touch a single cache line each.
//
// head_ and tail_ live on separate cache lines (alignas below) so the
// producer's stores never invalidate the consumer's line and vice
// versa; the index caches share the line of the index their owner
// already writes. Capacity is the caller's logical bound (the slot
// array rounds up to a power of two internally), so a ring of
// capacity 1 really holds one element — the overload tests rely on
// that.
//
// The ring itself never blocks: try_push/try_pop fail fast and the
// caller decides what full/empty means (shed, block on a slow-path
// condvar, retire a drain task). empty() uses seq_cst loads because it
// sits in the drain-task retirement protocol, where a stale "empty"
// would strand a queued chunk (see sharded_pipeline.cpp).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace flowrank::ingest {

/// Cache-line stride used to keep producer- and consumer-owned state on
/// distinct lines. 64 bytes is the destructive-interference size on
/// every target we build for (x86-64, aarch64); pinned numerically
/// because GCC warns that std::hardware_destructive_interference_size
/// is ABI-unstable across -mtune values.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Bounded SPSC ring. T must be movable; moved-out slots keep their
/// (moved-from) value until overwritten, which is how chunk buffers
/// stay warm for recycling.
template <typename T>
class SpscRing {
 public:
  /// A ring that holds at most `capacity` elements. Throws
  /// std::invalid_argument on capacity 0.
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity),
        mask_(std::bit_ceil(require_nonzero(capacity)) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Moves `value` into the ring and returns true, or
  /// returns false (leaving `value` untouched) when the ring is full.
  [[nodiscard]] bool try_push(T& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Moves the oldest element into `out` and returns
  /// true, or returns false when the ring is empty.
  [[nodiscard]] bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Linearizable emptiness check for the retirement/drain protocols
  /// (either side may call it; seq_cst so it totally orders against the
  /// seq_cst task-flag operations in the pipeline).
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_seq_cst) ==
           tail_.load(std::memory_order_seq_cst);
  }

  /// Approximate occupancy (exact when called by either endpoint while
  /// the other is quiescent).
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(tail_.load(std::memory_order_acquire) -
                                    head_.load(std::memory_order_acquire));
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  static std::size_t require_nonzero(std::size_t capacity) {
    if (capacity == 0) {
      throw std::invalid_argument("SpscRing: capacity must be >= 1");
    }
    return capacity;
  }

  /// Consumer-owned line: head_ plus the consumer's cache of tail_.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;

  /// Producer-owned line: tail_ plus the producer's cache of head_.
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;

  /// Immutable after construction; shared read-only.
  alignas(kCacheLineBytes) std::size_t capacity_;
  std::uint64_t mask_;
  std::vector<T> slots_;
};

}  // namespace flowrank::ingest
