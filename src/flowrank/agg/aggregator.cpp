#include "flowrank/agg/aggregator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "flowrank/util/error.hpp"

namespace flowrank::agg {

Aggregator::Aggregator(AggregatorConfig config) : config_(config) {
  if (config_.agents_expected < 1) {
    throw std::invalid_argument("aggregator: agents_expected >= 1");
  }
  if (config_.quarantine_after < 1) {
    throw std::invalid_argument("aggregator: quarantine_after >= 1");
  }
  if (config_.readmit_after < 1) {
    throw std::invalid_argument("aggregator: readmit_after >= 1");
  }
  if (!(config_.window_s > 0.0)) {
    throw std::invalid_argument("aggregator: window_s > 0");
  }
  agents_.resize(config_.agents_expected);
}

OfferOutcome Aggregator::note_corrupt(std::uint32_t transport_agent_id) {
  ++counters_.corrupt_summaries;
  ++window_faults_.corrupt;
  if (transport_agent_id < agents_.size()) {
    // A corrupt probe is not a clean one: restart the readmission count.
    agents_[transport_agent_id].clean_probes = 0;
  }
  return OfferOutcome::kCorrupt;
}

OfferOutcome Aggregator::offer(std::uint32_t transport_agent_id,
                               std::span<const std::uint8_t> bytes) {
  FlowSummary summary;
  try {
    summary = parse_summary(bytes);
  } catch (const Error& error) {
    if (error.category() != ErrorCategory::kCorruptSummary) throw;
    ++counters_.summaries_offered;
    return note_corrupt(transport_agent_id);
  }
  if (summary.agent_id != transport_agent_id) {
    // Checksum-valid but misrouted or forged: never merge it.
    ++counters_.summaries_offered;
    return note_corrupt(transport_agent_id);
  }
  return offer_summary(std::move(summary));
}

OfferOutcome Aggregator::offer_summary(FlowSummary summary) {
  ++counters_.summaries_offered;
  if (summary.agent_id >= agents_.size()) {
    ++counters_.unknown_agent_summaries;
    return OfferOutcome::kUnknownAgent;
  }
  AgentState& agent = agents_[summary.agent_id];
  const std::uint64_t epoch = summary.epoch;

  // Deadline first: a summary for an already-closed window is late no
  // matter what else is true of it — the row went out without it.
  if (epoch < next_epoch_) {
    ++counters_.late_summaries;
    ++window_faults_.late;
    return OfferOutcome::kLate;
  }

  if (agent.quarantined) {
    // Valid, on-time summary from a quarantined agent: a clean probe.
    // Probes must advance epochs — a duplicated probe counts once.
    if (agent.last_probe_epoch != kNoEpoch && epoch <= agent.last_probe_epoch) {
      ++counters_.duplicate_summaries;
      ++window_faults_.duplicates;
      return OfferOutcome::kDuplicate;
    }
    agent.last_probe_epoch = epoch;
    ++counters_.quarantined_probes;
    ++agent.clean_probes;
    if (agent.clean_probes >= config_.readmit_after) {
      agent.quarantined = false;
      agent.consecutive_bad = 0;
      agent.clean_probes = 0;
      agent.last_probe_epoch = kNoEpoch;
      // Fence future offers at the probe epoch: the probe itself was
      // consumed by readmission, not merged — and closing its window
      // must not immediately charge the readmitted agent a miss.
      agent.last_accepted_epoch = epoch;
      agent.excused_epoch = epoch;
      ++counters_.readmissions;
    }
    return OfferOutcome::kQuarantinedProbe;
  }

  auto pending_it = pending_.find(epoch);
  if (pending_it != pending_.end() &&
      pending_it->second[summary.agent_id].has_value()) {
    ++counters_.duplicate_summaries;
    ++window_faults_.duplicates;
    return OfferOutcome::kDuplicate;
  }

  // Staleness fencing: never accept an epoch at or below the agent's
  // last accepted one — a replay or reordering cannot roll it back.
  if (agent.last_accepted_epoch != kNoEpoch &&
      epoch <= agent.last_accepted_epoch) {
    ++counters_.stale_summaries;
    ++window_faults_.stale;
    return OfferOutcome::kStale;
  }

  if (pending_it == pending_.end()) {
    pending_it = pending_
                     .emplace(epoch, std::vector<std::optional<FlowSummary>>(
                                         agents_.size()))
                     .first;
  }
  agent.last_accepted_epoch = epoch;
  pending_it->second[summary.agent_id] = std::move(summary);
  return OfferOutcome::kAccepted;
}

MergedWindow Aggregator::close_window(std::uint64_t epoch) {
  if (epoch != next_epoch_) {
    throw std::invalid_argument("aggregator: windows close in order");
  }

  std::vector<std::optional<FlowSummary>> slots;
  const auto pending_it = pending_.find(epoch);
  if (pending_it != pending_.end()) {
    slots = std::move(pending_it->second);
    pending_.erase(pending_it);
  } else {
    slots.resize(agents_.size());
  }

  MergedWindow window;
  window.epoch = epoch;
  window.time_s = static_cast<double>(epoch + 1) * config_.window_s;
  window.agents_expected = agents_.size();

  estimators::MergedSketch merged;
  for (std::uint32_t id = 0; id < agents_.size(); ++id) {
    AgentState& agent = agents_[id];
    if (agent.quarantined) continue;  // neither merged nor charged a miss
    const std::optional<FlowSummary>& slot = slots[id];
    if (!slot.has_value()) {
      if (agent.excused_epoch == epoch) continue;  // readmission probe window
      ++window.missed;
      ++counters_.missed_summaries;
      ++agent.consecutive_bad;
      if (agent.consecutive_bad >= config_.quarantine_after) {
        agent.quarantined = true;
        agent.clean_probes = 0;
        agent.last_probe_epoch = kNoEpoch;
        ++counters_.quarantines;
      }
      continue;
    }
    const FlowSummary& summary = *slot;
    merged = estimators::space_saving_union(
        merged.view(), inverted_view(summary).view(), config_.union_capacity);
    ++window.agents_merged;
    ++counters_.summaries_merged;
    agent.consecutive_bad = 0;
    window.packets_offered += summary.packets_offered;
    window.packets_sampled += summary.packets_sampled;
    window.shed_packets += summary.shed_packets;
  }

  window.merged_flows = merged.flows.size();
  for (const estimators::TrackedFlow& flow : merged.flows) {
    window.estimated_packets += flow.estimated_packets;
  }
  const std::size_t keep = std::min(config_.top_t, merged.flows.size());
  window.top.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    window.top.push_back(MergedFlow{merged.flows[i].key,
                                    merged.flows[i].estimated_packets,
                                    merged.flows[i].error_bound});
  }
  window.coverage_fraction = static_cast<double>(window.agents_merged) /
                             static_cast<double>(window.agents_expected);
  for (const AgentState& agent : agents_) {
    if (agent.quarantined) ++window.quarantined;
  }
  window.corrupt = window_faults_.corrupt;
  window.stale = window_faults_.stale;
  window.late = window_faults_.late;
  window.duplicates = window_faults_.duplicates;
  window_faults_ = WindowFaults{};

  ++counters_.windows_closed;
  ++next_epoch_;
  window.counters = counters_;
  return window;
}

bool Aggregator::quarantined(std::uint32_t agent_id) const {
  if (agent_id >= agents_.size()) {
    throw std::out_of_range("aggregator: agent id out of range");
  }
  return agents_[agent_id].quarantined;
}

std::vector<std::string> window_columns() {
  return {"window",          "time_s",          "agents_expected",
          "agents_merged",   "coverage_fraction", "merged_flows",
          "top1_est",        "topt_est",        "est_total_packets",
          "packets_offered", "packets_sampled", "shed_packets",
          "missed",          "corrupt",         "stale",
          "late",            "duplicates",      "quarantined",
          "quarantines_total", "readmissions_total", "merged_total",
          "windows"};
}

report::Row window_row(const MergedWindow& window) {
  const double top1 = window.top.empty() ? 0.0 : window.top.front().estimated_packets;
  const double topt = window.top.empty() ? 0.0 : window.top.back().estimated_packets;
  const AggregatorCounters& c = window.counters;
  return report::Row{
      window.epoch,
      window.time_s,
      static_cast<std::uint64_t>(window.agents_expected),
      static_cast<std::uint64_t>(window.agents_merged),
      window.coverage_fraction,
      static_cast<std::uint64_t>(window.merged_flows),
      top1,
      topt,
      window.estimated_packets,
      window.packets_offered,
      window.packets_sampled,
      window.shed_packets,
      static_cast<std::uint64_t>(window.missed),
      static_cast<std::uint64_t>(window.corrupt),
      static_cast<std::uint64_t>(window.stale),
      static_cast<std::uint64_t>(window.late),
      static_cast<std::uint64_t>(window.duplicates),
      static_cast<std::uint64_t>(window.quarantined),
      c.quarantines,
      c.readmissions,
      c.summaries_merged,
      c.windows_closed,
  };
}

}  // namespace flowrank::agg
