// Epoch-aligned, fault-tolerant collector of per-agent FlowSummary
// messages.
//
// The aggregator owns the failure semantics of multi-vantage merging:
//
//  * Deadlines — the driver closes every window on its deadline whether
//    or not all agents reported; whatever arrives after the close is
//    counted late and excluded, and the window's row still goes out.
//  * Staleness fencing — a summary whose epoch is at or below the
//    agent's last accepted epoch is rejected stale; it can never roll a
//    merged window backwards.
//  * Quarantine — an agent that misses or corrupts `quarantine_after`
//    consecutive windows is quarantined: its summaries stop being merged
//    and instead count as clean probes; after `readmit_after` clean
//    probes on distinct epochs it is readmitted (the probes themselves
//    are never merged).
//  * Degraded-coverage reporting — every closed window reports
//    agents_expected / agents_merged / coverage_fraction plus the
//    rejection counts observed while it was open, as an all-numeric
//    report::Row (window_columns() / window_row()).
//
// Merging inverts each summary at its own sampling rate and left-folds
// the mergeable Space-Saving union (estimators::space_saving_union);
// full-rate table summaries therefore merge exactly.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flowrank/agg/flow_summary.hpp"
#include "flowrank/report/result_sink.hpp"

namespace flowrank::agg {

/// Aggregator policy knobs.
struct AggregatorConfig {
  std::size_t agents_expected = 1;  ///< fleet size; agent ids in [0, N)
  std::size_t top_t = 10;           ///< ranked flows reported per window
  double window_s = 60.0;           ///< window length (row time axis)
  /// Consecutive windows without a valid contribution before an agent is
  /// quarantined (>= 1).
  std::size_t quarantine_after = 3;
  /// Clean probe summaries (distinct epochs) before a quarantined agent
  /// is readmitted (>= 1).
  std::size_t readmit_after = 1;
  /// Slot budget for the folded union; 0 keeps every key (exact for
  /// table summaries).
  std::size_t union_capacity = 0;
};

/// Verdict on one offered summary.
enum class OfferOutcome {
  kAccepted,          ///< parsed, fresh, pending merge at window close
  kCorrupt,           ///< failed framing/checksum, or agent-id mismatch
  kLate,              ///< its window already closed
  kStale,             ///< at or below the agent's last accepted epoch
  kDuplicate,         ///< the agent already reported this epoch
  kQuarantinedProbe,  ///< valid summary from a quarantined agent
  kUnknownAgent,      ///< agent id outside [0, agents_expected)
};

/// Cumulative aggregator counters (all offers and closes so far).
struct AggregatorCounters {
  std::uint64_t summaries_offered = 0;
  std::uint64_t summaries_merged = 0;
  std::uint64_t corrupt_summaries = 0;
  std::uint64_t stale_summaries = 0;
  std::uint64_t late_summaries = 0;
  std::uint64_t duplicate_summaries = 0;
  std::uint64_t missed_summaries = 0;  ///< agent-windows closed without input
  std::uint64_t unknown_agent_summaries = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t quarantined_probes = 0;
  std::uint64_t windows_closed = 0;
};

/// One merged flow in a window's ranking.
struct MergedFlow {
  packet::FlowKey key;
  double estimated_packets = 0.0;
  double error_bound = 0.0;
};

/// The merged result of one closed window, including its coverage and
/// fault accounting.
struct MergedWindow {
  std::uint64_t epoch = 0;
  double time_s = 0.0;
  std::vector<MergedFlow> top;      ///< top_t flows, estimate desc
  std::size_t merged_flows = 0;     ///< distinct keys in the folded union
  double estimated_packets = 0.0;   ///< sum of merged estimates
  std::size_t agents_expected = 0;
  std::size_t agents_merged = 0;
  double coverage_fraction = 0.0;   ///< agents_merged / agents_expected
  // Rejections observed while this window was open:
  std::size_t missed = 0;
  std::size_t corrupt = 0;
  std::size_t stale = 0;
  std::size_t late = 0;
  std::size_t duplicates = 0;
  std::size_t quarantined = 0;      ///< agents quarantined after this close
  // Sums over the merged summaries' agent-side counters:
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_sampled = 0;
  std::uint64_t shed_packets = 0;
  AggregatorCounters counters;      ///< cumulative snapshot at close
};

/// The collector. Single-threaded: the fleet driver (or demo parent
/// process) offers summaries and closes windows in order.
class Aggregator {
 public:
  /// Throws std::invalid_argument on a bad config.
  explicit Aggregator(AggregatorConfig config);

  /// Offers one serialized summary received from transport lane
  /// `transport_agent_id`. Parse failures are attributed to that lane;
  /// a checksum-valid summary whose embedded agent id does not match the
  /// lane is treated as corrupt too (misrouted or forged).
  OfferOutcome offer(std::uint32_t transport_agent_id,
                     std::span<const std::uint8_t> bytes);

  /// Offers an already-parsed summary (trusted path; unit tests).
  OfferOutcome offer_summary(FlowSummary summary);

  /// Closes window `epoch` — must be the next unclosed window (windows
  /// close in order from 0; throws std::invalid_argument otherwise) —
  /// merging every pending summary for it, charging misses, and applying
  /// the quarantine policy. The window closes no matter how many agents
  /// reported; coverage says how degraded it is.
  [[nodiscard]] MergedWindow close_window(std::uint64_t epoch);

  [[nodiscard]] const AggregatorCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] std::uint64_t windows_closed() const noexcept {
    return next_epoch_;
  }
  /// True if `agent_id` is currently quarantined.
  [[nodiscard]] bool quarantined(std::uint32_t agent_id) const;

 private:
  static constexpr std::uint64_t kNoEpoch =
      std::numeric_limits<std::uint64_t>::max();

  struct AgentState {
    std::uint64_t last_accepted_epoch = kNoEpoch;
    std::uint64_t last_probe_epoch = kNoEpoch;
    /// Epoch whose readmission probe was consumed (not merged); closing
    /// it does not charge this agent a miss.
    std::uint64_t excused_epoch = kNoEpoch;
    std::size_t consecutive_bad = 0;
    std::size_t clean_probes = 0;
    bool quarantined = false;
  };

  /// Rejections observed while the current window is open; reset at close.
  struct WindowFaults {
    std::size_t corrupt = 0;
    std::size_t stale = 0;
    std::size_t late = 0;
    std::size_t duplicates = 0;
  };

  OfferOutcome note_corrupt(std::uint32_t transport_agent_id);

  AggregatorConfig config_;
  std::vector<AgentState> agents_;
  /// Pending summaries per open epoch (slot per agent). Future epochs
  /// buffer here until their window closes.
  std::map<std::uint64_t, std::vector<std::optional<FlowSummary>>> pending_;
  std::uint64_t next_epoch_ = 0;  ///< next window to close
  WindowFaults window_faults_;
  AggregatorCounters counters_;
};

/// Column names of the degraded-coverage result rows (all numeric, in
/// emit order), mirroring monitor::snapshot_columns().
[[nodiscard]] std::vector<std::string> window_columns();

/// One closed window as a report::Row matching window_columns().
[[nodiscard]] report::Row window_row(const MergedWindow& window);

}  // namespace flowrank::agg
