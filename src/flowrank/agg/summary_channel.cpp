#include "flowrank/agg/summary_channel.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "flowrank/util/rng.hpp"

namespace flowrank::agg {

namespace {

void check_fraction(double value, const char* name) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("summary channel: ") + name +
                                " in [0, 1]");
  }
}

bool in_outage(const SummaryFaultSpec& spec, std::uint32_t agent,
               std::uint64_t epoch) {
  if (spec.outage_agent != agent) return false;
  if (epoch < spec.outage_from) return false;
  return spec.outage_windows == 0 ||
         epoch < spec.outage_from + spec.outage_windows;
}

}  // namespace

FaultInjectingSummaryChannel::FaultInjectingSummaryChannel(SummaryFaultSpec spec,
                                                           std::size_t agents)
    : spec_(spec), per_agent_(agents) {
  check_fraction(spec.drop_fraction, "drop fraction");
  check_fraction(spec.corrupt_fraction, "corrupt fraction");
  check_fraction(spec.delay_fraction, "delay fraction");
  check_fraction(spec.duplicate_fraction, "duplicate fraction");
  if (spec.drop_fraction + spec.corrupt_fraction + spec.delay_fraction +
          spec.duplicate_fraction >
      1.0) {
    throw std::invalid_argument(
        "summary channel: fault fractions sum to more than 1");
  }
  if (spec.delay_windows == 0) {
    throw std::invalid_argument("summary channel: delay-windows >= 1");
  }
  if (agents == 0) {
    throw std::invalid_argument("summary channel: agents >= 1");
  }
  if (spec.outage_agent != SummaryFaultSpec::kNoAgent &&
      spec.outage_agent >= agents) {
    throw std::invalid_argument("summary channel: outage agent out of range");
  }
}

void FaultInjectingSummaryChannel::submit(std::uint32_t agent_id,
                                          std::uint64_t epoch,
                                          std::vector<std::uint8_t> bytes) {
  if (agent_id >= per_agent_.size()) {
    throw std::out_of_range("summary channel: agent id out of range");
  }
  ++counters_.submitted;
  ++per_agent_[agent_id].submitted;

  if (in_outage(spec_, agent_id, epoch)) {
    ++counters_.outage_dropped;
    ++per_agent_[agent_id].outage_dropped;
    return;
  }

  // One fault decision per (agent, epoch), a pure function of the seed —
  // the schedule replays identically across runs. Mutually exclusive
  // ladder so aggregator-side counters match these counts one-to-one.
  util::Engine engine = util::make_engine(
      spec_.seed, util::mix_streams(agent_id, epoch, 0xC4A17ull));
  const double coin = util::uniform_unit_open(engine);

  std::uint64_t deliver_epoch = epoch;
  bool duplicate = false;
  double edge = spec_.drop_fraction;
  if (coin < edge) {
    ++counters_.dropped;
    ++per_agent_[agent_id].dropped;
    return;
  }
  edge += spec_.corrupt_fraction;
  if (coin < edge) {
    if (!bytes.empty()) {
      const std::size_t pos = static_cast<std::size_t>(engine() % bytes.size());
      const unsigned bit = static_cast<unsigned>(engine() % 8);
      bytes[pos] = static_cast<std::uint8_t>(bytes[pos] ^ (1u << bit));
    }
    ++counters_.corrupted;
    ++per_agent_[agent_id].corrupted;
  } else {
    edge += spec_.delay_fraction;
    if (coin < edge) {
      deliver_epoch = epoch + spec_.delay_windows;
      ++counters_.delayed;
      ++per_agent_[agent_id].delayed;
    } else {
      edge += spec_.duplicate_fraction;
      if (coin < edge) {
        duplicate = true;
        ++counters_.duplicated;
        ++per_agent_[agent_id].duplicated;
      }
    }
  }

  SummaryDelivery delivery{agent_id, epoch, std::move(bytes)};
  if (duplicate) {
    in_flight_.push_back(InFlight{deliver_epoch, delivery});
    ++counters_.delivered;
    ++per_agent_[agent_id].delivered;
  }
  in_flight_.push_back(InFlight{deliver_epoch, std::move(delivery)});
  ++counters_.delivered;
  ++per_agent_[agent_id].delivered;
}

std::vector<SummaryDelivery> FaultInjectingSummaryChannel::drain_ready(
    std::uint64_t epoch) {
  std::vector<SummaryDelivery> due;
  std::vector<InFlight> keep;
  keep.reserve(in_flight_.size());
  for (InFlight& item : in_flight_) {
    if (item.deliver_epoch <= epoch) {
      due.push_back(std::move(item.delivery));
    } else {
      keep.push_back(std::move(item));
    }
  }
  in_flight_ = std::move(keep);
  return due;
}

std::vector<SummaryDelivery> FaultInjectingSummaryChannel::drain_all() {
  std::vector<SummaryDelivery> due;
  due.reserve(in_flight_.size());
  for (InFlight& item : in_flight_) due.push_back(std::move(item.delivery));
  in_flight_.clear();
  return due;
}

const ChannelCounters& FaultInjectingSummaryChannel::agent_counters(
    std::uint32_t agent) const {
  if (agent >= per_agent_.size()) {
    throw std::out_of_range("summary channel: agent id out of range");
  }
  return per_agent_[agent];
}

}  // namespace flowrank::agg
