#include "flowrank/agg/fleet_run.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/rng.hpp"
#include "flowrank/util/sync.hpp"

namespace flowrank::agg {

namespace {

/// One simulated vantage agent: its sampler, its per-window classifier,
/// and the counters its next summary will carry.
struct AgentRuntime {
  explicit AgentRuntime(double rate, std::uint64_t sampler_seed)
      : sampler(rate, sampler_seed) {}

  sampler::BernoulliSampler sampler;
  std::unique_ptr<ingest::ShardedPipeline> pipeline;          // table kind
  std::unique_ptr<estimators::SpaceSavingTracker> tracker;    // sketch kind
  util::Mutex mutex;
  /// Shard-bin flushes land here from worker threads at rotate time.
  std::map<std::size_t, std::vector<flowtable::FlowCounter>> window_flows
      FR_GUARDED_BY(mutex);
  std::uint64_t offered_window = 0;
  std::uint64_t sampled_window = 0;
  std::uint64_t prev_shed = 0;
  std::vector<packet::PacketRecord> routed;
  std::vector<packet::PacketRecord> selected;
};

void check_config(const FleetConfig& config) {
  if (config.agents < 1) {
    throw std::invalid_argument("fleet: agents >= 1");
  }
  if (!(config.window_s > 0.0)) {
    throw std::invalid_argument("fleet: window_s > 0");
  }
  if (!(config.sampling_rate > 0.0 && config.sampling_rate <= 1.0)) {
    throw std::invalid_argument("fleet: sampling rate in (0, 1]");
  }
  if (config.summary_kind == SummaryKind::kSpaceSaving &&
      config.summary_slots < 1) {
    throw std::invalid_argument("fleet: summary_slots >= 1");
  }
  if (config.batch_packets < 1) {
    throw std::invalid_argument("fleet: batch_packets >= 1");
  }
}

}  // namespace

FleetReport run_fleet(const trace::FlowTrace& trace, const FleetConfig& config,
                      const WindowCallback& on_window) {
  check_config(config);
  const std::int64_t window_ns = trace::bin_length_ns(config.window_s);

  std::vector<std::unique_ptr<AgentRuntime>> agents;
  agents.reserve(config.agents);
  for (std::size_t a = 0; a < config.agents; ++a) {
    // A one-agent fleet reuses the run seed unmixed: its sampler then
    // draws the identical Bernoulli skip sequence as the direct pipeline,
    // which is what makes single-agent aggregation bit-identical to it.
    const std::uint64_t sampler_seed =
        config.agents == 1 ? config.seed : util::mix_stream(config.seed, a);
    agents.push_back(
        std::make_unique<AgentRuntime>(config.sampling_rate, sampler_seed));
    AgentRuntime& agent = *agents.back();
    if (config.summary_kind == SummaryKind::kFlowTable) {
      ingest::ShardedPipelineConfig pipe;
      pipe.num_shards = config.num_shards;
      pipe.bin_ns = window_ns;
      pipe.table_options.definition = config.definition;
      pipe.on_shard_bin = [&agent](std::size_t, std::size_t, std::size_t bin,
                                   const flowtable::FlowTable& table) {
        util::MutexLock lock(agent.mutex);
        auto& flows = agent.window_flows[bin];
        table.for_each_all([&flows](const flowtable::FlowCounter& counter) {
          flows.push_back(counter);
        });
      };
      agent.pipeline = std::make_unique<ingest::ShardedPipeline>(pipe);
    } else {
      agent.tracker =
          std::make_unique<estimators::SpaceSavingTracker>(config.summary_slots);
    }
  }

  FaultInjectingSummaryChannel channel(config.chan, config.agents);
  AggregatorConfig agg_config;
  agg_config.agents_expected = config.agents;
  agg_config.top_t = config.top_t;
  agg_config.window_s = config.window_s;
  agg_config.quarantine_after = config.quarantine_after;
  agg_config.readmit_after = config.readmit_after;
  agg_config.union_capacity = config.union_capacity;
  Aggregator aggregator(agg_config);

  FleetReport report;
  std::uint64_t current = 0;   // next window to close
  std::uint64_t max_seen = 0;  // highest window with packets
  bool any_packet = false;

  // Summarize + submit every agent's window `w`, then deliver and close.
  const auto close_one = [&](std::uint64_t w) {
    for (std::size_t a = 0; a < config.agents; ++a) {
      AgentRuntime& agent = *agents[a];
      FlowSummary summary;
      if (config.summary_kind == SummaryKind::kFlowTable) {
        // Window boundary = the agent's flush deadline: rotate the
        // pipeline so every shard's bin-w table reaches window_flows.
        agent.pipeline->rotate_epoch(static_cast<std::size_t>(w) + 1);
        std::vector<flowtable::FlowCounter> flows;
        {
          util::MutexLock lock(agent.mutex);
          const auto it = agent.window_flows.find(static_cast<std::size_t>(w));
          if (it != agent.window_flows.end()) {
            flows = std::move(it->second);
            agent.window_flows.erase(it);
          }
        }
        flowtable::FlowTable::Options options;
        options.definition = config.definition;
        options.initial_capacity = std::max<std::size_t>(64, flows.size() * 2);
        flowtable::FlowTable table(options);
        for (const flowtable::FlowCounter& counter : flows) {
          table.insert_counter(counter);
        }
        summary = summarize_table(table, static_cast<std::uint32_t>(a), w,
                                  config.sampling_rate);
        const std::uint64_t shed =
            agent.pipeline->overload_stats().shed_packets;
        summary.shed_packets = shed - agent.prev_shed;
        agent.prev_shed = shed;
      } else {
        summary = summarize_sketch(*agent.tracker, static_cast<std::uint32_t>(a),
                                   w, config.sampling_rate);
        agent.tracker = std::make_unique<estimators::SpaceSavingTracker>(
            config.summary_slots);
      }
      summary.packets_offered = agent.offered_window;
      summary.packets_sampled = agent.sampled_window;
      agent.offered_window = 0;
      agent.sampled_window = 0;
      channel.submit(static_cast<std::uint32_t>(a), w, serialize(summary));
    }
    for (SummaryDelivery& delivery : channel.drain_ready(w)) {
      (void)aggregator.offer(delivery.agent_id, delivery.bytes);
    }
    const MergedWindow window = aggregator.close_window(w);
    if (on_window) on_window(window);
  };

  const auto close_through = [&](std::uint64_t target) {
    while (current < target) {
      close_one(current);
      ++current;
    }
  };

  // Feeds one same-window run of routed packets through each agent.
  const auto process_segment = [&](std::span<const packet::PacketRecord> pkts) {
    if (config.agents == 1) {
      AgentRuntime& agent = *agents[0];
      agent.offered_window += pkts.size();
      agent.sampler.select_into(pkts, agent.selected);
      agent.sampled_window += agent.selected.size();
      if (config.summary_kind == SummaryKind::kFlowTable) {
        agent.pipeline->add_batch(0, agent.selected);
      } else {
        for (const packet::PacketRecord& pkt : agent.selected) {
          agent.tracker->offer(packet::make_flow_key(pkt.tuple, config.definition));
        }
      }
      return;
    }
    for (auto& agent : agents) agent->routed.clear();
    for (const packet::PacketRecord& pkt : pkts) {
      const packet::FlowKey key =
          packet::make_flow_key(pkt.tuple, config.definition);
      const std::uint64_t hash = packet::FlowKeyHash{}(key);
      const std::uint64_t lane =
          config.split == FleetSplit::kFlow
              ? hash % config.agents
              : util::mix_stream(hash,
                                 static_cast<std::uint64_t>(pkt.timestamp_ns)) %
                    config.agents;
      agents[static_cast<std::size_t>(lane)]->routed.push_back(pkt);
    }
    for (auto& agent_ptr : agents) {
      AgentRuntime& agent = *agent_ptr;
      if (agent.routed.empty()) continue;
      agent.offered_window += agent.routed.size();
      agent.sampler.select_into(agent.routed, agent.selected);
      agent.sampled_window += agent.selected.size();
      if (config.summary_kind == SummaryKind::kFlowTable) {
        agent.pipeline->add_batch(0, agent.selected);
      } else {
        for (const packet::PacketRecord& pkt : agent.selected) {
          agent.tracker->offer(packet::make_flow_key(pkt.tuple, config.definition));
        }
      }
    }
  };

  trace::PacketStream stream(trace);
  std::vector<packet::PacketRecord> batch;
  batch.reserve(config.batch_packets);
  while (stream.next_batch(batch, config.batch_packets) > 0) {
    report.packets_total += batch.size();
    std::size_t i = 0;
    while (i < batch.size()) {
      const std::uint64_t w = static_cast<std::uint64_t>(
          batch[i].timestamp_ns / window_ns);
      // Every window strictly before this packet's is now past its
      // deadline: summarize, deliver, close — late input stays excluded.
      if (w > current) close_through(w);
      std::size_t j = i + 1;
      while (j < batch.size() &&
             static_cast<std::uint64_t>(batch[j].timestamp_ns / window_ns) == w) {
        ++j;
      }
      process_segment(std::span<const packet::PacketRecord>(batch.data() + i,
                                                            j - i));
      max_seen = std::max(max_seen, w);
      any_packet = true;
      i = j;
    }
  }

  // Close out the trace: every declared window (the trace's duration may
  // extend past the last packet) plus any straggler bins beyond it.
  std::uint64_t total_windows =
      trace::bin_count(trace.config.duration_s, config.window_s);
  if (any_packet) total_windows = std::max(total_windows, max_seen + 1);
  close_through(total_windows);

  // End of run: whatever the channel still holds arrives after its window
  // closed and is counted late by the aggregator.
  for (SummaryDelivery& delivery : channel.drain_all()) {
    (void)aggregator.offer(delivery.agent_id, delivery.bytes);
  }
  for (auto& agent : agents) {
    if (agent->pipeline) agent->pipeline->finish();
  }

  report.counters = aggregator.counters();
  report.injected = channel.counters();
  report.windows = total_windows;
  return report;
}

}  // namespace flowrank::agg
