// Deterministic fault injection on the agent → aggregator summary path.
//
// The channel sits between the vantage agents and the Aggregator and
// misbehaves on purpose: it drops, delays, corrupts (single bit flip —
// always checksum-detected, see util/bytes.hpp), or duplicates summaries
// according to per-(agent, window) coin flips drawn from a seeded
// counter-style RNG, plus an optional deterministic full outage for one
// agent. Every decision is a pure function of (seed, agent, epoch), so a
// rerun injects the identical fault schedule and tests can assert the
// aggregator's counters match the injected counts exactly. To keep that
// correspondence one-to-one, at most ONE fault applies per summary
// (drop, else corrupt, else delay, else duplicate).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace flowrank::agg {

/// Fault plan for the summary channel. All fractions are probabilities in
/// [0, 1]; their sum must not exceed 1 (the ladder is mutually exclusive).
struct SummaryFaultSpec {
  static constexpr std::uint32_t kNoAgent =
      std::numeric_limits<std::uint32_t>::max();

  double drop_fraction = 0.0;       ///< summary silently lost
  double corrupt_fraction = 0.0;    ///< one bit flipped, delivered on time
  double delay_fraction = 0.0;      ///< delivered delay_windows late
  double duplicate_fraction = 0.0;  ///< delivered twice in the same window
  std::size_t delay_windows = 1;    ///< lateness of delayed summaries (>= 1)
  /// Deterministic outage: this agent's summaries for epochs in
  /// [outage_from, outage_from + outage_windows) are dropped (the whole
  /// rest of the run when outage_windows == 0). kNoAgent disables.
  std::uint32_t outage_agent = kNoAgent;
  std::uint64_t outage_from = 0;
  std::size_t outage_windows = 0;
  std::uint64_t seed = 0x5EEDu;

  /// True when any fault can ever fire.
  [[nodiscard]] bool any() const noexcept {
    return drop_fraction > 0.0 || corrupt_fraction > 0.0 ||
           delay_fraction > 0.0 || duplicate_fraction > 0.0 ||
           outage_agent != kNoAgent;
  }
};

/// What the channel did, in aggregate and per agent. Counters map onto
/// Aggregator outcomes: corrupted -> corrupt, delayed -> late (once the
/// window has closed), duplicated -> duplicate, dropped + outage_dropped
/// -> missed.
struct ChannelCounters {
  std::uint64_t submitted = 0;
  std::uint64_t delivered = 0;  ///< deliveries emitted (duplicates count twice)
  std::uint64_t dropped = 0;    ///< random drops
  std::uint64_t outage_dropped = 0;
  std::uint64_t corrupted = 0;
  std::uint64_t delayed = 0;
  std::uint64_t duplicated = 0;
};

/// One summary handed to the aggregator.
struct SummaryDelivery {
  std::uint32_t agent_id = 0;
  std::uint64_t submitted_epoch = 0;
  std::vector<std::uint8_t> bytes;
};

/// Seeded, deterministic fault-injecting transport for serialized
/// FlowSummary messages. Single-threaded by design: the fleet driver
/// submits every agent's summary for window w, then drains what is due.
class FaultInjectingSummaryChannel {
 public:
  /// Throws std::invalid_argument on out-of-range fractions (each in
  /// [0, 1], summing to at most 1) or delay_windows == 0.
  FaultInjectingSummaryChannel(SummaryFaultSpec spec, std::size_t agents);

  /// Accepts one serialized summary from `agent_id` for window `epoch`
  /// and applies this (agent, epoch)'s fault decision.
  void submit(std::uint32_t agent_id, std::uint64_t epoch,
              std::vector<std::uint8_t> bytes);

  /// Removes and returns every delivery due by the close of window
  /// `epoch` (deliver_epoch <= epoch), in submission order.
  [[nodiscard]] std::vector<SummaryDelivery> drain_ready(std::uint64_t epoch);

  /// Removes and returns everything still in flight (end of run; the
  /// aggregator counts these as late).
  [[nodiscard]] std::vector<SummaryDelivery> drain_all();

  [[nodiscard]] const ChannelCounters& counters() const noexcept {
    return counters_;
  }
  /// Per-agent view of the same counters. `agent` < agents.
  [[nodiscard]] const ChannelCounters& agent_counters(std::uint32_t agent) const;

 private:
  struct InFlight {
    std::uint64_t deliver_epoch = 0;
    SummaryDelivery delivery;
  };

  SummaryFaultSpec spec_;
  std::vector<InFlight> in_flight_;  ///< submission order
  ChannelCounters counters_;
  std::vector<ChannelCounters> per_agent_;
};

}  // namespace flowrank::agg
