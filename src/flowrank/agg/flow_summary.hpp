// FlowSummary: the unit of multi-vantage aggregation.
//
// Each vantage agent compresses its per-window sampled view — either a
// full FlowTable snapshot or a Space-Saving sketch — into a compact,
// versioned, length-prefixed, checksummed byte message and ships it to
// the aggregator. The wire format is an explicit little-endian field
// sequence written/parsed via util/bytes.hpp (never struct memcpy), so a
// truncated, reordered, or bit-flipped summary is rejected
// deterministically with flowrank::Error{kCorruptSummary} — it can never
// be ingested as a plausible-but-wrong summary. The trailing FNV-1a 64
// checksum covers every preceding byte; its per-byte step is a bijection
// of the hash state, so every single-bit flip in the covered bytes is
// detected with certainty (tests sweep all of them).
//
// Layout (offsets in bytes; all integers little-endian):
//   0   magic 'F' 'S' 'M' '1'
//   4   u32  total_size        entire message including the checksum
//   8   u16  version           (= 1)
//   10  u16  kind              0 = flow-table, 1 = space-saving
//   12  u32  agent_id
//   16  u64  epoch             window index this summary describes
//   24  f64  effective_rate    this agent's sampling rate, in (0, 1]
//   32  u64  packets_offered   packets routed to the agent this window
//   40  u64  packets_sampled   packets its sampler selected
//   48  u64  shed_packets      packets dropped by overload shedding
//   56  u64  fault_records     agent-local fault events this window
//   64  u64  sketch_capacity   slot count (space-saving kind; 0 for tables)
//   72  u32  entry_count
//   76  u32  reserved          (= 0)
//   80  entries, sorted by key ascending (canonical: equal views serialize
//       to equal bytes) — 57 bytes each for flow-table entries, 32 for
//       space-saving entries
//   end-8  u64 fnv1a64 over bytes [0, end-8)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/packet/flow_key.hpp"

namespace flowrank::agg {

/// What kind of per-agent view a summary carries.
enum class SummaryKind : std::uint16_t {
  kFlowTable = 0,    ///< exact per-flow counters (table snapshot)
  kSpaceSaving = 1,  ///< bounded-memory sketch with per-entry error bounds
};

/// One summarized flow. Table entries carry the full counter; sketch
/// entries use `packets` as the estimated count and `error` as the
/// Space-Saving overestimation bound (other fields stay at defaults).
struct SummaryEntry {
  packet::FlowKey key;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::int64_t first_ns = 0;
  std::int64_t last_ns = 0;
  std::uint32_t min_tcp_seq = 0;
  std::uint32_t max_tcp_seq = 0;
  bool has_tcp_seq = false;
  std::uint64_t error = 0;  ///< sketch kind only

  friend bool operator==(const SummaryEntry&, const SummaryEntry&) = default;
};

/// A decoded per-agent window summary.
struct FlowSummary {
  std::uint32_t agent_id = 0;
  std::uint64_t epoch = 0;
  SummaryKind kind = SummaryKind::kFlowTable;
  double effective_rate = 1.0;
  std::uint64_t packets_offered = 0;
  std::uint64_t packets_sampled = 0;
  std::uint64_t shed_packets = 0;
  std::uint64_t fault_records = 0;
  std::uint64_t sketch_capacity = 0;  ///< space-saving slot count; 0 for tables
  std::vector<SummaryEntry> entries;  ///< sorted by key ascending

  friend bool operator==(const FlowSummary&, const FlowSummary&) = default;
};

/// Snapshots a flow table (completed subflows folded into their keys) as a
/// kFlowTable summary. Entries are sorted by key, so equal tables always
/// serialize to identical bytes. Throws std::invalid_argument unless
/// effective_rate is in (0, 1].
[[nodiscard]] FlowSummary summarize_table(const flowtable::FlowTable& table,
                                          std::uint32_t agent_id,
                                          std::uint64_t epoch,
                                          double effective_rate);

/// Snapshots a Space-Saving tracker as a kSpaceSaving summary (counts and
/// error bounds are integral by construction). Same canonical ordering
/// and rate validation as summarize_table().
[[nodiscard]] FlowSummary summarize_sketch(
    const estimators::SpaceSavingTracker& tracker, std::uint32_t agent_id,
    std::uint64_t epoch, double effective_rate);

/// Encodes a summary into the wire format documented above.
[[nodiscard]] std::vector<std::uint8_t> serialize(const FlowSummary& summary);

/// Decodes a wire message. Every framing violation — short buffer, bad
/// magic, total_size mismatch, unsupported version, unknown kind, nonzero
/// reserved field, entry-count/size mismatch, out-of-range sampling rate,
/// checksum mismatch — throws flowrank::Error{kCorruptSummary}; a summary
/// is either accepted exactly as serialized or rejected, never mangled.
[[nodiscard]] FlowSummary parse_summary(std::span<const std::uint8_t> bytes);

/// The summary as a mergeable sketch view, *inverted at its own sampling
/// rate*: estimates, error bounds, and the absent-key bound are divided by
/// effective_rate, so summaries taken at heterogeneous per-agent rates
/// merge on a common (estimated true count) scale. Table summaries invert
/// to exact views (error 0, absent bound 0); space-saving summaries
/// carry their per-entry bounds and, when the sketch ran full, the
/// minimum-estimate absent bound.
[[nodiscard]] estimators::MergedSketch inverted_view(const FlowSummary& summary);

/// Reconstructs table-kind entries into a flow table via insert_counter()
/// (exact; conservation independent of insertion order). Throws
/// std::invalid_argument for sketch-kind summaries.
void apply_to_table(const FlowSummary& summary, flowtable::FlowTable& table);

}  // namespace flowrank::agg
