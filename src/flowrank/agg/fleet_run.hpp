// In-process multi-vantage fleet driver.
//
// Simulates N vantage agents observing disjoint (flow-hash) or
// overlapping (per-packet) splits of one packet stream, each running its
// own sampler and per-window classifier, summarizing every window into a
// FlowSummary and shipping it through the fault-injecting channel to the
// Aggregator. Windows close strictly in order at their logical deadline
// (the stream advancing past the window boundary stands in for wall-clock
// deadline_ms, which the out-of-process demo enforces for real); whatever
// the channel has not delivered by then is excluded from the merged row.
//
// Determinism contract: with agents == 1 the sampler seed is the run seed
// itself and the agent sees every packet in stream order — the same
// Bernoulli skip sequence as the direct single-pipeline path — so the
// per-window sampled tables (and therefore the merged rankings, and the
// serialized FlowSummary bytes) are bit-identical to the direct pipeline
// at any shard count. With agents > 1 each agent gets an independent
// substream seed (util::mix_stream(seed, agent)).
#pragma once

#include <cstdint>
#include <functional>

#include "flowrank/agg/aggregator.hpp"
#include "flowrank/agg/summary_channel.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"

namespace flowrank::agg {

/// How packets are divided among vantage agents.
enum class FleetSplit {
  kFlow,    ///< flow-hash: each key wholly owned by one agent (disjoint)
  kPacket,  ///< per-packet: keys overlap across agents, no double counting
};

/// Fleet topology and per-agent pipeline knobs.
struct FleetConfig {
  std::size_t agents = 3;
  FleetSplit split = FleetSplit::kFlow;
  double window_s = 60.0;       ///< measurement window (= aggregation epoch)
  double sampling_rate = 1.0;   ///< per-agent Bernoulli rate, in (0, 1]
  std::uint64_t seed = 7;
  packet::FlowDefinition definition = packet::FlowDefinition::kFiveTuple;
  std::size_t num_shards = 1;   ///< per-agent ingest shards (0 = hw threads)
  std::size_t top_t = 10;
  /// Wall-clock deadline the out-of-process demo enforces per window; the
  /// in-process driver's logical equivalent is the window boundary.
  std::uint32_t deadline_ms = 250;
  std::size_t quarantine_after = 3;
  std::size_t readmit_after = 1;
  SummaryKind summary_kind = SummaryKind::kFlowTable;
  std::size_t summary_slots = 1024;  ///< sketch capacity (kSpaceSaving)
  /// Folded-union slot budget at the aggregator; 0 = exact.
  std::size_t union_capacity = 0;
  SummaryFaultSpec chan;        ///< summary-channel fault plan
  std::size_t batch_packets = 4096;
};

/// End-of-run accounting: what the channel injected and what the
/// aggregator observed (tests assert they match).
struct FleetReport {
  AggregatorCounters counters;
  ChannelCounters injected;
  std::uint64_t windows = 0;
  std::uint64_t packets_total = 0;  ///< packets streamed (before sampling)
};

/// Invoked once per closed window, in epoch order.
using WindowCallback = std::function<void(const MergedWindow&)>;

/// Runs the fleet over `trace`. Throws std::invalid_argument on a bad
/// config. `on_window` may be empty.
[[nodiscard]] FleetReport run_fleet(const trace::FlowTrace& trace,
                                    const FleetConfig& config,
                                    const WindowCallback& on_window);

}  // namespace flowrank::agg
