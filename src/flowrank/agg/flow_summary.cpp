#include "flowrank/agg/flow_summary.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>
#include <string>

#include "flowrank/util/bytes.hpp"
#include "flowrank/util/error.hpp"

namespace flowrank::agg {

namespace {

constexpr std::uint8_t kMagic[4] = {'F', 'S', 'M', '1'};
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 80;
constexpr std::size_t kChecksumBytes = 8;
constexpr std::size_t kTableEntryBytes = 57;
constexpr std::size_t kSketchEntryBytes = 32;
constexpr const char* kContext = "agg";

[[noreturn]] void corrupt(const std::string& message) {
  throw Error(ErrorCategory::kCorruptSummary, kContext, message);
}

void check_rate(double rate) {
  if (!(std::isfinite(rate) && rate > 0.0 && rate <= 1.0)) {
    throw std::invalid_argument("FlowSummary: effective_rate in (0, 1]");
  }
}

std::size_t entry_bytes(SummaryKind kind) {
  return kind == SummaryKind::kFlowTable ? kTableEntryBytes : kSketchEntryBytes;
}

}  // namespace

FlowSummary summarize_table(const flowtable::FlowTable& table,
                            std::uint32_t agent_id, std::uint64_t epoch,
                            double effective_rate) {
  check_rate(effective_rate);
  // Fold completed subflows back into their keys: the summary carries one
  // entry per key, and std::map gives the canonical (sorted) order.
  std::map<packet::FlowKey, flowtable::FlowCounter> by_key;
  table.for_each_all([&by_key](const flowtable::FlowCounter& counter) {
    auto [it, inserted] = by_key.emplace(counter.key, counter);
    if (!inserted) flowtable::merge_counter(it->second, counter);
  });

  FlowSummary summary;
  summary.agent_id = agent_id;
  summary.epoch = epoch;
  summary.kind = SummaryKind::kFlowTable;
  summary.effective_rate = effective_rate;
  summary.entries.reserve(by_key.size());
  for (const auto& [key, counter] : by_key) {
    SummaryEntry entry;
    entry.key = key;
    entry.packets = counter.packets;
    entry.bytes = counter.bytes;
    entry.first_ns = counter.first_ns;
    entry.last_ns = counter.last_ns;
    entry.min_tcp_seq = counter.min_tcp_seq;
    entry.max_tcp_seq = counter.max_tcp_seq;
    entry.has_tcp_seq = counter.has_tcp_seq;
    summary.entries.push_back(entry);
  }
  return summary;
}

FlowSummary summarize_sketch(const estimators::SpaceSavingTracker& tracker,
                             std::uint32_t agent_id, std::uint64_t epoch,
                             double effective_rate) {
  check_rate(effective_rate);
  FlowSummary summary;
  summary.agent_id = agent_id;
  summary.epoch = epoch;
  summary.kind = SummaryKind::kSpaceSaving;
  summary.effective_rate = effective_rate;
  summary.sketch_capacity = tracker.capacity();
  auto flows = tracker.flows();
  std::sort(flows.begin(), flows.end(),
            [](const estimators::TrackedFlow& a, const estimators::TrackedFlow& b) {
              return a.key < b.key;
            });
  summary.entries.reserve(flows.size());
  for (const estimators::TrackedFlow& flow : flows) {
    SummaryEntry entry;
    entry.key = flow.key;
    // Space-Saving counts and error bounds are integral by construction.
    entry.packets = static_cast<std::uint64_t>(std::llround(flow.estimated_packets));
    entry.error = static_cast<std::uint64_t>(std::llround(flow.error_bound));
    summary.entries.push_back(entry);
  }
  return summary;
}

std::vector<std::uint8_t> serialize(const FlowSummary& summary) {
  check_rate(summary.effective_rate);
  const std::size_t total = kHeaderBytes +
                            summary.entries.size() * entry_bytes(summary.kind) +
                            kChecksumBytes;
  std::vector<std::uint8_t> out;
  out.reserve(total);
  for (std::uint8_t byte : kMagic) util::put_u8(out, byte);
  util::put_u32(out, static_cast<std::uint32_t>(total));
  util::put_u16(out, kVersion);
  util::put_u16(out, static_cast<std::uint16_t>(summary.kind));
  util::put_u32(out, summary.agent_id);
  util::put_u64(out, summary.epoch);
  util::put_f64(out, summary.effective_rate);
  util::put_u64(out, summary.packets_offered);
  util::put_u64(out, summary.packets_sampled);
  util::put_u64(out, summary.shed_packets);
  util::put_u64(out, summary.fault_records);
  util::put_u64(out, summary.sketch_capacity);
  util::put_u32(out, static_cast<std::uint32_t>(summary.entries.size()));
  util::put_u32(out, 0);  // reserved
  for (const SummaryEntry& entry : summary.entries) {
    util::put_u64(out, entry.key.hi);
    util::put_u64(out, entry.key.lo);
    util::put_u64(out, entry.packets);
    if (summary.kind == SummaryKind::kFlowTable) {
      util::put_u64(out, entry.bytes);
      util::put_i64(out, entry.first_ns);
      util::put_i64(out, entry.last_ns);
      util::put_u32(out, entry.min_tcp_seq);
      util::put_u32(out, entry.max_tcp_seq);
      util::put_u8(out, entry.has_tcp_seq ? 1 : 0);
    } else {
      util::put_u64(out, entry.error);
    }
  }
  util::put_u64(out, util::fnv1a64(out));
  return out;
}

FlowSummary parse_summary(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kHeaderBytes + kChecksumBytes) {
    corrupt("truncated summary: " + std::to_string(bytes.size()) + " bytes, need " +
            std::to_string(kHeaderBytes + kChecksumBytes) + " minimum");
  }
  util::ByteReader reader(bytes, ErrorCategory::kCorruptSummary, kContext);
  for (std::uint8_t expected : kMagic) {
    if (reader.get_u8() != expected) corrupt("bad magic");
  }
  const std::uint32_t total = reader.get_u32();
  if (total != bytes.size()) {
    corrupt("length mismatch: header says " + std::to_string(total) +
            " bytes, buffer has " + std::to_string(bytes.size()));
  }
  // Verify the checksum before trusting any further field: the trailing
  // FNV-1a 64 covers every preceding byte, and its per-byte step is a
  // bijection of the hash state, so any single-bit flip is detected with
  // certainty.
  const std::span<const std::uint8_t> covered =
      bytes.first(bytes.size() - kChecksumBytes);
  util::ByteReader trailer(bytes.subspan(bytes.size() - kChecksumBytes),
                           ErrorCategory::kCorruptSummary, kContext);
  if (trailer.get_u64() != util::fnv1a64(covered)) corrupt("checksum mismatch");

  const std::uint16_t version = reader.get_u16();
  if (version != kVersion) {
    corrupt("unsupported version " + std::to_string(version));
  }
  const std::uint16_t kind_raw = reader.get_u16();
  if (kind_raw > static_cast<std::uint16_t>(SummaryKind::kSpaceSaving)) {
    corrupt("unknown summary kind " + std::to_string(kind_raw));
  }
  FlowSummary summary;
  summary.kind = static_cast<SummaryKind>(kind_raw);
  summary.agent_id = reader.get_u32();
  summary.epoch = reader.get_u64();
  summary.effective_rate = reader.get_f64();
  if (!(std::isfinite(summary.effective_rate) && summary.effective_rate > 0.0 &&
        summary.effective_rate <= 1.0)) {
    corrupt("sampling rate out of (0, 1]");
  }
  summary.packets_offered = reader.get_u64();
  summary.packets_sampled = reader.get_u64();
  summary.shed_packets = reader.get_u64();
  summary.fault_records = reader.get_u64();
  summary.sketch_capacity = reader.get_u64();
  const std::uint32_t entry_count = reader.get_u32();
  if (reader.get_u32() != 0) corrupt("nonzero reserved field");
  const std::size_t expected = kHeaderBytes +
                               static_cast<std::size_t>(entry_count) *
                                   entry_bytes(summary.kind) +
                               kChecksumBytes;
  if (expected != bytes.size()) {
    corrupt("entry count mismatch: " + std::to_string(entry_count) +
            " entries imply " + std::to_string(expected) + " bytes, buffer has " +
            std::to_string(bytes.size()));
  }
  summary.entries.reserve(entry_count);
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    SummaryEntry entry;
    entry.key.hi = reader.get_u64();
    entry.key.lo = reader.get_u64();
    entry.packets = reader.get_u64();
    if (summary.kind == SummaryKind::kFlowTable) {
      entry.bytes = reader.get_u64();
      entry.first_ns = reader.get_i64();
      entry.last_ns = reader.get_i64();
      entry.min_tcp_seq = reader.get_u32();
      entry.max_tcp_seq = reader.get_u32();
      const std::uint8_t has_seq = reader.get_u8();
      if (has_seq > 1) corrupt("bad has_tcp_seq flag");
      entry.has_tcp_seq = has_seq == 1;
    } else {
      entry.error = reader.get_u64();
    }
    summary.entries.push_back(entry);
  }
  return summary;
}

estimators::MergedSketch inverted_view(const FlowSummary& summary) {
  const double rate = summary.effective_rate;
  estimators::MergedSketch view;
  view.flows.reserve(summary.entries.size());
  std::uint64_t min_packets = 0;
  bool first = true;
  for (const SummaryEntry& entry : summary.entries) {
    estimators::TrackedFlow flow;
    flow.key = entry.key;
    flow.estimated_packets = static_cast<double>(entry.packets) / rate;
    flow.error_bound = summary.kind == SummaryKind::kSpaceSaving
                           ? static_cast<double>(entry.error) / rate
                           : 0.0;
    view.flows.push_back(flow);
    if (first || entry.packets < min_packets) min_packets = entry.packets;
    first = false;
  }
  if (summary.kind == SummaryKind::kSpaceSaving && summary.sketch_capacity > 0 &&
      summary.entries.size() >= summary.sketch_capacity) {
    // The sketch ran full: an absent key may have been counted up to the
    // minimum estimate before eviction.
    view.absent_bound = static_cast<double>(min_packets) / rate;
  }
  std::sort(view.flows.begin(), view.flows.end(),
            [](const estimators::TrackedFlow& a, const estimators::TrackedFlow& b) {
              if (a.estimated_packets != b.estimated_packets) {
                return a.estimated_packets > b.estimated_packets;
              }
              return a.key < b.key;
            });
  return view;
}

void apply_to_table(const FlowSummary& summary, flowtable::FlowTable& table) {
  if (summary.kind != SummaryKind::kFlowTable) {
    throw std::invalid_argument(
        "apply_to_table: summary does not carry flow-table entries");
  }
  for (const SummaryEntry& entry : summary.entries) {
    flowtable::FlowCounter counter;
    counter.key = entry.key;
    counter.packets = entry.packets;
    counter.bytes = entry.bytes;
    counter.first_ns = entry.first_ns;
    counter.last_ns = entry.last_ns;
    counter.min_tcp_seq = entry.min_tcp_seq;
    counter.max_tcp_seq = entry.max_tcp_seq;
    counter.has_tcp_seq = entry.has_tcp_seq;
    table.insert_counter(counter);
  }
}

}  // namespace flowrank::agg
