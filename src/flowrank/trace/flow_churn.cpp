#include "flowrank/trace/flow_churn.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::trace {

FlowChurnTraceSource::FlowChurnTraceSource(FlowChurnConfig config)
    : config_(config) {
  if (!(config_.duration_s > 0.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: duration_s > 0");
  }
  if (config_.population < 1) {
    throw std::invalid_argument("FlowChurnTraceSource: population >= 1");
  }
  if (!(config_.churn_per_s >= 0.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: churn_per_s >= 0");
  }
  if (!(config_.flow_rate_per_s > 0.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: flow_rate_per_s > 0");
  }
  if (!(config_.mean_packets >= 1.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: mean_packets >= 1");
  }
  if (!(config_.mean_duration_s > 0.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: mean_duration_s > 0");
  }
  if (!(config_.tcp_fraction >= 0.0 && config_.tcp_fraction <= 1.0)) {
    throw std::invalid_argument("FlowChurnTraceSource: tcp_fraction in [0,1]");
  }
}

std::string FlowChurnTraceSource::name() const {
  std::ostringstream os;
  os << "churn(population=" << config_.population << ", churn=" << config_.churn_per_s
     << "/s)";
  return os.str();
}

FlowTrace FlowChurnTraceSource::flows() const {
  auto engine = util::make_engine(config_.seed, /*stream=*/0xC4A7u);
  std::uniform_int_distribution<std::uint32_t> rand32;
  std::uniform_int_distribution<std::uint16_t> rand16;
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  // Unique-population bookkeeping, pktgen-fashion: every tuple ever used
  // (initial population and churn replacements alike) is checked against
  // the set of all tuples generated so far, so a replacement can never
  // resurrect a retired flow identity. Collisions are astronomically
  // unlikely at realistic population sizes, but the loop makes uniqueness
  // a guarantee instead of a probability.
  std::unordered_set<packet::FlowKey, packet::FlowKeyHash> seen;
  seen.reserve(config_.population * 2);
  const auto fresh_tuple = [&] {
    for (;;) {
      packet::FiveTuple tuple;
      tuple.src_ip = rand32(engine);
      tuple.dst_ip = rand32(engine);
      tuple.src_port = rand16(engine);
      tuple.dst_port = rand16(engine);
      tuple.protocol = unif(engine) < config_.tcp_fraction
                           ? packet::Protocol::kTcp
                           : packet::Protocol::kUdp;
      const packet::FlowKey key =
          packet::make_flow_key(tuple, packet::FlowDefinition::kFiveTuple);
      if (seen.insert(key).second) return tuple;
    }
  };

  std::vector<packet::FiveTuple> population(config_.population);
  for (auto& tuple : population) tuple = fresh_tuple();

  std::exponential_distribution<double> interarrival(config_.flow_rate_per_s);
  std::uniform_int_distribution<std::size_t> pick_slot(0, config_.population - 1);
  // Geometric packet counts with the configured mean (>= 1 packet), via
  // inversion so the draw count is one uniform per flow.
  const double log_q =
      config_.mean_packets > 1.0 ? std::log1p(-1.0 / config_.mean_packets) : 0.0;
  const auto draw_packets = [&]() -> std::uint64_t {
    if (config_.mean_packets <= 1.0) return 1;
    const double g = std::floor(std::log(1.0 - unif(engine)) / log_q);
    return 1 + static_cast<std::uint64_t>(std::min(g, 1.0e15));
  };
  std::exponential_distribution<double> flow_duration(1.0 /
                                                      config_.mean_duration_s);

  FlowTrace trace;
  trace.config.duration_s = config_.duration_s;
  trace.config.flow_rate_per_s = config_.flow_rate_per_s;
  trace.config.packet_size_bytes = config_.packet_size_bytes;
  trace.config.tcp_fraction = config_.tcp_fraction;
  trace.config.seed = config_.seed;
  trace.flows.reserve(static_cast<std::size_t>(config_.duration_s *
                                               config_.flow_rate_per_s * 1.05));

  // Two independent Poisson processes on one clock: flow arrivals (each
  // re-using a uniformly chosen population slot) and churn events (each
  // replacing a uniformly chosen slot with a fresh unique tuple),
  // processed in time order.
  double next_churn = config_.churn_per_s > 0.0
                          ? -std::log(1.0 - unif(engine)) / config_.churn_per_s
                          : config_.duration_s;
  double t = interarrival(engine);
  while (t < config_.duration_s) {
    while (next_churn <= t) {
      population[pick_slot(engine)] = fresh_tuple();
      next_churn += -std::log(1.0 - unif(engine)) / config_.churn_per_s;
    }
    packet::FlowRecord flow;
    flow.tuple = population[pick_slot(engine)];
    flow.start_s = t;
    flow.packets = draw_packets();
    flow.bytes = flow.packets * config_.packet_size_bytes;
    flow.duration_s =
        std::min(flow_duration(engine), config_.duration_s - flow.start_s);
    trace.flows.push_back(flow);
    t += interarrival(engine);
  }
  // Arrivals are generated in time order already; keep the sort as a
  // guarantee (and to match every other source's contract).
  std::stable_sort(trace.flows.begin(), trace.flows.end(),
                   [](const packet::FlowRecord& a, const packet::FlowRecord& b) {
                     return a.start_s < b.start_s;
                   });
  return trace;
}

}  // namespace flowrank::trace
