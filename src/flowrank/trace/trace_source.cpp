#include "flowrank/trace/trace_source.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "flowrank/trace/trace_io.hpp"
#include "flowrank/util/error.hpp"

namespace flowrank::trace {

namespace {

/// Last flow end time, rounded up to a whole second (0 for no flows).
double derived_duration_s(const std::vector<packet::FlowRecord>& flows) {
  double end = 0.0;
  for (const auto& f : flows) end = std::max(end, f.start_s + f.duration_s);
  return std::ceil(end);
}

}  // namespace

SyntheticTraceSource::SyntheticTraceSource(FlowTraceConfig config,
                                           std::string label)
    : config_(std::move(config)), label_(std::move(label)) {}

std::string SyntheticTraceSource::name() const {
  return "synthetic(" + (label_.empty() ? "custom" : label_) + ")";
}

FlowTrace SyntheticTraceSource::flows() const {
  return generate_flow_trace(config_);
}

FileTraceSource::FileTraceSource(std::string path)
    : FileTraceSource(std::move(path), Options{}) {}

FileTraceSource::FileTraceSource(std::string path, Options options)
    : path_(std::move(path)), options_(options) {}

std::string FileTraceSource::name() const { return "file(" + path_ + ")"; }

FlowTrace FileTraceSource::flows() const {
  FlowTrace trace;
  trace.flows = load_flow_records(path_);
  std::sort(trace.flows.begin(), trace.flows.end(),
            [](const packet::FlowRecord& a, const packet::FlowRecord& b) {
              return a.start_s < b.start_s;
            });
  // The file carries flow records only; packet-level parameters live in
  // the config consumers read (PacketStream placement, bin_count).
  trace.config.packet_size_bytes = options_.packet_size_bytes;
  trace.config.seed = options_.seed;
  trace.config.duration_s = options_.duration_s > 0.0
                                ? options_.duration_s
                                : derived_duration_s(trace.flows);
  if (!(trace.config.duration_s > 0.0)) {
    throw Error(ErrorCategory::kCorruptInput, "trace",
                "FileTraceSource: " + path_ +
                    " has no flows and no explicit duration");
  }
  trace.config.flow_rate_per_s =
      static_cast<double>(trace.flows.size()) / trace.config.duration_s;
  return trace;
}

FixedTraceSource::FixedTraceSource(FlowTrace trace, std::string label)
    : trace_(std::move(trace)), label_(std::move(label)) {}

ConcatTraceSource::ConcatTraceSource(
    std::vector<std::shared_ptr<const TraceSource>> epochs, double gap_s)
    : epochs_(std::move(epochs)), gap_s_(gap_s) {
  if (epochs_.empty()) {
    throw std::invalid_argument("ConcatTraceSource: at least one epoch");
  }
  for (const auto& epoch : epochs_) {
    if (!epoch) throw std::invalid_argument("ConcatTraceSource: null epoch");
  }
  if (gap_s_ < 0.0) {
    throw std::invalid_argument("ConcatTraceSource: gap_s >= 0");
  }
}

std::string ConcatTraceSource::name() const {
  std::string out = "concat(";
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    if (i > 0) out += " + ";
    out += epochs_[i]->name();
  }
  return out + ")";
}

FlowTrace ConcatTraceSource::flows() const {
  FlowTrace out;
  double offset_s = 0.0;
  for (std::size_t i = 0; i < epochs_.size(); ++i) {
    FlowTrace epoch = epochs_[i]->flows();
    if (i == 0) out.config = epoch.config;  // packet size / seed of epoch 0
    const double epoch_duration = epoch.config.duration_s > 0.0
                                      ? epoch.config.duration_s
                                      : derived_duration_s(epoch.flows);
    out.flows.reserve(out.flows.size() + epoch.flows.size());
    for (auto& flow : epoch.flows) {
      flow.start_s += offset_s;
      // A flow may not spill past its epoch (mirrors the generator's own
      // end-of-trace truncation), so epochs never interleave.
      flow.duration_s =
          std::min(flow.duration_s, offset_s + epoch_duration - flow.start_s);
      out.flows.push_back(flow);
    }
    offset_s += epoch_duration + gap_s_;
  }
  out.config.duration_s = offset_s - (epochs_.empty() ? 0.0 : gap_s_);
  if (epochs_.size() > 1) {
    out.config.flow_rate_per_s =
        out.config.duration_s > 0.0
            ? static_cast<double>(out.flows.size()) / out.config.duration_s
            : 0.0;
  }
  // Epochs are internally sorted and disjoint in time, so the
  // concatenation is already sorted by start time.
  return out;
}

}  // namespace flowrank::trace
