// Pluggable flow-trace sources.
//
// Everything downstream of the trace — packet expansion, sampling,
// binning, ranking — consumes a FlowTrace and does not care where the
// flow records came from. This layer makes the provenance pluggable:
//
//   * SyntheticTraceSource — the paper's regenerated Sprint/Abilene
//     statistics (trace::generate_flow_trace), including ON/OFF bursty
//     arrival modulation;
//   * FileTraceSource — replay of a recorded FRT1 flow-trace file
//     (trace::trace_io), the path real deployments feed;
//   * ConcatTraceSource — back-to-back epochs from other sources, for
//     streaming scenarios that span workload shifts (e.g. a synthetic
//     warm-up epoch followed by a recorded one).
//
// trace::PacketStream accepts any source directly and owns the
// materialized trace, so scenario code never touches FlowTrace lifetime.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flowrank/trace/flow_trace_generator.hpp"

namespace flowrank::trace {

/// Produces a flow-level trace (flows sorted by start time). Sources are
/// deterministic: flows() yields the same trace every call.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Human-readable provenance, e.g. "synthetic(sprint_5tuple)" or
  /// "file(scenarios/tiny_sprint.frt1)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Materializes the trace. Throws flowrank::Error (kIo for an
  /// unreadable file, kCorruptInput for malformed data) when the backing
  /// data cannot be produced.
  [[nodiscard]] virtual FlowTrace flows() const = 0;
};

/// The synthetic generator behind a source interface.
class SyntheticTraceSource final : public TraceSource {
 public:
  explicit SyntheticTraceSource(FlowTraceConfig config, std::string label = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] FlowTrace flows() const override;

  [[nodiscard]] const FlowTraceConfig& config() const noexcept { return config_; }

 private:
  FlowTraceConfig config_;
  std::string label_;
};

/// Replays a recorded FRT1 flow-trace file. The file stores flow records
/// only, so packet-level parameters (packet size, placement seed) come
/// from the options.
class FileTraceSource final : public TraceSource {
 public:
  struct Options {
    std::uint32_t packet_size_bytes = 500;  ///< size of every replayed packet
    std::uint64_t seed = 1;                 ///< packet-placement seed
    /// Trace length in seconds; 0 = derive from the last flow's end time
    /// (rounded up to a whole second so the final bin stays regular).
    double duration_s = 0.0;
  };

  explicit FileTraceSource(std::string path);
  FileTraceSource(std::string path, Options options);

  [[nodiscard]] std::string name() const override;
  /// Loads and validates the file. Throws flowrank::Error on a missing
  /// (kIo) or malformed (kCorruptInput) file (trace_io's errors pass
  /// through).
  [[nodiscard]] FlowTrace flows() const override;

 private:
  std::string path_;
  Options options_;
};

/// A trace already in memory, behind the source interface. Used to
/// materialize an expensive source (e.g. a file load) once and fan it
/// out to several consumers — ConcatTraceSource epochs in particular.
class FixedTraceSource final : public TraceSource {
 public:
  FixedTraceSource(FlowTrace trace, std::string label);

  [[nodiscard]] std::string name() const override { return label_; }
  [[nodiscard]] FlowTrace flows() const override { return trace_; }

 private:
  FlowTrace trace_;
  std::string label_;
};

/// Concatenates epochs from other sources end to end: epoch k's flows are
/// shifted by the total duration of epochs 0..k-1 (plus `gap_s` of idle
/// link between epochs), so the result plays back-to-back as one stream.
class ConcatTraceSource final : public TraceSource {
 public:
  /// Throws std::invalid_argument on an empty epoch list, a null epoch,
  /// or a negative gap.
  explicit ConcatTraceSource(std::vector<std::shared_ptr<const TraceSource>> epochs,
                             double gap_s = 0.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] FlowTrace flows() const override;

 private:
  std::vector<std::shared_ptr<const TraceSource>> epochs_;
  double gap_s_;
};

}  // namespace flowrank::trace
