// pktgen-style flow-churn workload.
//
// The synthetic generator (flow_trace_generator.hpp) draws a fresh random
// 5-tuple per flow, so virtually every flow record is a new flow-table
// key — the insert-heavy extreme. Traffic generators like pktgen model
// the other extreme: a bounded population of unique flows that packets
// cycle over, with an optional churn rate that retires population slots
// and replaces them with never-seen tuples. That shape is what stresses
// a flow table's steady state (high hit rate, bounded occupancy) and its
// eviction/insert path (churn), so the ingest benchmarks and soak
// scenarios want it on tap.
//
// FlowChurnTraceSource reproduces it at flow-record granularity: a
// population of `population` unique random 5-tuples (uniqueness enforced
// pktgen-fashion, by de-duplicating against everything ever generated);
// flow arrivals are Poisson and each arrival re-uses a uniformly chosen
// population slot; churn events are an independent Poisson process that
// replaces a random slot with a fresh unique tuple. Deterministic in the
// seed, like every other source.
#pragma once

#include <cstdint>
#include <string>

#include "flowrank/trace/trace_source.hpp"

namespace flowrank::trace {

/// Knobs for the churn workload. Defaults give a steady 1000-flow
/// population with no churn — pure key re-use.
struct FlowChurnConfig {
  double duration_s = 60.0;          ///< trace length, > 0
  std::size_t population = 1000;     ///< concurrent unique 5-tuples, >= 1
  double churn_per_s = 0.0;          ///< population slots replaced per second, >= 0
  double flow_rate_per_s = 2360.0;   ///< Poisson flow arrivals per second, > 0
  double mean_packets = 16.0;        ///< geometric mean packets per flow, >= 1
  double mean_duration_s = 1.0;      ///< exponential mean flow duration, > 0
  std::uint32_t packet_size_bytes = 500;
  double tcp_fraction = 0.9;         ///< fraction of population slots marked TCP
  std::uint64_t seed = 1;
};

/// Generates the churn workload described above. flows() is deterministic
/// in the config (same trace every call).
class FlowChurnTraceSource final : public TraceSource {
 public:
  /// Throws std::invalid_argument on out-of-range knobs.
  explicit FlowChurnTraceSource(FlowChurnConfig config);

  /// e.g. "churn(population=1000, churn=50/s)".
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] FlowTrace flows() const override;

  [[nodiscard]] const FlowChurnConfig& config() const noexcept { return config_; }

 private:
  FlowChurnConfig config_;
};

}  // namespace flowrank::trace
