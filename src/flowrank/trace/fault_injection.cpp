#include "flowrank/trace/fault_injection.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "flowrank/util/rng.hpp"

namespace flowrank::trace {

namespace {

// Stream ids under spec.seed: record faults and burst placement must not
// share draws, or changing one knob would silently reshuffle the other.
constexpr std::uint64_t kRecordFaultStream = 0xFA17'0001;
constexpr std::uint64_t kBurstStream = 0xFA17'0002;

}  // namespace

bool FaultSpec::any() const noexcept {
  return corrupt_fraction > 0.0 || truncate_fraction > 0.0 ||
         (stall_every_batches > 0 && stall_ms > 0) ||
         (burst_flows > 0 && burst_every_s > 0.0);
}

RecordFault classify_record_fault(const packet::FlowRecord& flow) noexcept {
  if (!std::isfinite(flow.start_s) || !std::isfinite(flow.duration_s) ||
      flow.start_s < 0.0 || flow.duration_s < 0.0) {
    return RecordFault::kCorrupt;
  }
  if (flow.packets == 0) return RecordFault::kTruncated;
  return RecordFault::kNone;
}

FaultInjectingTraceSource::FaultInjectingTraceSource(
    std::shared_ptr<const TraceSource> inner, FaultSpec spec)
    : inner_(std::move(inner)), spec_(spec) {
  if (!inner_) {
    throw std::invalid_argument("fault: inner trace source must not be null");
  }
  auto fraction = [](const char* what, double value) {
    if (!(value >= 0.0 && value <= 1.0)) {
      throw std::invalid_argument(std::string("fault: ") + what +
                                  " must be in [0, 1]");
    }
  };
  fraction("corrupt fraction", spec_.corrupt_fraction);
  fraction("truncate fraction", spec_.truncate_fraction);
  if (spec_.burst_every_s < 0.0 || spec_.burst_duration_s < 0.0) {
    throw std::invalid_argument("fault: burst timing must be >= 0");
  }
}

std::string FaultInjectingTraceSource::name() const {
  return "faulty(" + inner_->name() + ")";
}

std::uint32_t FaultInjectingTraceSource::stall_ms_before_batch(
    std::uint64_t batch_index) const noexcept {
  if (spec_.stall_every_batches == 0 || spec_.stall_ms == 0) return 0;
  if (batch_index == 0) return 0;  // never stall the very first pull
  return batch_index % spec_.stall_every_batches == 0 ? spec_.stall_ms : 0;
}

FlowTrace FaultInjectingTraceSource::flows() const {
  InjectionCounts counts;
  return build(counts);
}

FaultInjectingTraceSource::InjectionCounts
FaultInjectingTraceSource::injection_counts() const {
  InjectionCounts counts;
  (void)build(counts);
  return counts;
}

FlowTrace FaultInjectingTraceSource::build(InjectionCounts& counts) const {
  FlowTrace trace = inner_->flows();

  // Burst flows first: they are valid records and must take part in the
  // start-time sort, which record corruption (NaN starts) would poison.
  if (spec_.burst_flows > 0 && spec_.burst_every_s > 0.0) {
    util::Engine engine = util::make_engine(spec_.seed, kBurstStream);
    std::uniform_real_distribution<double> offset(0.0, spec_.burst_duration_s);
    const double horizon = trace.config.duration_s;
    for (double at = spec_.burst_every_s; at < horizon; at += spec_.burst_every_s) {
      for (std::size_t i = 0; i < spec_.burst_flows; ++i) {
        packet::FlowRecord flow;
        // Distinct synthetic clients hammering one service: unique tuples
        // that cannot collide with the generator's address space (which
        // stays below the 203.0.113.0 TEST-NET-3 block).
        flow.tuple.src_ip = 0xCB007100u + static_cast<std::uint32_t>(
                                              counts.burst_flows & 0xFFFFFFu);
        flow.tuple.dst_ip = 0xCB007101u;
        flow.tuple.src_port = static_cast<std::uint16_t>(1024 + (counts.burst_flows % 60000));
        flow.tuple.dst_port = 80;
        flow.tuple.protocol = packet::Protocol::kTcp;
        flow.start_s = std::min(at + offset(engine), horizon);
        flow.duration_s = 0.0;  // single-packet mice
        flow.packets = 1;
        flow.bytes = trace.config.packet_size_bytes;
        trace.flows.push_back(flow);
        ++counts.burst_flows;
      }
    }
    std::stable_sort(trace.flows.begin(), trace.flows.end(),
                     [](const packet::FlowRecord& a, const packet::FlowRecord& b) {
                       return a.start_s < b.start_s;
                     });
  }

  if (spec_.corrupt_fraction > 0.0 || spec_.truncate_fraction > 0.0) {
    util::Engine engine = util::make_engine(spec_.seed, kRecordFaultStream);
    std::uniform_real_distribution<double> unif(0.0, 1.0);
    for (packet::FlowRecord& flow : trace.flows) {
      const double draw = unif(engine);
      if (draw < spec_.corrupt_fraction) {
        // Alternate corruption shapes so filters cannot overfit to one.
        if ((counts.corrupted & 1) == 0) {
          flow.start_s = std::numeric_limits<double>::quiet_NaN();
        } else {
          flow.duration_s = -1.0;
        }
        ++counts.corrupted;
      } else if (draw < spec_.corrupt_fraction + spec_.truncate_fraction) {
        flow.packets = 0;
        flow.bytes = 0;
        ++counts.truncated;
      }
    }
  }

  return trace;
}

}  // namespace flowrank::trace
