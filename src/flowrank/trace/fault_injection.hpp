// Deterministic fault injection for trace sources.
//
// The monitor's failure behavior (corrupt-record handling, watchdog
// stalls, overload shedding) is first-class and must be testable without
// real broken hardware. FaultInjectingTraceSource wraps any TraceSource
// and injects three fault families, all seeded and reproducible:
//
//   * record faults — flow records corrupted in place (non-finite or
//     negative timing fields) or truncated (zero packets/bytes, as if the
//     collector died mid-write);
//   * source stalls — a deterministic schedule of delays the monitor's
//     batch pull observes, exercising the stall watchdog;
//   * burst overloads — flash crowds of short valid flows injected at a
//     fixed cadence, exercising the overload/shed policy.
//
// Record faults never reorder the surviving records, so a consumer that
// filters them sees exactly the inner source's (plus burst) flows.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "flowrank/trace/trace_source.hpp"

namespace flowrank::trace {

/// Injection knobs. Everything is off by default; `seed` makes the
/// per-record corruption draws and burst placement reproducible.
struct FaultSpec {
  double corrupt_fraction = 0.0;   ///< P(record gets non-finite/negative fields)
  double truncate_fraction = 0.0;  ///< P(record zeroed as if partially written)
  std::size_t stall_every_batches = 0;  ///< stall before every k-th batch (0 = never)
  std::uint32_t stall_ms = 0;           ///< stall length
  std::size_t burst_flows = 0;      ///< flash-crowd flows injected per burst
  double burst_every_s = 0.0;       ///< burst cadence in trace time (0 = never)
  double burst_duration_s = 0.25;   ///< width of each burst
  std::uint64_t seed = 99;

  /// True when any knob would actually inject something.
  [[nodiscard]] bool any() const noexcept;
};

/// How a single flow record is broken, if at all. Classification is what
/// consumers (MonitorLoop) use to drop-and-count instead of crashing.
enum class RecordFault {
  kNone,
  kTruncated,  ///< zero packets — a partially written record
  kCorrupt,    ///< non-finite or negative timing/size fields
};

/// Classifies a flow record. Any record a generator or FRT1 loader can
/// legally produce classifies kNone.
[[nodiscard]] RecordFault classify_record_fault(const packet::FlowRecord& flow) noexcept;

/// Wraps an inner source and injects the faults described by `spec`.
class FaultInjectingTraceSource final : public TraceSource {
 public:
  /// Throws std::invalid_argument on a null inner source or fractions
  /// outside [0, 1].
  FaultInjectingTraceSource(std::shared_ptr<const TraceSource> inner, FaultSpec spec);

  [[nodiscard]] std::string name() const override;
  /// Inner flows plus burst flows (re-sorted by start time), with record
  /// faults applied in place. Deterministic in (inner source, spec.seed).
  [[nodiscard]] FlowTrace flows() const override;

  /// Milliseconds the source stalls before producing batch `batch_index`
  /// (0-based; 0 ms = no stall). The monitor sleeps for this long before
  /// its pull so the watchdog sees a genuinely late source.
  [[nodiscard]] std::uint32_t stall_ms_before_batch(std::uint64_t batch_index) const noexcept;

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  /// What flows() injected — recomputed deterministically, for tests.
  struct InjectionCounts {
    std::uint64_t corrupted = 0;
    std::uint64_t truncated = 0;
    std::uint64_t burst_flows = 0;
  };
  [[nodiscard]] InjectionCounts injection_counts() const;

 private:
  [[nodiscard]] FlowTrace build(InjectionCounts& counts) const;

  std::shared_ptr<const TraceSource> inner_;
  FaultSpec spec_;
};

}  // namespace flowrank::trace
