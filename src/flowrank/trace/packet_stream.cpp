#include "flowrank/trace/packet_stream.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <utility>

namespace flowrank::trace {

namespace {
constexpr double kNsPerSec = 1e9;

std::int64_t to_ns(double seconds) {
  return static_cast<std::int64_t>(std::llround(seconds * kNsPerSec));
}

const FlowTrace& deref_checked(const std::shared_ptr<const FlowTrace>& trace) {
  if (!trace) throw std::invalid_argument("PacketStream: null trace");
  return *trace;
}
}  // namespace

PacketStream::PacketStream(const FlowTrace& trace, std::uint64_t seed)
    : trace_(trace), seed_(seed) {
  slot_of_flow_.resize(trace_.flows.size());
  // Prime the heap with the first flow(s) so next() has work to do.
  if (!trace_.flows.empty()) {
    activate_flows_until(to_ns(trace_.flows.front().start_s));
  }
}

PacketStream::PacketStream(std::shared_ptr<const FlowTrace> trace,
                           std::uint64_t seed)
    : PacketStream(deref_checked(trace), seed) {
  owned_ = std::move(trace);
}

PacketStream::PacketStream(const TraceSource& source, std::uint64_t seed)
    : PacketStream(std::make_shared<const FlowTrace>(source.flows()), seed) {}

std::vector<std::int64_t> PacketStream::place_packets(std::uint32_t flow_index) const {
  const auto& flow = trace_.flows[flow_index];
  // Stream-independent per-flow RNG: the same flow always gets the same
  // packet placement for a given (trace seed, stream seed) pair.
  auto engine = util::make_engine(trace_.config.seed ^ (seed_ * 0x9e3779b97f4a7c15ULL),
                                  flow_index);
  std::vector<std::int64_t> ts(static_cast<std::size_t>(flow.packets));
  const std::int64_t start_ns = to_ns(flow.start_s);
  if (flow.packets == 1 || flow.duration_s <= 0.0) {
    std::fill(ts.begin(), ts.end(), start_ns);
    return ts;
  }
  std::uniform_real_distribution<double> unif(0.0, flow.duration_s);
  for (auto& t : ts) t = start_ns + to_ns(unif(engine));
  std::sort(ts.begin(), ts.end());
  return ts;
}

void PacketStream::activate_flows_until(std::int64_t now_ns) {
  while (next_flow_ < trace_.flows.size() &&
         to_ns(trace_.flows[next_flow_].start_s) <= now_ns) {
    const auto flow_index = static_cast<std::uint32_t>(next_flow_);
    ActiveFlow active;
    active.timestamps = place_packets(flow_index);
    const auto slot = static_cast<std::uint32_t>(active_.size());
    slot_of_flow_[flow_index] = slot;
    heap_.push(PendingPacket{active.timestamps.front(), flow_index, 0});
    active_.push_back(std::move(active));
    ++next_flow_;
  }
}

std::optional<packet::PacketRecord> PacketStream::next() {
  // Make sure any flow that starts before the current head packet is live.
  while (true) {
    if (heap_.empty()) {
      if (next_flow_ >= trace_.flows.size()) return std::nullopt;
      activate_flows_until(to_ns(trace_.flows[next_flow_].start_s));
      continue;
    }
    const std::int64_t head_ts = heap_.top().timestamp_ns;
    if (next_flow_ < trace_.flows.size() &&
        to_ns(trace_.flows[next_flow_].start_s) <= head_ts) {
      activate_flows_until(head_ts);
      continue;
    }
    break;
  }

  const PendingPacket head = heap_.top();
  heap_.pop();
  const auto& flow = trace_.flows[head.flow_index];
  auto& active = active_[slot_of_flow_[head.flow_index]];

  packet::PacketRecord pkt;
  pkt.timestamp_ns = head.timestamp_ns;
  pkt.tuple = flow.tuple;
  pkt.size_bytes = trace_.config.packet_size_bytes;
  if (flow.tuple.protocol == packet::Protocol::kTcp) {
    pkt.tcp_seq = head.packet_index * trace_.config.packet_size_bytes;
  }

  const std::uint32_t next_index = head.packet_index + 1;
  if (next_index < active.timestamps.size()) {
    heap_.push(PendingPacket{active.timestamps[next_index], head.flow_index,
                             next_index});
  } else {
    active.timestamps.clear();
    active.timestamps.shrink_to_fit();
  }
  ++emitted_;
  return pkt;
}

std::size_t PacketStream::next_batch(std::vector<packet::PacketRecord>& out,
                                     std::size_t max_packets) {
  out.clear();
  while (out.size() < max_packets) {
    auto pkt = next();
    if (!pkt) break;
    out.push_back(*pkt);
  }
  return out.size();
}

std::vector<packet::PacketRecord> expand_trace(const FlowTrace& trace,
                                               std::uint64_t seed) {
  PacketStream stream(trace, seed);
  std::vector<packet::PacketRecord> packets;
  packets.reserve(trace.total_packets());
  while (auto pkt = stream.next()) packets.push_back(*pkt);
  return packets;
}

}  // namespace flowrank::trace
