#include "flowrank/trace/flow_trace_generator.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "flowrank/dist/pareto.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::trace {

namespace {
constexpr double kSprint5TupleMeanPackets = 9.6;    // 4.8 KB / 500 B
constexpr double kSprintPrefix24MeanPackets = 33.2; // 16.6 KB / 500 B
}  // namespace

FlowTraceConfig FlowTraceConfig::sprint_5tuple(double beta, std::uint64_t seed) {
  FlowTraceConfig cfg;
  cfg.flow_rate_per_s = 2360.0;
  cfg.size_dist = std::make_shared<dist::Pareto>(
      dist::Pareto::from_mean(kSprint5TupleMeanPackets, beta));
  cfg.seed = seed;
  return cfg;
}

FlowTraceConfig FlowTraceConfig::sprint_prefix24(double beta, std::uint64_t seed) {
  FlowTraceConfig cfg;
  cfg.flow_rate_per_s = 350.0;
  cfg.size_dist = std::make_shared<dist::Pareto>(
      dist::Pareto::from_mean(kSprintPrefix24MeanPackets, beta));
  cfg.seed = seed;
  return cfg;
}

FlowTraceConfig FlowTraceConfig::abilene(std::uint64_t seed) {
  FlowTraceConfig cfg;
  cfg.flow_rate_per_s = 7000.0;  // higher-utilization OC-48 link: more flows
  // Short tail: Pareto body truncated two decades above the mean.
  cfg.size_dist = std::make_shared<dist::BoundedPareto>(4.0, 3.0, 2000.0);
  cfg.seed = seed;
  return cfg;
}

std::uint64_t FlowTrace::total_packets() const noexcept {
  std::uint64_t acc = 0;
  for (const auto& f : flows) acc += f.packets;
  return acc;
}

FlowTrace generate_flow_trace(const FlowTraceConfig& config) {
  if (!config.size_dist) {
    throw std::invalid_argument("generate_flow_trace: size_dist is required");
  }
  if (!(config.duration_s > 0.0) || !(config.flow_rate_per_s > 0.0)) {
    throw std::invalid_argument("generate_flow_trace: positive duration and rate");
  }
  const OnOffArrivals& on_off = config.on_off;
  if (on_off.enabled) {
    if (!(on_off.mean_on_s > 0.0) || !(on_off.mean_off_s > 0.0)) {
      throw std::invalid_argument("generate_flow_trace: positive ON/OFF means");
    }
    if (on_off.on_factor < 0.0 || on_off.off_factor < 0.0 ||
        on_off.on_factor + on_off.off_factor <= 0.0) {
      throw std::invalid_argument(
          "generate_flow_trace: ON/OFF factors >= 0, not both zero");
    }
  }

  auto engine = util::make_engine(config.seed, /*stream=*/0xF10Fu);
  std::exponential_distribution<double> interarrival(config.flow_rate_per_s);
  std::uniform_int_distribution<std::uint32_t> rand32;
  std::uniform_int_distribution<std::uint16_t> rand16;
  std::uniform_real_distribution<double> unif(0.0, 1.0);

  // Duration: E[D | S] = mean_s * (S / mean_S)^e / Gamma-normalizer; we use
  // an exponential draw around that conditional mean so the unconditional
  // mean stays approximately config.duration.mean_s (documented in DESIGN.md).
  const double mean_size = config.size_dist->mean();

  FlowTrace trace;
  trace.config = config;
  trace.flows.reserve(
      static_cast<std::size_t>(config.duration_s * config.flow_rate_per_s * 1.05));

  // ON/OFF phase state (untouched — no extra draws — when disabled, so
  // historical seeds keep producing bit-identical traces).
  bool phase_on = true;
  double phase_end_s = 0.0;
  if (on_off.enabled) {
    std::exponential_distribution<double> on_duration(1.0 / on_off.mean_on_s);
    phase_end_s = on_duration(engine);
  }
  // Next arrival after `t`: plain Poisson, or — for ON/OFF — Poisson at
  // the current phase's modulated rate, redrawing at each phase switch
  // (exact for piecewise-constant-rate Poisson by memorylessness).
  const auto next_arrival = [&](double t) {
    if (!on_off.enabled) return t + interarrival(engine);
    for (;;) {
      const double rate = config.flow_rate_per_s *
                          (phase_on ? on_off.on_factor : on_off.off_factor);
      if (rate > 0.0) {
        std::exponential_distribution<double> gap(rate);
        const double candidate = t + gap(engine);
        if (candidate <= phase_end_s) return candidate;
      }
      t = phase_end_s;
      if (t >= config.duration_s) return t;  // trace over mid-phase
      phase_on = !phase_on;
      std::exponential_distribution<double> duration(
          1.0 / (phase_on ? on_off.mean_on_s : on_off.mean_off_s));
      phase_end_s = t + duration(engine);
    }
  };

  double t = next_arrival(0.0);
  while (t < config.duration_s) {
    packet::FlowRecord flow;
    flow.start_s = t;
    flow.tuple.src_ip = rand32(engine);
    flow.tuple.dst_ip = rand32(engine);
    flow.tuple.src_port = rand16(engine);
    flow.tuple.dst_port = rand16(engine);
    flow.tuple.protocol = unif(engine) < config.tcp_fraction
                              ? packet::Protocol::kTcp
                              : packet::Protocol::kUdp;

    const double size = config.size_dist->sample(engine);
    flow.packets = static_cast<std::uint64_t>(std::llround(std::max(1.0, size)));
    flow.bytes = flow.packets * config.packet_size_bytes;

    if (flow.packets == 1) {
      flow.duration_s = 0.0;
    } else {
      const double conditional_mean =
          config.duration.mean_s *
          std::pow(static_cast<double>(flow.packets) / mean_size,
                   config.duration.size_exponent);
      std::exponential_distribution<double> dur(1.0 / conditional_mean);
      flow.duration_s = std::min(dur(engine), config.duration.max_s);
      // A flow cannot outlive the trace; truncating here mirrors the
      // binning-method truncation the paper discusses (Sec. 8).
      flow.duration_s = std::min(flow.duration_s, config.duration_s - flow.start_s);
    }

    trace.flows.push_back(flow);
    t = next_arrival(t);
  }

  std::sort(trace.flows.begin(), trace.flows.end(),
            [](const packet::FlowRecord& a, const packet::FlowRecord& b) {
              return a.start_s < b.start_s;
            });
  return trace;
}

}  // namespace flowrank::trace
