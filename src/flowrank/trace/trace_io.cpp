#include "flowrank/trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "flowrank/util/error.hpp"

namespace flowrank::trace {

namespace {
constexpr char kMagic[4] = {'F', 'R', 'T', '1'};

struct PackedFlow {
  double start_s;
  double duration_s;
  std::uint64_t packets;
  std::uint64_t bytes;
  std::uint32_t src_ip;
  std::uint32_t dst_ip;
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint8_t protocol;
  std::uint8_t pad[3];
};
static_assert(sizeof(PackedFlow) == 48, "unexpected PackedFlow layout");

PackedFlow pack(const packet::FlowRecord& f) {
  PackedFlow p{};
  p.start_s = f.start_s;
  p.duration_s = f.duration_s;
  p.packets = f.packets;
  p.bytes = f.bytes;
  p.src_ip = f.tuple.src_ip;
  p.dst_ip = f.tuple.dst_ip;
  p.src_port = f.tuple.src_port;
  p.dst_port = f.tuple.dst_port;
  p.protocol = static_cast<std::uint8_t>(f.tuple.protocol);
  return p;
}

packet::FlowRecord unpack(const PackedFlow& p) {
  packet::FlowRecord f;
  f.start_s = p.start_s;
  f.duration_s = p.duration_s;
  f.packets = p.packets;
  f.bytes = p.bytes;
  f.tuple.src_ip = p.src_ip;
  f.tuple.dst_ip = p.dst_ip;
  f.tuple.src_port = p.src_port;
  f.tuple.dst_port = p.dst_port;
  f.tuple.protocol = static_cast<packet::Protocol>(p.protocol);
  return f;
}
}  // namespace

void write_flow_records(std::ostream& os,
                        const std::vector<packet::FlowRecord>& flows) {
  os.write(kMagic, sizeof(kMagic));
  const auto count = static_cast<std::uint64_t>(flows.size());
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& f : flows) {
    const PackedFlow p = pack(f);
    os.write(reinterpret_cast<const char*>(&p), sizeof(p));
  }
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "write_flow_records: stream failure");
  }
}

std::vector<packet::FlowRecord> read_flow_records(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw Error(ErrorCategory::kCorruptInput, "trace_io",
                "read_flow_records: bad magic");
  }
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!is) {
    throw Error(ErrorCategory::kCorruptInput, "trace_io",
                "read_flow_records: truncated header");
  }
  std::vector<packet::FlowRecord> flows;
  // Cap the up-front reservation: a corrupt header claiming 2^60 records
  // must fail with the truncation error below, not an allocation failure.
  flows.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedFlow p;
    is.read(reinterpret_cast<char*>(&p), sizeof(p));
    if (!is) {
      throw Error(ErrorCategory::kCorruptInput, "trace_io",
                  "read_flow_records: truncated records");
    }
    flows.push_back(unpack(p));
  }
  return flows;
}

void save_flow_records(const std::string& path,
                       const std::vector<packet::FlowRecord>& flows) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "save_flow_records: cannot open " + path);
  }
  write_flow_records(os, flows);
}

std::vector<packet::FlowRecord> load_flow_records(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "load_flow_records: cannot open " + path);
  }
  return read_flow_records(is);
}

void export_flow_records_csv(std::ostream& os,
                             const std::vector<packet::FlowRecord>& flows) {
  os << "start_s,duration_s,packets,bytes,proto,src_ip,src_port,dst_ip,dst_port\n";
  for (const auto& f : flows) {
    os << f.start_s << ',' << f.duration_s << ',' << f.packets << ',' << f.bytes << ','
       << static_cast<int>(f.tuple.protocol) << ','
       << packet::format_ipv4(f.tuple.src_ip) << ',' << f.tuple.src_port << ','
       << packet::format_ipv4(f.tuple.dst_ip) << ',' << f.tuple.dst_port << '\n';
  }
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "export_flow_records_csv: stream failure");
  }
}

}  // namespace flowrank::trace
