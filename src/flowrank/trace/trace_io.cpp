#include "flowrank/trace/trace_io.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <ostream>

#include "flowrank/util/bytes.hpp"
#include "flowrank/util/error.hpp"

namespace flowrank::trace {

namespace {
constexpr std::array<std::uint8_t, 4> kMagic = {'F', 'R', 'T', '1'};

// One FRT1 record is an explicit little-endian field sequence (48 bytes):
// f64 start_s, f64 duration_s, u64 packets, u64 bytes, u32 src_ip,
// u32 dst_ip, u16 src_port, u16 dst_port, u8 protocol, 3 zero pad bytes.
// This is byte-identical to the historical packed-struct layout on
// little-endian hosts, so existing .frt1 files (including the checked-in
// scenarios/tiny_sprint.frt1) replay unchanged — but the format is now
// defined by the field sequence, not by a compiler's struct layout.
constexpr std::size_t kRecordBytes = 48;

void pack(const packet::FlowRecord& f, std::vector<std::uint8_t>& out) {
  util::put_f64(out, f.start_s);
  util::put_f64(out, f.duration_s);
  util::put_u64(out, f.packets);
  util::put_u64(out, f.bytes);
  util::put_u32(out, f.tuple.src_ip);
  util::put_u32(out, f.tuple.dst_ip);
  util::put_u16(out, f.tuple.src_port);
  util::put_u16(out, f.tuple.dst_port);
  util::put_u8(out, static_cast<std::uint8_t>(f.tuple.protocol));
  util::put_u8(out, 0);
  util::put_u8(out, 0);
  util::put_u8(out, 0);
}

packet::FlowRecord unpack(std::span<const std::uint8_t> record) {
  util::ByteReader reader(record, ErrorCategory::kCorruptInput, "trace_io");
  packet::FlowRecord f;
  f.start_s = reader.get_f64();
  f.duration_s = reader.get_f64();
  f.packets = reader.get_u64();
  f.bytes = reader.get_u64();
  f.tuple.src_ip = reader.get_u32();
  f.tuple.dst_ip = reader.get_u32();
  f.tuple.src_port = reader.get_u16();
  f.tuple.dst_port = reader.get_u16();
  f.tuple.protocol = static_cast<packet::Protocol>(reader.get_u8());
  return f;
}
}  // namespace

void write_flow_records(std::ostream& os,
                        const std::vector<packet::FlowRecord>& flows) {
  std::vector<std::uint8_t> buffer;
  buffer.reserve(kMagic.size() + 8 + kRecordBytes * std::min<std::size_t>(
                                          flows.size(), std::size_t{1} << 16));
  buffer.insert(buffer.end(), kMagic.begin(), kMagic.end());
  util::put_u64(buffer, static_cast<std::uint64_t>(flows.size()));
  for (const auto& f : flows) {
    pack(f, buffer);
    // Flush in chunks so a multi-million-flow export does not hold the
    // whole file image in memory.
    if (buffer.size() >= (std::size_t{1} << 20)) {
      util::write_bytes(os, buffer);
      buffer.clear();
    }
  }
  util::write_bytes(os, buffer);
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "write_flow_records: stream failure");
  }
}

std::vector<packet::FlowRecord> read_flow_records(std::istream& is) {
  std::array<std::uint8_t, kMagic.size()> magic{};
  if (!util::read_bytes(is, magic) || magic != kMagic) {
    throw Error(ErrorCategory::kCorruptInput, "trace_io",
                "read_flow_records: bad magic");
  }
  std::array<std::uint8_t, 8> count_bytes{};
  if (!util::read_bytes(is, count_bytes)) {
    throw Error(ErrorCategory::kCorruptInput, "trace_io",
                "read_flow_records: truncated header");
  }
  util::ByteReader count_reader(count_bytes, ErrorCategory::kCorruptInput,
                                "trace_io");
  const std::uint64_t count = count_reader.get_u64();

  std::vector<packet::FlowRecord> flows;
  // Cap the up-front reservation: a corrupt header claiming 2^60 records
  // must fail with the truncation error below, not an allocation failure.
  flows.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 1u << 20)));
  std::array<std::uint8_t, kRecordBytes> record{};
  for (std::uint64_t i = 0; i < count; ++i) {
    if (!util::read_bytes(is, record)) {
      throw Error(ErrorCategory::kCorruptInput, "trace_io",
                  "read_flow_records: truncated records");
    }
    flows.push_back(unpack(record));
  }
  return flows;
}

void save_flow_records(const std::string& path,
                       const std::vector<packet::FlowRecord>& flows) {
  std::ofstream os(path, std::ios::binary);
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "save_flow_records: cannot open " + path);
  }
  write_flow_records(os, flows);
}

std::vector<packet::FlowRecord> load_flow_records(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "load_flow_records: cannot open " + path);
  }
  return read_flow_records(is);
}

void export_flow_records_csv(std::ostream& os,
                             const std::vector<packet::FlowRecord>& flows) {
  os << "start_s,duration_s,packets,bytes,proto,src_ip,src_port,dst_ip,dst_port\n";
  for (const auto& f : flows) {
    os << f.start_s << ',' << f.duration_s << ',' << f.packets << ',' << f.bytes << ','
       << static_cast<int>(f.tuple.protocol) << ','
       << packet::format_ipv4(f.tuple.src_ip) << ',' << f.tuple.src_port << ','
       << packet::format_ipv4(f.tuple.dst_ip) << ',' << f.tuple.dst_port << '\n';
  }
  if (!os) {
    throw Error(ErrorCategory::kIo, "trace_io",
                "export_flow_records_csv: stream failure");
  }
}

}  // namespace flowrank::trace
