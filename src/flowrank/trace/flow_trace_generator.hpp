// Synthetic flow-level trace generation.
//
// The paper's Sprint trace is flow-level: (start time, duration, size) per
// flow. It is proprietary, so we regenerate statistically equivalent traces
// from the statistics the paper publishes for it (Sec. 6 and Sec. 8.1):
//   * Poisson flow arrivals: 2360 flows/s (5-tuple), 350 flows/s (/24),
//   * Pareto flow sizes with mean 4.8 KB / 16.6 KB at 500 B/packet
//     (9.6 / 33.2 packets), default shape beta = 1.5,
//   * mean flow duration 13 s.
// The Abilene preset models the NLANR Abilene-I trace qualitatively:
// more flows, higher utilization, *short-tailed* flow sizes (Sec. 8.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flowrank/dist/flow_size_distribution.hpp"
#include "flowrank/packet/records.hpp"

namespace flowrank::trace {

/// Flow duration model: durations are drawn from an exponential whose mean
/// grows with flow size up to a cap. Small flows are short; elephants last
/// longer — enough correlation to exercise bin truncation the way a real
/// trace would, without overfitting to unavailable data.
struct DurationModel {
  double mean_s = 13.0;        ///< unconditional mean duration
  double size_exponent = 0.5;  ///< E[D | S] ∝ S^size_exponent (normalized)
  double max_s = 1800.0;       ///< hard cap (trace length)
};

/// Markov-modulated (ON/OFF) flow arrivals. The paper's traces use plain
/// Poisson arrivals; bursty links alternate exponential ON periods, where
/// flows arrive at on_factor x the base rate, with OFF lulls at
/// off_factor x. Disabled by default — when disabled the generator's draw
/// sequence is exactly the historical Poisson one, so existing seeds
/// reproduce bit-identical traces.
struct OnOffArrivals {
  bool enabled = false;
  double mean_on_s = 5.0;    ///< mean ON burst length, > 0
  double mean_off_s = 15.0;  ///< mean OFF lull length, > 0
  double on_factor = 3.0;    ///< arrival-rate multiplier during ON, >= 0
  double off_factor = 0.25;  ///< arrival-rate multiplier during OFF, >= 0
};

/// Generator configuration.
struct FlowTraceConfig {
  double duration_s = 1800.0;         ///< trace length (paper: 30 minutes)
  double flow_rate_per_s = 2360.0;    ///< Poisson flow arrival rate
  std::shared_ptr<const dist::FlowSizeDistribution> size_dist;  ///< packets/flow
  DurationModel duration;
  OnOffArrivals on_off;                   ///< bursty-arrival modulation
  std::uint32_t packet_size_bytes = 500;  ///< paper's average packet size
  double tcp_fraction = 0.9;              ///< fraction of flows marked TCP
  std::uint64_t seed = 1;

  /// Sprint OC-12 stats for 5-tuple flows ([1] Fig. 9, Sec. 6).
  [[nodiscard]] static FlowTraceConfig sprint_5tuple(double beta = 1.5,
                                                     std::uint64_t seed = 1);
  /// Sprint OC-12 stats for /24 destination-prefix flows.
  [[nodiscard]] static FlowTraceConfig sprint_prefix24(double beta = 1.5,
                                                       std::uint64_t seed = 1);
  /// Abilene-I-like: ~3x the flows, short-tailed (bounded Pareto beta=3).
  [[nodiscard]] static FlowTraceConfig abilene(std::uint64_t seed = 1);
};

/// A generated flow-level trace.
struct FlowTrace {
  FlowTraceConfig config;
  std::vector<packet::FlowRecord> flows;  ///< sorted by start time

  /// Total packets across all flows.
  [[nodiscard]] std::uint64_t total_packets() const noexcept;
};

/// Generates the trace. Deterministic in config.seed.
[[nodiscard]] FlowTrace generate_flow_trace(const FlowTraceConfig& config);

}  // namespace flowrank::trace
