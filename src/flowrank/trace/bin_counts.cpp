#include "flowrank/trace/bin_counts.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "flowrank/util/binomial_sample.hpp"

namespace flowrank::trace {

std::int64_t bin_length_ns(double bin_seconds) {
  if (!(bin_seconds > 0.0)) {
    throw std::invalid_argument("bin_length_ns: bin_seconds must be > 0");
  }
  return std::llround(bin_seconds * 1e9);
}

std::size_t bin_count(double duration_s, double bin_seconds) {
  if (!(bin_seconds > 0.0)) {
    throw std::invalid_argument("bin_count: bin_seconds must be > 0");
  }
  return static_cast<std::size_t>(std::ceil(duration_s / bin_seconds));
}

BinnedCounts bin_flow_counts(const FlowTrace& trace, double bin_seconds,
                             packet::FlowDefinition def,
                             std::uint64_t placement_seed) {
  const std::size_t bin_count = trace::bin_count(trace.config.duration_s, bin_seconds);
  BinnedCounts out;
  out.bin_seconds = bin_seconds;
  out.bins.resize(bin_count);

  // Aggregate per (bin, key); /24 aggregation may merge many flow records.
  std::vector<std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash>>
      acc(bin_count);

  for (std::size_t fi = 0; fi < trace.flows.size(); ++fi) {
    const auto& flow = trace.flows[fi];
    const packet::FlowKey key = packet::make_flow_key(flow.tuple, def);
    auto engine = util::make_engine(
        trace.config.seed ^ (placement_seed * 0x9e3779b97f4a7c15ULL),
        0x81AC0000ULL + fi);

    const double start = flow.start_s;
    const double end = std::min(flow.end_s(), trace.config.duration_s);
    auto first_bin = static_cast<std::size_t>(start / bin_seconds);
    if (first_bin >= bin_count) continue;
    auto last_bin = static_cast<std::size_t>(end / bin_seconds);
    if (last_bin >= bin_count) last_bin = bin_count - 1;

    if (first_bin == last_bin || flow.duration_s <= 0.0 || flow.packets == 1) {
      acc[first_bin][key] += flow.packets;
      continue;
    }

    // Multinomial split across overlapped bins via sequential binomial
    // conditionals: P(bin b gets k of the remaining m) with probability
    // equal to overlap(b) / remaining_length.
    std::uint64_t remaining = flow.packets;
    double remaining_len = end - start;
    for (std::size_t b = first_bin; b <= last_bin && remaining > 0; ++b) {
      if (b == last_bin) {
        acc[b][key] += remaining;
        remaining = 0;
        break;
      }
      const double bin_end = static_cast<double>(b + 1) * bin_seconds;
      const double overlap = bin_end - std::max(start, static_cast<double>(b) *
                                                           bin_seconds);
      const double prob = std::clamp(overlap / remaining_len, 0.0, 1.0);
      // util::binomial_sample, not std::binomial_distribution: the std
      // distribution's algorithm is implementation-defined, so the same
      // seed would place packets differently under libstdc++ and libc++.
      // Canonical-stream change (like the PR 3 BINV/BTPE switch): splits
      // differ draw-by-draw from the old libstdc++ stream, but every
      // consumer asserts conservation or distributional bands, not exact
      // split values.
      const std::uint64_t here = util::binomial_sample(remaining, prob, engine);
      if (here > 0) acc[b][key] += here;
      remaining -= here;
      remaining_len -= overlap;
    }
  }

  for (std::size_t b = 0; b < bin_count; ++b) {
    out.bins[b].reserve(acc[b].size());
    // unordered-ok: sorted by key immediately below before anything reads it
    for (const auto& [key, packets] : acc[b]) {
      out.bins[b].push_back(BinFlowCount{key, packets});
    }
    // Deterministic order for reproducible downstream tie-breaks.
    std::sort(out.bins[b].begin(), out.bins[b].end(),
              [](const BinFlowCount& a, const BinFlowCount& c) {
                return a.key < c.key;
              });
  }
  return out;
}

}  // namespace flowrank::trace
