// Flow-level → packet-level trace expansion.
//
// Exactly the paper's regeneration procedure (Sec. 8.1): "For a flow of
// size S, duration D and starting time T ... we distribute these packets
// uniformly in the interval [T, T+D]". Packets across flows are merged in
// time order with a min-heap so a 30-minute trace streams in O(active
// flows) memory instead of materializing tens of millions of packets.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "flowrank/packet/records.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::trace {

/// Streams the packets of a flow trace in non-decreasing timestamp order.
///
/// The front-end of the trace layer: it accepts a caller-owned FlowTrace,
/// a shared one, or any TraceSource (synthetic, FRT1 file replay,
/// concatenated epochs) and expands flows to packets identically for all
/// of them — everything downstream is source-agnostic.
///
/// TCP flows carry synthetic sequence numbers (cumulative byte offsets), so
/// the TCP-seq size estimator (paper future-work #2) can be exercised.
class PacketStream {
 public:
  /// `trace` must outlive the stream. Packet placement is deterministic in
  /// (trace seed, `seed`) so multiple sampling runs see the same packets.
  PacketStream(const FlowTrace& trace, std::uint64_t seed = 0);

  /// Owning variant: keeps the trace alive for the stream's lifetime.
  explicit PacketStream(std::shared_ptr<const FlowTrace> trace,
                        std::uint64_t seed = 0);

  /// Materializes `source` and owns the result. Packets are identical to
  /// streaming the same FlowTrace directly.
  explicit PacketStream(const TraceSource& source, std::uint64_t seed = 0);

  /// Returns the next packet, or nullopt at end of trace.
  [[nodiscard]] std::optional<packet::PacketRecord> next();

  /// Batched pull: clears `out` and refills it with up to `max_packets`
  /// packets in timestamp order. Returns the number delivered (0 at end of
  /// trace). Feeding the ingest pipeline in batches keeps the heap, the
  /// sampler and the flow table each working over a cache-resident chunk.
  std::size_t next_batch(std::vector<packet::PacketRecord>& out,
                         std::size_t max_packets);

  /// Packets emitted so far.
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

 private:
  struct PendingPacket {
    std::int64_t timestamp_ns;
    std::uint32_t flow_index;
    std::uint32_t packet_index;
    friend bool operator>(const PendingPacket& a, const PendingPacket& b) {
      if (a.timestamp_ns != b.timestamp_ns) return a.timestamp_ns > b.timestamp_ns;
      if (a.flow_index != b.flow_index) return a.flow_index > b.flow_index;
      return a.packet_index > b.packet_index;
    }
  };

  void activate_flows_until(std::int64_t now_ns);
  [[nodiscard]] std::vector<std::int64_t> place_packets(std::uint32_t flow_index) const;

  std::shared_ptr<const FlowTrace> owned_;  ///< null for the reference ctor
  const FlowTrace& trace_;
  std::uint64_t seed_;
  std::size_t next_flow_ = 0;  // next trace flow not yet activated
  // Per active flow: remaining packet timestamps (ascending) and cursor.
  struct ActiveFlow {
    std::vector<std::int64_t> timestamps;
    std::uint32_t cursor = 0;
  };
  std::vector<ActiveFlow> active_;              // indexed by slot
  std::vector<std::uint32_t> slot_of_flow_;     // flow index -> slot
  std::priority_queue<PendingPacket, std::vector<PendingPacket>, std::greater<>> heap_;
  std::uint64_t emitted_ = 0;
};

/// Convenience: expands the whole trace into a vector (small traces only).
[[nodiscard]] std::vector<packet::PacketRecord> expand_trace(const FlowTrace& trace,
                                                             std::uint64_t seed = 0);

}  // namespace flowrank::trace
