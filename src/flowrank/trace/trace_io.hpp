// Flow-trace persistence: a compact binary format plus CSV export.
//
// The binary format lets benchmarks reuse one generated trace across
// binaries; CSV export feeds external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "flowrank/packet/records.hpp"

namespace flowrank::trace {

/// Writes flow records in the flowrank binary format (magic "FRT1").
/// Throws std::runtime_error on I/O failure.
void write_flow_records(std::ostream& os,
                        const std::vector<packet::FlowRecord>& flows);

/// Reads flow records; validates the magic and record count.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<packet::FlowRecord> read_flow_records(std::istream& is);

/// File-path conveniences.
void save_flow_records(const std::string& path,
                       const std::vector<packet::FlowRecord>& flows);
[[nodiscard]] std::vector<packet::FlowRecord> load_flow_records(
    const std::string& path);

/// CSV export: start_s,duration_s,packets,bytes,proto,src,sport,dst,dport.
void export_flow_records_csv(std::ostream& os,
                             const std::vector<packet::FlowRecord>& flows);

}  // namespace flowrank::trace
