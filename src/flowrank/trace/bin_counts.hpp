// Per-(flow, bin) packet counts: the fast simulation path.
//
// The binning method (Sec. 8) cuts the trace into measurement intervals
// and ranks flows within each. Under uniform packet placement, the packet
// count a flow contributes to each bin it overlaps is multinomial with
// probabilities proportional to the overlap; and Bernoulli packet sampling
// of those packets is binomial thinning of the counts. Nothing the ranking
// metrics see depends on anything finer than these counts, so the 30-run
// sweeps of Figs. 12-16 run on counts directly — distribution-identical to
// per-packet simulation but orders of magnitude faster.
#pragma once

#include <cstdint>
#include <vector>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::trace {

/// Measurement-interval length in nanoseconds. Rounded, not truncated:
/// truncation turns e.g. 0.3 s into 299 999 999 ns, which makes the
/// packet path's integer bin edges drift one nanosecond per bin away from
/// the double-division edges used by bin_flow_counts. Every consumer that
/// bins integer timestamps must derive bin_ns through this helper.
[[nodiscard]] std::int64_t bin_length_ns(double bin_seconds);

/// Number of measurement intervals covering a trace of `duration_s`
/// seconds cut into `bin_seconds` bins (the final bin may be partial).
/// The single definition shared by the count path and the packet path, so
/// the two always agree on how many bins a trace has.
[[nodiscard]] std::size_t bin_count(double duration_s, double bin_seconds);

/// Packet count of one flow inside one bin.
struct BinFlowCount {
  packet::FlowKey key;        ///< flow identity at the chosen aggregation
  std::uint64_t packets = 0;  ///< unsampled packets in this bin
};

/// All flows' counts for each bin of the trace.
struct BinnedCounts {
  double bin_seconds = 0.0;
  /// bins[b] lists flows with >= 1 packet in bin b. A flow aggregated at
  /// /24 level may appear once per bin with merged counts.
  std::vector<std::vector<BinFlowCount>> bins;
};

/// Computes per-bin counts for the given flow definition.
///
/// Placement is multinomial over overlap fractions (exactly the law induced
/// by the paper's uniform packet placement), deterministic in
/// (trace.config.seed, placement_seed).
[[nodiscard]] BinnedCounts bin_flow_counts(const FlowTrace& trace,
                                           double bin_seconds,
                                           packet::FlowDefinition def,
                                           std::uint64_t placement_seed = 0);

}  // namespace flowrank::trace
