// Packet-level and flow-level records.
//
// FlowRecord mirrors the information the paper's Sprint flow-level trace
// carries ("the sizes of all flows, the durations of all flows and their
// starting times"); PacketRecord is what the regenerated packet-level
// trace and the samplers operate on.
#pragma once

#include <cstdint>

#include "flowrank/packet/flow_key.hpp"

namespace flowrank::packet {

/// One packet on the monitored link.
struct PacketRecord {
  std::int64_t timestamp_ns = 0;  ///< arrival time, nanoseconds since trace start
  FiveTuple tuple;                ///< flow identity fields from the headers
  std::uint32_t size_bytes = 0;   ///< IP length
  std::uint32_t tcp_seq = 0;      ///< TCP sequence number (0 for non-TCP)
};

/// One flow as recorded at flow level (pre-sampling ground truth).
struct FlowRecord {
  FiveTuple tuple;            ///< representative 5-tuple of the flow
  double start_s = 0.0;       ///< first-packet time, seconds since trace start
  double duration_s = 0.0;    ///< last minus first packet time
  std::uint64_t packets = 0;  ///< total packets
  std::uint64_t bytes = 0;    ///< total bytes

  [[nodiscard]] double end_s() const noexcept { return start_s + duration_s; }
};

}  // namespace flowrank::packet
