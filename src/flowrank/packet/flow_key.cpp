#include "flowrank/packet/flow_key.hpp"

#include <cstdio>

namespace flowrank::packet {

std::string to_string(FlowDefinition def) {
  switch (def) {
    case FlowDefinition::kFiveTuple:
      return "5-tuple";
    case FlowDefinition::kDstPrefix24:
      return "/24 dst prefix";
  }
  return "unknown";
}

FlowKey make_flow_key(const FiveTuple& tuple, FlowDefinition def) noexcept {
  switch (def) {
    case FlowDefinition::kFiveTuple:
      return FlowKey{
          (static_cast<std::uint64_t>(tuple.src_ip) << 32) | tuple.dst_ip,
          (static_cast<std::uint64_t>(tuple.src_port) << 32) |
              (static_cast<std::uint64_t>(tuple.dst_port) << 16) |
              static_cast<std::uint64_t>(tuple.protocol)};
    case FlowDefinition::kDstPrefix24:
      return FlowKey{0, dst_prefix24(tuple.dst_ip)};
  }
  return FlowKey{};
}

std::string format_ipv4(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xFF, (ip >> 16) & 0xFF,
                (ip >> 8) & 0xFF, ip & 0xFF);
  return buf;
}

std::string format_five_tuple(const FiveTuple& tuple) {
  const char* proto = tuple.protocol == Protocol::kTcp   ? "tcp"
                      : tuple.protocol == Protocol::kUdp ? "udp"
                                                         : "ip";
  std::string out = proto;
  out += ' ';
  out += format_ipv4(tuple.src_ip);
  out += ':';
  out += std::to_string(tuple.src_port);
  out += " -> ";
  out += format_ipv4(tuple.dst_ip);
  out += ':';
  out += std::to_string(tuple.dst_port);
  return out;
}

}  // namespace flowrank::packet
