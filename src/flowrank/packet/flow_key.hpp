// Flow identity: the paper's two flow definitions.
//
// Flows are either the usual 5-tuple (protocol, src/dst IP, src/dst port)
// or all packets sharing the destination /24 prefix (Sec. 6: "a second
// [definition] that aggregates packets according to the /24 destination
// address prefixes").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace flowrank::packet {

/// Transport protocol numbers we care about.
enum class Protocol : std::uint8_t { kTcp = 6, kUdp = 17, kOther = 0 };

/// A 5-tuple flow identity. IPs are IPv4 in host byte order.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::kOther;

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

/// The two flow definitions the paper evaluates.
enum class FlowDefinition {
  kFiveTuple,    ///< protocol + src/dst IP + src/dst port
  kDstPrefix24,  ///< destination IP /24 prefix
};

[[nodiscard]] std::string to_string(FlowDefinition def);

/// Canonical aggregation key: a 5-tuple collapsed under a FlowDefinition.
/// Stored as two 64-bit words so hashing and equality stay branch-free.
struct FlowKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// Collapses a 5-tuple under the given flow definition.
[[nodiscard]] FlowKey make_flow_key(const FiveTuple& tuple, FlowDefinition def) noexcept;

/// Returns the /24 prefix (lower 8 bits zeroed) of an IPv4 address.
[[nodiscard]] constexpr std::uint32_t dst_prefix24(std::uint32_t ip) noexcept {
  return ip & 0xFFFFFF00u;
}

/// Formats an IPv4 address as dotted quad.
[[nodiscard]] std::string format_ipv4(std::uint32_t ip);

/// Formats a 5-tuple like "tcp 10.0.0.1:80 -> 10.0.0.2:1234".
[[nodiscard]] std::string format_five_tuple(const FiveTuple& tuple);

/// 64-bit mix hash for FlowKey (SplitMix finalizer over both words).
struct FlowKeyHash {
  [[nodiscard]] std::size_t operator()(const FlowKey& key) const noexcept {
    std::uint64_t z = key.hi ^ (key.lo * 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace flowrank::packet
