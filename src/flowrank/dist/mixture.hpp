// Finite mixture of flow-size distributions.
//
// Real links carry heterogeneous traffic — e.g. a heavy-tailed Pareto
// population of bulk transfers over a light-tailed Weibull population of
// interactive flows. The mixture's ccdf is the weighted sum of the
// component ccdfs, so every analytic model parameterized by a
// FlowSizeDistribution works on it unchanged; the quantile (which has no
// closed form) is recovered by bisecting the monotone ccdf between the
// component quantile envelope bounds.
#pragma once

#include <vector>

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::dist {

/// Weighted mixture: ccdf(x) = sum_i w_i ccdf_i(x) with sum_i w_i = 1
/// (weights are normalized by the constructor).
class Mixture final : public FlowSizeDistribution {
 public:
  struct Component {
    double weight = 1.0;  ///< relative weight, > 0
    std::shared_ptr<const FlowSizeDistribution> dist;
  };

  /// Throws std::invalid_argument on an empty component list, a null
  /// distribution, or a non-positive weight.
  explicit Mixture(std::vector<Component> components);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return min_size_; }
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

  [[nodiscard]] const std::vector<Component>& components() const noexcept {
    return components_;
  }

 private:
  std::vector<Component> components_;  ///< weights normalized to sum 1
  double min_size_ = 0.0;
};

}  // namespace flowrank::dist
