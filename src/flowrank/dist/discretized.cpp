#include "flowrank/dist/discretized.hpp"

#include <cmath>
#include <stdexcept>

namespace flowrank::dist {

Discretized::Discretized(std::shared_ptr<const FlowSizeDistribution> source)
    : source_(std::move(source)) {
  if (!source_) throw std::invalid_argument("Discretized: source required");
  min_packets_ = static_cast<std::int64_t>(std::floor(source_->min_size())) + 1;
}

double Discretized::pmf(std::int64_t i) const {
  if (i < min_packets_) return 0.0;
  return ccdf_geq(i) - ccdf_geq(i + 1);
}

double Discretized::ccdf_geq(std::int64_t i) const {
  if (i <= min_packets_) return 1.0;
  return source_->ccdf(static_cast<double>(i - 1));
}

double Discretized::mean() const {
  if (cached_mean_ >= 0.0) return cached_mean_;
  // E[N] = sum_{i>=1} P{N >= i}; the first min_packets-1 terms are 1.
  double acc = static_cast<double>(min_packets_ - 1);
  constexpr std::int64_t kDirectTerms = 2000000;
  std::int64_t i = min_packets_;
  bool converged = false;
  for (; i - min_packets_ < kDirectTerms; ++i) {
    const double term = ccdf_geq(i);
    acc += term;
    if (term < 1e-12) {
      converged = true;
      break;
    }
  }
  if (!converged) {
    // Very heavy tails (beta near 1) would need ~1e8+ direct terms. Out
    // here the ccdf is a pure power law to double precision, so estimate
    // its local exponent from one octave and close the remainder
    //   sum_{j>=i} ccdf(j-1) ~ int_a^inf ccdf + ccdf(a)/2
    //                        = a ccdf(a)/(beta-1) + ccdf(a)/2,
    // which is exact (up to the midpoint term) for Pareto tails. An
    // exponent at or below 1 means the mean diverges — refuse to return
    // a silently truncated value, matching Pareto::mean().
    const double a = static_cast<double>(i - 1);
    const double tail_a = source_->ccdf(a);
    if (tail_a > 0.0) {
      const double tail_2a = source_->ccdf(2.0 * a);
      const double beta_est = std::log(tail_a / tail_2a) / std::log(2.0);
      if (!(beta_est > 1.001)) {
        throw std::logic_error(
            "Discretized::mean: tail exponent <= 1, mean diverges");
      }
      acc += a * tail_a / (beta_est - 1.0) + 0.5 * tail_a;
    }
  }
  cached_mean_ = acc;
  return cached_mean_;
}

std::int64_t Discretized::sample(util::Engine& engine) const {
  const auto n = static_cast<std::int64_t>(std::ceil(source_->sample(engine)));
  return n < min_packets_ ? min_packets_ : n;
}

std::string Discretized::name() const {
  return "discretized(" + source_->name() + ")";
}

}  // namespace flowrank::dist
