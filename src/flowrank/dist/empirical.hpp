// Empirical flow-size distribution built from observed samples, e.g. the
// flow sizes of a real trace (the paper's Sprint/Abilene experiments use
// measured size distributions rather than fitted ones in Sec. 8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::dist {

/// Step-function ccdf over a sorted copy of the input samples.
class Empirical final : public FlowSizeDistribution {
 public:
  /// Copies and sorts the samples. Throws std::invalid_argument if fewer
  /// than two samples are given or any sample is <= 0.
  explicit Empirical(std::span<const double> samples);

  /// Number of underlying samples.
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return sorted_.front(); }
  [[nodiscard]] double mean() const override { return mean_; }
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

 private:
  std::vector<double> sorted_;  ///< ascending
  double mean_ = 0.0;
};

}  // namespace flowrank::dist
