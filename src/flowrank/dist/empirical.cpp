#include "flowrank/dist/empirical.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <sstream>
#include <stdexcept>

namespace flowrank::dist {

Empirical::Empirical(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  if (sorted_.size() < 2) {
    throw std::invalid_argument("Empirical: need at least two samples");
  }
  for (double s : sorted_) {
    if (!(s > 0.0)) throw std::invalid_argument("Empirical: samples must be > 0");
  }
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = std::accumulate(sorted_.begin(), sorted_.end(), 0.0) /
          static_cast<double>(sorted_.size());
}

std::string Empirical::name() const {
  std::ostringstream os;
  os << "empirical(n=" << sorted_.size() << ")";
  return os.str();
}

double Empirical::ccdf(double x) const {
  // Fraction of samples strictly greater than x.
  const auto above = sorted_.end() - std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(above) / static_cast<double>(sorted_.size());
}

double Empirical::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  // The sample below which a fraction ~(1-y) of the data lies.
  const auto n = sorted_.size();
  auto idx = static_cast<std::size_t>((1.0 - y) * static_cast<double>(n));
  if (idx >= n) idx = n - 1;
  return sorted_[idx];
}

double Empirical::sample(util::Engine& engine) const {
  std::uniform_int_distribution<std::size_t> pick(0, sorted_.size() - 1);
  return sorted_[pick(engine)];
}

std::shared_ptr<FlowSizeDistribution> Empirical::clone() const {
  return std::make_shared<Empirical>(*this);
}

}  // namespace flowrank::dist
