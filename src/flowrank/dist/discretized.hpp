// Integer-packet adaptor over a continuous flow-size distribution.
//
// The discrete (exact) models evaluate binomial sums over integer flow
// sizes; Discretized maps a continuous law X to N = ceil(X), so
// P{N >= i} = P{X > i-1} telescopes exactly against the source ccdf.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::dist {

/// Packet-count distribution N = ceil(X) for a continuous source X.
class Discretized {
 public:
  /// Takes shared (or, via the implicit unique_ptr -> shared_ptr
  /// conversion, exclusive) ownership of the source — the experiment
  /// engine discretizes distributions it also hands to the continuous
  /// models. Throws std::invalid_argument on null.
  explicit Discretized(std::shared_ptr<const FlowSizeDistribution> source);

  /// Smallest packet count with positive mass: floor(min_size) + 1.
  [[nodiscard]] std::int64_t min_packets() const noexcept { return min_packets_; }

  /// P{N = i}.
  [[nodiscard]] double pmf(std::int64_t i) const;

  /// P{N >= i} (== source ccdf at i-1).
  [[nodiscard]] double ccdf_geq(std::int64_t i) const;

  /// E[N], computed once by summing ccdf_geq until the tail is negligible.
  [[nodiscard]] double mean() const;

  /// Draws one packet count (>= min_packets()).
  [[nodiscard]] std::int64_t sample(util::Engine& engine) const;

  [[nodiscard]] std::string name() const;

  [[nodiscard]] const FlowSizeDistribution& source() const noexcept {
    return *source_;
  }

 private:
  std::shared_ptr<const FlowSizeDistribution> source_;  ///< shared: cheap copies
  std::int64_t min_packets_ = 1;
  mutable double cached_mean_ = -1.0;  ///< lazy; < 0 means not yet computed
};

}  // namespace flowrank::dist
