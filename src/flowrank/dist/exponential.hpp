// Light-tailed flow-size distributions: shifted Exponential and Weibull.
//
// The paper's message is that heavy (Pareto) tails are what make ranking
// under sampling feasible; these light-tailed alternatives are the
// counterfactual (Fig. 6/7's beta sweep pushed to its limit). Both are
// shifted so the support starts at a minimum flow size (>= 1 packet).
#pragma once

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::dist {

/// min + Exp(scale): ccdf(x) = exp(-(x - min)/scale) for x >= min.
class Exponential final : public FlowSizeDistribution {
 public:
  /// Throws std::invalid_argument unless scale > 0 and min > 0.
  explicit Exponential(double scale, double min = 1.0);

  /// The shifted exponential with the given mean: scale = mean - min.
  /// Throws std::invalid_argument unless mean > min.
  [[nodiscard]] static Exponential from_mean(double mean, double min = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return min_; }
  [[nodiscard]] double mean() const override { return min_ + scale_; }
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

 private:
  double scale_;
  double min_;
};

/// min + Weibull(scale, shape): ccdf(x) = exp(-((x - min)/scale)^shape).
/// shape == 1 reduces to the shifted Exponential.
class Weibull final : public FlowSizeDistribution {
 public:
  /// Throws std::invalid_argument unless scale, shape and min are > 0.
  Weibull(double scale, double shape, double min = 1.0);

  /// The shifted Weibull with the given mean and shape:
  /// scale = (mean - min) / Gamma(1 + 1/shape).
  [[nodiscard]] static Weibull from_mean(double mean, double shape,
                                         double min = 1.0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return min_; }
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

 private:
  double scale_;
  double shape_;
  double min_;
};

}  // namespace flowrank::dist
