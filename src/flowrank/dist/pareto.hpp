// Pareto flow-size distributions (Sec. 6: "flow sizes are well modeled
// by a Pareto distribution" with tail index beta between 1 and 2 for the
// Sprint traces). BoundedPareto truncates the tail, which models links
// where the largest flows are capped by the measurement interval.
#pragma once

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::dist {

/// Pareto(min, beta): ccdf(x) = (x / min)^-beta for x >= min.
class Pareto final : public FlowSizeDistribution {
 public:
  /// Throws std::invalid_argument unless min > 0 and beta > 0.
  Pareto(double min, double beta);

  /// The Pareto with the given mean and tail index (beta > 1 required,
  /// else the mean diverges): min = mean (beta-1)/beta.
  [[nodiscard]] static Pareto from_mean(double mean, double beta);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return min_; }
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

  [[nodiscard]] double beta() const noexcept { return beta_; }

 private:
  double min_;
  double beta_;
};

/// Pareto truncated to [min, max]: the conditional law of Pareto(min, beta)
/// given X <= max. Always has a finite mean.
class BoundedPareto final : public FlowSizeDistribution {
 public:
  /// Throws std::invalid_argument unless 0 < min < max and beta > 0.
  BoundedPareto(double min, double beta, double max);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double min_size() const noexcept override { return min_; }
  [[nodiscard]] double mean() const override;
  [[nodiscard]] double ccdf(double x) const override;
  [[nodiscard]] double tail_quantile(double y) const override;
  [[nodiscard]] double sample(util::Engine& engine) const override;
  [[nodiscard]] std::shared_ptr<FlowSizeDistribution> clone() const override;

 private:
  double min_;
  double beta_;
  double max_;
  double tail_at_max_;  ///< (min/max)^beta, cached
};

}  // namespace flowrank::dist
