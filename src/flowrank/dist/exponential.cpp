#include "flowrank/dist/exponential.hpp"

#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>

namespace flowrank::dist {

Exponential::Exponential(double scale, double min) : scale_(scale), min_(min) {
  if (!(scale > 0.0)) throw std::invalid_argument("Exponential: scale > 0");
  if (!(min > 0.0)) throw std::invalid_argument("Exponential: min > 0");
}

Exponential Exponential::from_mean(double mean, double min) {
  if (!(mean > min)) {
    throw std::invalid_argument("Exponential::from_mean: mean > min");
  }
  return Exponential(mean - min, min);
}

std::string Exponential::name() const {
  std::ostringstream os;
  os << "exponential(scale=" << scale_ << ", min=" << min_ << ")";
  return os.str();
}

double Exponential::ccdf(double x) const {
  if (x <= min_) return 1.0;
  return std::exp(-(x - min_) / scale_);
}

double Exponential::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  return min_ - scale_ * std::log(y);
}

double Exponential::sample(util::Engine& engine) const {
  return min_ - scale_ * std::log(util::uniform_unit_open(engine));
}

std::shared_ptr<FlowSizeDistribution> Exponential::clone() const {
  return std::make_shared<Exponential>(*this);
}

Weibull::Weibull(double scale, double shape, double min)
    : scale_(scale), shape_(shape), min_(min) {
  if (!(scale > 0.0)) throw std::invalid_argument("Weibull: scale > 0");
  if (!(shape > 0.0)) throw std::invalid_argument("Weibull: shape > 0");
  if (!(min > 0.0)) throw std::invalid_argument("Weibull: min > 0");
}

Weibull Weibull::from_mean(double mean, double shape, double min) {
  if (!(mean > min)) throw std::invalid_argument("Weibull::from_mean: mean > min");
  if (!(shape > 0.0)) throw std::invalid_argument("Weibull::from_mean: shape > 0");
  return Weibull((mean - min) / std::tgamma(1.0 + 1.0 / shape), shape, min);
}

std::string Weibull::name() const {
  std::ostringstream os;
  os << "weibull(scale=" << scale_ << ", shape=" << shape_ << ", min=" << min_
     << ")";
  return os.str();
}

double Weibull::mean() const {
  return min_ + scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

double Weibull::ccdf(double x) const {
  if (x <= min_) return 1.0;
  return std::exp(-std::pow((x - min_) / scale_, shape_));
}

double Weibull::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  return min_ + scale_ * std::pow(-std::log(y), 1.0 / shape_);
}

double Weibull::sample(util::Engine& engine) const {
  return tail_quantile(util::uniform_unit_open(engine));
}

std::shared_ptr<FlowSizeDistribution> Weibull::clone() const {
  return std::make_shared<Weibull>(*this);
}

}  // namespace flowrank::dist
