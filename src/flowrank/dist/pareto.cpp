#include "flowrank/dist/pareto.hpp"

#include <cmath>
#include <random>
#include <sstream>
#include <stdexcept>

namespace flowrank::dist {

Pareto::Pareto(double min, double beta) : min_(min), beta_(beta) {
  if (!(min > 0.0)) throw std::invalid_argument("Pareto: min > 0");
  if (!(beta > 0.0)) throw std::invalid_argument("Pareto: beta > 0");
}

Pareto Pareto::from_mean(double mean, double beta) {
  if (!(beta > 1.0)) {
    throw std::invalid_argument("Pareto::from_mean: beta > 1 (finite mean)");
  }
  if (!(mean > 0.0)) throw std::invalid_argument("Pareto::from_mean: mean > 0");
  return Pareto(mean * (beta - 1.0) / beta, beta);
}

std::string Pareto::name() const {
  std::ostringstream os;
  os << "pareto(min=" << min_ << ", beta=" << beta_ << ")";
  return os.str();
}

double Pareto::mean() const {
  if (!(beta_ > 1.0)) {
    throw std::logic_error("Pareto::mean: diverges for beta <= 1");
  }
  return min_ * beta_ / (beta_ - 1.0);
}

double Pareto::ccdf(double x) const {
  if (x <= min_) return 1.0;
  return std::pow(x / min_, -beta_);
}

double Pareto::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  return min_ * std::pow(y, -1.0 / beta_);
}

double Pareto::sample(util::Engine& engine) const {
  return min_ * std::pow(util::uniform_unit_open(engine), -1.0 / beta_);
}

std::shared_ptr<FlowSizeDistribution> Pareto::clone() const {
  return std::make_shared<Pareto>(*this);
}

BoundedPareto::BoundedPareto(double min, double beta, double max)
    : min_(min), beta_(beta), max_(max) {
  if (!(min > 0.0)) throw std::invalid_argument("BoundedPareto: min > 0");
  if (!(beta > 0.0)) throw std::invalid_argument("BoundedPareto: beta > 0");
  if (!(max > min)) throw std::invalid_argument("BoundedPareto: max > min");
  tail_at_max_ = std::pow(min_ / max_, beta_);
}

std::string BoundedPareto::name() const {
  std::ostringstream os;
  os << "bounded-pareto(min=" << min_ << ", beta=" << beta_ << ", max=" << max_
     << ")";
  return os.str();
}

double BoundedPareto::mean() const {
  // E[X | X <= max] of Pareto(min, beta).
  if (beta_ == 1.0) {
    return std::log(max_ / min_) * min_ / (1.0 - tail_at_max_);
  }
  const double num = beta_ / (beta_ - 1.0) *
                     (min_ - max_ * tail_at_max_);  // min (1 - (min/max)^{beta-1}) form
  return num / (1.0 - tail_at_max_);
}

double BoundedPareto::ccdf(double x) const {
  if (x <= min_) return 1.0;
  if (x >= max_) return 0.0;
  return (std::pow(x / min_, -beta_) - tail_at_max_) / (1.0 - tail_at_max_);
}

double BoundedPareto::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  const double u = y * (1.0 - tail_at_max_) + tail_at_max_;
  return min_ * std::pow(u, -1.0 / beta_);
}

double BoundedPareto::sample(util::Engine& engine) const {
  return tail_quantile(util::uniform_unit_open(engine));
}

std::shared_ptr<FlowSizeDistribution> BoundedPareto::clone() const {
  return std::make_shared<BoundedPareto>(*this);
}

}  // namespace flowrank::dist
