// Flow-size distributions (packets per flow).
//
// The paper's analytic models are parameterized by the distribution of
// flow sizes on the monitored link (Sec. 6 fits Pareto tails to the
// Sprint traces). Everything the models need is the complementary CDF,
// its inverse (for the quantile-space integrals) and the mean; the
// trace generator and Monte-Carlo validation additionally draw samples.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "flowrank/util/rng.hpp"

namespace flowrank::dist {

/// Continuous distribution of flow sizes, supported on [min_size, inf).
class FlowSizeDistribution {
 public:
  virtual ~FlowSizeDistribution() = default;

  /// Human-readable description, e.g. "pareto(min=3.2, beta=1.5)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Left edge of the support (> 0; flows have at least ~1 packet).
  [[nodiscard]] virtual double min_size() const noexcept = 0;

  /// Mean flow size. Throws std::logic_error if the mean diverges.
  [[nodiscard]] virtual double mean() const = 0;

  /// P{X > x}. Equals 1 for x below the support.
  [[nodiscard]] virtual double ccdf(double x) const = 0;

  /// Inverse of ccdf: the size x with P{X > x} = y, for y in (0, 1].
  /// Throws std::domain_error outside that range.
  [[nodiscard]] virtual double tail_quantile(double y) const = 0;

  /// Draws one flow size.
  [[nodiscard]] virtual double sample(util::Engine& engine) const = 0;

  /// Deep copy (shared so model configs can alias it cheaply).
  [[nodiscard]] virtual std::shared_ptr<FlowSizeDistribution> clone() const = 0;
};

/// Validates y in (0, 1] for tail_quantile implementations.
inline void check_tail_quantile_arg(double y) {
  if (!(y > 0.0 && y <= 1.0)) {
    throw std::domain_error("tail_quantile: y must be in (0, 1]");
  }
}

}  // namespace flowrank::dist
