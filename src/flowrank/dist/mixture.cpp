#include "flowrank/dist/mixture.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace flowrank::dist {

Mixture::Mixture(std::vector<Component> components)
    : components_(std::move(components)) {
  if (components_.empty()) {
    throw std::invalid_argument("Mixture: at least one component");
  }
  double total = 0.0;
  for (const auto& c : components_) {
    if (!c.dist) throw std::invalid_argument("Mixture: null component");
    if (!(c.weight > 0.0)) throw std::invalid_argument("Mixture: weight > 0");
    total += c.weight;
  }
  min_size_ = components_.front().dist->min_size();
  for (auto& c : components_) {
    c.weight /= total;
    min_size_ = std::min(min_size_, c.dist->min_size());
  }
}

std::string Mixture::name() const {
  std::ostringstream os;
  os << "mixture(";
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) os << " + ";
    os << components_[i].weight << "*" << components_[i].dist->name();
  }
  os << ")";
  return os.str();
}

double Mixture::mean() const {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight * c.dist->mean();
  return acc;
}

double Mixture::ccdf(double x) const {
  double acc = 0.0;
  for (const auto& c : components_) acc += c.weight * c.dist->ccdf(x);
  return acc;
}

double Mixture::tail_quantile(double y) const {
  check_tail_quantile_arg(y);
  // Envelope bracket: at hi = max_i q_i(y) every component ccdf is <= y,
  // so the mixture is too; at lo = min_i q_i(y) the attaining component
  // is exactly y and the others at least y, so the mixture is >= y. The
  // mixture ccdf is monotone non-increasing between them: bisect.
  double lo = components_.front().dist->tail_quantile(y);
  double hi = lo;
  for (const auto& c : components_) {
    const double q = c.dist->tail_quantile(y);
    lo = std::min(lo, q);
    hi = std::max(hi, q);
  }
  for (int iter = 0; iter < 200 && hi - lo > 1e-12 * (1.0 + hi); ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ccdf(mid) > y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double Mixture::sample(util::Engine& engine) const {
  // Component pick then component draw (two uniforms): keeps each draw on
  // the component's own exact sampler instead of the bisected inverse.
  double u = util::uniform_unit_open(engine);
  for (const auto& c : components_) {
    if (u <= c.weight || &c == &components_.back()) {
      return c.dist->sample(engine);
    }
    u -= c.weight;
  }
  return components_.back().dist->sample(engine);  // unreachable
}

std::shared_ptr<FlowSizeDistribution> Mixture::clone() const {
  std::vector<Component> copies;
  copies.reserve(components_.size());
  for (const auto& c : components_) {
    copies.push_back(Component{c.weight, c.dist->clone()});
  }
  return std::make_shared<Mixture>(std::move(copies));
}

}  // namespace flowrank::dist
