#include "flowrank/estimators/inversion.hpp"

#include <cmath>
#include <stdexcept>

#include "flowrank/numeric/quadrature.hpp"

namespace flowrank::estimators {

SizeEstimate scaled_size_estimate(std::uint64_t sampled_packets, double p) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("scaled_size_estimate: p in (0,1]");
  }
  SizeEstimate out;
  const double s = static_cast<double>(sampled_packets);
  out.estimate = s / p;
  // Var[s] = S p (1-p) ~ (s/p) p (1-p): plug-in stderr of Ŝ = s/p.
  out.stderr_ = std::sqrt(s * (1.0 - p)) / p;
  out.ci95_low = std::max(0.0, out.estimate - 1.959963984540054 * out.stderr_);
  out.ci95_high = out.estimate + 1.959963984540054 * out.stderr_;
  return out;
}

double missed_flow_probability(const dist::FlowSizeDistribution& dist, double p) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("missed_flow_probability: p in (0,1]");
  }
  if (p == 1.0) return 0.0;
  // E[(1-p)^S] = ∫_0^1 (1-p)^{x(y)} dy in rank space; the integrand decays
  // fast in x so concentrate panels toward y = 1 (small flows).
  const double log_q = std::log1p(-p);
  const auto f = [&](double y) { return std::exp(dist.tail_quantile(y) * log_q); };
  // Log-spaced panels in (1 - y) handle the small-flow concentration.
  double acc = 0.0;
  double hi = 1.0;
  for (int panel = 0; panel < 40 && hi > 1e-14; ++panel) {
    const double lo = hi * 0.5;
    // integrate over y in [1-hi, 1-lo]
    acc += numeric::integrate_gl(f, 1.0 - hi, 1.0 - lo, 16);
    hi = lo;
  }
  return std::min(acc, 1.0);
}

PopulationEstimate estimate_population(std::uint64_t seen_flows,
                                       std::uint64_t sampled_packets_total, double p,
                                       const dist::FlowSizeDistribution& dist) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("estimate_population: p in (0,1]");
  }
  const double miss = missed_flow_probability(dist, p);
  const double seen_fraction = 1.0 - miss;
  if (seen_fraction <= 0.0) {
    throw std::domain_error("estimate_population: sampling rate too low for inversion");
  }
  PopulationEstimate out;
  out.total_flows = static_cast<double>(seen_flows) / seen_fraction;
  out.mean_flow_packets = out.total_flows > 0.0
                              ? static_cast<double>(sampled_packets_total) / p /
                                    out.total_flows
                              : 0.0;
  return out;
}

}  // namespace flowrank::estimators
