// TCP sequence-number flow-size estimation — the paper's second
// future-work direction: "one can imagine the use of the TCP sequence
// numbers to better estimate the size of the sampled flows".
//
// With >= 2 sampled packets of a TCP flow, (max_seq - min_seq) measures
// the byte span between the sampled packets directly, independent of the
// sampling rate; the uncovered head/tail spans are the only error.
#pragma once

#include <cstdint>

#include "flowrank/flowtable/flow_table.hpp"

namespace flowrank::estimators {

/// A flow-size estimate annotated with which estimator produced it.
struct SeqSizeEstimate {
  double packets = 0.0;
  bool used_seq = false;  ///< true when the TCP-seq path was applicable
};

/// Estimates a flow's original packet count from a sampled FlowCounter.
///
/// TCP path (>= 2 sampled packets with sequence numbers): the sampled
/// packets cover (max_seq - min_seq) bytes plus one packet; the uncovered
/// head and tail are each Geometric(p)-distributed in packets, adding an
/// expected 2 (1-p)/p packets. Non-TCP or single-packet flows fall back to
/// the scaled estimate s/p.
/// Throws std::invalid_argument unless p in (0,1] and packet_size > 0.
[[nodiscard]] SeqSizeEstimate estimate_size_tcp_seq(
    const flowtable::FlowCounter& counter, double p, std::uint32_t packet_size_bytes);

}  // namespace flowrank::estimators
