// Classic inversion estimators from the related work ([9], Sec. 2):
// recovering per-flow sizes, the total flow count and the mean flow size
// from Bernoulli-sampled traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "flowrank/dist/flow_size_distribution.hpp"

namespace flowrank::estimators {

/// Unbiased per-flow size estimate with a Normal-approximation CI.
struct SizeEstimate {
  double estimate = 0.0;  ///< s/p
  double stderr_ = 0.0;   ///< sqrt(s (1-p)) / p
  double ci95_low = 0.0;
  double ci95_high = 0.0;
};

/// Inverts one sampled flow size: E[s] = pS  =>  Ŝ = s/p.
/// Throws std::invalid_argument unless p in (0,1].
[[nodiscard]] SizeEstimate scaled_size_estimate(std::uint64_t sampled_packets,
                                                double p);

/// Probability that a flow drawn from `dist` is entirely missed at rate p:
/// E[(1-p)^S], computed by rank-space integration.
[[nodiscard]] double missed_flow_probability(const dist::FlowSizeDistribution& dist,
                                             double p);

/// Duffield-style population estimators from the number of *observed*
/// sampled flows and the assumed size distribution.
struct PopulationEstimate {
  double total_flows = 0.0;       ///< N̂ = F_seen / (1 - E[(1-p)^S])
  double mean_flow_packets = 0.0; ///< (sampled packets / p) / N̂
};

/// Estimates the original flow population. `seen_flows` counts sampled
/// flows with >= 1 sampled packet; `sampled_packets_total` is the total
/// number of sampled packets.
[[nodiscard]] PopulationEstimate estimate_population(
    std::uint64_t seen_flows, std::uint64_t sampled_packets_total, double p,
    const dist::FlowSizeDistribution& dist);

}  // namespace flowrank::estimators
