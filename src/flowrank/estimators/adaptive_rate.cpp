#include "flowrank/estimators/adaptive_rate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "flowrank/dist/pareto.hpp"
#include "flowrank/estimators/inversion.hpp"
#include "flowrank/numeric/stats.hpp"

namespace flowrank::estimators {

AdaptiveRateController::AdaptiveRateController(AdaptiveRateConfig config)
    : config_(config), smoothed_rate_(config.max_rate) {
  if (!(config_.min_rate > 0.0 && config_.min_rate < config_.max_rate &&
        config_.max_rate <= 1.0)) {
    throw std::invalid_argument("AdaptiveRateController: bad rate range");
  }
  if (!(config_.target_metric > 0.0)) {
    throw std::invalid_argument("AdaptiveRateController: target metric > 0");
  }
  if (!(config_.ema_weight > 0.0 && config_.ema_weight <= 1.0)) {
    throw std::invalid_argument("AdaptiveRateController: ema weight in (0,1]");
  }
  if (!(config_.hill_fraction > 0.0 && config_.hill_fraction < 1.0)) {
    throw std::invalid_argument("AdaptiveRateController: hill fraction in (0,1)");
  }
}

AdaptiveRateDecision AdaptiveRateController::observe(
    std::span<const std::uint64_t> sampled_flow_sizes, double current_rate) {
  if (!(current_rate > 0.0 && current_rate <= 1.0)) {
    throw std::invalid_argument("observe: current_rate in (0,1]");
  }
  if (sampled_flow_sizes.empty()) {
    throw std::invalid_argument("observe: no sampled flows");
  }

  // Invert sampled sizes to size estimates; the tail index is scale
  // invariant, so the Hill estimate may use the raw sampled sizes of the
  // well-sampled (large) flows directly.
  std::vector<double> inverted;
  inverted.reserve(sampled_flow_sizes.size());
  std::uint64_t sampled_packets = 0;
  for (std::uint64_t s : sampled_flow_sizes) {
    if (s == 0) continue;
    sampled_packets += s;
    inverted.push_back(static_cast<double>(s) / current_rate);
  }
  if (inverted.size() < 32) {
    throw std::invalid_argument("observe: too few sampled flows to adapt");
  }

  AdaptiveRateDecision decision;
  const auto k = std::max<std::size_t>(
      16, static_cast<std::size_t>(config_.hill_fraction *
                                   static_cast<double>(inverted.size())));
  double beta = 1.5;  // fall back to the paper's canonical shape
  if (k + 1 < inverted.size()) {
    try {
      beta = numeric::hill_tail_index(inverted, k);
    } catch (const std::invalid_argument&) {
      // degenerate tail (all equal sizes); keep the fallback
    }
  }
  // The planner's Pareto needs beta > 1 for a finite mean; clamp into the
  // range the paper explores.
  beta = std::clamp(beta, 1.05, 4.0);
  decision.estimated_beta = beta;

  numeric::RunningStats size_stats;
  for (double v : inverted) size_stats.add(v);
  const double mean_size = std::max(1.5, size_stats.mean());

  auto pareto = dist::Pareto::from_mean(mean_size, beta);
  const auto population =
      estimate_population(inverted.size(), sampled_packets, current_rate, pareto);
  decision.estimated_flows = population.total_flows;

  core::RankingModelConfig model_config;
  model_config.n = std::max<std::int64_t>(
      config_.top_t + 1, static_cast<std::int64_t>(population.total_flows));
  model_config.t = config_.top_t;
  model_config.size_dist = std::make_shared<dist::Pareto>(pareto);
  model_config.pairwise = core::PairwiseModel::kHybrid;

  const auto plan =
      core::plan_sampling_rate(model_config, config_.goal, config_.target_metric,
                               config_.min_rate, config_.max_rate);
  decision.feasible = plan.feasible;
  const double raw = plan.feasible ? plan.sampling_rate : config_.max_rate;
  smoothed_rate_ = config_.ema_weight * raw + (1.0 - config_.ema_weight) * smoothed_rate_;
  smoothed_rate_ = std::clamp(smoothed_rate_, config_.min_rate, config_.max_rate);
  decision.next_rate = smoothed_rate_;
  return decision;
}

}  // namespace flowrank::estimators
