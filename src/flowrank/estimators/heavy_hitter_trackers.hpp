// Limited-memory heavy-hitter tracking, the paper's related work [11, 13]
// and its first future-work direction: feed *sampled* traffic into a
// memory-bounded top-flows structure and study the combined error.
//
// Two trackers:
//  * SampleAndHold (Estan & Varghese [11]): a flow enters the table with
//    probability h per packet; once held, every later packet is counted.
//  * SpaceSavingTracker: the modern realization of the "sorted list with
//    eviction at the bottom" approach of [13]/[11]; deterministic
//    guarantee count_error <= min_count.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::estimators {

/// A tracked flow and its estimated packet count.
struct TrackedFlow {
  packet::FlowKey key;
  double estimated_packets = 0.0;
  double error_bound = 0.0;  ///< upper bound on overestimation
};

/// Estan-Varghese sample-and-hold.
class SampleAndHold {
 public:
  /// `hold_probability` is the per-packet entry probability; `capacity`
  /// caps the table (0 = unbounded). Throws on invalid arguments.
  SampleAndHold(double hold_probability, std::size_t capacity, std::uint64_t seed);

  /// Processes one packet of the given flow.
  void offer(const packet::FlowKey& key);

  /// Tracked flows with bias-corrected estimates: a held flow missed a
  /// Geometric(h)-distributed prefix, so add (1-h)/h.
  [[nodiscard]] std::vector<TrackedFlow> flows() const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  /// Packets that arrived while the table was full and their flow untracked.
  [[nodiscard]] std::uint64_t overflow_drops() const noexcept { return overflow_; }

 private:
  double hold_probability_;
  std::size_t capacity_;
  util::Engine engine_;
  std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash> table_;
  std::uint64_t overflow_ = 0;
};

/// Space-Saving top-k tracker (Metwally et al.), the deterministic
/// descendant of the limited-storage sorted list in [13].
class SpaceSavingTracker {
 public:
  /// Tracks at most `capacity` flows. Throws unless capacity >= 1.
  explicit SpaceSavingTracker(std::size_t capacity);

  /// Counts one packet of the given flow; evicts the current minimum when
  /// the table is full, inheriting its count (classic Space-Saving).
  void offer(const packet::FlowKey& key);

  /// All tracked flows; estimated_packets overestimates by at most
  /// error_bound (the inherited count at insertion).
  [[nodiscard]] std::vector<TrackedFlow> flows() const;

  /// Top-t tracked flows by estimated count (desc, key tie-break).
  [[nodiscard]] std::vector<TrackedFlow> top(std::size_t t) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::size_t capacity_;
  std::unordered_map<packet::FlowKey, Entry, packet::FlowKeyHash> entries_;
};

}  // namespace flowrank::estimators
