// Limited-memory heavy-hitter tracking, the paper's related work [11, 13]
// and its first future-work direction: feed *sampled* traffic into a
// memory-bounded top-flows structure and study the combined error.
//
// Two trackers:
//  * SampleAndHold (Estan & Varghese [11]): a flow enters the table with
//    probability h per packet; once held, every later packet is counted.
//  * SpaceSavingTracker: the modern realization of the "sorted list with
//    eviction at the bottom" approach of [13]/[11]; deterministic
//    guarantee count_error <= min_count.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "flowrank/packet/flow_key.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::estimators {

/// A tracked flow and its estimated packet count.
struct TrackedFlow {
  packet::FlowKey key;
  double estimated_packets = 0.0;
  double error_bound = 0.0;  ///< upper bound on overestimation
};

/// Estan-Varghese sample-and-hold.
class SampleAndHold {
 public:
  /// `hold_probability` is the per-packet entry probability; `capacity`
  /// caps the table (0 = unbounded). Throws on invalid arguments.
  SampleAndHold(double hold_probability, std::size_t capacity, std::uint64_t seed);

  /// Processes one packet of the given flow.
  void offer(const packet::FlowKey& key);

  /// Tracked flows with bias-corrected estimates: a held flow missed a
  /// Geometric(h)-distributed prefix, so add (1-h)/h.
  [[nodiscard]] std::vector<TrackedFlow> flows() const;

  [[nodiscard]] std::size_t size() const noexcept { return table_.size(); }
  /// Packets that arrived while the table was full and their flow untracked.
  [[nodiscard]] std::uint64_t overflow_drops() const noexcept { return overflow_; }

 private:
  double hold_probability_;
  std::size_t capacity_;
  util::Engine engine_;
  std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash> table_;
  std::uint64_t overflow_ = 0;
};

/// Space-Saving top-k tracker (Metwally et al.), the deterministic
/// descendant of the limited-storage sorted list in [13].
class SpaceSavingTracker {
 public:
  /// Tracks at most `capacity` flows. Throws unless capacity >= 1.
  explicit SpaceSavingTracker(std::size_t capacity);

  /// Counts one packet of the given flow; evicts the current minimum when
  /// the table is full, inheriting its count (classic Space-Saving).
  void offer(const packet::FlowKey& key);

  /// All tracked flows; estimated_packets overestimates by at most
  /// error_bound (the inherited count at insertion).
  [[nodiscard]] std::vector<TrackedFlow> flows() const;

  /// Top-t tracked flows by estimated count (desc, key tie-break).
  [[nodiscard]] std::vector<TrackedFlow> top(std::size_t t) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };
  std::size_t capacity_;
  std::unordered_map<packet::FlowKey, Entry, packet::FlowKeyHash> entries_;
};

// ---- Mergeable-summaries union (Agarwal et al.'s mergeable Space-Saving)

/// A sketch as a mergeable view: the tracked flows plus an upper bound on
/// the true count of any key *absent* from it. For a Space-Saving sketch
/// that ran full, an untracked key's true count cannot exceed the sketch's
/// minimum estimate (otherwise it would have evicted its way in); a sketch
/// that never filled tracked everything it saw, so the bound is 0. An
/// exact table (every key present) also has bound 0.
struct SketchView {
  std::span<const TrackedFlow> flows;
  double absent_bound = 0.0;
};

/// The absent-key bound of a sketch with `capacity` slots (0 = unbounded,
/// always exact): its minimum estimate when full, 0 otherwise.
[[nodiscard]] double sketch_absent_bound(std::span<const TrackedFlow> flows,
                                         std::size_t capacity);

/// A union result, ready to fold with further sketches (k-way merges are
/// left folds of the pairwise union).
struct MergedSketch {
  std::vector<TrackedFlow> flows;  ///< estimate desc, key asc
  double absent_bound = 0.0;

  [[nodiscard]] SketchView view() const noexcept {
    return SketchView{flows, absent_bound};
  }
};

/// Classic Space-Saving union with min-error offsets: keys present in both
/// views sum their estimates and error bounds; a key present in only one
/// view adds the other view's absent bound to both (the other sketch may
/// have counted it up to that much before eviction). Every merged estimate
/// therefore still overestimates its true combined count by at most its
/// merged error bound, and that bound is at most the sum of the per-view
/// bounds (per-key error or absent bound). `capacity` > 0 truncates the
/// result to the top `capacity` estimates, widening absent_bound to the
/// largest dropped estimate; 0 keeps everything. Output is sorted
/// estimate-descending with key tie-breaks, so merges are deterministic
/// regardless of input order.
[[nodiscard]] MergedSketch space_saving_union(const SketchView& a,
                                              const SketchView& b,
                                              std::size_t capacity);

}  // namespace flowrank::estimators
