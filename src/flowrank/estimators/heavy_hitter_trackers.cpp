#include "flowrank/estimators/heavy_hitter_trackers.hpp"

#include <algorithm>
#include <limits>
#include <random>
#include <stdexcept>

namespace flowrank::estimators {

SampleAndHold::SampleAndHold(double hold_probability, std::size_t capacity,
                             std::uint64_t seed)
    : hold_probability_(hold_probability),
      capacity_(capacity),
      engine_(util::make_engine(seed, 0x5A11u)) {
  if (!(hold_probability > 0.0 && hold_probability <= 1.0)) {
    throw std::invalid_argument("SampleAndHold: hold probability in (0,1]");
  }
}

void SampleAndHold::offer(const packet::FlowKey& key) {
  const auto it = table_.find(key);
  if (it != table_.end()) {
    ++it->second;
    return;
  }
  std::bernoulli_distribution coin(hold_probability_);
  if (!coin(engine_)) return;
  if (capacity_ != 0 && table_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  table_.emplace(key, 1);
}

std::vector<TrackedFlow> SampleAndHold::flows() const {
  std::vector<TrackedFlow> out;
  out.reserve(table_.size());
  const double correction = (1.0 - hold_probability_) / hold_probability_;
  // unordered-ok: consumers sort (top-t) or fold per-key into a map
  for (const auto& [key, count] : table_) {
    out.push_back(TrackedFlow{key, static_cast<double>(count) + correction,
                              /*error_bound=*/correction});
  }
  return out;
}

SpaceSavingTracker::SpaceSavingTracker(std::size_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("SpaceSavingTracker: capacity >= 1");
}

void SpaceSavingTracker::offer(const packet::FlowKey& key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, Entry{1, 0});
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as the
  // worst-case overestimate.
  auto min_it = entries_.begin();
  for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
    if (cur->second.count < min_it->second.count) min_it = cur;
  }
  const std::uint64_t inherited = min_it->second.count;
  entries_.erase(min_it);
  entries_.emplace(key, Entry{inherited + 1, inherited});
}

std::vector<TrackedFlow> SpaceSavingTracker::flows() const {
  std::vector<TrackedFlow> out;
  out.reserve(entries_.size());
  // unordered-ok: consumers sort (top()) or fold per-key into a map
  for (const auto& [key, entry] : entries_) {
    out.push_back(TrackedFlow{key, static_cast<double>(entry.count),
                              static_cast<double>(entry.error)});
  }
  return out;
}

std::vector<TrackedFlow> SpaceSavingTracker::top(std::size_t t) const {
  auto all = flows();
  std::sort(all.begin(), all.end(), [](const TrackedFlow& a, const TrackedFlow& b) {
    if (a.estimated_packets != b.estimated_packets) {
      return a.estimated_packets > b.estimated_packets;
    }
    return a.key < b.key;
  });
  if (t < all.size()) all.resize(t);
  return all;
}

double sketch_absent_bound(std::span<const TrackedFlow> flows,
                           std::size_t capacity) {
  if (capacity == 0 || flows.size() < capacity) return 0.0;
  double min_estimate = std::numeric_limits<double>::infinity();
  for (const TrackedFlow& flow : flows) {
    min_estimate = std::min(min_estimate, flow.estimated_packets);
  }
  return flows.empty() ? 0.0 : min_estimate;
}

MergedSketch space_saving_union(const SketchView& a, const SketchView& b,
                                std::size_t capacity) {
  // Index b for key lookups; entries consumed while walking a are erased,
  // so the leftover set is exactly the b-only keys. Lookup/erase only —
  // no iteration order dependence.
  std::unordered_map<packet::FlowKey, TrackedFlow, packet::FlowKeyHash> b_index;
  b_index.reserve(b.flows.size());
  for (const TrackedFlow& flow : b.flows) b_index.emplace(flow.key, flow);

  MergedSketch merged;
  merged.flows.reserve(a.flows.size() + b.flows.size());
  for (const TrackedFlow& flow : a.flows) {
    TrackedFlow out = flow;
    const auto it = b_index.find(flow.key);
    if (it != b_index.end()) {
      out.estimated_packets += it->second.estimated_packets;
      out.error_bound += it->second.error_bound;
      b_index.erase(it);
    } else {
      // b never tracked this key; it may still have counted it up to b's
      // minimum before eviction — the min-error offset.
      out.estimated_packets += b.absent_bound;
      out.error_bound += b.absent_bound;
    }
    merged.flows.push_back(out);
  }
  for (const TrackedFlow& flow : b.flows) {
    const auto it = b_index.find(flow.key);
    if (it == b_index.end()) continue;  // consumed: present in a too
    TrackedFlow out = flow;
    out.estimated_packets += a.absent_bound;
    out.error_bound += a.absent_bound;
    merged.flows.push_back(out);
    b_index.erase(it);
  }

  std::sort(merged.flows.begin(), merged.flows.end(),
            [](const TrackedFlow& x, const TrackedFlow& y) {
              if (x.estimated_packets != y.estimated_packets) {
                return x.estimated_packets > y.estimated_packets;
              }
              return x.key < y.key;
            });
  merged.absent_bound = a.absent_bound + b.absent_bound;
  if (capacity > 0 && merged.flows.size() > capacity) {
    // A dropped key's true count is at most its (over-)estimate; future
    // folds must treat it as potentially that large.
    merged.absent_bound =
        std::max(merged.absent_bound, merged.flows[capacity].estimated_packets);
    merged.flows.resize(capacity);
  }
  return merged;
}

}  // namespace flowrank::estimators
