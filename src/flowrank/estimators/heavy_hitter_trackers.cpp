#include "flowrank/estimators/heavy_hitter_trackers.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace flowrank::estimators {

SampleAndHold::SampleAndHold(double hold_probability, std::size_t capacity,
                             std::uint64_t seed)
    : hold_probability_(hold_probability),
      capacity_(capacity),
      engine_(util::make_engine(seed, 0x5A11u)) {
  if (!(hold_probability > 0.0 && hold_probability <= 1.0)) {
    throw std::invalid_argument("SampleAndHold: hold probability in (0,1]");
  }
}

void SampleAndHold::offer(const packet::FlowKey& key) {
  const auto it = table_.find(key);
  if (it != table_.end()) {
    ++it->second;
    return;
  }
  std::bernoulli_distribution coin(hold_probability_);
  if (!coin(engine_)) return;
  if (capacity_ != 0 && table_.size() >= capacity_) {
    ++overflow_;
    return;
  }
  table_.emplace(key, 1);
}

std::vector<TrackedFlow> SampleAndHold::flows() const {
  std::vector<TrackedFlow> out;
  out.reserve(table_.size());
  const double correction = (1.0 - hold_probability_) / hold_probability_;
  // unordered-ok: consumers sort (top-t) or fold per-key into a map
  for (const auto& [key, count] : table_) {
    out.push_back(TrackedFlow{key, static_cast<double>(count) + correction,
                              /*error_bound=*/correction});
  }
  return out;
}

SpaceSavingTracker::SpaceSavingTracker(std::size_t capacity) : capacity_(capacity) {
  if (capacity < 1) throw std::invalid_argument("SpaceSavingTracker: capacity >= 1");
}

void SpaceSavingTracker::offer(const packet::FlowKey& key) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
    return;
  }
  if (entries_.size() < capacity_) {
    entries_.emplace(key, Entry{1, 0});
    return;
  }
  // Evict the minimum-count entry; the newcomer inherits its count as the
  // worst-case overestimate.
  auto min_it = entries_.begin();
  for (auto cur = entries_.begin(); cur != entries_.end(); ++cur) {
    if (cur->second.count < min_it->second.count) min_it = cur;
  }
  const std::uint64_t inherited = min_it->second.count;
  entries_.erase(min_it);
  entries_.emplace(key, Entry{inherited + 1, inherited});
}

std::vector<TrackedFlow> SpaceSavingTracker::flows() const {
  std::vector<TrackedFlow> out;
  out.reserve(entries_.size());
  // unordered-ok: consumers sort (top()) or fold per-key into a map
  for (const auto& [key, entry] : entries_) {
    out.push_back(TrackedFlow{key, static_cast<double>(entry.count),
                              static_cast<double>(entry.error)});
  }
  return out;
}

std::vector<TrackedFlow> SpaceSavingTracker::top(std::size_t t) const {
  auto all = flows();
  std::sort(all.begin(), all.end(), [](const TrackedFlow& a, const TrackedFlow& b) {
    if (a.estimated_packets != b.estimated_packets) {
      return a.estimated_packets > b.estimated_packets;
    }
    return a.key < b.key;
  });
  if (t < all.size()) all.resize(t);
  return all;
}

}  // namespace flowrank::estimators
