// Adaptive sampling-rate control — the paper's third future-work
// direction: "adaptive schemes that set the sampling rate based on the
// characteristics of the observed traffic".
//
// Per measurement interval the controller: (1) inverts the observed
// sampled flows into estimates of the flow population N and the Pareto
// tail index beta (Hill estimator on inverted sizes), then (2) asks the
// analytic planner for the minimal rate meeting the accuracy target at
// those estimated characteristics, clamped to an operating range.
#pragma once

#include <cstdint>
#include <span>

#include "flowrank/core/sampling_planner.hpp"

namespace flowrank::estimators {

/// Controller configuration.
struct AdaptiveRateConfig {
  std::int64_t top_t = 10;       ///< flows to rank/detect
  double target_metric = 1.0;    ///< acceptability line (paper: 1 swap)
  core::PlannerGoal goal = core::PlannerGoal::kDetectTopT;
  double min_rate = 1e-4;        ///< floor (router guidance: 0.1%)
  double max_rate = 0.5;         ///< ceiling
  double hill_fraction = 0.05;   ///< top fraction of flows fed to Hill
  double ema_weight = 0.5;       ///< smoothing of consecutive decisions
};

/// What the controller inferred and decided for one interval.
struct AdaptiveRateDecision {
  double next_rate = 0.0;        ///< rate to use for the next interval
  double estimated_flows = 0.0;  ///< N̂ for the interval
  double estimated_beta = 0.0;   ///< Hill tail-index estimate
  bool feasible = true;          ///< planner target reachable within range
};

/// Stateful controller; feed it each interval's observations.
class AdaptiveRateController {
 public:
  explicit AdaptiveRateController(AdaptiveRateConfig config);

  /// Observes one interval sampled at `current_rate`: the sampled sizes
  /// (packets per sampled flow, zeros excluded) and decides the next rate.
  /// Throws std::invalid_argument on empty observations or bad rate.
  [[nodiscard]] AdaptiveRateDecision observe(
      std::span<const std::uint64_t> sampled_flow_sizes, double current_rate);

  [[nodiscard]] const AdaptiveRateConfig& config() const noexcept { return config_; }
  [[nodiscard]] double current_rate() const noexcept { return smoothed_rate_; }

 private:
  AdaptiveRateConfig config_;
  double smoothed_rate_;
};

}  // namespace flowrank::estimators
