#include "flowrank/estimators/tcp_seq.hpp"

#include <stdexcept>

namespace flowrank::estimators {

SeqSizeEstimate estimate_size_tcp_seq(const flowtable::FlowCounter& counter, double p,
                                      std::uint32_t packet_size_bytes) {
  if (!(p > 0.0 && p <= 1.0)) {
    throw std::invalid_argument("estimate_size_tcp_seq: p in (0,1]");
  }
  if (packet_size_bytes == 0) {
    throw std::invalid_argument("estimate_size_tcp_seq: packet_size > 0");
  }
  SeqSizeEstimate out;
  if (counter.has_tcp_seq && counter.packets >= 2 &&
      counter.max_tcp_seq > counter.min_tcp_seq) {
    const double covered_packets =
        static_cast<double>(counter.max_tcp_seq - counter.min_tcp_seq) /
            static_cast<double>(packet_size_bytes) +
        1.0;
    // Unsampled head and tail: each Geometric(p) with mean (1-p)/p packets.
    out.packets = covered_packets + 2.0 * (1.0 - p) / p;
    out.used_seq = true;
    return out;
  }
  out.packets = static_cast<double>(counter.packets) / p;
  out.used_seq = false;
  return out;
}

}  // namespace flowrank::estimators
