// The paper's swapped-pair performance metrics, computed on realizations.
//
// Given each flow's true size and sampled size, we count:
//  * ranking metric (Sec. 5.1): swapped pairs whose first element is a
//    true top-t flow and whose second element is any other flow
//    ((2N-t-1)t/2 pairs in total);
//  * detection metric (Sec. 7.1): swapped pairs whose first element is a
//    true top-t flow and whose second element is outside the top-t
//    (t(N-t) pairs).
//
// A pair of distinct true sizes S_i > S_j counts as swapped when the
// sampled sizes satisfy s_i <= s_j — sampled ties count as swaps, exactly
// the Pm(S1,S2) = P{s_small >= s_big} convention of Sec. 3. Pairs of equal
// true size count as swapped unless both sampled sizes are equal and
// non-zero (Sec. 3's equal-size convention). A lenient policy (ties are
// fine) is provided for sensitivity analysis.
//
// The Monte-Carlo sweeps evaluate the same true population against
// hundreds of sampled realizations (one per run). Everything that depends
// only on (true_sizes, t) — the descending true order, the extents of
// equal-true-size runs, the pair-count denominators — is therefore hoisted
// into RankMetricsContext, built once per bin; evaluate() then costs one
// Fenwick pass over the sampled sizes per run, with no true-side sort.
// compute_rank_metrics() remains as the one-shot convenience (build a
// context, evaluate once).
//
// Complexity: O(N log N) per evaluation via a Fenwick tree over compressed
// sampled sizes; context construction adds one O(N log N) sort, paid once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace flowrank::metrics {

/// How sampled-size ties between distinct-size flows are scored.
enum class TiePolicy {
  kPaper,    ///< tie counts as a swap (the paper's convention)
  kLenient,  ///< tie is not a swap unless both flows vanished (size 0)
};

/// Output of one metric evaluation.
struct RankMetricsResult {
  double ranking_swapped = 0.0;    ///< swapped pairs, ranking definition
  double detection_swapped = 0.0;  ///< swapped pairs, detection definition
  double ranking_pairs = 0.0;      ///< (2N-t-1) t / 2
  double detection_pairs = 0.0;    ///< t (N-t)
  double top_set_recall = 0.0;     ///< |true top-t ∩ sampled top-t| / t
};

/// Run-invariant state of one (true_sizes, t) population, reusable across
/// any number of sampled realizations.
///
/// Not safe for concurrent evaluate() calls on the same instance (it owns
/// reusable scratch buffers); give each worker its own context.
class RankMetricsContext {
 public:
  /// Copies what it needs from `true_sizes`; the span need not outlive
  /// the context. Requires N >= 1 and 1 <= t <= N; throws
  /// std::invalid_argument otherwise. The true top-t is chosen by size
  /// descending with index ascending as the deterministic tie-break.
  RankMetricsContext(std::span<const std::uint64_t> true_sizes, std::size_t t);

  /// Scores one sampled realization against the fixed true population.
  /// `sampled_sizes[i]` must describe the same flow i the context's
  /// `true_sizes[i]` did; throws std::invalid_argument on a length
  /// mismatch. Identical output to compute_rank_metrics() on the same
  /// inputs.
  [[nodiscard]] RankMetricsResult evaluate(
      std::span<const std::uint64_t> sampled_sizes,
      TiePolicy policy = TiePolicy::kPaper);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t t() const noexcept { return t_; }

 private:
  std::size_t n_ = 0;
  std::size_t t_ = 0;
  /// Flow indices in true order: size descending, index ascending.
  std::vector<std::uint32_t> order_;
  /// equal_run_end_[r] (r < t): one past the last position whose true size
  /// equals position r's — equal-true-size runs are contiguous in order_.
  std::vector<std::uint32_t> equal_run_end_;
  double ranking_pairs_ = 0.0;    ///< (2N-t-1) t / 2
  double detection_pairs_ = 0.0;  ///< t (N-t)

  // Per-evaluate scratch, reused across runs to keep the sweep hot loop
  // allocation-free after the first evaluation.
  std::vector<std::uint64_t> values_;  ///< sorted unique samples (sparse mode)
  std::vector<std::uint64_t> fenwick_;     ///< Fenwick tree over values_
  std::vector<std::uint64_t> suffix_geq_;  ///< distinct-rule swap counts
  std::vector<std::uint64_t> suffix_zeros_;  ///< zero-sample counts after r
  std::vector<std::uint32_t> sampled_order_;  ///< recall's sampled top-t
  std::vector<bool> in_sampled_top_;
};

/// Computes all metrics for one realization (one-shot: builds a context
/// and evaluates once — callers scoring many realizations of the same
/// true population should hold a RankMetricsContext instead).
///
/// `true_sizes[i]` and `sampled_sizes[i]` describe flow i. Requires equal
/// lengths, N >= 1 and 1 <= t <= N; throws std::invalid_argument otherwise.
/// The true top-t is chosen by size descending with index ascending as the
/// deterministic tie-break (and the same rule on sampled sizes for recall).
[[nodiscard]] RankMetricsResult compute_rank_metrics(
    std::span<const std::uint64_t> true_sizes,
    std::span<const std::uint64_t> sampled_sizes, std::size_t t,
    TiePolicy policy = TiePolicy::kPaper);

}  // namespace flowrank::metrics
