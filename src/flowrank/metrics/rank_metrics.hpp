// The paper's swapped-pair performance metrics, computed on realizations.
//
// Given each flow's true size and sampled size, we count:
//  * ranking metric (Sec. 5.1): swapped pairs whose first element is a
//    true top-t flow and whose second element is any other flow
//    ((2N-t-1)t/2 pairs in total);
//  * detection metric (Sec. 7.1): swapped pairs whose first element is a
//    true top-t flow and whose second element is outside the top-t
//    (t(N-t) pairs).
//
// A pair of distinct true sizes S_i > S_j counts as swapped when the
// sampled sizes satisfy s_i <= s_j — sampled ties count as swaps, exactly
// the Pm(S1,S2) = P{s_small >= s_big} convention of Sec. 3. Pairs of equal
// true size count as swapped unless both sampled sizes are equal and
// non-zero (Sec. 3's equal-size convention). A lenient policy (ties are
// fine) is provided for sensitivity analysis.
//
// Complexity: O(N log N) via a Fenwick tree over compressed sampled sizes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace flowrank::metrics {

/// How sampled-size ties between distinct-size flows are scored.
enum class TiePolicy {
  kPaper,    ///< tie counts as a swap (the paper's convention)
  kLenient,  ///< tie is not a swap unless both flows vanished (size 0)
};

/// Output of one metric evaluation.
struct RankMetricsResult {
  double ranking_swapped = 0.0;    ///< swapped pairs, ranking definition
  double detection_swapped = 0.0;  ///< swapped pairs, detection definition
  double ranking_pairs = 0.0;      ///< (2N-t-1) t / 2
  double detection_pairs = 0.0;    ///< t (N-t)
  double top_set_recall = 0.0;     ///< |true top-t ∩ sampled top-t| / t
};

/// Computes all metrics for one realization.
///
/// `true_sizes[i]` and `sampled_sizes[i]` describe flow i. Requires equal
/// lengths, N >= 1 and 1 <= t <= N; throws std::invalid_argument otherwise.
/// The true top-t is chosen by size descending with index ascending as the
/// deterministic tie-break (and the same rule on sampled sizes for recall).
[[nodiscard]] RankMetricsResult compute_rank_metrics(
    std::span<const std::uint64_t> true_sizes,
    std::span<const std::uint64_t> sampled_sizes, std::size_t t,
    TiePolicy policy = TiePolicy::kPaper);

}  // namespace flowrank::metrics
