#include "flowrank/metrics/rank_metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace flowrank::metrics {

namespace {

/// True if a pair with distinct true sizes is swapped under the policy.
/// `s_big` samples the larger flow, `s_small` the smaller one.
bool swapped_distinct(std::uint64_t s_big, std::uint64_t s_small, TiePolicy policy) {
  if (policy == TiePolicy::kPaper) return s_big <= s_small;
  // Lenient: only a strict inversion, or both flows lost entirely.
  return s_big < s_small || (s_big == 0 && s_small == 0);
}

/// True if a pair with equal true sizes is swapped under the policy.
bool swapped_equal(std::uint64_t sa, std::uint64_t sb, TiePolicy policy) {
  if (policy == TiePolicy::kPaper) return sa != sb || sa == 0;
  return sa == 0 && sb == 0;
}

/// Fenwick add over a zeroed tree vector (tree.size() = ranks + 1).
inline void fenwick_add(std::vector<std::uint64_t>& tree, std::size_t rank) {
  for (std::size_t i = rank + 1; i < tree.size(); i += i & (~i + 1)) ++tree[i];
}

/// Number of inserted elements with compressed rank <= `rank`.
inline std::uint64_t fenwick_count_leq(const std::vector<std::uint64_t>& tree,
                                       std::size_t rank) {
  std::uint64_t acc = 0;
  for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) acc += tree[i];
  return acc;
}

}  // namespace

RankMetricsContext::RankMetricsContext(std::span<const std::uint64_t> true_sizes,
                                       std::size_t t)
    : n_(true_sizes.size()), t_(t) {
  if (n_ == 0 || t_ < 1 || t_ > n_) {
    throw std::invalid_argument("RankMetricsContext: requires 1 <= t <= N");
  }

  // True ranking: size descending, index ascending.
  order_.resize(n_);
  std::iota(order_.begin(), order_.end(), 0u);
  std::sort(order_.begin(), order_.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (true_sizes[a] != true_sizes[b]) return true_sizes[a] > true_sizes[b];
    return a < b;
  });

  // Extent of each top-t position's equal-true-size run (contiguous in
  // order_, so positions sharing a run share the end).
  equal_run_end_.resize(t_);
  for (std::size_t r = 0; r < t_; ++r) {
    const std::uint64_t size_r = true_sizes[order_[r]];
    if (r > 0 && true_sizes[order_[r - 1]] == size_r) {
      equal_run_end_[r] = equal_run_end_[r - 1];
      continue;
    }
    std::size_t q = r + 1;
    while (q < n_ && true_sizes[order_[q]] == size_r) ++q;
    equal_run_end_[r] = static_cast<std::uint32_t>(q);
  }

  const double nd = static_cast<double>(n_);
  const double td = static_cast<double>(t_);
  ranking_pairs_ = 0.5 * (2.0 * nd - td - 1.0) * td;
  detection_pairs_ = td * (nd - td);
}

RankMetricsResult RankMetricsContext::evaluate(
    std::span<const std::uint64_t> sampled_sizes, TiePolicy policy) {
  if (sampled_sizes.size() != n_) {
    throw std::invalid_argument("RankMetricsContext: size mismatch");
  }

  // Rank function for the Fenwick tree. Small sampled sizes — the common
  // case under thinning, where a bin's samples rarely exceed a few
  // thousand — index the tree by value directly; only large, sparse size
  // ranges pay the O(N log N) sort-compress. Both modes rank every value
  // identically (count_leq(rank(v)) counts exactly the samples <= v), so
  // the choice never changes a result, only the constant factor.
  std::uint64_t max_sample = 0;
  for (const std::uint64_t s : sampled_sizes) max_sample = std::max(max_sample, s);
  constexpr std::uint64_t kDirectFenwickCap = 1u << 16;
  // Direct mode must also be cheap relative to N: zeroing a value-indexed
  // tree costs O(max_sample), which a small bin with moderately large
  // samples should not pay (16·N words is well under one N log N sort).
  const bool direct = max_sample < kDirectFenwickCap &&
                      max_sample < 16 * static_cast<std::uint64_t>(n_);
  std::size_t rank_count;
  if (direct) {
    rank_count = static_cast<std::size_t>(max_sample) + 1;
  } else {
    values_.assign(sampled_sizes.begin(), sampled_sizes.end());
    std::sort(values_.begin(), values_.end());
    values_.erase(std::unique(values_.begin(), values_.end()), values_.end());
    rank_count = values_.size();
  }
  const auto rank_of = [&](std::uint64_t v) {
    if (direct) return static_cast<std::size_t>(v);
    return static_cast<std::size_t>(
        std::lower_bound(values_.begin(), values_.end(), v) - values_.begin());
  };

  // Scan true order from the back, inserting sampled sizes; when reaching a
  // top-t position r, all flows ranked after r are in the tree, so
  // "#suffix with s_j >= s_r" is one Fenwick query. The query applies the
  // distinct-size rule; pairs with equal TRUE size inside the suffix are
  // then corrected to the equal-size rule, and top-vs-top pairs are
  // re-derived exactly for the detection metric. The count of zero samples
  // already inserted rides along for free — one counter instead of the
  // O(t·N) per-row rescans the lenient policy used to pay.
  fenwick_.assign(rank_count + 1, 0);
  suffix_geq_.assign(t_, 0);
  suffix_zeros_.assign(t_, 0);
  std::uint64_t inserted = 0;
  std::uint64_t zeros_inserted = 0;
  for (std::size_t pos = n_; pos-- > 0;) {
    if (pos < t_) {
      const std::uint64_t s_r = sampled_sizes[order_[pos]];
      std::uint64_t geq;
      if (policy == TiePolicy::kPaper) {
        // s_j >= s_r  <=>  total - count(s_j <= s_r - 1); careful with 0.
        const std::uint64_t below =
            s_r == 0
                ? 0
                : (rank_of(s_r) == 0 ? 0
                                     : fenwick_count_leq(fenwick_, rank_of(s_r) - 1));
        geq = inserted - below;
      } else {
        // strict s_j > s_r
        geq = inserted - fenwick_count_leq(fenwick_, rank_of(s_r));
      }
      suffix_geq_[pos] = geq;
      suffix_zeros_[pos] = zeros_inserted;
    }
    const std::uint64_t s = sampled_sizes[order_[pos]];
    fenwick_add(fenwick_, rank_of(s));
    ++inserted;
    if (s == 0) ++zeros_inserted;
  }

  double ranking_swapped = 0.0;
  double detection_swapped = 0.0;

  for (std::size_t r = 0; r < t_; ++r) {
    const std::uint32_t i = order_[r];
    const std::uint64_t s_i = sampled_sizes[i];

    double count = static_cast<double>(suffix_geq_[r]);
    if (policy == TiePolicy::kLenient && s_i == 0) {
      // Lenient distinct rule also swaps when both are zero; the Fenwick
      // query counted only strict inversions. Both-zero pairs are added in
      // the equal/zero correction below only for equal true sizes, so add
      // the distinct-size both-zero pairs here (equal-true-size zeros get
      // corrected below together with the rest).
      count += static_cast<double>(suffix_zeros_[r]);
    }

    // Correct pairs whose TRUE sizes are equal (contiguous run after r).
    for (std::size_t q = r + 1; q < equal_run_end_[r]; ++q) {
      const std::uint64_t s_j = sampled_sizes[order_[q]];
      const bool counted = swapped_distinct(s_i, s_j, policy);
      const bool correct = swapped_equal(s_i, s_j, policy);
      count += static_cast<double>(correct) - static_cast<double>(counted);
    }

    ranking_swapped += count;

    // Detection: remove pairs whose second element is also a top-t flow.
    double top_top = 0.0;
    for (std::size_t q = r + 1; q < t_; ++q) {
      const std::uint64_t s_j = sampled_sizes[order_[q]];
      const bool swapped = q < equal_run_end_[r] ? swapped_equal(s_i, s_j, policy)
                                                 : swapped_distinct(s_i, s_j, policy);
      if (swapped) top_top += 1.0;
    }
    detection_swapped += count - top_top;
  }

  // Sampled top-t set for recall, same deterministic tie-break.
  sampled_order_.resize(n_);
  std::iota(sampled_order_.begin(), sampled_order_.end(), 0u);
  std::nth_element(sampled_order_.begin(),
                   sampled_order_.begin() + static_cast<std::ptrdiff_t>(t_ - 1),
                   sampled_order_.end(), [&](std::uint32_t a, std::uint32_t b) {
                     if (sampled_sizes[a] != sampled_sizes[b]) {
                       return sampled_sizes[a] > sampled_sizes[b];
                     }
                     return a < b;
                   });
  in_sampled_top_.assign(n_, false);
  for (std::size_t r = 0; r < t_; ++r) in_sampled_top_[sampled_order_[r]] = true;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < t_; ++r) {
    if (in_sampled_top_[order_[r]]) ++hits;
  }

  RankMetricsResult result;
  result.ranking_swapped = ranking_swapped;
  result.detection_swapped = detection_swapped;
  result.ranking_pairs = ranking_pairs_;
  result.detection_pairs = detection_pairs_;
  result.top_set_recall = static_cast<double>(hits) / static_cast<double>(t_);
  return result;
}

RankMetricsResult compute_rank_metrics(std::span<const std::uint64_t> true_sizes,
                                       std::span<const std::uint64_t> sampled_sizes,
                                       std::size_t t, TiePolicy policy) {
  if (sampled_sizes.size() != true_sizes.size()) {
    throw std::invalid_argument("compute_rank_metrics: size mismatch");
  }
  RankMetricsContext context(true_sizes, t);
  return context.evaluate(sampled_sizes, policy);
}

}  // namespace flowrank::metrics
