#include "flowrank/metrics/rank_metrics.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace flowrank::metrics {

namespace {

/// Fenwick (binary indexed) tree counting elements by compressed rank.
class Fenwick {
 public:
  explicit Fenwick(std::size_t size) : tree_(size + 1, 0) {}

  void add(std::size_t rank) {
    for (std::size_t i = rank + 1; i < tree_.size(); i += i & (~i + 1)) {
      ++tree_[i];
    }
    ++total_count_;
  }

  /// Number of inserted elements with compressed rank <= `rank`.
  [[nodiscard]] std::uint64_t count_leq(std::size_t rank) const {
    std::uint64_t acc = 0;
    for (std::size_t i = rank + 1; i > 0; i -= i & (~i + 1)) acc += tree_[i];
    return acc;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_count_; }

 private:
  std::vector<std::uint64_t> tree_;
  std::uint64_t total_count_ = 0;
};

/// True if a pair with distinct true sizes is swapped under the policy.
/// `s_big` samples the larger flow, `s_small` the smaller one.
bool swapped_distinct(std::uint64_t s_big, std::uint64_t s_small, TiePolicy policy) {
  if (policy == TiePolicy::kPaper) return s_big <= s_small;
  // Lenient: only a strict inversion, or both flows lost entirely.
  return s_big < s_small || (s_big == 0 && s_small == 0);
}

/// True if a pair with equal true sizes is swapped under the policy.
bool swapped_equal(std::uint64_t sa, std::uint64_t sb, TiePolicy policy) {
  if (policy == TiePolicy::kPaper) return sa != sb || sa == 0;
  return sa == 0 && sb == 0;
}

}  // namespace

RankMetricsResult compute_rank_metrics(std::span<const std::uint64_t> true_sizes,
                                       std::span<const std::uint64_t> sampled_sizes,
                                       std::size_t t, TiePolicy policy) {
  const std::size_t n = true_sizes.size();
  if (sampled_sizes.size() != n) {
    throw std::invalid_argument("compute_rank_metrics: size mismatch");
  }
  if (n == 0 || t < 1 || t > n) {
    throw std::invalid_argument("compute_rank_metrics: requires 1 <= t <= N");
  }

  // True ranking: size descending, index ascending.
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (true_sizes[a] != true_sizes[b]) return true_sizes[a] > true_sizes[b];
    return a < b;
  });

  // Compress sampled sizes to ranks for the Fenwick tree.
  std::vector<std::uint64_t> values(sampled_sizes.begin(), sampled_sizes.end());
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  const auto rank_of = [&](std::uint64_t v) {
    return static_cast<std::size_t>(
        std::lower_bound(values.begin(), values.end(), v) - values.begin());
  };

  // Scan true order from the back, inserting sampled sizes; when reaching a
  // top-t position r, all flows ranked after r are in the tree, so
  // "#suffix with s_j >= s_r" is one Fenwick query. The query applies the
  // distinct-size rule; pairs with equal TRUE size inside the suffix are
  // then corrected to the equal-size rule, and top-vs-top pairs are
  // re-derived exactly for the detection metric.
  Fenwick tree(values.size());
  std::vector<std::uint64_t> suffix_geq(t, 0);  // distinct-rule swap count at r
  for (std::size_t pos = n; pos-- > 0;) {
    if (pos < t) {
      const std::uint64_t s_r = sampled_sizes[order[pos]];
      std::uint64_t geq;
      if (policy == TiePolicy::kPaper) {
        // s_j >= s_r  <=>  total - count(s_j <= s_r - 1); careful with 0.
        const std::uint64_t below =
            s_r == 0 ? 0
                     : (rank_of(s_r) == 0 ? 0 : tree.count_leq(rank_of(s_r) - 1));
        geq = tree.total() - below;
      } else {
        // strict s_j > s_r
        geq = tree.total() - tree.count_leq(rank_of(s_r));
      }
      suffix_geq[pos] = geq;
    }
    tree.add(rank_of(sampled_sizes[order[pos]]));
  }

  double ranking_swapped = 0.0;
  double detection_swapped = 0.0;

  for (std::size_t r = 0; r < t; ++r) {
    const std::uint32_t i = order[r];
    const std::uint64_t s_i = sampled_sizes[i];
    const std::uint64_t size_i = true_sizes[i];

    double count = static_cast<double>(suffix_geq[r]);
    if (policy == TiePolicy::kLenient) {
      // Lenient distinct rule also swaps when both are zero; the Fenwick
      // query counted only strict inversions. Both-zero pairs are added in
      // the equal/zero correction below only for equal true sizes, so add
      // the distinct-size both-zero pairs here.
      if (s_i == 0) {
        // every suffix flow with sampled 0 and distinct true size
        std::uint64_t zeros_after = 0;
        for (std::size_t q = r + 1; q < n; ++q) {
          if (sampled_sizes[order[q]] == 0) ++zeros_after;
        }
        count += static_cast<double>(zeros_after);
        // equal-true-size zeros get corrected below together with the rest
      }
    }

    // Correct pairs whose TRUE sizes are equal (contiguous run after r).
    for (std::size_t q = r + 1; q < n && true_sizes[order[q]] == size_i; ++q) {
      const std::uint64_t s_j = sampled_sizes[order[q]];
      const bool counted = swapped_distinct(s_i, s_j, policy);
      const bool correct = swapped_equal(s_i, s_j, policy);
      count += static_cast<double>(correct) - static_cast<double>(counted);
    }

    ranking_swapped += count;

    // Detection: remove pairs whose second element is also a top-t flow.
    double top_top = 0.0;
    for (std::size_t q = r + 1; q < t; ++q) {
      const std::uint32_t j = order[q];
      const std::uint64_t s_j = sampled_sizes[j];
      const bool swapped = true_sizes[j] == size_i ? swapped_equal(s_i, s_j, policy)
                                                   : swapped_distinct(s_i, s_j, policy);
      if (swapped) top_top += 1.0;
    }
    detection_swapped += count - top_top;
  }

  // Sampled top-t set for recall, same deterministic tie-break.
  std::vector<std::uint32_t> sampled_order(n);
  std::iota(sampled_order.begin(), sampled_order.end(), 0u);
  std::nth_element(sampled_order.begin(),
                   sampled_order.begin() + static_cast<std::ptrdiff_t>(t - 1),
                   sampled_order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     if (sampled_sizes[a] != sampled_sizes[b]) {
                       return sampled_sizes[a] > sampled_sizes[b];
                     }
                     return a < b;
                   });
  std::vector<bool> in_sampled_top(n, false);
  for (std::size_t r = 0; r < t; ++r) in_sampled_top[sampled_order[r]] = true;
  std::size_t hits = 0;
  for (std::size_t r = 0; r < t; ++r) {
    if (in_sampled_top[order[r]]) ++hits;
  }

  RankMetricsResult result;
  result.ranking_swapped = ranking_swapped;
  result.detection_swapped = detection_swapped;
  const double nd = static_cast<double>(n);
  const double td = static_cast<double>(t);
  result.ranking_pairs = 0.5 * (2.0 * nd - td - 1.0) * td;
  result.detection_pairs = td * (nd - td);
  result.top_set_recall = static_cast<double>(hits) / td;
  return result;
}

}  // namespace flowrank::metrics
