#include "flowrank/monitor/monitor_loop.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <span>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/fault_injection.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/rng.hpp"
#include "flowrank/util/sync.hpp"
#include "flowrank/util/thread_annotations.hpp"

namespace flowrank::monitor {

namespace {

/// Sampled packet counts of one window, merged across shards. Merging is
/// order-insensitive integer addition, so the result is identical at any
/// shard count.
using WindowCounts =
    std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash>;

/// Per-window sampled counts, keyed by window index, folded in by the
/// shard flush callbacks (concurrently, from pool workers) and drained by
/// the driver. Holds only windows not yet completed (normally one).
class WindowAccumulator {
 public:
  /// Merges one shard's flushed table into `window`'s counts. Called from
  /// the flushing worker's thread, concurrently across shards.
  void fold(std::size_t window, const flowtable::FlowTable& table) {
    util::MutexLock lock(mutex_);
    WindowCounts& acc = windows_[window];
    table.for_each_all([&acc](const flowtable::FlowCounter& flow) {
      acc[flow.key] += flow.packets;  // re-merges idle-timeout subflows
    });
  }

  /// Removes and returns `window`'s counts (empty if nothing flushed).
  [[nodiscard]] WindowCounts take(std::size_t window) {
    util::MutexLock lock(mutex_);
    WindowCounts out;
    const auto it = windows_.find(window);
    if (it != windows_.end()) {
      out = std::move(it->second);
      windows_.erase(it);
    }
    return out;
  }

  /// Window indices still holding counts, ascending (std::map order).
  [[nodiscard]] std::vector<std::size_t> pending_windows() const {
    util::MutexLock lock(mutex_);
    std::vector<std::size_t> out;
    out.reserve(windows_.size());
    for (const auto& [window, counts] : windows_) out.push_back(window);
    return out;
  }

 private:
  mutable util::Mutex mutex_;
  std::map<std::size_t, WindowCounts> windows_ FR_GUARDED_BY(mutex_);
};

/// Seed stream for the degradation thinner; each halving reseeds so the
/// thinned subset is deterministic in (seed, degradation number).
constexpr std::uint64_t kThinnerStream = 0x5EDD'0001;

constexpr std::uint32_t kMaxDegradeLevel = 20;  // rate floor: base / 2^20

}  // namespace

std::vector<std::string> snapshot_columns() {
  return {"snapshot",        "window",          "time_s",
          "top1_est",        "topt_est",        "tracked_flows",
          "window_flows",    "window_packets",  "churn_entered",
          "churn_exited",    "rank_moves",      "effective_rate",
          "packets_offered", "packets_sampled", "packets_ingested",
          "shed_packets",    "degradations",    "pipeline_shed_packets",
          "queue_full_events", "corrupt_records", "truncated_records",
          "stall_events",    "watchdog_rotations", "windows"};
}

report::Row snapshot_row(const MonitorSnapshot& snap) {
  const double top1 = snap.top.empty() ? 0.0 : snap.top.front().estimate;
  const double topt = snap.top.empty() ? 0.0 : snap.top.back().estimate;
  const MonitorCounters& c = snap.counters;
  return report::Row{
      snap.index,
      snap.window,
      snap.time_s,
      top1,
      topt,
      static_cast<std::uint64_t>(snap.tracked_flows),
      static_cast<std::uint64_t>(snap.window_flows),
      snap.window_packets,
      static_cast<std::uint64_t>(snap.churn_entered),
      static_cast<std::uint64_t>(snap.churn_exited),
      static_cast<std::uint64_t>(snap.rank_moves),
      snap.effective_rate,
      c.packets_offered,
      c.packets_sampled,
      c.packets_ingested,
      c.shed_packets,
      c.degradations,
      c.pipeline_shed_packets,
      c.queue_full_events,
      c.corrupt_records,
      c.truncated_records,
      c.stall_events,
      c.watchdog_rotations,
      c.windows,
  };
}

MonitorLoop::MonitorLoop(std::shared_ptr<const trace::TraceSource> source,
                         MonitorConfig config)
    : source_(std::move(source)), config_(config) {
  if (!source_) {
    throw std::invalid_argument("monitor: trace source must not be null");
  }
  if (!(config_.window_s > 0.0)) {
    throw std::invalid_argument("monitor: window_s must be > 0");
  }
  if (!(config_.sampling_rate > 0.0 && config_.sampling_rate <= 1.0)) {
    throw std::invalid_argument("monitor: sampling_rate must be in (0, 1]");
  }
  if (!(config_.ewma_alpha > 0.0 && config_.ewma_alpha <= 1.0)) {
    throw std::invalid_argument("monitor: ewma_alpha must be in (0, 1]");
  }
  if (config_.snapshot_every < 1) {
    throw std::invalid_argument("monitor: snapshot_every must be >= 1");
  }
  if (config_.top_t < 1) {
    throw std::invalid_argument("monitor: top_t must be >= 1");
  }
  if (config_.batch_packets < 1) {
    throw std::invalid_argument("monitor: batch_packets must be >= 1");
  }
}

MonitorReport MonitorLoop::run(const SnapshotCallback& on_snapshot) {
  if (ran_) throw std::logic_error("monitor: run() may be called once");
  ran_ = true;

  // The fault wrapper, when present, also drives the stall schedule.
  const auto* faulty =
      dynamic_cast<const trace::FaultInjectingTraceSource*>(source_.get());

  MonitorReport report;
  MonitorCounters& counters = report.counters;

  // Materialize and screen the flow records: corrupt/truncated records
  // are dropped and counted here, so the packet expander and everything
  // downstream only ever see well-formed flows. With no faults this
  // passes every record through untouched (order preserved), which is
  // what keeps the no-fault monitor bit-identical to the batch path.
  trace::FlowTrace trace = source_->flows();
  {
    std::vector<packet::FlowRecord> clean;
    clean.reserve(trace.flows.size());
    for (const packet::FlowRecord& flow : trace.flows) {
      switch (trace::classify_record_fault(flow)) {
        case trace::RecordFault::kNone:
          clean.push_back(flow);
          break;
        case trace::RecordFault::kTruncated:
          ++counters.truncated_records;
          break;
        case trace::RecordFault::kCorrupt:
          ++counters.corrupt_records;
          break;
      }
    }
    trace.flows = std::move(clean);
  }

  const std::int64_t window_ns = trace::bin_length_ns(config_.window_s);

  WindowAccumulator accumulator;

  ingest::ShardedPipelineConfig pipeline_config;
  pipeline_config.num_shards = config_.num_shards;
  pipeline_config.num_streams = 1;
  pipeline_config.bin_ns = window_ns;
  pipeline_config.table_options = config_.table_options;
  pipeline_config.max_queue_chunks = config_.max_queue_chunks;
  pipeline_config.chunk_packets = config_.chunk_packets;
  pipeline_config.overload = config_.overload;
  pipeline_config.block_deadline_ms = config_.block_deadline_ms;
  pipeline_config.pool = config_.pool;
  pipeline_config.on_shard_bin = [&](std::size_t /*shard*/,
                                     std::size_t /*stream*/, std::size_t bin,
                                     const flowtable::FlowTable& table) {
    accumulator.fold(bin, table);
  };
  ingest::ShardedPipeline pipeline(pipeline_config);

  // The base sampler is stream-wide (skip state carries across batches
  // and window boundaries), exactly as in the batch packet path.
  trace::PacketStream stream(trace);
  sampler::BernoulliSampler base_sampler(config_.sampling_rate, config_.seed);

  // EWMA tracker. Bounded by eviction: estimates decay while a flow is
  // absent and entries are dropped below evict_below or after
  // max_idle_windows quiet windows.
  struct Tracked {
    double estimate = 0.0;
    std::uint64_t last_window = 0;
  };
  std::unordered_map<packet::FlowKey, Tracked, packet::FlowKeyHash> tracked;

  // Graceful-degradation state (kShed + window_packet_budget only).
  std::uint32_t degrade_level = 0;
  std::unique_ptr<sampler::BernoulliSampler> thinner;
  const auto set_degrade_level = [&](std::uint32_t level) {
    degrade_level = level;
    if (level == 0) {
      thinner.reset();
    } else {
      thinner = std::make_unique<sampler::BernoulliSampler>(
          std::pow(0.5, static_cast<double>(level)),
          util::mix_stream(util::mix_stream(config_.seed, kThinnerStream),
                           counters.degradations));
    }
  };
  const auto effective_rate = [&] {
    return config_.sampling_rate * std::pow(0.5, static_cast<double>(degrade_level));
  };

  std::size_t window = 0;          // window currently being filled
  std::uint64_t window_sampled = 0;  // base-sampled packets in it
  bool overloaded_this_window = false;
  std::uint64_t windows_since_snapshot = 0;
  std::size_t last_window_flows = 0;
  std::uint64_t last_window_packets = 0;
  std::vector<TopFlow> prev_top;

  const auto emit_snapshot = [&](std::uint64_t completed_window,
                                 std::size_t window_flows,
                                 std::uint64_t window_packets) {
    MonitorSnapshot snap;
    snap.index = report.snapshots;
    snap.window = completed_window;
    snap.time_s = static_cast<double>(completed_window + 1) * config_.window_s;
    snap.tracked_flows = tracked.size();
    snap.window_flows = window_flows;
    snap.window_packets = window_packets;
    snap.effective_rate = effective_rate();

    // Canonical top-t: estimate descending, key ascending on ties.
    snap.top.reserve(tracked.size());
    // unordered-ok: fully re-sorted (or partial_sorted) just below
    for (const auto& [key, state] : tracked) {
      snap.top.push_back(TopFlow{key, state.estimate});
    }
    const auto order = [](const TopFlow& a, const TopFlow& b) {
      if (a.estimate != b.estimate) return a.estimate > b.estimate;
      return a.key < b.key;
    };
    if (snap.top.size() > config_.top_t) {
      std::partial_sort(snap.top.begin(), snap.top.begin() + config_.top_t,
                        snap.top.end(), order);
      snap.top.resize(config_.top_t);
    } else {
      std::sort(snap.top.begin(), snap.top.end(), order);
    }

    // Rank churn vs the previous snapshot's top list.
    for (std::size_t rank = 0; rank < snap.top.size(); ++rank) {
      const auto prev = std::find_if(prev_top.begin(), prev_top.end(),
                                     [&](const TopFlow& f) {
                                       return f.key == snap.top[rank].key;
                                     });
      if (prev == prev_top.end()) {
        ++snap.churn_entered;
      } else if (static_cast<std::size_t>(prev - prev_top.begin()) != rank) {
        ++snap.rank_moves;
      }
    }
    for (const TopFlow& old : prev_top) {
      if (std::none_of(snap.top.begin(), snap.top.end(), [&](const TopFlow& f) {
            return f.key == old.key;
          })) {
        ++snap.churn_exited;
      }
    }

    const ingest::OverloadStats stats = pipeline.overload_stats();
    counters.pipeline_shed_packets = stats.shed_packets;
    counters.queue_full_events = stats.queue_full_events;
    snap.counters = counters;

    prev_top = snap.top;
    ++report.snapshots;
    windows_since_snapshot = 0;
    if (on_snapshot) on_snapshot(snap);
  };

  // Folds completed window `w` into the tracker (after its flushes have
  // been collected — i.e. after rotate_epoch(w + 1) or finish()).
  const auto complete_window = [&](std::size_t w) {
    WindowCounts acc = accumulator.take(w);
    const double rate = effective_rate();
    const double alpha = config_.ewma_alpha;
    std::uint64_t window_packets = 0;
    // unordered-ok: per-key try_emplace/EWMA folds commute across visit order
    for (const auto& [key, count] : acc) {
      window_packets += count;
      const double estimate = static_cast<double>(count) / rate;
      const auto [it, fresh] = tracked.try_emplace(
          key, Tracked{estimate, static_cast<std::uint64_t>(w)});
      if (!fresh) {
        it->second.estimate = alpha * estimate + (1.0 - alpha) * it->second.estimate;
        it->second.last_window = w;
      }
    }
    // Decay absentees (EWMA with a zero observation) and evict the dead.
    for (auto it = tracked.begin(); it != tracked.end();) {
      Tracked& state = it->second;
      if (state.last_window != w) state.estimate *= 1.0 - alpha;
      const bool idle_out = w - state.last_window >= config_.max_idle_windows;
      if (state.estimate < config_.evict_below || idle_out) {
        it = tracked.erase(it);
      } else {
        ++it;
      }
    }

    report.peak_tracked_flows = std::max(report.peak_tracked_flows, tracked.size());
    report.peak_window_flows = std::max(report.peak_window_flows, acc.size());
    ++counters.windows;
    ++windows_since_snapshot;

    // Degradation recovery: one clean window doubles the effective rate
    // back toward the base rate.
    if (!overloaded_this_window && degrade_level > 0) {
      set_degrade_level(degrade_level - 1);
    }
    overloaded_this_window = false;
    window_sampled = 0;
    last_window_flows = acc.size();
    last_window_packets = window_packets;

    if ((w + 1) % config_.snapshot_every == 0) {
      emit_snapshot(w, acc.size(), window_packets);
    }
  };

  // Rotates the epoch up to `next_window`, folding every window in
  // [window, next_window) — a quiet link can complete several at once.
  const auto rotate_to = [&](std::size_t next_window) {
    pipeline.rotate_epoch(next_window);
    for (std::size_t w = window; w < next_window; ++w) complete_window(w);
    window = next_window;
  };

  // Feeds one same-window segment: base-sample (stream-wide state), thin
  // under degradation, ingest.
  std::vector<packet::PacketRecord> selected, kept;
  selected.reserve(config_.batch_packets);
  kept.reserve(config_.batch_packets);
  const auto feed = [&](std::span<const packet::PacketRecord> segment) {
    base_sampler.select_into(segment, selected);
    counters.packets_sampled += selected.size();
    window_sampled += selected.size();

    if (config_.overload == ingest::OverloadPolicy::kShed &&
        config_.window_packet_budget > 0 && !overloaded_this_window &&
        window_sampled > config_.window_packet_budget) {
      // Declared capacity exceeded: degrade by halving the effective
      // sampling rate for the rest of the window — a counted, reported
      // rate change instead of silent tail drops.
      overloaded_this_window = true;
      ++counters.degradations;
      set_degrade_level(std::min(degrade_level + 1, kMaxDegradeLevel));
    }

    if (thinner) {
      thinner->select_into(selected, kept);
      counters.shed_packets += selected.size() - kept.size();
    } else {
      kept = selected;
    }
    counters.packets_ingested += kept.size();
    pipeline.add_batch(0, kept);
  };

  std::vector<packet::PacketRecord> batch;
  batch.reserve(config_.batch_packets);
  std::uint64_t batch_index = 0;

  while (true) {
    if (config_.stop_flag &&
        config_.stop_flag->load(std::memory_order_relaxed)) {
      break;
    }

    // Pull the next batch under the watchdog's monotonic-clock deadline.
    // An injected fault-source stall sleeps here — on the pull side,
    // where a genuinely slow source would spend the time.
    const auto pull_start = std::chrono::steady_clock::now();
    if (faulty) {
      const std::uint32_t stall_ms = faulty->stall_ms_before_batch(batch_index);
      if (stall_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      }
    }
    const std::size_t pulled = stream.next_batch(batch, config_.batch_packets);
    ++batch_index;
    if (config_.stall_deadline_ms > 0) {
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - pull_start);
      if (elapsed.count() >=
          static_cast<std::int64_t>(config_.stall_deadline_ms)) {
        ++counters.stall_events;
        if (config_.fail_on_stall) {
          throw Error(ErrorCategory::kStalled, "monitor",
                      "trace source stalled: batch " +
                          std::to_string(batch_index - 1) + " took " +
                          std::to_string(elapsed.count()) + " ms (deadline " +
                          std::to_string(config_.stall_deadline_ms) + " ms)");
        }
        // Rotate early: close out the partial window so the operator
        // sees a snapshot rather than silence. Traffic arriving after
        // the stall accrues to the next window.
        ++counters.watchdog_rotations;
        rotate_to(window + 1);
      }
    }
    if (pulled == 0) break;  // end of source
    counters.packets_offered += pulled;

    // Split the batch at window boundaries so each epoch rotation sees
    // exactly its own packets. Sampling per segment is bit-identical to
    // sampling the whole batch: skip state carries across calls.
    std::size_t begin = 0;
    while (begin < pulled) {
      const std::int64_t boundary_ns =
          static_cast<std::int64_t>(window + 1) * window_ns;
      std::size_t end = begin;
      while (end < pulled && batch[end].timestamp_ns < boundary_ns) ++end;
      if (end > begin) {
        feed(std::span(batch.data() + begin, end - begin));
        begin = end;
      }
      if (begin < pulled) {
        rotate_to(static_cast<std::size_t>(batch[begin].timestamp_ns / window_ns));
      }
    }
  }

  // End of stream (or stop requested): flush the final partial window
  // and fold whatever it held.
  pipeline.finish();
  for (const std::size_t bin : accumulator.pending_windows()) {
    for (std::size_t w = window; w <= bin; ++w) complete_window(w);
    window = bin + 1;
  }
  // A trailing snapshot covering windows past the last cadence boundary.
  if (windows_since_snapshot > 0 && counters.windows > 0) {
    emit_snapshot(window - 1, last_window_flows, last_window_packets);
  }

  const ingest::OverloadStats stats = pipeline.overload_stats();
  counters.pipeline_shed_packets = stats.shed_packets;
  counters.queue_full_events = stats.queue_full_events;
  return report;
}

}  // namespace flowrank::monitor
