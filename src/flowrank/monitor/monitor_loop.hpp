// Continuous heavy-hitter monitoring (the ROADMAP's streaming monitor
// mode).
//
// Every other path in the repo is run-to-completion: ingest a whole
// trace, then read results. MonitorLoop is the operational shape the
// paper motivates — a loop that pulls batches from any trace::TraceSource
// into the sharded ingest path under rolling measurement windows, rotates
// the epoch at each window boundary (tables flush and are reused, the
// batch path's bin semantics exactly), folds each window's inverted
// per-flow counts into EWMA-smoothed estimates, and emits periodic top-t
// snapshots with rank-churn deltas as a time-series.
//
// What separates it from a batch job rerun in a loop is that failure
// behavior is first-class:
//   * corrupt/truncated flow records are dropped and counted, never fed
//     downstream (see trace::classify_record_fault);
//   * overload degrades gracefully: under OverloadPolicy::kShed a window
//     that exceeds its declared packet budget halves the effective
//     sampling rate via an extra skip-based thinning sampler — the
//     paper's own knob — instead of dropping tail packets silently, and
//     recovers one halving per clean window; every shed packet is
//     counted;
//   * a monotonic-clock watchdog detects stalled sources (and, via the
//     pipeline's block deadline, wedged shards) and either fails loudly
//     with flowrank::Error(kStalled) or rotates the epoch early so the
//     operator sees a snapshot rather than silence;
//   * every fault/shed/stall event is emitted in snapshot metadata.
//
// With faults disabled, alpha = 1 and the kBlock policy, the per-window
// counts are bit-identical to the batch packet path's per-bin sampled
// counts at any shard count (asserted in tests/test_monitor.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/packet/flow_key.hpp"
#include "flowrank/report/result_sink.hpp"
#include "flowrank/trace/trace_source.hpp"

namespace flowrank::monitor {

/// Monitor knobs. Defaults run a lossless (kBlock), unsmoothed
/// (alpha = 1) monitor whose windows reproduce the batch path bit for
/// bit.
struct MonitorConfig {
  double window_s = 60.0;          ///< measurement window (epoch) length
  std::size_t snapshot_every = 1;  ///< windows per emitted snapshot
  std::size_t top_t = 10;          ///< snapshot list length
  double sampling_rate = 0.01;     ///< base Bernoulli sampling rate
  std::uint64_t seed = 1;          ///< sampler seed (matches the batch path's run seed)
  std::size_t num_shards = 1;      ///< ingest shards; 0 = one per hardware thread
  flowtable::FlowTable::Options table_options;  ///< per-shard tables

  /// Full-queue behavior of the ingest pipeline; kShed additionally arms
  /// the budget-based rate degradation below.
  ingest::OverloadPolicy overload = ingest::OverloadPolicy::kBlock;
  /// Declared per-window capacity in *sampled* packets (0 = unlimited).
  /// Under kShed, a window exceeding it halves the effective sampling
  /// rate for the rest of the window; each clean window doubles it back
  /// (never above the base rate).
  std::uint64_t window_packet_budget = 0;

  /// EWMA weight on the newest window, in (0, 1]. 1 = no smoothing: an
  /// estimate is exactly the latest window's inverted count.
  double ewma_alpha = 1.0;
  /// Tracked flows whose estimate decays below this many packets are
  /// evicted — with the idle-window cap below, this is what keeps the
  /// tracker bounded over hours of flow churn.
  double evict_below = 0.5;
  /// Evict flows unseen for this many consecutive windows.
  std::size_t max_idle_windows = 3;

  /// Watchdog: longest tolerated source batch pull (monotonic clock).
  /// 0 disables detection.
  std::uint32_t stall_deadline_ms = 0;
  /// On a detected stall: true throws flowrank::Error(kStalled); false
  /// counts it, rotates the epoch early (the partial window is folded and
  /// becomes visible) and keeps going.
  bool fail_on_stall = false;
  /// Wedged-shard watchdog, forwarded to the pipeline (kBlock only):
  /// longest add_batch may wait on one full shard queue. 0 = forever.
  std::uint32_t block_deadline_ms = 0;

  std::size_t batch_packets = 4096;  ///< stream pull size (batch path's kBatch)
  std::size_t max_queue_chunks = 8;  ///< pipeline passthrough
  std::size_t chunk_packets = 8192;  ///< pipeline passthrough
  exec::TaskPool* pool = nullptr;    ///< nullptr = exec::TaskPool::shared()

  /// Checked between batches; set from a SIGINT/SIGTERM handler for a
  /// clean shutdown that folds the current window and flushes sinks.
  const std::atomic<bool>* stop_flag = nullptr;
};

/// Cumulative fault/loss accounting, emitted with every snapshot.
struct MonitorCounters {
  std::uint64_t packets_offered = 0;   ///< pulled from the source
  std::uint64_t packets_sampled = 0;   ///< selected by the base sampler
  std::uint64_t packets_ingested = 0;  ///< fed to the pipeline after shedding
  std::uint64_t shed_packets = 0;      ///< thinned away by rate degradation
  std::uint64_t degradations = 0;      ///< times the effective rate halved
  std::uint64_t pipeline_shed_packets = 0;  ///< dropped by kShed shard queues
  std::uint64_t queue_full_events = 0;      ///< full-queue encounters
  std::uint64_t corrupt_records = 0;    ///< flow records dropped as corrupt
  std::uint64_t truncated_records = 0;  ///< flow records dropped as truncated
  std::uint64_t stall_events = 0;       ///< watchdog stall detections
  std::uint64_t watchdog_rotations = 0;  ///< early epoch rotations after stalls
  std::uint64_t windows = 0;             ///< measurement windows completed
};

/// One entry of a snapshot's top-t list, in canonical order (estimate
/// descending, key ascending on ties — deterministic at any shard count).
struct TopFlow {
  packet::FlowKey key;
  double estimate = 0.0;  ///< EWMA-smoothed estimated packets per window
};

/// One emitted snapshot: the monitor's externally visible state after
/// `window` completed.
struct MonitorSnapshot {
  std::uint64_t index = 0;   ///< 0-based snapshot number
  std::uint64_t window = 0;  ///< last completed window
  double time_s = 0.0;       ///< end of that window, trace time
  std::vector<TopFlow> top;  ///< top-t tracked flows
  std::size_t tracked_flows = 0;  ///< EWMA tracker occupancy after the fold
  std::size_t window_flows = 0;   ///< distinct flows sampled in the last window
  std::uint64_t window_packets = 0;  ///< sampled packets ingested in it
  std::size_t churn_entered = 0;  ///< top-t entries not in the previous top
  std::size_t churn_exited = 0;   ///< previous top entries no longer present
  std::size_t rank_moves = 0;     ///< common entries whose rank changed
  double effective_rate = 0.0;    ///< sampling rate in effect (post-degradation)
  MonitorCounters counters;       ///< cumulative, at emission time
};

/// What run() returns after the source dries up or stop is requested.
struct MonitorReport {
  MonitorCounters counters;
  std::uint64_t snapshots = 0;
  std::size_t peak_tracked_flows = 0;  ///< tracker occupancy high-water mark
  std::size_t peak_window_flows = 0;   ///< per-window flow high-water mark
};

/// Column names of the snapshot time-series (all values numeric, so the
/// JSONL output passes scripts/check_jsonl.py).
[[nodiscard]] std::vector<std::string> snapshot_columns();

/// A snapshot as one sink row, matching snapshot_columns().
[[nodiscard]] report::Row snapshot_row(const MonitorSnapshot& snap);

/// The continuous-operation loop. Construction is cheap; run() does the
/// work and may be called once.
class MonitorLoop {
 public:
  using SnapshotCallback = std::function<void(const MonitorSnapshot&)>;

  /// Throws std::invalid_argument on a null source or bad config.
  MonitorLoop(std::shared_ptr<const trace::TraceSource> source,
              MonitorConfig config);

  /// Runs until the source ends or the stop flag is set; `on_snapshot`
  /// (optional) observes each snapshot as it is emitted. Throws
  /// flowrank::Error(kStalled) when a watchdog deadline is missed under
  /// fail_on_stall / the pipeline block deadline.
  MonitorReport run(const SnapshotCallback& on_snapshot = {});

  [[nodiscard]] const MonitorConfig& config() const noexcept { return config_; }

 private:
  std::shared_ptr<const trace::TraceSource> source_;
  MonitorConfig config_;
  bool ran_ = false;
};

}  // namespace flowrank::monitor
