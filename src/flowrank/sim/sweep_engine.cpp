#include "flowrank/sim/sweep_engine.hpp"

#include <stdexcept>

namespace flowrank::sim {

SweepEngine::SweepEngine(std::size_t num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("SweepEngine: num_threads >= 1");
  }
  workers_.reserve(num_threads - 1);
  for (std::size_t i = 0; i + 1 < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SweepEngine::~SweepEngine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  wake_workers_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::size_t SweepEngine::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void SweepEngine::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  if (workers_.empty()) {
    // Inline fast path: no locks, same skip-after-throw semantics.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = &fn;
    job_count_ = count;
    next_index_ = 0;
  }
  wake_workers_.notify_all();

  // The calling thread is pool member number num_threads.
  drain_current_job();

  std::unique_lock<std::mutex> lock(mutex_);
  job_done_.wait(lock, [this] {
    return next_index_ >= job_count_ && in_flight_ == 0;
  });
  job_fn_ = nullptr;
  job_count_ = 0;
  if (first_error_) {
    std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void SweepEngine::worker_loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_workers_.wait(lock, [this] {
        return shutting_down_ || (job_fn_ != nullptr && next_index_ < job_count_);
      });
      if (shutting_down_) return;
    }
    drain_current_job();
  }
}

void SweepEngine::drain_current_job() {
  for (;;) {
    const std::function<void(std::size_t)>* fn;
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_fn_ == nullptr || next_index_ >= job_count_) return;
      fn = job_fn_;
      index = next_index_++;
      ++in_flight_;
    }
    try {
      (*fn)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      next_index_ = job_count_;  // skip everything still unclaimed
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (next_index_ >= job_count_ && in_flight_ == 0) job_done_.notify_all();
    }
  }
}

}  // namespace flowrank::sim
