#include "flowrank/sim/sweep_engine.hpp"

#include <stdexcept>

namespace flowrank::sim {

SweepEngine::SweepEngine(std::size_t num_threads) : num_threads_(num_threads) {
  if (num_threads < 1) {
    throw std::invalid_argument("SweepEngine: num_threads >= 1");
  }
  // Grow the shared pool once, up front, so parallel_for never spawns.
  exec::TaskPool::shared().ensure_workers(num_threads - 1);
}

std::size_t SweepEngine::resolve_thread_count(std::size_t requested) {
  return exec::TaskPool::resolve_parallelism(requested);
}

void SweepEngine::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  exec::TaskPool::shared().parallel_for(count, fn, num_threads_);
}

}  // namespace flowrank::sim
