#include "flowrank/sim/experiment.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "flowrank/core/detection_model.hpp"
#include "flowrank/core/discrete_context.hpp"
#include "flowrank/core/misranking.hpp"
#include "flowrank/core/optimal_rate.hpp"
#include "flowrank/dist/discretized.hpp"
#include "flowrank/sim/spec_detail.hpp"
#include "flowrank/sim/sweep_engine.hpp"

namespace flowrank::sim {

namespace {

using detail::parse_double;
using detail::split;
using detail::trim;

/// Doubles in spec echoes use the sinks' own cell formatting, so echoed
/// values round-trip exactly like result cells.
std::string format_value(double value) { return report::Value(value).text(); }

/// The sweepable parameter names, and which are integer-valued (formatted
/// as integers in result rows).
constexpr const char* kSweepParams[] = {"rate", "t",        "n",  "beta",
                                        "bin",  "duration", "s1", "s2"};

bool is_sweep_param(const std::string& param) {
  for (const char* known : kSweepParams) {
    if (param == known) return true;
  }
  return false;
}

bool integer_axis(const std::string& param) {
  return param == "t" || param == "n" || param == "s1" || param == "s2";
}

/// Replaces or appends the axis for `param` (last declaration wins, so a
/// CLI --sweep-rate override replaces the file's rate grid in place).
void set_axis(ExperimentSpec& spec, const std::string& param,
              const std::string& grammar) {
  if (!is_sweep_param(param)) {
    throw std::invalid_argument("experiment: unknown sweep parameter '" + param +
                                "' (rate|t|n|beta|bin|duration|s1|s2)");
  }
  SweepAxis axis{param, parse_sweep_values(grammar), grammar};
  for (auto& existing : spec.sweeps) {
    if (existing.param == param) {
      existing = std::move(axis);
      return;
    }
  }
  spec.sweeps.push_back(std::move(axis));
}

/// True for "sweep <param>" (file form) and "sweep-<param>" (CLI form);
/// extracts the parameter name.
bool sweep_key(const std::string& key, std::string& param_out) {
  if (key.size() < 7 || key.compare(0, 5, "sweep") != 0) return false;
  const char sep = key[5];
  if (sep != ' ' && sep != '\t' && sep != '-') return false;
  param_out = trim(key.substr(6));
  return !param_out.empty();
}

const char* model_name(ExperimentModel model) {
  switch (model) {
    case ExperimentModel::kExact: return "exact";
    case ExperimentModel::kMc: return "mc";
    case ExperimentModel::kPacket: return "packet";
  }
  return "?";
}

const char* metric_name(ExactMetric metric) {
  switch (metric) {
    case ExactMetric::kRanking: return "ranking";
    case ExactMetric::kDetection: return "detection";
    case ExactMetric::kOptimalRate: return "optimal_rate";
    case ExactMetric::kGaussianError: return "gaussian_error";
  }
  return "?";
}

/// Per-model sweepable-axis whitelist; a violation is a spec bug and
/// fails before any output is written.
void check_axes(const ExperimentSpec& spec) {
  const auto allowed = [&spec](const std::string& param) {
    switch (spec.model) {
      case ExperimentModel::kExact:
        switch (spec.metric) {
          case ExactMetric::kRanking:
          case ExactMetric::kDetection:
            return param == "rate" || param == "t" || param == "n" ||
                   param == "beta";
          case ExactMetric::kOptimalRate:
            return param == "s1" || param == "s2";
          case ExactMetric::kGaussianError:
            return param == "s1" || param == "s2" || param == "rate";
        }
        return false;
      case ExperimentModel::kMc:
      case ExperimentModel::kPacket:
        return param == "rate" || param == "t" || param == "beta" ||
               param == "bin" || param == "duration";
    }
    return false;
  };
  for (const auto& axis : spec.sweeps) {
    if (!allowed(axis.param)) {
      throw std::invalid_argument(
          std::string("experiment: sweep '") + axis.param +
          "' is not valid for model=" + model_name(spec.model) +
          (spec.model == ExperimentModel::kExact
               ? std::string(" metric=") + metric_name(spec.metric)
               : std::string()));
    }
    if (axis.values.empty()) {
      throw std::invalid_argument("experiment: sweep '" + axis.param +
                                  "' has no values");
    }
  }
  if (spec.model == ExperimentModel::kExact) {
    const auto has = [&spec](const char* param) {
      for (const auto& axis : spec.sweeps) {
        if (axis.param == param) return true;
      }
      return false;
    };
    if ((spec.metric == ExactMetric::kOptimalRate ||
         spec.metric == ExactMetric::kGaussianError) &&
        (!has("s1") || !has("s2"))) {
      throw std::invalid_argument(std::string("experiment: metric=") +
                                  metric_name(spec.metric) +
                                  " needs sweep s1 and sweep s2");
    }
  }
  if (spec.estimator.kind != EstimatorStage::Kind::kNone &&
      spec.model != ExperimentModel::kPacket) {
    throw std::invalid_argument(
        "experiment: estimator stages need model=packet");
  }
  if (spec.exact_discrete && (spec.model != ExperimentModel::kExact ||
                              spec.metric != ExactMetric::kRanking)) {
    throw std::invalid_argument(
        "experiment: exact-pairwise=exact-discrete needs model=exact "
        "metric=ranking");
  }
  if (spec.monitor.enabled) {
    if (spec.model != ExperimentModel::kPacket) {
      throw std::invalid_argument("experiment: mode=monitor needs model=packet");
    }
    if (!spec.sweeps.empty()) {
      throw std::invalid_argument(
          "experiment: mode=monitor is a single continuous run, not a sweep; "
          "drop the sweep axes");
    }
    if (spec.estimator.kind != EstimatorStage::Kind::kNone) {
      throw std::invalid_argument(
          "experiment: mode=monitor has inversion + EWMA built in; estimator "
          "stages are batch-only");
    }
  }
  if (spec.aggregate.enabled) {
    if (spec.model != ExperimentModel::kPacket) {
      throw std::invalid_argument("experiment: mode=aggregate needs model=packet");
    }
    if (!spec.sweeps.empty()) {
      throw std::invalid_argument(
          "experiment: mode=aggregate is a single fleet run, not a sweep; "
          "drop the sweep axes");
    }
    if (spec.estimator.kind != EstimatorStage::Kind::kNone) {
      throw std::invalid_argument(
          "experiment: mode=aggregate merges per-agent summaries; estimator "
          "stages are batch-only");
    }
  }
}

/// The grid axes that index rows (mc/packet fold a rate sweep into the
/// rates list instead — rate is an inner dimension of those engines).
std::vector<SweepAxis> grid_axes(const ExperimentSpec& spec) {
  std::vector<SweepAxis> axes;
  for (const auto& axis : spec.sweeps) {
    if (spec.model != ExperimentModel::kExact && axis.param == "rate") continue;
    axes.push_back(axis);
  }
  return axes;
}

std::size_t grid_size(const std::vector<SweepAxis>& axes) {
  std::size_t total = 1;
  for (const auto& axis : axes) total *= axis.values.size();
  return total;
}

/// Row-major unravel of grid cell `index` into per-axis values.
std::vector<double> cell_values(const std::vector<SweepAxis>& axes,
                                std::size_t index) {
  std::vector<double> values(axes.size());
  for (std::size_t a = axes.size(); a-- > 0;) {
    const std::size_t n = axes[a].values.size();
    values[a] = axes[a].values[index % n];
    index /= n;
  }
  return values;
}

void push_axis_cells(report::Row& row, const std::vector<SweepAxis>& axes,
                     const std::vector<double>& values) {
  for (std::size_t a = 0; a < axes.size(); ++a) {
    if (integer_axis(axes[a].param)) {
      row.emplace_back(static_cast<std::int64_t>(std::llround(values[a])));
    } else {
      row.emplace_back(values[a]);
    }
  }
}

/// Applies one grid axis value onto a cell-local spec copy.
void apply_axis(ExperimentSpec& cell, const std::string& param, double value,
                double& s1, double& s2) {
  if (param == "rate") {
    cell.exact_rate = value;
  } else if (param == "t") {
    cell.top_t = static_cast<std::size_t>(std::llround(value));
  } else if (param == "n") {
    cell.exact_n = std::llround(value);
  } else if (param == "beta") {
    cell.beta = value;
  } else if (param == "bin") {
    cell.bin_seconds = value;
  } else if (param == "duration") {
    cell.duration_s = value;
  } else if (param == "s1") {
    s1 = value;
  } else if (param == "s2") {
    s2 = value;
  }
}

/// The trace-shaping subset of the spec: cells that agree on it share one
/// materialized trace (e.g. the two bin lengths of a paper figure).
std::string trace_cache_key(const ExperimentSpec& spec) {
  std::ostringstream key;
  key << spec.trace << '|' << spec.preset << '|' << format_value(spec.beta) << '|'
      << spec.dist << '|' << format_value(spec.duration_s) << '|'
      << format_value(spec.flow_rate_per_s) << '|'
      << format_value(spec.flow_rate_scale) << '|' << spec.trace_seed << '|'
      << spec.packet_size_bytes << '|' << spec.epochs << '|'
      << format_value(spec.epoch_gap_s) << '|' << spec.on_off.enabled << '|'
      << format_value(spec.on_off.mean_on_s) << '|'
      << format_value(spec.on_off.mean_off_s) << '|'
      << format_value(spec.on_off.on_factor) << '|'
      << format_value(spec.on_off.off_factor);
  return key.str();
}

/// The context-shaping subset of an exact-discrete cell: cells that agree
/// on it share one core::DiscreteModelContext — the tables depend on the
/// size pmf, the sampling rate and the discrete knobs, but not on n or t,
/// so (n, t) sweeps pay for their tables exactly once.
using DiscreteContextCache =
    std::map<std::string, std::shared_ptr<const core::DiscreteModelContext>>;

std::string discrete_context_key(const ExperimentSpec& cell) {
  std::ostringstream key;
  key << cell.preset << '|' << cell.dist << '|' << format_value(cell.beta) << '|'
      << format_value(cell.exact_rate) << '|' << cell.exact_max_size << '|'
      << format_value(cell.exact_tail_tol) << '|'
      << format_value(cell.exact_window);
  return key.str();
}

report::Row exact_cell_row(const ExperimentSpec& spec,
                           const std::vector<SweepAxis>& axes,
                           std::size_t index,
                           const DiscreteContextCache& discrete_contexts) {
  const auto values = cell_values(axes, index);
  ExperimentSpec cell = spec;
  double s1 = 0.0, s2 = 0.0;
  for (std::size_t a = 0; a < axes.size(); ++a) {
    apply_axis(cell, axes[a].param, values[a], s1, s2);
  }

  report::Row row;
  push_axis_cells(row, axes, values);
  switch (spec.metric) {
    case ExactMetric::kRanking:
    case ExactMetric::kDetection: {
      if (spec.exact_discrete) {
        // check_axes pinned metric=ranking; the context was prebuilt by
        // run_experiment, so this lookup cannot miss.
        const auto& context = discrete_contexts.at(discrete_context_key(cell));
        const auto result = context->evaluate(
            cell.exact_n, static_cast<std::int64_t>(cell.top_t));
        row.emplace_back(result.mean_pair_misranking);
        row.emplace_back(result.metric);
        // The paper's ordered pair count, as in the continuous model.
        const double n_d = static_cast<double>(cell.exact_n);
        const double t_d = static_cast<double>(cell.top_t);
        row.emplace_back(0.5 * (2.0 * n_d - t_d - 1.0) * t_d);
        break;
      }
      core::RankingModelConfig cfg;
      cfg.n = cell.exact_n;
      cfg.t = static_cast<std::int64_t>(cell.top_t);
      cfg.p = cell.exact_rate;
      cfg.size_dist = make_size_distribution(cell);
      cfg.pairwise = cell.pairwise;
      cfg.counting = cell.counting;
      if (spec.metric == ExactMetric::kRanking) {
        const auto result = core::evaluate_ranking_model(cfg);
        row.emplace_back(result.mean_pair_misranking);
        row.emplace_back(result.metric);
        row.emplace_back(result.pair_count);
      } else {
        const auto result = core::evaluate_detection_model(cfg);
        row.emplace_back(result.mean_pair_misranking);
        row.emplace_back(result.metric);
        row.emplace_back(result.pair_count);
      }
      break;
    }
    case ExactMetric::kOptimalRate: {
      const double rate = core::optimal_sampling_rate(
          std::llround(s1), std::llround(s2), cell.optimal_target);
      row.emplace_back(rate * 100.0);
      break;
    }
    case ExactMetric::kGaussianError: {
      row.emplace_back(core::misranking_abs_error(std::llround(s1),
                                                  std::llround(s2),
                                                  cell.exact_rate));
      break;
    }
  }
  return row;
}

}  // namespace

std::vector<double> parse_sweep_values(const std::string& grammar) {
  const std::string text = trim(grammar);
  const auto range = text.find("..");
  if (range == std::string::npos) {
    // Explicit list: v1,v2,v3 (any order, e.g. the descending beta grids).
    std::vector<double> values;
    for (const auto& item : split(text, ',')) {
      values.push_back(parse_double("sweep", item));
    }
    if (values.empty()) throw std::invalid_argument("sweep: empty value list");
    return values;
  }

  // Range form: <lo>..<hi> log|lin <count>.
  std::istringstream rest(text.substr(range + 2));
  const double lo = parse_double("sweep", text.substr(0, range));
  std::string hi_text, kind, count_text;
  rest >> hi_text >> kind >> count_text;
  std::string extra;
  if (rest >> extra) {
    throw std::invalid_argument("sweep: trailing '" + extra + "' in '" + text + "'");
  }
  if (hi_text.empty() || kind.empty() || count_text.empty()) {
    throw std::invalid_argument(
        "sweep: expected '<lo>..<hi> log|lin <count>', got '" + text + "'");
  }
  const double hi = parse_double("sweep", hi_text);
  const double count_d = parse_double("sweep", count_text);
  const int count = static_cast<int>(count_d);
  if (count_d != count || count < 2) {
    throw std::invalid_argument("sweep: count must be an integer >= 2");
  }
  if (!(lo < hi)) throw std::invalid_argument("sweep: range needs lo < hi");

  std::vector<double> values(static_cast<std::size_t>(count));
  if (kind == "log") {
    if (!(lo > 0.0)) throw std::invalid_argument("sweep: log range needs lo > 0");
    // Same construction as the historical figure rate grids (bench
    // log_spaced): equal log steps with the endpoint pinned exactly.
    const double step = (std::log(hi) - std::log(lo)) / (count - 1);
    for (int i = 0; i < count; ++i) {
      values[static_cast<std::size_t>(i)] = std::exp(std::log(lo) + step * i);
    }
  } else if (kind == "lin") {
    const double step = (hi - lo) / (count - 1);
    for (int i = 0; i < count; ++i) {
      values[static_cast<std::size_t>(i)] = lo + step * i;
    }
  } else {
    throw std::invalid_argument("sweep: spacing must be log|lin, got '" + kind + "'");
  }
  values.back() = hi;
  return values;
}

EstimatorStage parse_estimator(const std::string& grammar) {
  const std::string text = trim(grammar);
  const auto colon = text.find(':');
  const std::string kind = trim(text.substr(0, colon));
  std::map<std::string, double> args;
  if (colon != std::string::npos) {
    for (const auto& item : split(text.substr(colon + 1), ',')) {
      const auto eq = item.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("estimator: expected key=value, got '" + item +
                                    "'");
      }
      args[trim(item.substr(0, eq))] =
          parse_double("estimator", trim(item.substr(eq + 1)));
    }
  }
  const auto take = [&args](const std::string& key, double fallback) {
    const auto it = args.find(key);
    if (it == args.end()) return fallback;
    const double value = it->second;
    args.erase(it);
    return value;
  };
  const auto take_slots = [&take](double fallback) {
    const double value = take("slots", fallback);
    if (!(value >= 0.0) || value != std::floor(value) || value > 1e9) {
      throw std::invalid_argument(
          "estimator: slots must be a non-negative integer");
    }
    return static_cast<std::size_t>(value);
  };

  EstimatorStage stage;
  if (kind == "none") {
    stage.kind = EstimatorStage::Kind::kNone;
  } else if (kind == "inversion") {
    stage.kind = EstimatorStage::Kind::kInversion;
  } else if (kind == "tcp_seq") {
    stage.kind = EstimatorStage::Kind::kTcpSeq;
  } else if (kind == "sample_and_hold") {
    stage.kind = EstimatorStage::Kind::kSampleAndHold;
    stage.slots = take_slots(1024.0);  // 0 = unbounded table
    stage.hold_probability = take("hold", 0.1);
    if (!(stage.hold_probability > 0.0 && stage.hold_probability <= 1.0)) {
      throw std::invalid_argument("estimator: sample_and_hold hold in (0,1]");
    }
  } else if (kind == "space_saving") {
    stage.kind = EstimatorStage::Kind::kSpaceSaving;
    stage.slots = take_slots(1024.0);
    if (stage.slots < 1) {
      throw std::invalid_argument("estimator: space_saving slots >= 1");
    }
  } else {
    throw std::invalid_argument(
        "estimator: unknown kind '" + kind +
        "' (none | inversion | tcp_seq | sample_and_hold | space_saving)");
  }
  if (!args.empty()) {
    throw std::invalid_argument("estimator: unknown parameter '" +
                                args.begin()->first + "'");
  }
  return stage;
}

const std::vector<std::string>& experiment_keys() {
  static const std::vector<std::string> keys = {
      "counting", "description", "estimator", "exact-pairwise", "max-size",
      "metric",   "model",       "n",         "pairwise",       "rate",
      "tail-tol", "target",      "window"};
  return keys;
}

void apply_experiment_entry(ExperimentSpec& spec, const std::string& key,
                            const std::string& value) {
  std::string sweep_param;
  if (sweep_key(key, sweep_param)) {
    set_axis(spec, sweep_param, value);
  } else if (key == "model") {
    if (value == "exact") {
      spec.model = ExperimentModel::kExact;
    } else if (value == "mc") {
      spec.model = ExperimentModel::kMc;
    } else if (value == "packet") {
      spec.model = ExperimentModel::kPacket;
    } else {
      throw std::invalid_argument("experiment: model must be exact|mc|packet, got '" +
                                  value + "'");
    }
    // The scenario layer's path knob follows the model (the packet model
    // IS the scenario packet path; the shim keeps old specs working).
    spec.path = spec.model == ExperimentModel::kPacket ? ExecutionPath::kPacket
                                                       : ExecutionPath::kCount;
  } else if (key == "metric") {
    if (value == "ranking") {
      spec.metric = ExactMetric::kRanking;
    } else if (value == "detection") {
      spec.metric = ExactMetric::kDetection;
    } else if (value == "optimal_rate") {
      spec.metric = ExactMetric::kOptimalRate;
    } else if (value == "gaussian_error") {
      spec.metric = ExactMetric::kGaussianError;
    } else {
      throw std::invalid_argument(
          "experiment: metric must be ranking|detection|optimal_rate|"
          "gaussian_error, got '" + value + "'");
    }
  } else if (key == "description") {
    spec.description = value;
  } else if (key == "n") {
    spec.exact_n = std::llround(parse_double(key, value));
    if (spec.exact_n < 1) throw std::invalid_argument("experiment: n >= 1");
  } else if (key == "rate") {
    spec.exact_rate = parse_double(key, value);
    if (!(spec.exact_rate > 0.0 && spec.exact_rate <= 1.0)) {
      throw std::invalid_argument("experiment: rate in (0,1]");
    }
  } else if (key == "target") {
    spec.optimal_target = parse_double(key, value);
    if (!(spec.optimal_target > 0.0 && spec.optimal_target < 1.0)) {
      throw std::invalid_argument("experiment: target in (0,1)");
    }
  } else if (key == "pairwise") {
    if (value == "gaussian") {
      spec.pairwise = core::PairwiseModel::kGaussian;
    } else if (value == "hybrid") {
      spec.pairwise = core::PairwiseModel::kHybrid;
    } else {
      throw std::invalid_argument("experiment: pairwise must be gaussian|hybrid");
    }
  } else if (key == "counting") {
    if (value == "paper") {
      spec.counting = core::PairCounting::kPaper;
    } else if (value == "unordered") {
      spec.counting = core::PairCounting::kUnordered;
    } else {
      throw std::invalid_argument("experiment: counting must be paper|unordered");
    }
  } else if (key == "exact-pairwise") {
    if (value == "gaussian") {
      spec.pairwise = core::PairwiseModel::kGaussian;
      spec.exact_discrete = false;
    } else if (value == "hybrid") {
      spec.pairwise = core::PairwiseModel::kHybrid;
      spec.exact_discrete = false;
    } else if (value == "exact-discrete") {
      spec.exact_discrete = true;
    } else {
      throw std::invalid_argument(
          "experiment: exact-pairwise must be gaussian|hybrid|exact-discrete");
    }
  } else if (key == "max-size") {
    const double parsed = parse_double(key, value);
    spec.exact_max_size = std::llround(parsed);
    if (parsed != static_cast<double>(spec.exact_max_size) ||
        spec.exact_max_size < 2 || spec.exact_max_size > 8192) {
      // The table build is O(max-size^2) memory and O(max-size^3) work;
      // the cap keeps a typo from asking for terabytes. The C++ API
      // (core::DiscreteContextConfig) is uncapped.
      throw std::invalid_argument(
          "experiment: max-size must be an integer in [2, 8192]");
    }
  } else if (key == "tail-tol") {
    spec.exact_tail_tol = parse_double(key, value);
    if (!(spec.exact_tail_tol > 0.0 && spec.exact_tail_tol < 1.0)) {
      throw std::invalid_argument("experiment: tail-tol in (0,1)");
    }
  } else if (key == "window") {
    // Dual-keyed: monitor mode reads `window` as seconds
    // (monitor.window_s), the exact-discrete model as a skipped-pmf-mass
    // tolerance. Both fields are set here; check_axes and the model's
    // own range check keep the two meanings from ever mixing in one run.
    spec.exact_window = parse_double(key, value);
    apply_scenario_entry(spec, key, value);
  } else if (key == "estimator") {
    spec.estimator = parse_estimator(value);
    spec.estimator_grammar = value;
  } else {
    try {
      apply_scenario_entry(spec, key, value);
    } catch (const std::invalid_argument& err) {
      // The scenario layer only knows its own keys; extend its
      // unknown-key message with the experiment-level vocabulary so a
      // typo'd spec lists every accepted key.
      const std::string what = err.what();
      if (what.find("unknown key") == std::string::npos) throw;
      std::string keys;
      for (const auto& known : experiment_keys()) {
        keys += (keys.empty() ? "" : "|") + known;
      }
      throw std::invalid_argument(what + "; experiment keys add " + keys +
                                  " and sweep <param>");
    }
  }
}

ExperimentSpec parse_experiment_file(const std::string& path) {
  ExperimentSpec spec;
  parse_spec_file(path, [&spec](const std::string& key, const std::string& value) {
    apply_experiment_entry(spec, key, value);
  });
  return spec;
}

void apply_experiment_overrides(ExperimentSpec& spec, const util::Cli& cli) {
  for (const std::string& key : experiment_keys()) {
    if (cli.has(key)) apply_experiment_entry(spec, key, cli.get_string(key, ""));
  }
  apply_scenario_overrides(spec, cli);
  for (const std::string& name : cli.option_names()) {
    std::string param;
    if (sweep_key(name, param)) {
      set_axis(spec, param, cli.get_string(name, ""));
    }
  }
}

ExperimentSpec experiment_from_cli(const util::Cli& cli) {
  ExperimentSpec spec;
  const std::string file = cli.get_string("spec", "");
  if (!file.empty()) spec = parse_experiment_file(file);
  apply_experiment_overrides(spec, cli);
  return spec;
}

std::vector<std::pair<std::string, std::string>> experiment_echo(
    const ExperimentSpec& spec) {
  std::vector<std::pair<std::string, std::string>> echo;
  const auto add = [&echo](const std::string& key, const std::string& value) {
    echo.emplace_back(key, value);
  };
  add("model", model_name(spec.model));
  if (!spec.description.empty()) add("description", spec.description);

  if (spec.model == ExperimentModel::kExact) {
    add("metric", metric_name(spec.metric));
    if (spec.metric == ExactMetric::kRanking ||
        spec.metric == ExactMetric::kDetection) {
      add("n", std::to_string(spec.exact_n));
      add("preset", spec.preset);
      if (!spec.dist.empty()) add("dist", spec.dist);
      add("beta", format_value(spec.beta));
      add("t", std::to_string(spec.top_t));
      if (spec.exact_discrete) {
        add("exact-pairwise", "exact-discrete");
        add("max-size", std::to_string(spec.exact_max_size));
        add("tail-tol", format_value(spec.exact_tail_tol));
        if (spec.exact_window > 0.0) {
          add("window", format_value(spec.exact_window));
        }
      } else {
        add("pairwise", spec.pairwise == core::PairwiseModel::kGaussian
                            ? "gaussian"
                            : "hybrid");
        add("counting",
            spec.counting == core::PairCounting::kPaper ? "paper" : "unordered");
      }
    }
    if (spec.metric == ExactMetric::kOptimalRate) {
      add("target", format_value(spec.optimal_target));
    }
    if (spec.metric == ExactMetric::kGaussianError ||
        spec.metric == ExactMetric::kRanking ||
        spec.metric == ExactMetric::kDetection) {
      add("rate", format_value(spec.exact_rate));
    }
  } else {
    add("trace", spec.trace);
    add("preset", spec.preset);
    if (!spec.dist.empty()) add("dist", spec.dist);
    add("beta", format_value(spec.beta));
    add("duration", format_value(spec.duration_s));
    if (spec.flow_rate_per_s > 0.0) {
      add("flow-rate", format_value(spec.flow_rate_per_s));
    }
    add("flow-rate-scale", format_value(spec.flow_rate_scale));
    add("trace-seed", std::to_string(spec.trace_seed));
    add("packet-size", std::to_string(spec.packet_size_bytes));
    if (spec.epochs > 1) {
      add("epochs", std::to_string(spec.epochs));
      add("epoch-gap", format_value(spec.epoch_gap_s));
    }
    if (spec.on_off.enabled) {
      add("onoff", "on=" + format_value(spec.on_off.mean_on_s) +
                       ",off=" + format_value(spec.on_off.mean_off_s) +
                       ",on-factor=" + format_value(spec.on_off.on_factor) +
                       ",off-factor=" + format_value(spec.on_off.off_factor));
    }
    if (spec.trace == "churn") {
      add("churn", "population=" + std::to_string(spec.churn.population) +
                       ",rate=" + format_value(spec.churn.churn_per_s) +
                       ",packets=" + format_value(spec.churn.mean_packets) +
                       ",flow-duration=" + format_value(spec.churn.mean_duration_s) +
                       ",tcp=" + format_value(spec.churn.tcp_fraction));
    }
    add("bin", format_value(spec.bin_seconds));
    add("t", std::to_string(spec.top_t));
    // A `sweep rate` axis replaces the rates list on these models, so
    // the echo records the rates actually run, not the superseded list.
    const std::vector<double>* effective_rates = &spec.sampling_rates;
    for (const auto& axis : spec.sweeps) {
      if (axis.param == "rate") effective_rates = &axis.values;
    }
    std::string rates;
    for (std::size_t i = 0; i < effective_rates->size(); ++i) {
      rates += (i ? "," : "") + format_value((*effective_rates)[i]);
    }
    add("rates", rates);
    // threads/shards are deliberately absent: they never change result
    // values (the engines' bit-identity contract), so result files stay
    // byte-identical at any parallelism. The split-sampler gate DOES
    // change values (different canonical sampled stream), so it is
    // echoed whenever it is on.
    if (spec.sampler_split) add("sampler-split", "on");
    if (spec.model == ExperimentModel::kMc) {
      add("runs", std::to_string(spec.runs));
    } else {
      add("estimator", spec.estimator_grammar);
    }
    add("ties",
        spec.tie_policy == metrics::TiePolicy::kPaper ? "paper" : "lenient");
    add("definition",
        spec.definition == packet::FlowDefinition::kFiveTuple ? "5tuple"
                                                              : "prefix24");
    if (spec.monitor.enabled) {
      add("mode", "monitor");
      add("window", format_value(spec.monitor.window_s > 0.0
                                     ? spec.monitor.window_s
                                     : spec.bin_seconds));
      add("snapshot-every", std::to_string(spec.monitor.snapshot_every));
      add("overload", spec.monitor.shed ? "shed" : "block");
      add("ewma", format_value(spec.monitor.ewma_alpha));
      if (spec.monitor.window_packet_budget > 0) {
        add("budget", std::to_string(spec.monitor.window_packet_budget));
      }
      if (spec.monitor.watchdog_ms > 0) {
        add("watchdog-ms", std::to_string(spec.monitor.watchdog_ms));
        add("on-stall", spec.monitor.fail_on_stall ? "fail" : "rotate");
      }
      const trace::FaultSpec& fault = spec.monitor.fault;
      if (fault.corrupt_fraction > 0.0) {
        add("fault.corrupt", format_value(fault.corrupt_fraction));
      }
      if (fault.truncate_fraction > 0.0) {
        add("fault.truncate", format_value(fault.truncate_fraction));
      }
      if (fault.stall_every_batches > 0) {
        add("fault.stall-every", std::to_string(fault.stall_every_batches));
        add("fault.stall-ms", std::to_string(fault.stall_ms));
      }
      if (fault.burst_flows > 0) {
        add("fault.burst-flows", std::to_string(fault.burst_flows));
        add("fault.burst-every", format_value(fault.burst_every_s));
        add("fault.burst-duration", format_value(fault.burst_duration_s));
      }
      if (fault.any()) add("fault.seed", std::to_string(fault.seed));
    }
    if (spec.aggregate.enabled) {
      const AggregateOptions& agg_opts = spec.aggregate;
      add("mode", "aggregate");
      add("agents", std::to_string(agg_opts.agents));
      add("split", agg_opts.split == agg::FleetSplit::kFlow ? "flow" : "packet");
      add("deadline-ms", std::to_string(agg_opts.deadline_ms));
      add("quarantine-after", std::to_string(agg_opts.quarantine_after));
      add("readmit-after", std::to_string(agg_opts.readmit_after));
      add("summary", agg_opts.summary == agg::SummaryKind::kFlowTable
                         ? "table"
                         : "spacesaving");
      if (agg_opts.summary == agg::SummaryKind::kSpaceSaving) {
        add("summary-slots", std::to_string(agg_opts.summary_slots));
      }
      if (agg_opts.union_capacity > 0) {
        add("union-capacity", std::to_string(agg_opts.union_capacity));
      }
      const agg::SummaryFaultSpec& chan = agg_opts.chan;
      if (chan.drop_fraction > 0.0) add("chan.drop", format_value(chan.drop_fraction));
      if (chan.corrupt_fraction > 0.0) {
        add("chan.corrupt", format_value(chan.corrupt_fraction));
      }
      if (chan.delay_fraction > 0.0) {
        add("chan.delay", format_value(chan.delay_fraction));
        add("chan.delay-windows", std::to_string(chan.delay_windows));
      }
      if (chan.duplicate_fraction > 0.0) {
        add("chan.duplicate", format_value(chan.duplicate_fraction));
      }
      if (chan.outage_agent != agg::SummaryFaultSpec::kNoAgent) {
        add("chan.outage-agent", std::to_string(chan.outage_agent));
        add("chan.outage-from", std::to_string(chan.outage_from));
        add("chan.outage-windows", std::to_string(chan.outage_windows));
      }
      if (chan.any()) add("chan.seed", std::to_string(chan.seed));
    }
  }
  add("seed", std::to_string(spec.seed));
  for (const auto& axis : spec.sweeps) {
    add("sweep " + axis.param, axis.grammar);
  }
  return echo;
}

std::vector<std::string> experiment_columns(const ExperimentSpec& spec) {
  if (spec.aggregate.enabled) return agg::window_columns();
  if (spec.monitor.enabled) return monitor::snapshot_columns();
  std::vector<std::string> columns;
  for (const auto& axis : grid_axes(spec)) columns.push_back(axis.param);
  switch (spec.model) {
    case ExperimentModel::kExact:
      switch (spec.metric) {
        case ExactMetric::kRanking:
        case ExactMetric::kDetection:
          columns.insert(columns.end(),
                         {"mean_pair_misranking", "metric", "pair_count"});
          break;
        case ExactMetric::kOptimalRate:
          columns.push_back("optimal_rate_pct");
          break;
        case ExactMetric::kGaussianError:
          columns.push_back("abs_error");
          break;
      }
      break;
    case ExperimentModel::kMc:
      columns.insert(columns.end(),
                     {"rate", "time_s", "flows", "ranking_mean", "ranking_std",
                      "detection_mean", "detection_std", "recall_mean"});
      break;
    case ExperimentModel::kPacket:
      columns.insert(columns.end(), {"rate", "time_s", "flows", "ranking_swapped",
                                     "detection_swapped", "recall"});
      break;
  }
  return columns;
}

std::size_t run_experiment(const ExperimentSpec& spec, report::ResultSink& sink) {
  check_axes(spec);

  if (spec.aggregate.enabled) {
    // Multi-vantage mode: one fleet run, one row per aggregation window.
    // Windows close in epoch order, so rows stream already ordered; the
    // fleet's own determinism (canonical summaries, order-insensitive
    // merges, seeded channel faults) keeps the output reproducible at
    // any shard count.
    report::RunMetadata meta;
    meta.experiment = spec.name;
    meta.seed = spec.seed;
    meta.spec_echo = experiment_echo(spec);
    sink.open(agg::window_columns(), meta);
    const trace::FlowTrace trace = make_trace_source(spec)->flows();
    std::size_t rows = 0;
    (void)agg::run_fleet(trace, make_fleet_config(spec),
                         [&sink, &rows](const agg::MergedWindow& window) {
                           sink.emit(rows++, agg::window_row(window));
                         });
    sink.close(rows);
    return rows;
  }

  if (spec.monitor.enabled) {
    // Continuous-monitor mode: one MonitorLoop run, one row per emitted
    // top-t snapshot. Snapshots stream in emission order — the monitor's
    // own determinism (canonical top-t, order-insensitive window merges)
    // keeps the output reproducible at any shard count under kBlock.
    report::RunMetadata meta;
    meta.experiment = spec.name;
    meta.seed = spec.seed;
    meta.spec_echo = experiment_echo(spec);
    sink.open(monitor::snapshot_columns(), meta);
    monitor::MonitorLoop loop(make_trace_source(spec), make_monitor_config(spec));
    std::size_t rows = 0;
    loop.run([&sink, &rows](const monitor::MonitorSnapshot& snap) {
      sink.emit(rows++, monitor::snapshot_row(snap));
    });
    sink.close(rows);
    return rows;
  }

  const auto axes = grid_axes(spec);
  const std::size_t cells = grid_size(axes);

  // A rate sweep on mc/packet replaces the rates list (rate is those
  // engines' inner dimension, not a grid axis).
  ExperimentSpec base = spec;
  for (const auto& axis : spec.sweeps) {
    if (spec.model != ExperimentModel::kExact && axis.param == "rate") {
      base.sampling_rates = axis.values;
    }
  }

  // Exact-discrete grids share one core::DiscreteModelContext per
  // distinct (pmf, rate, max-size, tail-tol, window) — an (n, t) sweep
  // pays for its pairwise tables exactly once. Contexts are enumerated in
  // deterministic grid order and built before the parallel grid runs (the
  // build itself is TaskPool-parallel inside), and the reuse is recorded
  // in the run metadata so result files document the sharing.
  DiscreteContextCache discrete_contexts;
  if (spec.model == ExperimentModel::kExact && spec.exact_discrete) {
    const std::size_t threads = SweepEngine::resolve_thread_count(base.num_threads);
    for (std::size_t index = 0; index < cells; ++index) {
      const auto values = cell_values(axes, index);
      ExperimentSpec cell = base;
      double s1 = 0.0, s2 = 0.0;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        apply_axis(cell, axes[a].param, values[a], s1, s2);
      }
      auto& context = discrete_contexts[discrete_context_key(cell)];
      if (!context) {
        core::DiscreteContextConfig cfg;
        cfg.p = cell.exact_rate;
        cfg.size_pmf =
            std::make_shared<dist::Discretized>(make_size_distribution(cell));
        cfg.max_size = cell.exact_max_size;
        cfg.tail_tolerance = cell.exact_tail_tol;
        cfg.window_tolerance = cell.exact_window;
        cfg.num_threads = threads;
        context = std::make_shared<const core::DiscreteModelContext>(cfg);
      }
    }
  }

  report::RunMetadata meta;
  meta.experiment = spec.name;
  meta.seed = spec.seed;
  meta.spec_echo = experiment_echo(spec);
  if (!discrete_contexts.empty()) {
    meta.spec_echo.emplace_back(
        "exact-discrete-contexts",
        "built=" + std::to_string(discrete_contexts.size()) +
            ",cells=" + std::to_string(cells) + ",reused=" +
            std::to_string(cells - discrete_contexts.size()));
  }
  sink.open(experiment_columns(spec), meta);

  std::size_t rows = 0;
  if (spec.model == ExperimentModel::kExact) {
    // One row per grid cell; cells are independent (the quadrature and
    // root-solve caches are mutex- or thread-local-guarded, and discrete
    // contexts are immutable once built), so the grid runs on the shared
    // pool and the sink's reorder buffer restores grid order — output
    // bytes are identical at any thread count.
    SweepEngine pool(SweepEngine::resolve_thread_count(base.num_threads));
    pool.parallel_for(cells, [&](std::size_t index) {
      sink.emit(index, exact_cell_row(base, axes, index, discrete_contexts));
    });
    rows = cells;
  } else if (spec.model == ExperimentModel::kMc) {
    // Cells sharing a trace configuration reuse one materialized trace
    // (e.g. a figure's two bin lengths), exactly like the historical
    // fig12-16 drivers.
    std::map<std::string, std::shared_ptr<const trace::FlowTrace>> trace_cache;
    for (std::size_t index = 0; index < cells; ++index) {
      const auto values = cell_values(axes, index);
      ExperimentSpec cell = base;
      double s1 = 0.0, s2 = 0.0;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        apply_axis(cell, axes[a].param, values[a], s1, s2);
      }
      auto& cached = trace_cache[trace_cache_key(cell)];
      if (!cached) {
        cached = std::make_shared<const trace::FlowTrace>(
            make_trace_source(cell)->flows());
      }
      const SimResult result = run_binned_simulation(*cached, make_sim_config(cell));
      for (const auto& series : result.series) {
        for (std::size_t b = 0; b < series.bins.size(); ++b) {
          const BinStats& stats = series.bins[b];
          report::Row row;
          push_axis_cells(row, axes, values);
          row.emplace_back(series.sampling_rate);
          row.emplace_back((static_cast<double>(b) + 1.0) * cell.bin_seconds);
          row.emplace_back(stats.flows_in_bin);
          const bool ranked = stats.ranking.count() > 0;
          row.emplace_back(ranked ? stats.ranking.mean() : std::nan(""));
          row.emplace_back(ranked ? stats.ranking.stddev() : std::nan(""));
          row.emplace_back(ranked ? stats.detection.mean() : std::nan(""));
          row.emplace_back(ranked ? stats.detection.stddev() : std::nan(""));
          row.emplace_back(ranked ? stats.recall.mean() : std::nan(""));
          sink.emit(rows++, std::move(row));
        }
      }
    }
  } else {
    std::map<std::string, std::shared_ptr<const trace::FlowTrace>> trace_cache;
    for (std::size_t index = 0; index < cells; ++index) {
      const auto values = cell_values(axes, index);
      ExperimentSpec cell = base;
      double s1 = 0.0, s2 = 0.0;
      for (std::size_t a = 0; a < axes.size(); ++a) {
        apply_axis(cell, axes[a].param, values[a], s1, s2);
      }
      auto& cached = trace_cache[trace_cache_key(cell)];
      if (!cached) {
        cached = std::make_shared<const trace::FlowTrace>(
            make_trace_source(cell)->flows());
      }
      const SimConfig config = make_sim_config(cell);
      for (const double rate : cell.sampling_rates) {
        const auto bins = run_packet_level_estimated(
            *cached, rate, config, cell.seed, cell.num_shards, cell.estimator);
        for (std::size_t b = 0; b < bins.size(); ++b) {
          const bool ranked = bins[b].flows_in_bin >= cell.top_t;
          report::Row row;
          push_axis_cells(row, axes, values);
          row.emplace_back(rate);
          row.emplace_back((static_cast<double>(b) + 1.0) * cell.bin_seconds);
          row.emplace_back(bins[b].flows_in_bin);
          row.emplace_back(ranked ? bins[b].metrics.ranking_swapped : std::nan(""));
          row.emplace_back(ranked ? bins[b].metrics.detection_swapped
                                  : std::nan(""));
          row.emplace_back(ranked ? bins[b].metrics.top_set_recall : std::nan(""));
          sink.emit(rows++, std::move(row));
        }
      }
    }
  }
  const std::size_t total_rows =
      spec.model == ExperimentModel::kExact ? cells : rows;
  sink.close(total_rows);
  return total_rows;
}

}  // namespace flowrank::sim
