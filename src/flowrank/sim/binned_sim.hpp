// Trace-driven sampling simulation (Sec. 8).
//
// Pipeline per the paper: generate the packet-level trace from flow
// records, sample it at rate p, cut into bins (measurement intervals),
// classify into flows within each bin, rank, and compare the sampled
// ranking to the unsampled one — repeated over many runs to get the mean
// and standard deviation of the swapped-pair metrics per bin.
//
// Two execution paths produce identically-distributed metrics:
//  * the count path (default): per-(flow,bin) packet counts + binomial
//    thinning — fast enough for 30 runs x 4 rates x 30-minute traces;
//  * the packet path: full packet stream + Bernoulli sampler + binned
//    flow table — the "production" pipeline, used for cross-validation
//    and by the examples.
#pragma once

#include <cstdint>
#include <vector>

#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/flow_trace_generator.hpp"

namespace flowrank::sim {

/// Simulation parameters.
struct SimConfig {
  double bin_seconds = 60.0;                 ///< measurement interval
  std::size_t top_t = 10;                    ///< flows to rank/detect
  std::vector<double> sampling_rates{0.001, 0.01, 0.1, 0.5};
  int runs = 30;                             ///< paper: 30 sampling runs
  packet::FlowDefinition definition = packet::FlowDefinition::kFiveTuple;
  metrics::TiePolicy tie_policy = metrics::TiePolicy::kPaper;
  std::uint64_t seed = 1;
  /// Worker threads for the (rate, bin) Monte-Carlo grid (sim::SweepEngine);
  /// every cell has its own RNG stream (util::mix_streams), so results are
  /// bit-identical at any thread count. 1 = sequential, 0 = all hardware
  /// threads.
  std::size_t num_threads = 1;
  /// Gated (off by default): replace the packet path's sequential
  /// geometric-skip BernoulliSampler with the counter-split
  /// sampler::SplitStreamSampler, letting ingest shards thin their own
  /// substreams in parallel (ingest::SplitSamplerConfig). Still Bernoulli
  /// sampling and still bit-identical across shard counts — but a
  /// DIFFERENT canonical selected set at the same (rate, seed) than the
  /// skip stream, so enabling it changes packet-path results. Spec key
  /// `sampler-split`; see docs/PERFORMANCE.md "Scale-up ingest".
  bool sampler_split = false;
};

/// Per-bin aggregates over runs at one sampling rate.
struct BinStats {
  numeric::RunningStats ranking;    ///< swapped pairs, ranking metric
  numeric::RunningStats detection;  ///< swapped pairs, detection metric
  numeric::RunningStats recall;     ///< top-set recall
  std::size_t flows_in_bin = 0;     ///< original flows present in the bin
};

/// One sampling rate's series across bins.
struct RateSeries {
  double sampling_rate = 0.0;
  std::vector<BinStats> bins;
};

/// Whole simulation output.
struct SimResult {
  SimConfig config;
  std::vector<RateSeries> series;  ///< one entry per sampling rate
};

/// Runs the count-path simulation over a generated flow trace.
/// Deterministic in (trace.config.seed, config.seed) — including across
/// `config.num_threads`: the (rate, bin) grid cells are independent tasks
/// on a SweepEngine pool, each seeded by its own mix_streams stream, with
/// per-cell results folded back in (rate, bin, run) order, so any thread
/// count reproduces the sequential output bit for bit. Bins whose original
/// flow population is smaller than top_t are skipped (stats left empty).
[[nodiscard]] SimResult run_binned_simulation(const trace::FlowTrace& trace,
                                              const SimConfig& config);

/// Packet-path single run: returns the per-bin metrics of one sampling
/// pass over the real packet stream (used in tests to validate the count
/// path, and by examples as the reference pipeline).
///
/// `num_shards` > 1 routes classification through the multi-threaded
/// ingest::ShardedPipeline (one worker per shard, 0 = all hardware
/// threads); sampling stays on the driver thread, so the result is
/// bit-identical to the single-threaded path for the same `run_seed` at
/// any shard count.
[[nodiscard]] std::vector<metrics::RankMetricsResult> run_packet_level_once(
    const trace::FlowTrace& trace, double sampling_rate, const SimConfig& config,
    std::uint64_t run_seed, std::size_t num_shards = 1);

/// A flow-size estimation stage between the sampled stream and the
/// ranking (the paper's sampled → estimated → ranked loop). Declared in
/// experiment specs as
///   estimator = inversion | tcp_seq | sample_and_hold:slots=K[,hold=H]
///             | space_saving:slots=K
/// (sim/experiment.hpp parses the grammar).
struct EstimatorStage {
  enum class Kind {
    kNone,           ///< rank raw sampled counts (run_packet_level_once)
    kInversion,      ///< estimators::scaled_size_estimate: Ŝ = s/p
    kTcpSeq,         ///< estimators::estimate_size_tcp_seq (seq-span based)
    kSampleAndHold,  ///< estimators::SampleAndHold over the sampled stream
    kSpaceSaving,    ///< estimators::SpaceSavingTracker over the sampled stream
  };
  Kind kind = Kind::kNone;
  /// Tracker capacity (sample_and_hold: 0 = unbounded; space_saving >= 1).
  std::size_t slots = 1024;
  /// sample_and_hold per-packet entry probability.
  double hold_probability = 0.1;
};

/// One bin of an estimator-staged packet run.
struct PacketBinResult {
  metrics::RankMetricsResult metrics;
  std::size_t flows_in_bin = 0;  ///< original flows present in the bin
  /// Key-sorted (key, estimated original size) for every original flow in
  /// the bin; filled only when collect_estimates was set (tests compare
  /// these bit for bit against direct estimator calls).
  std::vector<std::pair<packet::FlowKey, double>> estimates;
};

/// Packet-path single run with an estimator stage: the sampled stream's
/// per-flow sizes are replaced by the stage's estimates (converted to
/// fixed point, x1024, for the integer rank metrics) before ranking, so
/// the metrics measure the combined sampling + estimation error.
///
/// Memory-bounded trackers consume the sampled packets on the driver
/// thread (one tracker per bin, SampleAndHold seeded with
/// mix_stream(run_seed, bin)); inversion/tcp_seq read the merged per-bin
/// sampled counters. Either way the result is bit-identical at any
/// `num_shards`, like run_packet_level_once. kNone reproduces
/// run_packet_level_once's metrics exactly (raw counts, no fixed point).
[[nodiscard]] std::vector<PacketBinResult> run_packet_level_estimated(
    const trace::FlowTrace& trace, double sampling_rate, const SimConfig& config,
    std::uint64_t run_seed, std::size_t num_shards, const EstimatorStage& stage,
    bool collect_estimates = false);

}  // namespace flowrank::sim
