#include "flowrank/sim/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "flowrank/dist/exponential.hpp"
#include "flowrank/dist/mixture.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/exec/task_pool.hpp"
#include "flowrank/sim/spec_detail.hpp"
#include "flowrank/trace/trace_io.hpp"
#include "flowrank/util/error.hpp"
#include "flowrank/util/table.hpp"

namespace flowrank::sim {

namespace {

using detail::split;
using detail::trim;

double parse_double(const std::string& key, const std::string& value) {
  return detail::parse_double("scenario: key '" + key + "'", value);
}

std::uint64_t parse_uint(const std::string& key, const std::string& value) {
  return detail::parse_uint("scenario: key '" + key + "'", value);
}

/// key=value pairs of one grammar clause ("on=2,off-factor=0.1").
std::map<std::string, double> parse_clause(const std::string& what,
                                           const std::string& clause) {
  std::map<std::string, double> out;
  if (trim(clause).empty()) return out;
  for (const auto& item : split(clause, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument(what + ": expected key=value, got '" + item + "'");
    }
    out[trim(item.substr(0, eq))] = parse_double(what, trim(item.substr(eq + 1)));
  }
  return out;
}

double take(std::map<std::string, double>& args, const std::string& key,
            double fallback) {
  const auto it = args.find(key);
  if (it == args.end()) return fallback;
  const double value = it->second;
  args.erase(it);
  return value;
}

void expect_empty(const std::map<std::string, double>& args, const std::string& what) {
  if (args.empty()) return;
  throw std::invalid_argument(what + ": unknown parameter '" + args.begin()->first +
                              "'");
}

std::shared_ptr<const dist::FlowSizeDistribution> parse_dist_component(
    const std::string& component, double& weight_out) {
  const auto colon = component.find(':');
  const std::string family = trim(component.substr(0, colon));
  auto args = parse_clause("dist " + family,
                           colon == std::string::npos ? "" : component.substr(colon + 1));
  weight_out = take(args, "weight", 1.0);

  std::shared_ptr<const dist::FlowSizeDistribution> out;
  if (family == "pareto") {
    const double beta = take(args, "beta", 1.5);
    if (args.count("min")) {
      out = std::make_shared<dist::Pareto>(take(args, "min", 0.0), beta);
    } else {
      out = std::make_shared<dist::Pareto>(
          dist::Pareto::from_mean(take(args, "mean", 9.6), beta));
    }
  } else if (family == "bounded_pareto") {
    out = std::make_shared<dist::BoundedPareto>(take(args, "min", 4.0),
                                                take(args, "beta", 3.0),
                                                take(args, "max", 2000.0));
  } else if (family == "exponential") {
    out = std::make_shared<dist::Exponential>(dist::Exponential::from_mean(
        take(args, "mean", 9.6), take(args, "min", 1.0)));
  } else if (family == "weibull") {
    out = std::make_shared<dist::Weibull>(
        dist::Weibull::from_mean(take(args, "mean", 9.6), take(args, "shape", 1.0),
                                 take(args, "min", 1.0)));
  } else {
    throw std::invalid_argument(
        "dist: unknown family '" + family +
        "' (pareto | bounded_pareto | exponential | weibull)");
  }
  expect_empty(args, "dist " + family);
  return out;
}

/// The dotted fault.* sub-keys, mapping onto trace::FaultSpec.
void apply_fault_entry(trace::FaultSpec& fault, const std::string& key,
                       const std::string& value) {
  const std::string knob = key.substr(std::string("fault.").size());
  if (knob == "corrupt") {
    fault.corrupt_fraction = parse_double(key, value);
  } else if (knob == "truncate") {
    fault.truncate_fraction = parse_double(key, value);
  } else if (knob == "stall-every") {
    fault.stall_every_batches = parse_uint(key, value);
  } else if (knob == "stall-ms") {
    fault.stall_ms = static_cast<std::uint32_t>(parse_uint(key, value));
  } else if (knob == "burst-flows") {
    fault.burst_flows = parse_uint(key, value);
  } else if (knob == "burst-every") {
    fault.burst_every_s = parse_double(key, value);
  } else if (knob == "burst-duration") {
    fault.burst_duration_s = parse_double(key, value);
  } else if (knob == "seed") {
    fault.seed = parse_uint(key, value);
  } else {
    throw std::invalid_argument("scenario: unknown fault knob '" + key + "'");
  }
}

/// The dotted chan.* sub-keys, mapping onto agg::SummaryFaultSpec.
void apply_chan_entry(agg::SummaryFaultSpec& chan, const std::string& key,
                      const std::string& value) {
  const auto parse_fraction = [&](const std::string& k, const std::string& v) {
    const double fraction = parse_double(k, v);
    if (!(fraction >= 0.0 && fraction <= 1.0)) {
      throw std::invalid_argument("scenario: key '" + k +
                                  "' must be a fraction in [0, 1]");
    }
    return fraction;
  };
  const std::string knob = key.substr(std::string("chan.").size());
  if (knob == "drop") {
    chan.drop_fraction = parse_fraction(key, value);
  } else if (knob == "corrupt") {
    chan.corrupt_fraction = parse_fraction(key, value);
  } else if (knob == "delay") {
    chan.delay_fraction = parse_fraction(key, value);
  } else if (knob == "delay-windows") {
    chan.delay_windows = parse_uint(key, value);
    if (chan.delay_windows < 1) {
      throw std::invalid_argument("scenario: chan.delay-windows >= 1");
    }
  } else if (knob == "duplicate") {
    chan.duplicate_fraction = parse_fraction(key, value);
  } else if (knob == "outage-agent") {
    chan.outage_agent = static_cast<std::uint32_t>(parse_uint(key, value));
  } else if (knob == "outage-from") {
    chan.outage_from = parse_uint(key, value);
  } else if (knob == "outage-windows") {
    chan.outage_windows = parse_uint(key, value);
  } else if (knob == "seed") {
    chan.seed = parse_uint(key, value);
  } else {
    throw std::invalid_argument("scenario: unknown chan knob '" + key + "'");
  }
}

trace::FlowChurnConfig parse_churn(const std::string& clause) {
  auto args = parse_clause("churn", clause);
  trace::FlowChurnConfig churn;
  churn.population = static_cast<std::size_t>(
      take(args, "population", static_cast<double>(churn.population)));
  churn.churn_per_s = take(args, "rate", churn.churn_per_s);
  churn.mean_packets = take(args, "packets", churn.mean_packets);
  churn.mean_duration_s = take(args, "flow-duration", churn.mean_duration_s);
  churn.tcp_fraction = take(args, "tcp", churn.tcp_fraction);
  expect_empty(args, "churn");
  return churn;
}

trace::OnOffArrivals parse_onoff(const std::string& clause) {
  auto args = parse_clause("onoff", clause);
  trace::OnOffArrivals on_off;
  on_off.enabled = true;
  on_off.mean_on_s = take(args, "on", on_off.mean_on_s);
  on_off.mean_off_s = take(args, "off", on_off.mean_off_s);
  on_off.on_factor = take(args, "on-factor", on_off.on_factor);
  on_off.off_factor = take(args, "off-factor", on_off.off_factor);
  expect_empty(args, "onoff");
  return on_off;
}

// --- per-mode key whitelists (the monitor/aggregate analogue of the
// experiment layer's per-model axis whitelists): every key is parsed in
// every mode, but an unknown-key error names only the keys meaningful
// for the spec's active mode, so a typo points at the right family.

const std::vector<std::string>& base_mode_keys() {
  static const std::vector<std::string> keys = {
      "beta",      "bin",         "churn",           "definition",
      "dist",      "duration",    "epoch-gap",       "epochs",
      "flow-rate", "flow-rate-scale", "mode",        "name",
      "onoff",     "packet-size", "path",            "preset",
      "rates",     "runs",        "sampler-split",   "seed",
      "shards",    "t",           "threads",         "ties",
      "trace",     "trace-seed"};
  return keys;
}

const std::vector<std::string>& monitor_mode_keys() {
  static const std::vector<std::string> keys = {
      "budget",          "ewma",
      "fault.burst-duration", "fault.burst-every",
      "fault.burst-flows", "fault.corrupt",
      "fault.seed",      "fault.stall-every",
      "fault.stall-ms",  "fault.truncate",
      "on-stall",        "overload",
      "snapshot-every",  "watchdog-ms",
      "window"};
  return keys;
}

const std::vector<std::string>& aggregate_mode_keys() {
  static const std::vector<std::string> keys = {
      "agents",          "chan.corrupt",
      "chan.delay",      "chan.delay-windows",
      "chan.drop",       "chan.duplicate",
      "chan.outage-agent", "chan.outage-from",
      "chan.outage-windows", "chan.seed",
      "deadline-ms",     "quarantine-after",
      "readmit-after",   "split",
      "summary",         "summary-slots",
      "union-capacity"};
  return keys;
}

/// "unknown key 'x' (valid keys for mode=monitor: ...)" — the key list
/// is the base set plus the active mode's family, sorted.
std::string unknown_key_message(const ScenarioSpec& spec, const std::string& key) {
  const char* mode = spec.aggregate.enabled ? "aggregate"
                     : spec.monitor.enabled ? "monitor"
                                            : "batch";
  std::vector<std::string> keys = base_mode_keys();
  if (spec.monitor.enabled) {
    const auto& extra = monitor_mode_keys();
    keys.insert(keys.end(), extra.begin(), extra.end());
  } else if (spec.aggregate.enabled) {
    const auto& extra = aggregate_mode_keys();
    keys.insert(keys.end(), extra.begin(), extra.end());
  }
  std::sort(keys.begin(), keys.end());
  std::string message =
      "scenario: unknown key '" + key + "' (valid keys for mode=" + mode + ": ";
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) message += ", ";
    message += keys[i];
  }
  message += ")";
  return message;
}

/// Applies one key=value entry onto the spec. The single source of truth
/// for the key set — files and CLI overrides both route through here.
void apply_entry(ScenarioSpec& spec, const std::string& key, const std::string& value) {
  if (key == "name") {
    spec.name = value;
  } else if (key == "trace") {
    spec.trace = value;
  } else if (key == "preset") {
    if (value != "sprint_5tuple" && value != "sprint_prefix24" &&
        value != "abilene" && value != "custom") {
      throw std::invalid_argument("scenario: unknown preset '" + value + "'");
    }
    spec.preset = value;
  } else if (key == "beta") {
    spec.beta = parse_double(key, value);
  } else if (key == "dist") {
    spec.dist = value;
  } else if (key == "duration") {
    spec.duration_s = parse_double(key, value);
  } else if (key == "flow-rate") {
    spec.flow_rate_per_s = parse_double(key, value);
  } else if (key == "flow-rate-scale") {
    spec.flow_rate_scale = parse_double(key, value);
  } else if (key == "trace-seed") {
    spec.trace_seed = parse_uint(key, value);
  } else if (key == "packet-size") {
    spec.packet_size_bytes = static_cast<std::uint32_t>(parse_uint(key, value));
  } else if (key == "epochs") {
    spec.epochs = parse_uint(key, value);
    if (spec.epochs < 1) throw std::invalid_argument("scenario: epochs >= 1");
  } else if (key == "epoch-gap") {
    spec.epoch_gap_s = parse_double(key, value);
  } else if (key == "onoff") {
    spec.on_off = parse_onoff(value);
  } else if (key == "churn") {
    spec.churn = parse_churn(value);
  } else if (key == "sampler-split") {
    if (value == "on" || value == "true" || value == "1") {
      spec.sampler_split = true;
    } else if (value == "off" || value == "false" || value == "0") {
      spec.sampler_split = false;
    } else {
      throw std::invalid_argument(
          "scenario: sampler-split must be on|off, got '" + value + "'");
    }
  } else if (key == "bin") {
    spec.bin_seconds = parse_double(key, value);
  } else if (key == "t") {
    spec.top_t = parse_uint(key, value);
  } else if (key == "rates") {
    spec.sampling_rates.clear();
    for (const auto& rate : split(value, ',')) {
      spec.sampling_rates.push_back(parse_double(key, rate));
    }
  } else if (key == "runs") {
    spec.runs = static_cast<int>(parse_uint(key, value));
  } else if (key == "seed") {
    spec.seed = parse_uint(key, value);
  } else if (key == "ties") {
    if (value == "paper") {
      spec.tie_policy = metrics::TiePolicy::kPaper;
    } else if (value == "lenient") {
      spec.tie_policy = metrics::TiePolicy::kLenient;
    } else {
      throw std::invalid_argument("scenario: ties must be paper|lenient, got '" +
                                  value + "'");
    }
  } else if (key == "definition") {
    if (value == "5tuple") {
      spec.definition = packet::FlowDefinition::kFiveTuple;
    } else if (value == "prefix24") {
      spec.definition = packet::FlowDefinition::kDstPrefix24;
    } else {
      throw std::invalid_argument(
          "scenario: definition must be 5tuple|prefix24, got '" + value + "'");
    }
  } else if (key == "path") {
    if (value == "count") {
      spec.path = ExecutionPath::kCount;
    } else if (value == "packet") {
      spec.path = ExecutionPath::kPacket;
    } else {
      throw std::invalid_argument("scenario: path must be count|packet, got '" +
                                  value + "'");
    }
  } else if (key == "threads") {
    // Validates the sanity cap up front (0 = all hardware threads).
    spec.num_threads = exec::TaskPool::resolve_parallelism(parse_uint(key, value));
    if (value == "0") spec.num_threads = 0;  // keep the symbolic 0
  } else if (key == "shards") {
    spec.num_shards = exec::TaskPool::resolve_parallelism(parse_uint(key, value));
    if (value == "0") spec.num_shards = 0;
  } else if (key == "mode") {
    if (value == "batch") {
      spec.monitor.enabled = false;
      spec.aggregate.enabled = false;
    } else if (value == "monitor") {
      spec.monitor.enabled = true;
      spec.aggregate.enabled = false;
    } else if (value == "aggregate") {
      spec.monitor.enabled = false;
      spec.aggregate.enabled = true;
    } else {
      throw std::invalid_argument(
          "scenario: mode must be batch|monitor|aggregate, got '" + value + "'");
    }
  } else if (key == "agents") {
    spec.aggregate.agents = parse_uint(key, value);
    if (spec.aggregate.agents < 1) {
      throw std::invalid_argument("scenario: agents >= 1");
    }
  } else if (key == "split") {
    if (value == "flow") {
      spec.aggregate.split = agg::FleetSplit::kFlow;
    } else if (value == "packet") {
      spec.aggregate.split = agg::FleetSplit::kPacket;
    } else {
      throw std::invalid_argument("scenario: split must be flow|packet, got '" +
                                  value + "'");
    }
  } else if (key == "deadline-ms") {
    spec.aggregate.deadline_ms = static_cast<std::uint32_t>(parse_uint(key, value));
  } else if (key == "quarantine-after") {
    spec.aggregate.quarantine_after = parse_uint(key, value);
    if (spec.aggregate.quarantine_after < 1) {
      throw std::invalid_argument("scenario: quarantine-after >= 1");
    }
  } else if (key == "readmit-after") {
    spec.aggregate.readmit_after = parse_uint(key, value);
    if (spec.aggregate.readmit_after < 1) {
      throw std::invalid_argument("scenario: readmit-after >= 1");
    }
  } else if (key == "summary") {
    if (value == "table") {
      spec.aggregate.summary = agg::SummaryKind::kFlowTable;
    } else if (value == "spacesaving") {
      spec.aggregate.summary = agg::SummaryKind::kSpaceSaving;
    } else {
      throw std::invalid_argument(
          "scenario: summary must be table|spacesaving, got '" + value + "'");
    }
  } else if (key == "summary-slots") {
    spec.aggregate.summary_slots = parse_uint(key, value);
    if (spec.aggregate.summary_slots < 1) {
      throw std::invalid_argument("scenario: summary-slots >= 1");
    }
  } else if (key == "union-capacity") {
    spec.aggregate.union_capacity = parse_uint(key, value);
  } else if (key.rfind("chan.", 0) == 0) {
    apply_chan_entry(spec.aggregate.chan, key, value);
  } else if (key == "window") {
    spec.monitor.window_s = parse_double(key, value);
    if (spec.monitor.window_s < 0.0) {
      throw std::invalid_argument("scenario: window >= 0 (0 = use bin)");
    }
  } else if (key == "snapshot-every") {
    spec.monitor.snapshot_every = parse_uint(key, value);
    if (spec.monitor.snapshot_every < 1) {
      throw std::invalid_argument("scenario: snapshot-every >= 1");
    }
  } else if (key == "overload") {
    if (value == "block") {
      spec.monitor.shed = false;
    } else if (value == "shed") {
      spec.monitor.shed = true;
    } else {
      throw std::invalid_argument("scenario: overload must be block|shed, got '" +
                                  value + "'");
    }
  } else if (key == "ewma") {
    spec.monitor.ewma_alpha = parse_double(key, value);
    if (!(spec.monitor.ewma_alpha > 0.0 && spec.monitor.ewma_alpha <= 1.0)) {
      throw std::invalid_argument("scenario: ewma must be in (0, 1]");
    }
  } else if (key == "budget") {
    spec.monitor.window_packet_budget = parse_uint(key, value);
  } else if (key == "watchdog-ms") {
    spec.monitor.watchdog_ms = static_cast<std::uint32_t>(parse_uint(key, value));
  } else if (key == "on-stall") {
    if (value == "rotate") {
      spec.monitor.fail_on_stall = false;
    } else if (value == "fail") {
      spec.monitor.fail_on_stall = true;
    } else {
      throw std::invalid_argument("scenario: on-stall must be rotate|fail, got '" +
                                  value + "'");
    }
  } else if (key.rfind("fault.", 0) == 0) {
    apply_fault_entry(spec.monitor.fault, key, value);
  } else {
    throw std::invalid_argument(unknown_key_message(spec, key));
  }
}

}  // namespace

const std::vector<std::string>& scenario_keys() {
  static const std::vector<std::string> keys = [] {
    std::vector<std::string> all = base_mode_keys();
    const auto& monitor = monitor_mode_keys();
    const auto& aggregate = aggregate_mode_keys();
    all.insert(all.end(), monitor.begin(), monitor.end());
    all.insert(all.end(), aggregate.begin(), aggregate.end());
    std::sort(all.begin(), all.end());
    return all;
  }();
  return keys;
}

void apply_scenario_entry(ScenarioSpec& spec, const std::string& key,
                          const std::string& value) {
  apply_entry(spec, key, value);
}

std::shared_ptr<const dist::FlowSizeDistribution> parse_dist(
    const std::string& grammar) {
  const auto components = split(grammar, '|');
  if (components.size() == 1) {
    double weight = 1.0;
    return parse_dist_component(components.front(), weight);
  }
  std::vector<dist::Mixture::Component> mix;
  mix.reserve(components.size());
  for (const auto& component : components) {
    double weight = 1.0;
    auto d = parse_dist_component(component, weight);
    mix.push_back(dist::Mixture::Component{weight, std::move(d)});
  }
  return std::make_shared<dist::Mixture>(std::move(mix));
}

void parse_spec_file(
    const std::string& path,
    const std::function<void(const std::string&, const std::string&)>& entry) {
  std::ifstream is(path);
  if (!is) {
    throw Error(ErrorCategory::kIo, "scenario", "cannot open " + path);
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // '#' opens a comment at line start or after whitespace; a '#'
    // embedded in a token (e.g. a file path) is part of the value.
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '#' && (i == 0 || line[i - 1] == ' ' || line[i - 1] == '\t')) {
        line.erase(i);
        break;
      }
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw Error(ErrorCategory::kSpec, path + ":" + std::to_string(line_no),
                  "expected key = value");
    }
    const std::string key = trim(line.substr(0, eq));
    try {
      entry(key, trim(line.substr(eq + 1)));
    } catch (const std::invalid_argument& e) {
      // File, line and offending key up front; the entry's own message
      // carries the value diagnosis.
      throw Error(ErrorCategory::kSpec, path + ":" + std::to_string(line_no),
                  "key '" + key + "': " + e.what());
    }
  }
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  ScenarioSpec spec;
  parse_spec_file(path, [&spec](const std::string& key, const std::string& value) {
    apply_entry(spec, key, value);
  });
  return spec;
}

void apply_scenario_overrides(ScenarioSpec& spec, const util::Cli& cli) {
  for (const std::string& key : scenario_keys()) {
    if (cli.has(key)) apply_entry(spec, key, cli.get_string(key, ""));
  }
}

ScenarioSpec scenario_from_cli(const util::Cli& cli) {
  ScenarioSpec spec;
  const std::string file = cli.get_string("scenario", "");
  if (!file.empty()) spec = parse_scenario_file(file);
  apply_scenario_overrides(spec, cli);
  return spec;
}

std::shared_ptr<const dist::FlowSizeDistribution> make_size_distribution(
    const ScenarioSpec& spec) {
  if (!spec.dist.empty()) return parse_dist(spec.dist);
  if (spec.preset == "sprint_5tuple") {
    return std::make_shared<dist::Pareto>(dist::Pareto::from_mean(9.6, spec.beta));
  }
  if (spec.preset == "sprint_prefix24") {
    return std::make_shared<dist::Pareto>(dist::Pareto::from_mean(33.2, spec.beta));
  }
  if (spec.preset == "abilene") {
    return std::make_shared<dist::BoundedPareto>(4.0, 3.0, 2000.0);
  }
  throw std::invalid_argument("scenario: preset=custom requires a dist= grammar");
}

namespace {

/// The spec's trace source before any fault wrapping.
std::shared_ptr<const trace::TraceSource> make_base_trace_source(
    const ScenarioSpec& spec) {
  if (spec.trace == "churn") {
    // pktgen-style bounded-population workload; shared keys fill the
    // shared knobs, the `churn` clause the population/turnover ones.
    const auto epoch_config = [&spec](std::uint64_t seed) {
      trace::FlowChurnConfig config = spec.churn;
      config.duration_s = spec.duration_s;
      if (spec.flow_rate_per_s > 0.0) config.flow_rate_per_s = spec.flow_rate_per_s;
      config.flow_rate_per_s *= spec.flow_rate_scale;
      config.packet_size_bytes = spec.packet_size_bytes;
      config.seed = seed;
      return config;
    };
    if (spec.epochs == 1) {
      return std::make_shared<trace::FlowChurnTraceSource>(
          epoch_config(spec.trace_seed));
    }
    // Multi-epoch: per-epoch seeds, so the populations churn across
    // epochs too — same convention as the synthetic source.
    std::vector<std::shared_ptr<const trace::TraceSource>> epochs;
    epochs.reserve(spec.epochs);
    for (std::size_t k = 0; k < spec.epochs; ++k) {
      epochs.push_back(std::make_shared<trace::FlowChurnTraceSource>(
          epoch_config(spec.trace_seed + k)));
    }
    return std::make_shared<trace::ConcatTraceSource>(std::move(epochs),
                                                      spec.epoch_gap_s);
  }
  if (spec.trace != "synthetic") {
    // FRT1 file replay. epochs > 1 loops the recording back to back — the
    // streaming soak-test shape.
    trace::FileTraceSource::Options options;
    options.packet_size_bytes = spec.packet_size_bytes;
    options.seed = spec.trace_seed;
    auto file =
        std::make_shared<trace::FileTraceSource>(spec.trace, options);
    if (spec.epochs == 1) return file;
    // Load the file once; every epoch replays the in-memory records
    // instead of re-reading and re-sorting the file per epoch.
    auto loaded = std::make_shared<trace::FixedTraceSource>(file->flows(),
                                                            file->name());
    std::vector<std::shared_ptr<const trace::TraceSource>> epochs(spec.epochs,
                                                                  loaded);
    return std::make_shared<trace::ConcatTraceSource>(std::move(epochs),
                                                      spec.epoch_gap_s);
  }

  const auto epoch_config = [&spec](std::uint64_t seed) {
    trace::FlowTraceConfig config;
    if (spec.preset == "sprint_5tuple") {
      config = trace::FlowTraceConfig::sprint_5tuple(spec.beta, seed);
    } else if (spec.preset == "sprint_prefix24") {
      config = trace::FlowTraceConfig::sprint_prefix24(spec.beta, seed);
    } else if (spec.preset == "abilene") {
      config = trace::FlowTraceConfig::abilene(seed);
    } else {
      config.seed = seed;
      if (!(spec.flow_rate_per_s > 0.0)) {
        throw std::invalid_argument("scenario: preset=custom requires flow-rate > 0");
      }
    }
    if (!spec.dist.empty() || spec.preset == "custom") {
      config.size_dist = make_size_distribution(spec);
    }
    config.duration_s = spec.duration_s;
    if (spec.flow_rate_per_s > 0.0) config.flow_rate_per_s = spec.flow_rate_per_s;
    config.flow_rate_per_s *= spec.flow_rate_scale;
    config.packet_size_bytes = spec.packet_size_bytes;
    config.on_off = spec.on_off;
    return config;
  };

  if (spec.epochs == 1) {
    return std::make_shared<trace::SyntheticTraceSource>(epoch_config(spec.trace_seed),
                                                         spec.preset);
  }
  // Multi-epoch streaming: per-epoch seeds so consecutive epochs carry
  // different flow populations, concatenated end to end.
  std::vector<std::shared_ptr<const trace::TraceSource>> epochs;
  epochs.reserve(spec.epochs);
  for (std::size_t k = 0; k < spec.epochs; ++k) {
    epochs.push_back(std::make_shared<trace::SyntheticTraceSource>(
        epoch_config(spec.trace_seed + k),
        spec.preset + " epoch " + std::to_string(k)));
  }
  return std::make_shared<trace::ConcatTraceSource>(std::move(epochs),
                                                    spec.epoch_gap_s);
}

}  // namespace

std::shared_ptr<const trace::TraceSource> make_trace_source(const ScenarioSpec& spec) {
  auto source = make_base_trace_source(spec);
  // Fault injection only arms in monitor mode: batch figure runs keep
  // their clean traces even if a spec carries stray fault.* keys.
  if (spec.monitor.enabled && spec.monitor.fault.any()) {
    return std::make_shared<trace::FaultInjectingTraceSource>(std::move(source),
                                                              spec.monitor.fault);
  }
  return source;
}

SimConfig make_sim_config(const ScenarioSpec& spec) {
  if (spec.sampling_rates.empty()) {
    throw std::invalid_argument("scenario: at least one sampling rate");
  }
  SimConfig config;
  config.bin_seconds = spec.bin_seconds;
  config.top_t = spec.top_t;
  config.sampling_rates = spec.sampling_rates;
  config.runs = spec.runs;
  config.definition = spec.definition;
  config.tie_policy = spec.tie_policy;
  config.seed = spec.seed;
  config.num_threads = spec.num_threads;
  config.sampler_split = spec.sampler_split;
  return config;
}

monitor::MonitorConfig make_monitor_config(const ScenarioSpec& spec) {
  if (!spec.monitor.enabled) {
    throw std::invalid_argument("scenario: make_monitor_config requires mode=monitor");
  }
  if (spec.sampling_rates.size() != 1) {
    throw std::invalid_argument(
        "scenario: mode=monitor needs exactly one sampling rate (rates=...), got " +
        std::to_string(spec.sampling_rates.size()));
  }
  monitor::MonitorConfig config;
  config.window_s =
      spec.monitor.window_s > 0.0 ? spec.monitor.window_s : spec.bin_seconds;
  config.snapshot_every = spec.monitor.snapshot_every;
  config.top_t = spec.top_t;
  config.sampling_rate = spec.sampling_rates.front();
  config.seed = spec.seed;
  config.num_shards = spec.num_shards;
  config.table_options.definition = spec.definition;
  config.overload = spec.monitor.shed ? ingest::OverloadPolicy::kShed
                                      : ingest::OverloadPolicy::kBlock;
  config.window_packet_budget = spec.monitor.window_packet_budget;
  config.ewma_alpha = spec.monitor.ewma_alpha;
  config.stall_deadline_ms = spec.monitor.watchdog_ms;
  config.fail_on_stall = spec.monitor.fail_on_stall;
  return config;
}

agg::FleetConfig make_fleet_config(const ScenarioSpec& spec) {
  if (!spec.aggregate.enabled) {
    throw std::invalid_argument("scenario: make_fleet_config requires mode=aggregate");
  }
  if (spec.sampling_rates.size() != 1) {
    throw std::invalid_argument(
        "scenario: mode=aggregate needs exactly one sampling rate (rates=...), got " +
        std::to_string(spec.sampling_rates.size()));
  }
  agg::FleetConfig config;
  config.agents = spec.aggregate.agents;
  config.split = spec.aggregate.split;
  config.window_s = spec.bin_seconds;
  config.sampling_rate = spec.sampling_rates.front();
  config.seed = spec.seed;
  config.definition = spec.definition;
  config.num_shards = spec.num_shards;
  config.top_t = spec.top_t;
  config.deadline_ms = spec.aggregate.deadline_ms;
  config.quarantine_after = spec.aggregate.quarantine_after;
  config.readmit_after = spec.aggregate.readmit_after;
  config.summary_kind = spec.aggregate.summary;
  config.summary_slots = spec.aggregate.summary_slots;
  config.union_capacity = spec.aggregate.union_capacity;
  config.chan = spec.aggregate.chan;
  return config;
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  if (spec.monitor.enabled) {
    throw std::invalid_argument(
        "scenario: mode=monitor runs through the experiment engine "
        "(flowrank_experiments) or monitor::MonitorLoop, not run_scenario");
  }
  if (spec.aggregate.enabled) {
    throw std::invalid_argument(
        "scenario: mode=aggregate runs through the experiment engine "
        "(flowrank_experiments) or agg::run_fleet, not run_scenario");
  }
  const auto source = make_trace_source(spec);
  const auto trace = source->flows();
  const SimConfig config = make_sim_config(spec);

  ScenarioResult result;
  result.spec = spec;
  result.source_name = source->name();
  result.flow_count = trace.flows.size();
  result.packet_count = trace.total_packets();
  result.duration_s = trace.config.duration_s;
  if (spec.path == ExecutionPath::kCount) {
    result.count = run_binned_simulation(trace, config);
  } else {
    result.packet.reserve(spec.sampling_rates.size());
    for (const double rate : spec.sampling_rates) {
      result.packet.push_back(run_packet_level_once(trace, rate, config, spec.seed,
                                                    spec.num_shards));
    }
  }
  return result;
}

std::size_t export_scenario_trace(const ScenarioSpec& spec, const std::string& path) {
  const auto source = make_trace_source(spec);
  const auto trace = source->flows();
  trace::save_flow_records(path, trace.flows);
  return trace.flows.size();
}

void print_scenario_report(std::ostream& os, const ScenarioResult& result) {
  const ScenarioSpec& spec = result.spec;
  os << "# scenario: " << spec.name << "\n";
  os << "# source:   " << result.source_name << " — " << result.flow_count
     << " flows, " << result.packet_count << " packets over " << result.duration_s
     << " s\n";
  os << "# config:   bin " << spec.bin_seconds << " s, top-" << spec.top_t << ", "
     << (spec.path == ExecutionPath::kCount
             ? std::to_string(spec.runs) + " runs (count path)"
             : std::string("packet path"))
     << ", ties "
     << (spec.tie_policy == metrics::TiePolicy::kPaper ? "paper" : "lenient")
     << "\n";

  if (spec.path == ExecutionPath::kCount) {
    for (const char* metric : {"ranking", "detection"}) {
      os << "\n## " << metric
         << " metric (mean/std of swapped pairs per bin over runs)\n";
      std::vector<std::string> headers{"time_s", "flows"};
      for (double rate : spec.sampling_rates) {
        headers.push_back("p=" + util::format_double(rate * 100) + "%");
        headers.push_back("std");
      }
      util::Table table(headers);
      const auto& series0 = result.count.series.front();
      for (std::size_t b = 0; b < series0.bins.size(); ++b) {
        table.begin_row();
        table.add_cell((static_cast<double>(b) + 1.0) * spec.bin_seconds);
        table.add_cell(series0.bins[b].flows_in_bin);
        for (const auto& series : result.count.series) {
          const auto& stats = metric == std::string("ranking")
                                  ? series.bins[b].ranking
                                  : series.bins[b].detection;
          table.add_cell(stats.count() > 0 ? stats.mean() : std::nan(""));
          table.add_cell(stats.count() > 0 ? stats.stddev() : std::nan(""));
        }
      }
      table.print(os);
    }
    return;
  }

  for (std::size_t r = 0; r < result.packet.size(); ++r) {
    os << "\n## packet path, p = " << spec.sampling_rates[r] * 100 << "%\n";
    util::Table table({"bin", "ranking_swapped", "detection_swapped", "recall"});
    for (std::size_t b = 0; b < result.packet[r].size(); ++b) {
      const auto& m = result.packet[r][b];
      table.add_row(b, m.ranking_swapped, m.detection_swapped, m.top_set_recall);
    }
    table.print(os);
  }
}

}  // namespace flowrank::sim
