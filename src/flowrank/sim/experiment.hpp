// The unified experiment layer: every paper figure, ablation sweep and
// estimator-augmented workload is one declarative ExperimentSpec executed
// by one engine, with rows streamed to a report::ResultSink — experiments
// are data, not binaries.
//
// An ExperimentSpec extends ScenarioSpec (all scenario keys keep working)
// with a model axis and a sweep grammar:
//
//   model = exact | mc | packet
//     exact  — the analytic models (quadrature ranking/detection,
//              optimal-rate and Gaussian-error grids; figs 1-11), one
//              row per grid cell, parallelized over the grid on the
//              shared exec::TaskPool. `exact-pairwise = exact-discrete`
//              switches metric=ranking cells to the integer-support
//              discrete model (Eqs. 1 and 3) backed by build-once
//              core::DiscreteModelContext tables, cached per distinct
//              (p, pmf, max-size, tail-tol, window) across the grid;
//     mc     — the trace-driven count-path Monte-Carlo simulation
//              (binomial thinning over per-bin counts; figs 12-16), one
//              row per (grid cell, rate, time bin);
//     packet — the production packet pipeline (stream → sampler →
//              sharded classifier → optional estimator → rank), one row
//              per (grid cell, rate, time bin).
//
//   sweep <param> = <lo>..<hi> log <count>     # log-spaced grid
//   sweep <param> = <lo>..<hi> lin <count>     # linearly spaced grid
//   sweep <param> = v1,v2,v3                   # explicit list
//
// Sweep axes form a row-major cartesian grid in declaration order (the
// CLI override is --sweep-<param>). Sweepable params: rate, t, n, beta,
// bin, duration, s1, s2 — validity depends on the model (e.g. s1/s2 are
// the exact optimal-rate/gaussian-error size grids; n is the exact-model
// population). A `sweep rate` on mc/packet replaces the `rates` list.
//
// Exact-model keys: metric = ranking|detection|optimal_rate|
// gaussian_error, n = <population>, rate = <fixed sampling rate>,
// target = <Pm,d for optimal_rate>, pairwise = gaussian|hybrid,
// counting = paper|unordered, exact-pairwise = gaussian|hybrid|
// exact-discrete, plus the exact-discrete knobs max-size = <support cap>,
// tail-tol = <pmf tail mass tolerance> and window = <gated k-sum pmf
// tolerance; doubles as the monitor window seconds — run-time validation
// keeps the two modes apart>.
//
// Packet-model estimator stage (closing the paper's sampled → estimated
// → ranked loop):
//   estimator = inversion | tcp_seq
//             | sample_and_hold:slots=K[,hold=H] | space_saving:slots=K
//
// Monitor mode (`mode = monitor` plus the scenario monitor/fault.* keys)
// turns a model=packet experiment into one continuous MonitorLoop run
// whose rows are periodic top-t snapshots with fault/shed accounting
// (see flowrank/monitor/monitor_loop.hpp). No sweeps, one sampling rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flowrank/core/ranking_model.hpp"
#include "flowrank/report/result_sink.hpp"
#include "flowrank/sim/scenario.hpp"

namespace flowrank::sim {

/// Which execution model runs the experiment.
enum class ExperimentModel { kExact, kMc, kPacket };

/// What the exact model evaluates per grid cell.
enum class ExactMetric { kRanking, kDetection, kOptimalRate, kGaussianError };

/// One sweep axis: a named parameter and its grid values.
struct SweepAxis {
  std::string param;
  std::vector<double> values;
  std::string grammar;  ///< original grammar text, echoed into metadata
};

/// One experiment, as data. Scenario keys (trace source, bin, rates,
/// seeds, threads/shards, ...) are inherited; defaults run a laptop-scale
/// mc experiment.
struct ExperimentSpec : ScenarioSpec {
  ExperimentModel model = ExperimentModel::kMc;
  std::string description;  ///< one-liner shown by flowrank_experiments --list

  // --- exact-model knobs ---------------------------------------------------
  ExactMetric metric = ExactMetric::kRanking;
  std::int64_t exact_n = 700000;  ///< population N (the Sprint 5-tuple default)
  double exact_rate = 0.01;       ///< fixed sampling rate when rate is not swept
  double optimal_target = 1e-3;   ///< Pm,d for metric=optimal_rate
  core::PairwiseModel pairwise = core::PairwiseModel::kGaussian;
  core::PairCounting counting = core::PairCounting::kPaper;
  /// `exact-pairwise = exact-discrete`: run metric=ranking cells through
  /// the integer-support discrete model instead of the continuous
  /// quadrature (gaussian|hybrid values map onto `pairwise` above).
  bool exact_discrete = false;
  std::int64_t exact_max_size = 4096;  ///< discrete support cap (max-size)
  double exact_tail_tol = 1e-6;        ///< discrete tail tolerance (tail-tol)
  /// Discrete windowed-k-sum tolerance (0 = exact, the default). Shares
  /// the `window` key with monitor mode's seconds; both fields are set at
  /// parse time and check_axes keeps the modes mutually exclusive.
  double exact_window = 0.0;

  // --- packet-model estimator stage ---------------------------------------
  EstimatorStage estimator;
  std::string estimator_grammar = "none";

  // --- sweep grid ----------------------------------------------------------
  std::vector<SweepAxis> sweeps;  ///< row-major, declaration order
};

/// Parses one sweep grammar ("1e-4..1e-2 log 12", "0..1 lin 5",
/// "10,30,100"). Log/lin grids pin the last value to `hi` exactly (the
/// same convention as the historical figure rate grids). Throws
/// std::invalid_argument on grammar errors.
[[nodiscard]] std::vector<double> parse_sweep_values(const std::string& grammar);

/// Parses the estimator grammar (see header comment). "none" clears the
/// stage. Throws std::invalid_argument on grammar errors.
[[nodiscard]] EstimatorStage parse_estimator(const std::string& grammar);

/// Experiment-only keys (scenario keys come on top), sorted.
[[nodiscard]] const std::vector<std::string>& experiment_keys();

/// Applies one key=value entry: experiment keys, `sweep <param>` axes,
/// scenario keys. Throws std::invalid_argument on unknown keys.
void apply_experiment_entry(ExperimentSpec& spec, const std::string& key,
                            const std::string& value);

/// Parses a key=value experiment file (same format as scenario files;
/// `sweep <param> = <grammar>` declares an axis, later declarations of
/// the same param replace earlier ones).
[[nodiscard]] ExperimentSpec parse_experiment_file(const std::string& path);

/// Applies CLI overrides: every experiment/scenario key as `--key`, every
/// sweep axis as `--sweep-<param>`.
void apply_experiment_overrides(ExperimentSpec& spec, const util::Cli& cli);

/// Spec from CLI alone: `--spec file` (if given) then overrides.
[[nodiscard]] ExperimentSpec experiment_from_cli(const util::Cli& cli);

/// The full canonical key = value echo of a spec (what the sink's
/// run-metadata header records): every knob, in a fixed order, sweeps
/// last.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> experiment_echo(
    const ExperimentSpec& spec);

/// The column names run_experiment emits for this spec, in order: sweep
/// axes first, then the model's fixed columns.
[[nodiscard]] std::vector<std::string> experiment_columns(const ExperimentSpec& spec);

/// Runs the experiment end to end: opens the sink (metadata + columns),
/// streams every row in deterministic grid order (exact-model cells are
/// computed concurrently on the shared TaskPool — the sink reorders), and
/// closes the sink. Returns the number of rows emitted. Throws
/// std::invalid_argument on spec/model mismatches (e.g. an s1 sweep on a
/// packet experiment) before any output is written.
std::size_t run_experiment(const ExperimentSpec& spec, report::ResultSink& sink);

}  // namespace flowrank::sim
