// Shared parsing primitives for the key=value spec grammars (scenario
// and experiment layers). Internal: include only from sim/*.cpp — the
// public surfaces are scenario.hpp / experiment.hpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace flowrank::sim::detail {

inline std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

inline std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const auto pos = s.find(sep, start);
    out.push_back(trim(s.substr(start, pos - start)));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

/// Strict full-token double parse; `what` names the key/clause for the
/// error message.
inline double parse_double(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": expected a number, got '" + value + "'");
  }
}

/// Strict full-token non-negative integer parse.
inline std::uint64_t parse_uint(const std::string& what, const std::string& value) {
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(value, &used);
    if (used != value.size() || parsed < 0) throw std::invalid_argument(value);
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": expected a non-negative integer, got '" +
                                value + "'");
  }
}

}  // namespace flowrank::sim::detail
