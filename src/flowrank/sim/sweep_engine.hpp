// Grid adapter for the Monte-Carlo sweeps, on the shared exec::TaskPool.
//
// The evaluation grids this repo sweeps — run_binned_simulation's
// (sampling_rate, bin) cells, run_mc_model's runs — are embarrassingly
// parallel by construction: PR 2's util::mix_streams gives every cell its
// own independent RNG stream, so a cell's result depends only on its own
// coordinates, never on which thread computes it or in what order. The
// engine exploits exactly that shape: parallel_for() hands out task
// indices dynamically (cells vary wildly in cost with bin population),
// every task writes to its own pre-allocated slot, and the caller folds
// slots back in deterministic index order. Results are therefore
// bit-identical at any thread count — the property
// tests/test_sweep_engine.cpp pins down.
//
// Since the exec layer extraction this class owns no threads of its own:
// it is a view over exec::TaskPool::shared() that caps how many pool
// workers one sweep may occupy. Back-to-back sweeps (every figure driver
// runs several) reuse the same parked workers instead of paying thread
// start-up per engine.
#pragma once

#include <cstddef>
#include <functional>

#include "flowrank/exec/task_pool.hpp"

namespace flowrank::sim {

/// Fork-join facade over the shared TaskPool. One instance may serve many
/// parallel_for() calls (sequentially — one driver thread submits work).
class SweepEngine {
 public:
  /// `num_threads` >= 1 is the total parallelism of this engine's jobs:
  /// the calling thread plus up to num_threads - 1 shared-pool workers
  /// (grown on demand, parked between jobs). num_threads == 1 runs
  /// inline. Throws std::invalid_argument on 0 or beyond
  /// exec::TaskPool::kMaxParallelism.
  explicit SweepEngine(std::size_t num_threads);

  /// Executes fn(i) once for every i in [0, count), spread dynamically
  /// over the pool; returns when all calls have finished. fn must be safe
  /// to call concurrently for distinct i (tasks writing to disjoint slots
  /// is the intended pattern). If a task throws, unclaimed tasks are
  /// skipped, in-flight ones finish, and the first exception is rethrown
  /// here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t num_threads() const noexcept { return num_threads_; }

  /// Clamp helper for config plumbing: 0 means "all hardware threads".
  [[nodiscard]] static std::size_t resolve_thread_count(std::size_t requested);

 private:
  std::size_t num_threads_;
};

}  // namespace flowrank::sim
