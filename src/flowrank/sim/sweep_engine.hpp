// Persistent worker pool for the Monte-Carlo sweeps.
//
// The evaluation grids this repo sweeps — run_binned_simulation's
// (sampling_rate, bin) cells, run_mc_model's runs — are embarrassingly
// parallel by construction: PR 2's util::mix_streams gives every cell its
// own independent RNG stream, so a cell's result depends only on its own
// coordinates, never on which thread computes it or in what order. The
// engine exploits exactly that shape: parallel_for() hands out task
// indices dynamically (cells vary wildly in cost with bin population),
// every task writes to its own pre-allocated slot, and the caller folds
// slots back in deterministic index order. Results are therefore
// bit-identical at any thread count — the property
// tests/test_sweep_engine.cpp pins down.
//
// Unlike ingest::ShardedPipeline (a streaming pipeline with per-shard
// queues and backpressure), this is a plain fork-join pool: tasks are
// index ranges known up front, and the pool persists across any number of
// parallel_for() calls so a sweep pays thread start-up once, not per
// grid row.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flowrank::sim {

/// Fork-join worker pool. One instance may serve many parallel_for()
/// calls (sequentially — the class is not itself thread-safe; one driver
/// thread submits work).
class SweepEngine {
 public:
  /// `num_threads` >= 1 is the total parallelism: num_threads - 1 workers
  /// are spawned and the calling thread participates in every
  /// parallel_for. num_threads == 1 spawns nothing and runs inline.
  /// Throws std::invalid_argument on 0.
  explicit SweepEngine(std::size_t num_threads);

  /// Joins the workers.
  ~SweepEngine();

  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  /// Executes fn(i) once for every i in [0, count), spread dynamically
  /// over the pool; returns when all calls have finished. fn must be safe
  /// to call concurrently for distinct i (tasks writing to disjoint slots
  /// is the intended pattern). If a task throws, unclaimed tasks are
  /// skipped, in-flight ones finish, and the first exception is rethrown
  /// here.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t num_threads() const noexcept {
    return workers_.size() + 1;
  }

  /// Clamp helper for config plumbing: 0 means "all hardware threads".
  [[nodiscard]] static std::size_t resolve_thread_count(std::size_t requested);

 private:
  void worker_loop();
  /// Claims and runs tasks of the current job until its indices run out.
  void drain_current_job();

  // All fields below are guarded by mutex_ (job_fn_ points at the
  // caller-owned closure, which outlives the job by construction).
  std::mutex mutex_;
  std::condition_variable wake_workers_;  ///< new job published
  std::condition_variable job_done_;      ///< last task of the job retired
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_count_ = 0;       ///< total tasks of the current job
  std::size_t next_index_ = 0;      ///< first unclaimed task index
  std::size_t in_flight_ = 0;       ///< claimed tasks not yet retired
  std::exception_ptr first_error_;  ///< first exception thrown by a task
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace flowrank::sim
