#include "flowrank/sim/binned_sim.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>
#include <unordered_map>

#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/trace/packet_stream.hpp"

namespace flowrank::sim {

namespace {
void check_config(const SimConfig& config) {
  if (!(config.bin_seconds > 0.0)) {
    throw std::invalid_argument("sim: bin_seconds must be > 0");
  }
  if (config.top_t < 1) throw std::invalid_argument("sim: top_t >= 1");
  if (config.runs < 1) throw std::invalid_argument("sim: runs >= 1");
  for (double p : config.sampling_rates) {
    if (!(p > 0.0 && p <= 1.0)) {
      throw std::invalid_argument("sim: sampling rates must be in (0,1]");
    }
  }
}
}  // namespace

SimResult run_binned_simulation(const trace::FlowTrace& trace,
                                const SimConfig& config) {
  check_config(config);

  const trace::BinnedCounts counts = trace::bin_flow_counts(
      trace, config.bin_seconds, config.definition, /*placement_seed=*/config.seed);

  SimResult result;
  result.config = config;
  result.series.resize(config.sampling_rates.size());

  std::vector<std::uint64_t> true_sizes;
  std::vector<std::uint64_t> sampled_sizes;

  for (std::size_t rate_idx = 0; rate_idx < config.sampling_rates.size(); ++rate_idx) {
    const double p = config.sampling_rates[rate_idx];
    RateSeries& series = result.series[rate_idx];
    series.sampling_rate = p;
    series.bins.resize(counts.bins.size());

    for (std::size_t b = 0; b < counts.bins.size(); ++b) {
      const auto& bin = counts.bins[b];
      series.bins[b].flows_in_bin = bin.size();
      if (bin.size() < config.top_t) continue;  // not enough flows to rank

      true_sizes.resize(bin.size());
      sampled_sizes.resize(bin.size());
      for (std::size_t i = 0; i < bin.size(); ++i) true_sizes[i] = bin[i].packets;

      for (int run = 0; run < config.runs; ++run) {
        auto engine = util::make_engine(
            config.seed, (rate_idx << 40) ^ (static_cast<std::uint64_t>(run) << 20) ^ b);
        for (std::size_t i = 0; i < bin.size(); ++i) {
          sampled_sizes[i] = sampler::thin_count(true_sizes[i], p, engine);
        }
        const auto m = metrics::compute_rank_metrics(true_sizes, sampled_sizes,
                                                     config.top_t, config.tie_policy);
        series.bins[b].ranking.add(m.ranking_swapped);
        series.bins[b].detection.add(m.detection_swapped);
        series.bins[b].recall.add(m.top_set_recall);
      }
    }
  }
  return result;
}

std::vector<metrics::RankMetricsResult> run_packet_level_once(
    const trace::FlowTrace& trace, double sampling_rate, const SimConfig& config,
    std::uint64_t run_seed) {
  check_config(config);
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    throw std::invalid_argument("sim: sampling rate in (0,1]");
  }

  const auto bin_ns = static_cast<std::int64_t>(config.bin_seconds * 1e9);
  const auto total_bins = static_cast<std::size_t>(
      std::ceil(trace.config.duration_s / config.bin_seconds));

  // Original and sampled per-bin flow sizes, keyed by flow identity.
  using SizeMap = std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash>;
  std::vector<SizeMap> original(total_bins), sampled(total_bins);

  flowtable::FlowTable::Options table_opts;
  table_opts.definition = config.definition;
  const auto accumulate_into = [total_bins](std::vector<SizeMap>& maps) {
    return [&maps, total_bins](std::size_t bin, const flowtable::FlowTable& table) {
      if (bin >= total_bins) return;
      table.for_each_all([&maps, bin](const flowtable::FlowCounter& f) {
        maps[bin][f.key] += f.packets;
      });
    };
  };
  auto original_classifier = flowtable::BinnedClassifier::with_table_view(
      table_opts, bin_ns, accumulate_into(original));
  auto sampled_classifier = flowtable::BinnedClassifier::with_table_view(
      table_opts, bin_ns, accumulate_into(sampled));

  // Batched ingest: pull a chunk of the packet stream, classify it whole,
  // select the sampled subset with the skip-based sampler and classify the
  // gathered selection. Identical counters to the per-packet path (the
  // sampler state machine is shared between offer() and select()).
  constexpr std::size_t kBatch = 4096;
  sampler::BernoulliSampler bernoulli(sampling_rate, run_seed);
  trace::PacketStream stream(trace);
  std::vector<packet::PacketRecord> batch, selected;
  batch.reserve(kBatch);
  selected.reserve(kBatch);
  while (stream.next_batch(batch, kBatch) > 0) {
    original_classifier.add_batch(batch);
    bernoulli.select_into(batch, selected);
    sampled_classifier.add_batch(selected);
  }
  original_classifier.finish();
  sampled_classifier.finish();

  std::vector<metrics::RankMetricsResult> out;
  out.reserve(total_bins);
  std::vector<std::uint64_t> true_sizes, sampled_sizes;
  for (std::size_t b = 0; b < total_bins; ++b) {
    if (original[b].size() < config.top_t) {
      out.push_back(metrics::RankMetricsResult{});
      continue;
    }
    true_sizes.clear();
    sampled_sizes.clear();
    for (const auto& [key, packets] : original[b]) {
      true_sizes.push_back(packets);
      const auto it = sampled[b].find(key);
      sampled_sizes.push_back(it == sampled[b].end() ? 0 : it->second);
    }
    out.push_back(metrics::compute_rank_metrics(true_sizes, sampled_sizes,
                                                config.top_t, config.tie_policy));
  }
  return out;
}

}  // namespace flowrank::sim
