#include "flowrank/sim/binned_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <random>
#include <span>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "flowrank/estimators/heavy_hitter_trackers.hpp"
#include "flowrank/estimators/tcp_seq.hpp"
#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/sim/sweep_engine.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/binomial_sample.hpp"
#include "flowrank/util/rng.hpp"

namespace flowrank::sim {

namespace {
void check_config(const SimConfig& config) {
  if (!(config.bin_seconds > 0.0)) {
    throw std::invalid_argument("sim: bin_seconds must be > 0");
  }
  if (config.top_t < 1) throw std::invalid_argument("sim: top_t >= 1");
  if (config.runs < 1) throw std::invalid_argument("sim: runs >= 1");
  for (double p : config.sampling_rates) {
    if (!(p > 0.0 && p <= 1.0)) {
      throw std::invalid_argument("sim: sampling rates must be in (0,1]");
    }
  }
}
}  // namespace

SimResult run_binned_simulation(const trace::FlowTrace& trace,
                                const SimConfig& config) {
  check_config(config);

  const trace::BinnedCounts counts = trace::bin_flow_counts(
      trace, config.bin_seconds, config.definition, /*placement_seed=*/config.seed);

  SimResult result;
  result.config = config;
  result.series.resize(config.sampling_rates.size());

  // The Monte-Carlo grid: one cell per (sampling rate, rankable bin).
  // Cells are fully independent — each (rate, run, bin) triple owns its
  // own splitmix-mixed RNG stream (the previous shift-packed mix
  // ((rate_idx << 40) ^ (run << 20) ^ b) reused streams once a trace had
  // >= 2^20 bins, correlating Monte-Carlo runs) and writes its own
  // BinStats slot, so the SweepEngine may execute them on any thread in
  // any order and the result is still bit-identical to the sequential
  // walk. Within a cell, runs stay in run order: RunningStats folds are
  // order-sensitive in floating point.
  struct Cell {
    std::size_t rate_idx = 0;
    std::size_t bin = 0;
  };
  std::vector<Cell> cells;
  for (std::size_t rate_idx = 0; rate_idx < config.sampling_rates.size(); ++rate_idx) {
    RateSeries& series = result.series[rate_idx];
    series.sampling_rate = config.sampling_rates[rate_idx];
    series.bins.resize(counts.bins.size());
    for (std::size_t b = 0; b < counts.bins.size(); ++b) {
      series.bins[b].flows_in_bin = counts.bins[b].size();
      if (counts.bins[b].size() < config.top_t) continue;  // not enough to rank
      cells.push_back(Cell{rate_idx, b});
    }
  }

  const auto run_cell = [&](std::size_t cell_index) {
    // Reused per worker thread: the sweep's hot loop allocates nothing
    // after each worker's first cell.
    thread_local std::vector<std::uint64_t> true_sizes;
    thread_local std::vector<std::uint64_t> sampled_sizes;

    const Cell cell = cells[cell_index];
    const double p = config.sampling_rates[cell.rate_idx];
    const auto& bin = counts.bins[cell.bin];
    BinStats& stats = result.series[cell.rate_idx].bins[cell.bin];

    true_sizes.resize(bin.size());
    sampled_sizes.resize(bin.size());
    for (std::size_t i = 0; i < bin.size(); ++i) true_sizes[i] = bin[i].packets;

    // Everything that depends only on the bin's true population — the
    // descending true order, equal-size run extents, pair counts — is
    // computed once here and shared by all runs of the cell. Likewise the
    // thinner memoizes the per-flow-size binomial setup at this cell's
    // rate (same stream as sampler::thin_count, less setup per draw).
    metrics::RankMetricsContext context(true_sizes, config.top_t);
    util::BinomialThinner thin(p);

    for (int run = 0; run < config.runs; ++run) {
      auto engine = util::make_engine(
          config.seed,
          util::mix_streams(cell.rate_idx, static_cast<std::uint64_t>(run),
                            cell.bin));
      for (std::size_t i = 0; i < bin.size(); ++i) {
        sampled_sizes[i] = thin(true_sizes[i], engine);
      }
      const auto m = context.evaluate(sampled_sizes, config.tie_policy);
      stats.ranking.add(m.ranking_swapped);
      stats.detection.add(m.detection_swapped);
      stats.recall.add(m.top_set_recall);
    }
  };

  SweepEngine pool(SweepEngine::resolve_thread_count(config.num_threads));
  pool.parallel_for(cells.size(), run_cell);
  return result;
}

namespace {

/// Fixed-point conversion for estimated (double) flow sizes: the rank
/// metrics take integer sizes, so estimates are scaled by 1024 — enough
/// resolution that distinct estimates stay distinct while equal estimates
/// stay ties, and large enough headroom (inverted multi-million-packet
/// flows at p = 1e-6 still fit 2^63 with orders of magnitude to spare).
std::uint64_t estimate_to_fixed(double estimate) {
  constexpr double kScale = 1024.0;
  if (!(estimate > 0.0)) return 0;
  return static_cast<std::uint64_t>(std::llround(estimate * kScale));
}

}  // namespace

std::vector<PacketBinResult> run_packet_level_estimated(
    const trace::FlowTrace& trace, double sampling_rate, const SimConfig& config,
    std::uint64_t run_seed, std::size_t num_shards, const EstimatorStage& stage,
    bool collect_estimates) {
  check_config(config);
  if (!(sampling_rate > 0.0 && sampling_rate <= 1.0)) {
    throw std::invalid_argument("sim: sampling rate in (0,1]");
  }
  if (stage.kind == EstimatorStage::Kind::kSpaceSaving && stage.slots < 1) {
    throw std::invalid_argument("sim: space_saving estimator needs slots >= 1");
  }
  // Same convention as SimConfig::num_threads: 0 = all hardware threads.
  num_shards = exec::TaskPool::resolve_parallelism(num_shards);

  // Shared bin geometry with the count path: bin_length_ns rounds (0.3 s
  // is 300 000 000 ns, not the 299 999 999 a double truncation produced),
  // so the packet path's integer bin edges no longer drift away from
  // bin_flow_counts' double-division edges by one ns per bin.
  const std::int64_t bin_ns = trace::bin_length_ns(config.bin_seconds);
  const std::size_t total_bins =
      trace::bin_count(trace.config.duration_s, config.bin_seconds);
  if (total_bins == 0) return {};

  // Original and sampled per-bin flow sizes, keyed by flow identity.
  // Only the tcp_seq estimator needs more than a packet count on the
  // sampled side (it reads the sampled sequence-number span), so the
  // full-FlowCounter map is kept only for that stage — every other path
  // stays on the compact count map. Counter merges are order-insensitive
  // (sums and min/max widening), so the merged result is identical at
  // any shard count either way.
  using SizeMap = std::unordered_map<packet::FlowKey, std::uint64_t, packet::FlowKeyHash>;
  using CounterMap =
      std::unordered_map<packet::FlowKey, flowtable::FlowCounter, packet::FlowKeyHash>;
  const bool keep_counters = stage.kind == EstimatorStage::Kind::kTcpSeq;
  // Tracker stages read only the driver-thread trackers, so the sampled
  // side of the classifier (and its per-bin maps) is skipped entirely.
  const bool track_sah = stage.kind == EstimatorStage::Kind::kSampleAndHold;
  const bool track_ssv = stage.kind == EstimatorStage::Kind::kSpaceSaving;
  const bool classify_sampled = !track_sah && !track_ssv;
  std::vector<SizeMap> original(total_bins);
  std::vector<SizeMap> sampled(classify_sampled && !keep_counters ? total_bins : 0);
  std::vector<CounterMap> sampled_counters(keep_counters ? total_bins : 0);

  flowtable::FlowTable::Options table_opts;
  table_opts.definition = config.definition;

  // A packet landing exactly at duration_s classifies into bin
  // total_bins; clamp it into the final bin (the same clamp
  // bin_flow_counts applies to flow end times) instead of silently
  // dropping the whole final table flush.
  const auto merge_into = [](CounterMap& map, const flowtable::FlowCounter& f) {
    const auto [it, inserted] = map.try_emplace(f.key);
    if (inserted) it->second.key = f.key;
    flowtable::merge_counter(it->second, f);
  };
  const auto accumulate_original = [total_bins, &original](
                                       std::size_t bin,
                                       const flowtable::FlowTable& table) {
    const std::size_t clamped = std::min(bin, total_bins - 1);
    table.for_each_all([&original, clamped](const flowtable::FlowCounter& f) {
      original[clamped][f.key] += f.packets;
    });
  };
  const auto accumulate_sampled = [&](std::size_t bin,
                                      const flowtable::FlowTable& table) {
    const std::size_t clamped = std::min(bin, total_bins - 1);
    table.for_each_all([&, clamped](const flowtable::FlowCounter& f) {
      if (keep_counters) {
        merge_into(sampled_counters[clamped], f);
      } else {
        sampled[clamped][f.key] += f.packets;
      }
    });
  };

  // Memory-bounded trackers consume the sampled packets on the driver
  // thread (the shard workers never see them), so tracker state — which
  // is order-sensitive by design — is bit-identical at any shard count.
  // One tracker per bin: each measurement interval ranks independently.
  std::vector<std::unique_ptr<estimators::SampleAndHold>> sah_bins(
      track_sah ? total_bins : 0);
  std::vector<std::unique_ptr<estimators::SpaceSavingTracker>> ssv_bins(
      track_ssv ? total_bins : 0);
  const auto feed_trackers = [&](std::span<const packet::PacketRecord> selected) {
    if (!track_sah && !track_ssv) return;
    for (const auto& pkt : selected) {
      const auto bin = std::min(
          static_cast<std::size_t>(pkt.timestamp_ns / bin_ns), total_bins - 1);
      const auto key = packet::make_flow_key(pkt.tuple, config.definition);
      if (track_sah) {
        if (!sah_bins[bin]) {
          sah_bins[bin] = std::make_unique<estimators::SampleAndHold>(
              stage.hold_probability, stage.slots,
              util::mix_stream(run_seed, bin));
        }
        sah_bins[bin]->offer(key);
      } else {
        if (!ssv_bins[bin]) {
          ssv_bins[bin] = std::make_unique<estimators::SpaceSavingTracker>(stage.slots);
        }
        ssv_bins[bin]->offer(key);
      }
    }
  };

  // Batched ingest: pull a chunk of the packet stream, select the sampled
  // subset with the skip-based sampler (inherently sequential, so always
  // on this thread), and classify both streams — inline for num_shards ==
  // 1, on the sharded pipeline's workers otherwise. Identical counters
  // either way: the sampler sees the identical packet sequence, and
  // hash-sharding assigns every flow wholly to one shard.
  constexpr std::size_t kBatch = 4096;
  // The gated split sampler selects by global stream index instead of a
  // sequential skip countdown; driver-side (select_into over in-order
  // batches) and shard-side (carried indices) evaluation of it pick the
  // identical set. Both samplers are constructed — they are cheap and
  // stateless until offered packets — and `sampler` picks the active one.
  sampler::BernoulliSampler bernoulli(sampling_rate, run_seed);
  sampler::SplitStreamSampler split(sampling_rate, run_seed);
  sampler::PacketSampler& sampler =
      config.sampler_split ? static_cast<sampler::PacketSampler&>(split)
                           : bernoulli;
  trace::PacketStream stream(trace);
  std::vector<packet::PacketRecord> batch, selected;
  batch.reserve(kBatch);
  selected.reserve(kBatch);

  if (num_shards == 1) {
    auto original_classifier = flowtable::BinnedClassifier::with_table_view(
        table_opts, bin_ns,
        [&](std::size_t bin, const flowtable::FlowTable& table) {
          accumulate_original(bin, table);
        });
    auto sampled_classifier = flowtable::BinnedClassifier::with_table_view(
        table_opts, bin_ns,
        [&](std::size_t bin, const flowtable::FlowTable& table) {
          accumulate_sampled(bin, table);
        });
    while (stream.next_batch(batch, kBatch) > 0) {
      original_classifier.add_batch(batch);
      sampler.select_into(batch, selected);
      feed_trackers(selected);
      if (classify_sampled) sampled_classifier.add_batch(selected);
    }
    original_classifier.finish();
    sampled_classifier.finish();
  } else {
    ingest::ShardedPipelineConfig pipe_cfg;
    pipe_cfg.num_shards = num_shards;
    // stream 0 = original, stream 1 = sampled (absent for tracker stages).
    pipe_cfg.num_streams = classify_sampled ? 2 : 1;
    pipe_cfg.bin_ns = bin_ns;
    pipe_cfg.table_options = table_opts;
    // Under the gate, the shards thin stream 0 themselves (by carried
    // global index) and classify the survivors into stream 1 — no
    // driver-side selection pass at all. Tracker stages still select on
    // the driver (the trackers are order-sensitive driver state), where
    // the same split sampler picks the same set.
    const bool shards_thin = config.sampler_split && classify_sampled;
    if (shards_thin) {
      pipe_cfg.split_sampler.enabled = true;
      pipe_cfg.split_sampler.rate = sampling_rate;
      pipe_cfg.split_sampler.seed = run_seed;
    }
    ingest::ShardedPipeline pipeline(pipe_cfg);
    while (stream.next_batch(batch, kBatch) > 0) {
      pipeline.add_batch(0, batch);
      if (shards_thin) continue;
      sampler.select_into(batch, selected);
      feed_trackers(selected);
      if (classify_sampled) pipeline.add_batch(1, selected);
    }
    pipeline.finish();
    for (std::size_t b = 0; b < pipeline.bin_count(0); ++b) {
      const std::size_t clamped = std::min(b, total_bins - 1);
      for (const auto& f : pipeline.bin_flows(0, b)) {
        original[clamped][f.key] += f.packets;
      }
    }
    for (std::size_t b = 0; classify_sampled && b < pipeline.bin_count(1); ++b) {
      const std::size_t clamped = std::min(b, total_bins - 1);
      for (const auto& f : pipeline.bin_flows(1, b)) {
        if (keep_counters) {
          merge_into(sampled_counters[clamped], f);
        } else {
          sampled[clamped][f.key] += f.packets;
        }
      }
    }
  }

  // Per-bin estimated size of one flow, in original-stream packets.
  const double p = sampling_rate;
  const auto estimate_for = [&](std::size_t b, const packet::FlowKey& key,
                                const std::unordered_map<packet::FlowKey, double,
                                                         packet::FlowKeyHash>*
                                    tracked) -> double {
    switch (stage.kind) {
      case EstimatorStage::Kind::kNone:
      case EstimatorStage::Kind::kInversion: {
        const auto it = sampled[b].find(key);
        if (it == sampled[b].end()) return 0.0;
        const double count = static_cast<double>(it->second);
        return stage.kind == EstimatorStage::Kind::kNone ? count : count / p;
      }
      case EstimatorStage::Kind::kTcpSeq: {
        const auto it = sampled_counters[b].find(key);
        if (it == sampled_counters[b].end()) return 0.0;
        return estimators::estimate_size_tcp_seq(it->second, p,
                                                 trace.config.packet_size_bytes)
            .packets;
      }
      case EstimatorStage::Kind::kSampleAndHold:
      case EstimatorStage::Kind::kSpaceSaving: {
        const auto it = tracked->find(key);
        // Tracker estimates count sampled-stream packets; invert by p to
        // estimate the original size, like the raw-count inversion.
        return it == tracked->end() ? 0.0 : it->second / p;
      }
    }
    return 0.0;
  };

  std::vector<PacketBinResult> out;
  out.reserve(total_bins);
  // Key-sorted flow order: deterministic across platforms, hash-map
  // implementations and shard counts (the metrics' tie-breaks depend on
  // input order, so a canonical order is what makes the single-thread and
  // N-shard paths bit-identical).
  std::vector<std::pair<packet::FlowKey, std::uint64_t>> bin_flows;
  std::vector<std::uint64_t> true_sizes, sampled_sizes;
  std::unordered_map<packet::FlowKey, double, packet::FlowKeyHash> tracked;
  for (std::size_t b = 0; b < total_bins; ++b) {
    PacketBinResult bin_result;
    bin_result.flows_in_bin = original[b].size();
    if (original[b].size() < config.top_t) {
      out.push_back(std::move(bin_result));
      continue;
    }
    tracked.clear();
    if (track_sah && sah_bins[b]) {
      for (const auto& f : sah_bins[b]->flows()) tracked[f.key] = f.estimated_packets;
    } else if (track_ssv && ssv_bins[b]) {
      for (const auto& f : ssv_bins[b]->flows()) tracked[f.key] = f.estimated_packets;
    }

    bin_flows.assign(original[b].begin(), original[b].end());
    std::sort(bin_flows.begin(), bin_flows.end(),
              [](const auto& a, const auto& c) { return a.first < c.first; });
    true_sizes.clear();
    sampled_sizes.clear();
    for (const auto& [key, packets] : bin_flows) {
      true_sizes.push_back(packets);
      const double estimate = estimate_for(b, key, &tracked);
      // kNone keeps raw integer counts (bit-compatible with the
      // pre-estimator pipeline); estimators go through fixed point.
      sampled_sizes.push_back(stage.kind == EstimatorStage::Kind::kNone
                                  ? static_cast<std::uint64_t>(estimate)
                                  : estimate_to_fixed(estimate));
      if (collect_estimates) bin_result.estimates.emplace_back(key, estimate);
    }
    bin_result.metrics = metrics::compute_rank_metrics(
        true_sizes, sampled_sizes, config.top_t, config.tie_policy);
    out.push_back(std::move(bin_result));
  }
  return out;
}

std::vector<metrics::RankMetricsResult> run_packet_level_once(
    const trace::FlowTrace& trace, double sampling_rate, const SimConfig& config,
    std::uint64_t run_seed, std::size_t num_shards) {
  const auto bins = run_packet_level_estimated(trace, sampling_rate, config,
                                               run_seed, num_shards,
                                               EstimatorStage{});
  std::vector<metrics::RankMetricsResult> out;
  out.reserve(bins.size());
  for (const auto& bin : bins) out.push_back(bin.metrics);
  return out;
}

}  // namespace flowrank::sim
