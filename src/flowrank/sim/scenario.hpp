// Declarative scenario specs: the workload layer.
//
// The paper's evaluation is one pipeline — trace → sample → bin → rank —
// run over many workloads. A ScenarioSpec describes one workload as data
// (trace source, distribution family, arrival model, rate grid, bin
// length, tie policy, execution path, threads/shards) parsed from a
// key=value file or CLI options, so a new scenario is a new text file,
// not a new C++ driver. The fig12–16 drivers, the examples and the
// scenario suite under scenarios/ all build on this layer.
//
// Spec format (same keys as `--<key>` CLI overrides). '#' starts a
// comment at line start or after whitespace; a '#' embedded in a token
// (e.g. a file path) is part of the value:
//
//   name        = bursty ON/OFF arrivals
//   trace       = synthetic            # synthetic | churn | a .frt1 path to replay
//   preset      = sprint_5tuple        # sprint_5tuple|sprint_prefix24|abilene|custom
//   beta        = 1.5                  # preset Pareto tail index
//   dist        = pareto:mean=9.6,beta=1.5   # custom preset; '|' mixes components
//   duration    = 240                  # trace seconds
//   flow-rate   = 80                   # flows/s (0 = preset default)
//   flow-rate-scale = 1.0              # multiplier on the above
//   trace-seed  = 7
//   packet-size = 500
//   epochs      = 1                    # >1 concatenates epochs back to back
//   epoch-gap   = 0                    # idle seconds between epochs
//   onoff       = on=2,off=8,on-factor=4,off-factor=0.1   # bursty arrivals
//   churn       = population=1000,rate=50,packets=16,flow-duration=1,tcp=0.9
//                                      # trace=churn knobs: bounded unique-flow
//                                      # population, slot replacements/s
//   bin         = 30                   # measurement interval seconds
//   t           = 10                   # flows to rank/detect
//   rates       = 0.01,0.1,0.5
//   runs        = 15                   # count-path Monte-Carlo runs
//   seed        = 7                    # sampling seed
//   ties        = paper                # paper|lenient
//   definition  = 5tuple               # 5tuple|prefix24
//   path        = count                # count|packet
//   threads     = 0                    # count-path grid workers (0 = all hw)
//   shards      = 0                    # packet-path ingest shards (0 = all hw)
//   sampler-split = off                # on: gated per-shard split sampler
//                                      # (changes the canonical sampled stream;
//                                      # see docs/PERFORMANCE.md "Scale-up ingest")
//
// Continuous-monitor keys (mode=monitor runs the spec through
// flowrank::monitor::MonitorLoop via the experiment engine; requires
// path=packet semantics and exactly one sampling rate):
//
//   mode        = monitor              # batch|monitor
//   window      = 30                   # monitor window seconds (0 = use bin)
//   snapshot-every = 2                 # windows per emitted snapshot
//   overload    = shed                 # block|shed full-queue policy
//   ewma        = 0.3                  # smoothing weight on newest window, (0,1]
//   budget      = 100000               # sampled packets/window before shed degrades
//   watchdog-ms = 50                   # source-stall deadline ms (0 = off)
//   on-stall    = rotate               # rotate|fail
//   fault.corrupt     = 0.01           # corrupt-record fraction injected
//   fault.truncate    = 0.01           # truncated-record fraction injected
//   fault.stall-every = 32             # stall before every k-th batch
//   fault.stall-ms    = 40             # injected stall length
//   fault.burst-flows = 2000           # flash-crowd flows per burst
//   fault.burst-every = 5              # burst cadence, trace seconds
//   fault.burst-duration = 0.25        # burst width, seconds
//   fault.seed        = 99             # injection seed
//
// Multi-vantage aggregation keys (mode=aggregate runs the spec through
// agg::run_fleet via the experiment engine; requires path=packet
// semantics and exactly one sampling rate; bin = the aggregation window):
//
//   mode        = aggregate            # batch|monitor|aggregate
//   agents      = 3                    # vantage agents
//   split       = flow                 # flow (disjoint) | packet (overlapping)
//   deadline-ms = 250                  # per-window summary deadline
//   quarantine-after = 3               # consecutive bad windows -> quarantine
//   readmit-after    = 1               # clean probes -> readmission
//   summary     = table                # table|spacesaving per-agent summary
//   summary-slots    = 1024            # sketch capacity (summary=spacesaving)
//   union-capacity   = 0               # merged-union slot budget (0 = exact)
//   chan.drop        = 0.1             # summary-channel fault fractions
//   chan.corrupt     = 0.05
//   chan.delay       = 0.05
//   chan.delay-windows = 1
//   chan.duplicate   = 0.05
//   chan.outage-agent = 2              # deterministic full outage for one agent
//   chan.outage-from  = 4              # ...starting at this window
//   chan.outage-windows = 0            # ...for this many windows (0 = to end)
//   chan.seed        = 99
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "flowrank/agg/fleet_run.hpp"
#include "flowrank/dist/flow_size_distribution.hpp"
#include "flowrank/monitor/monitor_loop.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/trace/fault_injection.hpp"
#include "flowrank/trace/flow_churn.hpp"
#include "flowrank/trace/trace_source.hpp"
#include "flowrank/util/cli.hpp"

namespace flowrank::sim {

/// Which pipeline executes the scenario: the count path (per-bin counts +
/// binomial thinning, Monte-Carlo over runs) or the packet path (full
/// packet stream through sampler + sharded classifier, one pass).
enum class ExecutionPath { kCount, kPacket };

/// Continuous-monitor knobs (the `mode = monitor` key family). Executed
/// by flowrank::monitor::MonitorLoop through the experiment engine.
struct MonitorOptions {
  bool enabled = false;     ///< mode = monitor
  double window_s = 0.0;    ///< window seconds; 0 = use the spec's bin
  std::size_t snapshot_every = 1;
  bool shed = false;        ///< overload = shed (vs the default block)
  double ewma_alpha = 1.0;  ///< EWMA weight on the newest window, (0, 1]
  std::uint64_t window_packet_budget = 0;  ///< sampled packets per window
  std::uint32_t watchdog_ms = 0;  ///< source-stall deadline (0 = off)
  bool fail_on_stall = false;     ///< on-stall = fail (vs rotate)
  trace::FaultSpec fault;         ///< fault.* injection knobs
};

/// Multi-vantage aggregation knobs (the `mode = aggregate` key family).
/// Executed by agg::run_fleet through the experiment engine; the spec's
/// bin is the aggregation window.
struct AggregateOptions {
  bool enabled = false;  ///< mode = aggregate
  std::size_t agents = 3;
  agg::FleetSplit split = agg::FleetSplit::kFlow;
  std::uint32_t deadline_ms = 250;
  std::size_t quarantine_after = 3;
  std::size_t readmit_after = 1;
  agg::SummaryKind summary = agg::SummaryKind::kFlowTable;
  std::size_t summary_slots = 1024;
  std::size_t union_capacity = 0;
  agg::SummaryFaultSpec chan;  ///< chan.* summary-channel fault knobs
};

/// One workload, as data. Defaults reproduce a laptop-scale Sprint
/// 5-tuple run.
struct ScenarioSpec {
  std::string name = "scenario";

  // --- trace source -------------------------------------------------------
  /// "synthetic", "churn" (bounded unique-flow population with slot
  /// turnover; see the `churn` key), or a path to an FRT1 flow-trace file
  /// to replay.
  std::string trace = "synthetic";
  /// Synthetic preset: sprint_5tuple | sprint_prefix24 | abilene | custom.
  std::string preset = "sprint_5tuple";
  double beta = 1.5;       ///< preset Pareto tail index
  std::string dist;        ///< dist grammar; required for preset=custom
  double duration_s = 240.0;
  double flow_rate_per_s = 0.0;  ///< 0 = preset default
  double flow_rate_scale = 1.0;
  std::uint64_t trace_seed = 7;
  std::uint32_t packet_size_bytes = 500;
  std::size_t epochs = 1;  ///< >1: concatenated epochs (seeds trace_seed + k)
  double epoch_gap_s = 0.0;
  trace::OnOffArrivals on_off;  ///< "onoff" key enables + fills this
  /// trace=churn knobs (the "churn" key); duration/flow-rate/packet-size/
  /// trace-seed come from the shared keys above.
  trace::FlowChurnConfig churn;

  // --- measurement + metrics ---------------------------------------------
  double bin_seconds = 60.0;
  std::size_t top_t = 10;
  std::vector<double> sampling_rates{0.001, 0.01, 0.1, 0.5};
  int runs = 15;
  std::uint64_t seed = 7;
  metrics::TiePolicy tie_policy = metrics::TiePolicy::kPaper;
  packet::FlowDefinition definition = packet::FlowDefinition::kFiveTuple;

  // --- execution ----------------------------------------------------------
  ExecutionPath path = ExecutionPath::kCount;
  std::size_t num_threads = 0;  ///< count-path grid workers, 0 = all hw
  std::size_t num_shards = 0;   ///< packet-path shards, 0 = all hw
  /// Gated per-shard split sampler ("sampler-split" key); changes the
  /// canonical sampled stream, so it defaults off (SimConfig::sampler_split).
  bool sampler_split = false;
  MonitorOptions monitor;       ///< continuous-monitor keys (mode=monitor)
  AggregateOptions aggregate;   ///< multi-vantage keys (mode=aggregate)
};

/// Parses a dist grammar string into a distribution:
///   pareto:mean=9.6,beta=1.5          (or min= instead of mean=)
///   bounded_pareto:min=4,beta=3,max=2000
///   exponential:mean=9.6[,min=1]
///   weibull:mean=9.6,shape=0.6[,min=1]
/// Components joined with '|' (each may carry weight=W, default 1) form a
/// dist::Mixture. Throws std::invalid_argument on grammar errors.
[[nodiscard]] std::shared_ptr<const dist::FlowSizeDistribution> parse_dist(
    const std::string& grammar);

/// Parses a key=value spec file line by line, invoking `entry(key, value)`
/// per entry. Handles '#' comments (at line start or after whitespace; a
/// '#' embedded in a token is part of the value) and rethrows entry
/// errors as flowrank::Error(kSpec) tagged "path:line" and naming the
/// offending key. Shared by the scenario and experiment
/// (sim/experiment.hpp) parsers.
void parse_spec_file(
    const std::string& path,
    const std::function<void(const std::string&, const std::string&)>& entry);

/// Parses a key=value scenario file. Unknown keys throw (typos in
/// experiment configs fail loudly, matching util::Cli).
[[nodiscard]] ScenarioSpec parse_scenario_file(const std::string& path);

/// Every valid spec key (the `--key` override names), sorted.
[[nodiscard]] const std::vector<std::string>& scenario_keys();

/// Applies one key=value entry onto the spec — the single source of truth
/// for the scenario key set. Files, CLI overrides and the experiment
/// layer's spec grammar (sim/experiment.hpp) all route through here.
/// Throws std::invalid_argument on an unknown key or a bad value.
void apply_scenario_entry(ScenarioSpec& spec, const std::string& key,
                          const std::string& value);

/// Applies `--key value` CLI overrides for every spec key onto `spec`.
void apply_scenario_overrides(ScenarioSpec& spec, const util::Cli& cli);

/// Spec from CLI alone: `--scenario file` (if given) then overrides.
[[nodiscard]] ScenarioSpec scenario_from_cli(const util::Cli& cli);

/// The flow-size distribution the spec describes (preset or custom).
[[nodiscard]] std::shared_ptr<const dist::FlowSizeDistribution>
make_size_distribution(const ScenarioSpec& spec);

/// The trace source the spec describes (synthetic / file replay /
/// concatenated epochs).
[[nodiscard]] std::shared_ptr<const trace::TraceSource> make_trace_source(
    const ScenarioSpec& spec);

/// The SimConfig the spec describes (threads resolved, 0 = all hw).
[[nodiscard]] SimConfig make_sim_config(const ScenarioSpec& spec);

/// The MonitorConfig the spec describes. Requires mode=monitor and
/// exactly one sampling rate (the monitor has one live stream, not a
/// rate grid); throws std::invalid_argument otherwise.
[[nodiscard]] monitor::MonitorConfig make_monitor_config(const ScenarioSpec& spec);

/// The FleetConfig the spec describes. Requires mode=aggregate and
/// exactly one sampling rate (each agent samples one live stream);
/// throws std::invalid_argument otherwise. The spec's bin is the
/// aggregation window.
[[nodiscard]] agg::FleetConfig make_fleet_config(const ScenarioSpec& spec);

/// A scenario's outputs: the count path fills `count`, the packet path
/// fills `packet` (one metrics series per sampling rate).
struct ScenarioResult {
  ScenarioSpec spec;
  std::string source_name;
  std::size_t flow_count = 0;
  std::uint64_t packet_count = 0;
  double duration_s = 0.0;  ///< materialized trace length (all epochs)
  SimResult count;
  std::vector<std::vector<metrics::RankMetricsResult>> packet;
};

/// Materializes the trace and runs the scenario end to end.
[[nodiscard]] ScenarioResult run_scenario(const ScenarioSpec& spec);

/// Materializes the spec's trace source and writes the flow records as an
/// FRT1 file (the scenario_runner --export-trace path). Returns the
/// number of flows written. Throws on I/O failure.
std::size_t export_scenario_trace(const ScenarioSpec& spec, const std::string& path);

/// Human-readable report: trace provenance + per-rate per-bin tables.
void print_scenario_report(std::ostream& os, const ScenarioResult& result);

}  // namespace flowrank::sim
