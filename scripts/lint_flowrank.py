#!/usr/bin/env python3
"""flowrank repo-invariant linter.

Checks the invariants that keep flowrank's results bit-reproducible and
its failure taxonomy coherent -- the properties clang-tidy and the
compiler cannot see because they are project policy, not C++ rules:

 * no nondeterministic or implementation-defined randomness
   (std::random_device, rand()/srand(), std::binomial_distribution,
   wall-clock seeding) anywhere in src/flowrank/;
 * threads are created only by the exec layer (one concurrency
   substrate; everything else submits tasks);
 * errors leave the library as the flowrank::Error taxonomy, never as
   raw std::runtime_error;
 * all locking goes through the annotated util::Mutex wrappers so the
   clang -Wthread-safety build actually sees it;
 * iteration over unordered containers is either provably
   order-insensitive or sorted -- each such loop carries an
   `// unordered-ok: <reason>` comment, reviewed like a cast;
 * include hygiene (#pragma once, no <iostream> in headers, no
   `using namespace std`);
 * every file that declares a util::Mutex names what it guards
   (FR_GUARDED_BY / FR_REQUIRES present in the same file).

Scope: src/flowrank/ only. tests/ asserts distributional bands (its
std::binomial_distribution uses are statistical, not canonical-stream),
and bench/ keeps a deliberately-legacy baseline; both are out of scope.

Usage:
  lint_flowrank.py [--root DIR]     lint the real tree, exit 1 on findings
  lint_flowrank.py --self-test      run the fixture suite under
                                    tests/lint_fixtures/: every rule must
                                    fire on exactly its fixture, the clean
                                    fixtures and the real tree must pass.

Allowlists are per-directory (or per-file) path prefixes in ALLOWLIST
below; extending one is a reviewed change to this file, not a comment in
the offending code.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --- rule table -------------------------------------------------------------

# Banned-symbol rules: (rule id, compiled regex, human message). Matched
# against comment- and string-stripped source.
BANNED = [
    (
        "random-device",
        re.compile(r"std::random_device"),
        "std::random_device is nondeterministic; derive seeds with util::make_engine/mix_stream",
    ),
    (
        "rand-func",
        re.compile(r"\bs?rand\s*\("),
        "rand()/srand() use hidden global state; use util::Engine",
    ),
    (
        "std-binomial-distribution",
        re.compile(r"std::binomial_distribution"),
        "std::binomial_distribution's stream is implementation-defined; use util::binomial_sample",
    ),
    (
        "wallclock-seed",
        re.compile(
            r"std::chrono::system_clock|std::chrono::high_resolution_clock"
            r"|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)"
        ),
        "wall-clock values are nondeterministic; seeds come from specs, durations from steady_clock",
    ),
    (
        "raw-thread",
        re.compile(r"std::(?:thread|jthread|async)\b"),
        "threads are created only by the exec layer; submit tasks to exec::TaskPool instead",
    ),
    (
        "raw-runtime-error",
        re.compile(r"\bthrow\s+std::runtime_error"),
        "throw flowrank::Error with an ErrorCategory, not raw std::runtime_error",
    ),
    (
        "raw-sync",
        re.compile(
            r"std::(?:mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex"
            r"|lock_guard|unique_lock|scoped_lock|condition_variable|condition_variable_any)\b"
        ),
        "use util::Mutex/MutexLock/CondVar so the thread-safety analysis sees the locking",
    ),
    (
        "using-namespace-std",
        re.compile(r"\busing\s+namespace\s+std\b"),
        "no using namespace std",
    ),
    (
        "raw-byte-cast",
        # Serialization must go through util/bytes.hpp's explicit
        # little-endian field helpers: reinterpret_cast / raw memcpy of
        # object bytes bakes host endianness and struct padding into wire
        # formats and checksums.
        re.compile(r"\breinterpret_cast\b|\b(?:std::)?memcpy\s*\(|__builtin_memcpy\b"),
        "raw byte casts make wire formats host-dependent; use util/bytes.hpp put_*/ByteReader "
        "(or std::bit_cast for scalar reinterpretation)",
    ),
    (
        "lgamma-signgam",
        # std::lgamma / bare lgamma( write the libm global `signgam`
        # (C99), racing across pool workers; lgamma_r( does not match.
        re.compile(r"std::lgamma\b|\blgamma\s*\("),
        "lgamma writes the global signgam (data race); use numeric::log_gamma/log_factorial "
        "(lgamma_r under the hood)",
    ),
]

# Path-prefix allowlists, relative to the repo root with forward slashes.
# A finding whose path starts with any listed prefix is suppressed.
ALLOWLIST = {
    # The exec layer IS the one place that may create threads.
    "raw-thread": ("src/flowrank/exec/",),
    # The Error taxonomy itself derives from std::runtime_error.
    "raw-runtime-error": ("src/flowrank/util/",),
    # The annotated wrappers wrap the raw primitives exactly once.
    "raw-sync": ("src/flowrank/util/sync.hpp",),
    # sync.hpp's own capability classes are the annotation vocabulary.
    "guarded-by-missing": ("src/flowrank/util/sync.hpp",),
    # special.cpp wraps lgamma_r exactly once (and documents why).
    "lgamma-signgam": ("src/flowrank/numeric/special.cpp",),
    # bytes.hpp IS the sanctioned byte layer: its stream read/write pair
    # holds the only reinterpret_casts, over byte spans it sized itself.
    # hash_batch.cpp's casts feed SIMD lane loads/stores of FlowKey
    # (standard-layout, two uint64_t) and never touch a wire format; the
    # scalar-equivalence tests pin the results bit for bit.
    "raw-byte-cast": (
        "src/flowrank/util/bytes.hpp",
        "src/flowrank/flowtable/hash_batch.cpp",
    ),
}

HEADER_SUFFIXES = (".hpp", ".h")
SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")

UNORDERED_TYPE_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")
ALIAS_RE = re.compile(r"\busing\s+(\w+)\s*=\s*([^;]+);")
RANGE_FOR_RE = re.compile(
    # `for (<decl> : <expr>)` where <expr> is a plain identifier or
    # identifier[index]; anything more complex (calls, members) is out of
    # reach for a textual linter and intentionally not matched.
    r"\bfor\s*\((?:[^();]|\([^()]*\))*?\s:\s*([A-Za-z_]\w*)\s*(\[[^\]\n]*\])?\s*\)"
)
UNORDERED_OK_RE = re.compile(r"//\s*unordered-ok:\s*\S")
MUTEX_DECL_RE = re.compile(r"\butil::Mutex\s+\w+")
GUARD_ANNOTATION_RE = re.compile(r"\bFR_(?:PT_)?GUARDED_BY|\bFR_REQUIRES")

# Concurrency hot-path layers where an un-padded std::atomic member is a
# false-sharing bug waiting to happen (two counters on one cache line turn
# independent producer/consumer traffic into ping-pong). Every atomic
# declared here must either sit on its own line with alignas(...) or carry
# a reviewed `// shared-cacheline-ok: <why>` comment (same line or the two
# above).
ATOMIC_SCOPES = ("src/flowrank/ingest/", "src/flowrank/exec/", "tests/lint_fixtures/")
ATOMIC_DECL_RE = re.compile(r"\bstd::atomic\s*<")
ALIGNAS_RE = re.compile(r"\balignas\s*\(")
CACHELINE_OK_RE = re.compile(r"//\s*shared-cacheline-ok:\s*\S")


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks comments and string/char literals, preserving line structure
    so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "'" and i > 0 and (text[i - 1].isalnum() or text[i - 1] == "_"):
            # Digit separator (1'000'000, 0x5EDD'0001), not a char literal.
            out.append(" ")
            i += 1
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\" and i + 1 < n:
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def skip_template_args(text: str, i: int) -> int:
    """Given i at a '<', returns the index just past the matching '>'."""
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


def unordered_names(stripped: str) -> tuple[set, set]:
    """Returns (direct, element): variable names declared with an unordered
    container as the outermost type (direct -- iterating the name itself is
    unordered) or nested inside another container (element -- iterating
    name[i] is unordered)."""
    aliases = set()
    for m in ALIAS_RE.finditer(stripped):
        if UNORDERED_TYPE_RE.search(m.group(2)):
            aliases.add(m.group(1))
    alias_pat = (
        re.compile(r"\b(?:%s)\b" % "|".join(re.escape(a) for a in sorted(aliases)))
        if aliases
        else None
    )

    direct, element = set(), set()
    # Statements are delimited well enough by ; { } for declarations.
    for stmt in re.split(r"[;{}]", stripped):
        has_std = UNORDERED_TYPE_RE.search(stmt)
        has_alias = alias_pat.search(stmt) if alias_pat else None
        if not has_std and not has_alias:
            continue
        s = stmt.strip()
        # Strip declaration qualifiers so the outermost type leads.
        s = re.sub(r"^(?:(?:mutable|static|const|inline|constexpr|thread_local)\s+)+", "", s)
        is_direct = bool(
            UNORDERED_TYPE_RE.match(s) or (alias_pat and alias_pat.match(s))
        )
        # Find the declared name: skip the outermost type (with template
        # args), then take the next identifier.
        m = re.match(r"(?:std::)?[\w:]+", s)
        if not m:
            continue
        i = m.end()
        while i < len(s) and s[i].isspace():
            i += 1
        if i < len(s) and s[i] == "<":
            i = skip_template_args(s, i)
        rest = s[i:]
        name_m = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", rest)
        if not name_m:
            continue
        name = name_m.group(1)
        (direct if is_direct else element).add(name)
    return direct, element


def sibling_headers(path: Path) -> list:
    """Headers that declare the members a .cpp iterates: same-stem .hpp/.h
    in the same directory."""
    if path.suffix not in (".cpp", ".cc"):
        return []
    return [
        p for suffix in HEADER_SUFFIXES if (p := path.with_suffix(suffix)).is_file()
    ]


def allowlisted(rule: str, rel: str) -> bool:
    return any(rel.startswith(prefix) for prefix in ALLOWLIST.get(rule, ()))


def lint_file(path: Path, root: Path) -> list:
    rel = path.relative_to(root).as_posix()
    raw = path.read_text(encoding="utf-8", errors="replace")
    stripped = strip_comments_and_strings(raw)
    raw_lines = raw.splitlines()
    findings = []

    def add(line: int, rule: str, message: str) -> None:
        if not allowlisted(rule, rel):
            findings.append(Finding(path.relative_to(root), line, rule, message))

    # Banned symbols.
    for rule, pattern, message in BANNED:
        for m in pattern.finditer(stripped):
            add(stripped.count("\n", 0, m.start()) + 1, rule, message)

    # Include hygiene.
    if path.suffix in HEADER_SUFFIXES:
        if "#pragma once" not in raw:
            add(1, "pragma-once", "header is missing #pragma once")
        for m in re.finditer(r"#\s*include\s*<iostream>", stripped):
            add(
                stripped.count("\n", 0, m.start()) + 1,
                "iostream-in-header",
                "<iostream> in a header drags in static init; use <iosfwd> or include in the .cpp",
            )

    # Unordered iteration without a reviewed unordered-ok comment.
    direct, element = unordered_names(stripped)
    for header in sibling_headers(path):
        hd, he = unordered_names(strip_comments_and_strings(header.read_text()))
        direct |= hd
        element |= he
    for m in RANGE_FOR_RE.finditer(stripped):
        name, subscript = m.group(1), m.group(2)
        unordered = name in direct if not subscript else (name in element or name in direct)
        if not unordered:
            continue
        line = stripped.count("\n", 0, m.start(1)) + 1
        context = raw_lines[max(0, line - 3) : line]  # the loop line and two above
        if any(UNORDERED_OK_RE.search(ln) for ln in context):
            continue
        add(
            line,
            "unordered-iter",
            f"range-for over unordered container '{name}': sort the output or mark the "
            "loop '// unordered-ok: <why order cannot matter>'",
        )

    # False-sharing guard: atomics in the concurrency hot-path layers must
    # be cache-line padded or explicitly waived.
    if any(rel.startswith(prefix) for prefix in ATOMIC_SCOPES):
        for m in ATOMIC_DECL_RE.finditer(stripped):
            line = stripped.count("\n", 0, m.start()) + 1
            stripped_line = stripped.splitlines()[line - 1]
            if ALIGNAS_RE.search(stripped_line):
                continue
            context = raw_lines[max(0, line - 3) : line]  # decl line and two above
            if any(CACHELINE_OK_RE.search(ln) for ln in context):
                continue
            add(
                line,
                "unpadded-atomic",
                "std::atomic member without alignas(...) padding shares cache lines "
                "with its neighbours; pad it or mark the line "
                "'// shared-cacheline-ok: <why false sharing cannot matter>'",
            )

    # Annotation presence: a util::Mutex must name what it guards.
    if MUTEX_DECL_RE.search(stripped) and not GUARD_ANNOTATION_RE.search(stripped):
        decl = MUTEX_DECL_RE.search(stripped)
        add(
            stripped.count("\n", 0, decl.start()) + 1,
            "guarded-by-missing",
            "file declares a util::Mutex but no FR_GUARDED_BY/FR_REQUIRES names what it protects",
        )

    return findings


def lint_tree(root: Path) -> list:
    src = root / "src" / "flowrank"
    files = sorted(p for p in src.rglob("*") if p.suffix in SOURCE_SUFFIXES)
    findings = []
    for path in files:
        findings.extend(lint_file(path, root))
    return findings


ALL_RULES = [rule for rule, _, _ in BANNED] + [
    "pragma-once",
    "iostream-in-header",
    "unordered-iter",
    "guarded-by-missing",
    "unpadded-atomic",
]


def self_test(root: Path) -> int:
    """Every rule must fire on exactly its fixture; clean fixtures and the
    real tree must come up empty."""
    fixtures = root / "tests" / "lint_fixtures"
    failures = []
    fired = set()
    for path in sorted(fixtures.rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES:
            continue
        found = lint_file(path, root)
        rules = sorted({f.rule for f in found})
        stem = path.stem
        if stem.startswith("bad_"):
            expected = stem[len("bad_") :].replace("_", "-")
            if rules != [expected]:
                failures.append(
                    f"{path.name}: expected exactly [{expected}], got {rules or '[]'}"
                )
            fired.update(rules)
        elif stem.startswith("clean"):
            if found:
                failures.append(f"{path.name}: clean fixture tripped {rules}")
        else:
            failures.append(f"{path.name}: fixture names must start with bad_ or clean")

    for rule in ALL_RULES:
        if rule not in fired:
            failures.append(f"rule '{rule}' has no fixture that fires it")

    tree = lint_tree(root)
    for f in tree:
        failures.append(f"real tree not clean: {f}")

    if failures:
        print("lint self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(
        f"lint self-test passed: {len(ALL_RULES)} rules, each fired on its fixture; "
        "real tree clean"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    root = args.root.resolve()

    if args.self_test:
        return self_test(root)

    findings = lint_tree(root)
    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} lint finding(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
