#!/usr/bin/env python3
"""Schema check for flowrank_experiments JSON-lines output (CI gate).

Validates the report::JsonlResultSink contract:
  * line 1 is a meta object: type=meta, experiment/version strings,
    integer seed, spec object (string values), non-empty columns list;
  * every following line is a row object: type=row, exactly the meta's
    columns as keys, values numeric or null (strings allowed only for
    string-typed columns, which the current engines never emit);
  * at least one row.

Usage: scripts/check_jsonl.py result.jsonl [more.jsonl ...]
"""
import json
import sys


def fail(path, line_no, message):
    print(f"{path}:{line_no}: {message}", file=sys.stderr)
    sys.exit(1)


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line]
    if not lines:
        fail(path, 0, "empty file")

    try:
        meta = json.loads(lines[0])
    except json.JSONDecodeError as error:
        fail(path, 1, f"meta line is not valid JSON: {error}")
    if meta.get("type") != "meta":
        fail(path, 1, "first line must have type=meta")
    for key, kind in (("experiment", str), ("version", str), ("seed", int)):
        if not isinstance(meta.get(key), kind):
            fail(path, 1, f"meta.{key} must be {kind.__name__}")
    spec = meta.get("spec")
    if not isinstance(spec, dict) or not all(
        isinstance(v, str) for v in spec.values()
    ):
        fail(path, 1, "meta.spec must be an object of string values")
    columns = meta.get("columns")
    if (
        not isinstance(columns, list)
        or not columns
        or not all(isinstance(c, str) for c in columns)
    ):
        fail(path, 1, "meta.columns must be a non-empty list of strings")

    expected_keys = ["type"] + columns
    if len(lines) < 2:
        fail(path, 1, "no data rows")
    for line_no, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            fail(path, line_no, f"row is not valid JSON: {error}")
        if row.get("type") != "row":
            fail(path, line_no, "data lines must have type=row")
        if list(row.keys()) != expected_keys:
            fail(
                path,
                line_no,
                f"row keys {list(row.keys())} != meta columns {expected_keys}",
            )
        for column in columns:
            value = row[column]
            if value is not None and not isinstance(value, (int, float)):
                fail(path, line_no, f"column {column} must be numeric or null")

    print(f"{path}: OK ({len(lines) - 1} rows, {len(columns)} columns)")


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    for path in sys.argv[1:]:
        check_file(path)


if __name__ == "__main__":
    main()
