#!/usr/bin/env python3
"""Schema check for BENCH_micro.json's multi-threaded ingest rows.

The sharded-ingest benchmark is only honest if its overload accounting
rides along: a queue-bound run that silently shed half its packets would
read as a speedup. This script fails if

 * the JSON was produced by a debug build (context.library_build_type),
 * any expected BM_ShardedIngest shard count is missing, or
 * a BM_ShardedIngest row lost one of its accounting counters
   (shards, queue_full_events, shed_chunks, shed_packets) or its
   items_per_second throughput.

It also guards the exact-discrete compute-layer rows: the one-shot
model benchmark (BM_RankingModelDiscreteExact, with its max_size
counter), the table build (BM_DiscreteModelTableBuild), and the
sweep-reuse benchmark (BM_DiscreteModelSweepReuse, whose cells counter
and items_per_second make the amortized per-cell cost checkable).

Used by CI's bench smoke step on a fresh short run, and runnable against
the committed baseline:

  scripts/check_bench_counters.py [BENCH_micro.json] [--shards 1,2,4]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_COUNTERS = ("shards", "queue_full_events", "shed_chunks", "shed_packets")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "json_path",
        nargs="?",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_micro.json",
    )
    parser.add_argument(
        "--shards",
        default="1,2,4",
        help="comma-separated shard counts that must appear (default 1,2,4)",
    )
    args = parser.parse_args()

    try:
        doc = json.loads(args.json_path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"{args.json_path}: unreadable benchmark JSON: {err}", file=sys.stderr)
        return 1

    errors = []

    # flowrank_build_type is stamped by micro_throughput's main() from
    # CMAKE_BUILD_TYPE — deliberately NOT library_build_type, which
    # describes the system libbenchmark, not our binary.
    build_type = doc.get("context", {}).get("flowrank_build_type", "missing")
    if build_type != "Release":
        errors.append(
            f"context.flowrank_build_type is '{build_type}', not 'Release': "
            "regenerate with bench/run_bench.sh"
        )

    expected = {s.strip() for s in args.shards.split(",") if s.strip()}
    seen = set()
    discrete_seen = set()
    for row in doc.get("benchmarks", []):
        name = row.get("name", "")
        if name.startswith("BM_RankingModelDiscreteExact"):
            discrete_seen.add("BM_RankingModelDiscreteExact")
            if "max_size" not in row:
                errors.append(f"{name}: missing counter 'max_size'")
        elif name.startswith("BM_DiscreteModelTableBuild"):
            discrete_seen.add("BM_DiscreteModelTableBuild")
        elif name.startswith("BM_DiscreteModelSweepReuse"):
            discrete_seen.add("BM_DiscreteModelSweepReuse")
            if "cells" not in row:
                errors.append(f"{name}: missing counter 'cells'")
            if "items_per_second" not in row:
                errors.append(f"{name}: missing items_per_second throughput")
        if not name.startswith("BM_ShardedIngest/"):
            continue
        # "BM_ShardedIngest/4/real_time" -> shard arg "4".
        shard_arg = name.split("/")[1]
        seen.add(shard_arg)
        for counter in REQUIRED_COUNTERS:
            if counter not in row:
                errors.append(f"{name}: missing counter '{counter}'")
        if "items_per_second" not in row:
            errors.append(f"{name}: missing items_per_second throughput")

    missing = sorted(expected - seen)
    if missing:
        errors.append(
            f"no BM_ShardedIngest row for shard count(s) {', '.join(missing)}"
        )
    for bench in (
        "BM_RankingModelDiscreteExact",
        "BM_DiscreteModelTableBuild",
        "BM_DiscreteModelSweepReuse",
    ):
        if bench not in discrete_seen:
            errors.append(f"no {bench} row: exact-discrete coverage dropped")

    if errors:
        for err in errors:
            print(f"bench counters check: {err}", file=sys.stderr)
        return 1
    print(
        f"bench counters check passed: BM_ShardedIngest shards {sorted(seen)}, "
        "exact-discrete rows present, Release build, accounting counters present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
