// Tests for flow-size distributions: analytic identities, sampling
// agreement, and the discretized adaptor.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/dist/discretized.hpp"
#include "flowrank/dist/empirical.hpp"
#include "flowrank/dist/exponential.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/numeric/stats.hpp"
#include "flowrank/util/rng.hpp"

namespace fd = flowrank::dist;

namespace {

/// Shared property checks every distribution must satisfy.
void check_distribution_contract(const fd::FlowSizeDistribution& dist) {
  SCOPED_TRACE(dist.name());
  EXPECT_GT(dist.min_size(), 0.0);
  EXPECT_DOUBLE_EQ(dist.ccdf(dist.min_size() * 0.5), 1.0);

  // tail_quantile inverts ccdf across the support.
  for (double y : {0.9, 0.5, 0.1, 1e-3, 1e-6, 1e-9}) {
    const double x = dist.tail_quantile(y);
    EXPECT_GE(x, dist.min_size() * (1.0 - 1e-12));
    EXPECT_NEAR(dist.ccdf(x), y, 1e-6 * std::max(1.0, 1.0 / y) * y) << "y=" << y;
  }

  // ccdf decreasing.
  double prev = 1.0;
  for (double x = dist.min_size(); x < dist.tail_quantile(1e-9);
       x = x * 1.7 + 1.0) {
    const double c = dist.ccdf(x);
    EXPECT_LE(c, prev + 1e-12);
    prev = c;
  }

  // Sample mean close to analytic mean (heavy tails get a loose band).
  auto engine = flowrank::util::make_engine(314159);
  flowrank::numeric::RunningStats stats;
  for (int i = 0; i < 300000; ++i) stats.add(dist.sample(engine));
  const double rel_err = std::abs(stats.mean() - dist.mean()) / dist.mean();
  EXPECT_LT(rel_err, 0.25) << "sample mean " << stats.mean() << " vs " << dist.mean();

  // Clone preserves behaviour.
  const auto copy = dist.clone();
  EXPECT_EQ(copy->name(), dist.name());
  EXPECT_DOUBLE_EQ(copy->ccdf(dist.min_size() * 3.0), dist.ccdf(dist.min_size() * 3.0));
}

}  // namespace

TEST(Pareto, ContractHolds) {
  check_distribution_contract(fd::Pareto::from_mean(9.6, 1.5));
  check_distribution_contract(fd::Pareto::from_mean(33.2, 2.5));
}

TEST(Pareto, FromMeanHitsRequestedMean) {
  for (double beta : {1.2, 1.5, 2.0, 3.0}) {
    const auto dist = fd::Pareto::from_mean(9.6, beta);
    EXPECT_NEAR(dist.mean(), 9.6, 1e-9) << beta;
  }
}

TEST(Pareto, CcdfClosedForm) {
  const fd::Pareto dist(2.0, 1.5);
  EXPECT_NEAR(dist.ccdf(4.0), std::pow(2.0, -1.5), 1e-12);
  EXPECT_NEAR(dist.tail_quantile(std::pow(2.0, -1.5)), 4.0, 1e-9);
}

TEST(Pareto, InfiniteMeanThrows) {
  const fd::Pareto dist(1.0, 0.9);
  EXPECT_THROW((void)dist.mean(), std::logic_error);
  EXPECT_THROW((void)fd::Pareto::from_mean(9.6, 1.0), std::invalid_argument);
}

TEST(Pareto, InvalidParameters) {
  EXPECT_THROW(fd::Pareto(0.0, 1.5), std::invalid_argument);
  EXPECT_THROW(fd::Pareto(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW((void)fd::Pareto(1.0, 1.5).tail_quantile(0.0), std::domain_error);
  EXPECT_THROW((void)fd::Pareto(1.0, 1.5).tail_quantile(1.5), std::domain_error);
}

TEST(BoundedPareto, ContractHolds) {
  check_distribution_contract(fd::BoundedPareto(4.0, 3.0, 2000.0));
}

TEST(BoundedPareto, TailVanishesAtBound) {
  const fd::BoundedPareto dist(4.0, 3.0, 2000.0);
  EXPECT_DOUBLE_EQ(dist.ccdf(2000.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.ccdf(5000.0), 0.0);
  EXPECT_LE(dist.tail_quantile(1e-12), 2000.0);
}

TEST(BoundedPareto, MeanBelowUnboundedMean) {
  const fd::BoundedPareto bounded(4.0, 3.0, 2000.0);
  const fd::Pareto unbounded(4.0, 3.0);
  EXPECT_LT(bounded.mean(), unbounded.mean());
}

TEST(BoundedPareto, InvalidParameters) {
  EXPECT_THROW(fd::BoundedPareto(4.0, 3.0, 3.0), std::invalid_argument);
  EXPECT_THROW(fd::BoundedPareto(0.0, 3.0, 10.0), std::invalid_argument);
}

TEST(Exponential, ContractHolds) {
  check_distribution_contract(fd::Exponential::from_mean(9.6));
}

TEST(Exponential, MemorylessCcdf) {
  const auto dist = fd::Exponential::from_mean(10.0, 1.0);
  // F̄(x+d)/F̄(x) constant.
  const double r1 = dist.ccdf(5.0 + 2.0) / dist.ccdf(5.0);
  const double r2 = dist.ccdf(20.0 + 2.0) / dist.ccdf(20.0);
  EXPECT_NEAR(r1, r2, 1e-12);
}

TEST(Exponential, InvalidParameters) {
  EXPECT_THROW(fd::Exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)fd::Exponential::from_mean(0.5, 1.0), std::invalid_argument);
}

TEST(Weibull, ContractHolds) {
  check_distribution_contract(fd::Weibull::from_mean(20.0, 2.0));
}

TEST(Weibull, ShapeOneIsExponential) {
  const auto weibull = fd::Weibull::from_mean(10.0, 1.0, 1.0);
  const auto expo = fd::Exponential::from_mean(10.0, 1.0);
  for (double x : {2.0, 5.0, 20.0, 80.0}) {
    EXPECT_NEAR(weibull.ccdf(x), expo.ccdf(x), 1e-12) << x;
  }
}

TEST(Weibull, HigherShapeHasShorterTail) {
  const auto light = fd::Weibull::from_mean(20.0, 2.5);
  const auto heavy = fd::Weibull::from_mean(20.0, 0.7);
  EXPECT_LT(light.ccdf(200.0), heavy.ccdf(200.0));
}

TEST(Empirical, ContractOnSampledData) {
  auto engine = flowrank::util::make_engine(2718);
  const auto source = fd::Pareto::from_mean(9.6, 2.0);
  std::vector<double> samples(50000);
  for (auto& s : samples) s = source.sample(engine);
  const fd::Empirical empirical(samples);
  EXPECT_EQ(empirical.size(), samples.size());
  EXPECT_NEAR(empirical.mean(), source.mean(), 0.2 * source.mean());
  // Quantiles roughly match the source distribution.
  for (double y : {0.5, 0.1, 0.01}) {
    EXPECT_NEAR(empirical.tail_quantile(y), source.tail_quantile(y),
                0.25 * source.tail_quantile(y))
        << y;
  }
}

TEST(Empirical, CcdfQuantileRoundTrip) {
  std::vector<double> samples{1, 2, 3, 5, 8, 13, 21, 34};
  const fd::Empirical empirical(samples);
  for (double y : {0.9, 0.5, 0.2}) {
    const double x = empirical.tail_quantile(y);
    EXPECT_NEAR(empirical.ccdf(x), y, 0.15) << y;
  }
}

TEST(Empirical, RejectsDegenerateInput) {
  std::vector<double> one{5.0};
  EXPECT_THROW((void)fd::Empirical{std::span<const double>(one)},
               std::invalid_argument);
  std::vector<double> negatives{-1.0, -2.0, 3.0};
  EXPECT_THROW((void)fd::Empirical{std::span<const double>(negatives)},
               std::invalid_argument);
}

TEST(Discretized, PmfTelescopesToCcdf) {
  const fd::Discretized disc(std::make_unique<fd::Pareto>(3.2, 1.5));
  double acc = 0.0;
  for (std::int64_t i = disc.min_packets(); i <= 5000; ++i) acc += disc.pmf(i);
  EXPECT_NEAR(acc, 1.0 - disc.ccdf_geq(5001), 1e-10);
}

TEST(Discretized, CcdfConsistentWithSource) {
  const fd::Discretized disc(std::make_unique<fd::Pareto>(3.2, 1.5));
  for (std::int64_t i : {5, 10, 100, 1000}) {
    EXPECT_NEAR(disc.ccdf_geq(i), fd::Pareto(3.2, 1.5).ccdf(static_cast<double>(i - 1)),
                1e-12);
  }
}

TEST(Discretized, MeanMatchesSampleMean) {
  const fd::Discretized disc(std::make_unique<fd::Pareto>(3.2, 2.5));
  auto engine = flowrank::util::make_engine(99);
  flowrank::numeric::RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(static_cast<double>(disc.sample(engine)));
  }
  EXPECT_NEAR(disc.mean(), stats.mean(), 0.05 * stats.mean());
}

TEST(Discretized, SamplesRespectSupportMinimum) {
  const fd::Discretized disc(std::make_unique<fd::Pareto>(3.2, 1.5));
  auto engine = flowrank::util::make_engine(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(disc.sample(engine), disc.min_packets());
  }
}

TEST(Discretized, NullSourceThrows) {
  EXPECT_THROW(fd::Discretized(nullptr), std::invalid_argument);
}
