// Tests for the single-producer single-consumer ring behind the sharded
// ingest hand-off: capacity semantics, wrap-around, full/empty edges,
// move discipline (a rejected push must not consume the value), and a
// two-thread stress run that TSan checks for protocol races.
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/ingest/spsc_ring.hpp"

namespace fing = flowrank::ingest;

TEST(SpscRing, CapacityIsLogicalNotSlotCount) {
  // Capacity 3 rounds its slot array to 4 but must still hold exactly 3:
  // the pipeline's max_queue_chunks backpressure contract depends on the
  // logical capacity, not the power-of-two slot count.
  fing::SpscRing<int> ring(3);
  EXPECT_EQ(ring.capacity(), 3u);
  int v = 0;
  for (int i = 0; i < 3; ++i) {
    v = i;
    EXPECT_TRUE(ring.try_push(v));
  }
  v = 99;
  EXPECT_FALSE(ring.try_push(v));
  EXPECT_EQ(ring.size(), 3u);
}

TEST(SpscRing, CapacityOneHoldsExactlyOne) {
  // The tiny-queue overload tests configure max_queue_chunks = 1; a ring
  // that silently held 2 would break their full-queue setup.
  fing::SpscRing<int> ring(1);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.empty());
  int v = 7;
  EXPECT_TRUE(ring.try_push(v));
  EXPECT_FALSE(ring.empty());
  v = 8;
  EXPECT_FALSE(ring.try_push(v));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, ZeroCapacityThrows) {
  EXPECT_THROW(fing::SpscRing<int>(0), std::invalid_argument);
}

TEST(SpscRing, FifoAcrossManyWrapArounds) {
  // Push/pop far more elements than slots so the monotonically-increasing
  // indices wrap the mask many times; order must stay FIFO throughout.
  fing::SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0, next_pop = 0;
  while (next_pop < 1000) {
    std::uint64_t v = next_push;
    while (ring.try_push(v)) v = ++next_push;
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
}

TEST(SpscRing, RejectedPushDoesNotConsumeTheValue) {
  // enqueue() retries the same chunk after a full-ring rejection (shed
  // accounting, block-and-retry); a try_push that moved from the value on
  // failure would silently hand the consumer an empty chunk later.
  fing::SpscRing<std::unique_ptr<int>> ring(1);
  auto a = std::make_unique<int>(1);
  EXPECT_TRUE(ring.try_push(a));
  EXPECT_EQ(a, nullptr);  // consumed on success
  auto b = std::make_unique<int>(2);
  EXPECT_FALSE(ring.try_push(b));
  ASSERT_NE(b, nullptr);  // NOT consumed on failure
  EXPECT_EQ(*b, 2);
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 1);
  EXPECT_TRUE(ring.try_push(b));  // the retried push lands intact
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 2);
}

TEST(SpscRing, TwoThreadStressPreservesFifoAndLosesNothing) {
  // One producer, one consumer, a deliberately tiny ring so both the full
  // and empty edges are hit constantly. TSan (the full-suite sanitizer CI
  // job) checks the acquire/release protocol; the assertions check FIFO
  // and completeness.
  constexpr std::uint64_t kCount = 200000;
  fing::SpscRing<std::uint64_t> ring(8);
  std::vector<std::uint64_t> received;
  received.reserve(kCount);
  std::thread consumer([&ring, &received] {
    std::uint64_t out = 0;
    while (received.size() < kCount) {
      if (ring.try_pop(out)) received.push_back(out);
    }
  });
  for (std::uint64_t i = 0; i < kCount; ++i) {
    std::uint64_t v = i;
    while (!ring.try_push(v)) {
    }
  }
  consumer.join();
  ASSERT_EQ(received.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) ASSERT_EQ(received[i], i);
  EXPECT_TRUE(ring.empty());
}
