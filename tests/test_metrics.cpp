// Tests for the swapped-pair metrics: brute-force cross-checks, tie
// conventions, and consistency with the two-flow model.
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/core/misranking.hpp"
#include "flowrank/metrics/rank_metrics.hpp"
#include "flowrank/util/rng.hpp"

namespace fm = flowrank::metrics;

namespace {

/// O(t*N) reference implementation straight from the definitions.
fm::RankMetricsResult brute_force(const std::vector<std::uint64_t>& true_sizes,
                                  const std::vector<std::uint64_t>& sampled,
                                  std::size_t t, fm::TiePolicy policy) {
  const std::size_t n = true_sizes.size();
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (true_sizes[a] != true_sizes[b]) return true_sizes[a] > true_sizes[b];
    return a < b;
  });
  const auto swapped = [&](std::uint32_t i, std::uint32_t j) {
    if (true_sizes[i] == true_sizes[j]) {
      if (policy == fm::TiePolicy::kPaper) {
        return sampled[i] != sampled[j] || sampled[i] == 0;
      }
      return sampled[i] == 0 && sampled[j] == 0;
    }
    const auto big = true_sizes[i] > true_sizes[j] ? i : j;
    const auto small = big == i ? j : i;
    if (policy == fm::TiePolicy::kPaper) return sampled[big] <= sampled[small];
    return sampled[big] < sampled[small] ||
           (sampled[big] == 0 && sampled[small] == 0);
  };
  fm::RankMetricsResult out;
  for (std::size_t r = 0; r < t; ++r) {
    for (std::size_t q = r + 1; q < n; ++q) {
      if (swapped(order[r], order[q])) {
        out.ranking_swapped += 1.0;
        if (q >= t) out.detection_swapped += 1.0;
      }
    }
  }
  return out;
}

}  // namespace

TEST(RankMetrics, PerfectSamplingHasNoSwaps) {
  std::vector<std::uint64_t> sizes{100, 90, 80, 5, 4, 3, 2, 1};
  const auto r = fm::compute_rank_metrics(sizes, sizes, 3);
  EXPECT_DOUBLE_EQ(r.ranking_swapped, 0.0);
  EXPECT_DOUBLE_EQ(r.detection_swapped, 0.0);
  EXPECT_DOUBLE_EQ(r.top_set_recall, 1.0);
}

TEST(RankMetrics, PairCountsMatchPaperFormulas) {
  std::vector<std::uint64_t> sizes(100);
  for (std::size_t i = 0; i < sizes.size(); ++i) sizes[i] = 1000 - i;
  for (std::size_t t : {1u, 5u, 25u}) {
    const auto r = fm::compute_rank_metrics(sizes, sizes, t);
    EXPECT_DOUBLE_EQ(r.ranking_pairs, 0.5 * (2.0 * 100 - t - 1.0) * t);
    EXPECT_DOUBLE_EQ(r.detection_pairs, static_cast<double>(t) * (100.0 - t));
  }
}

TEST(RankMetrics, SingleSwapWithNeighborCountsOne) {
  // Paper Sec. 5.1: a flow swapped with its immediate successor gives a
  // ranking error of 1.
  std::vector<std::uint64_t> true_sizes{50, 40, 30, 20, 10};
  std::vector<std::uint64_t> sampled{50, 29, 31, 20, 10};  // swap ranks 2,3
  const auto r = fm::compute_rank_metrics(true_sizes, sampled, 5);
  EXPECT_DOUBLE_EQ(r.ranking_swapped, 1.0);
}

TEST(RankMetrics, DistantSwapPenalizedMore) {
  // Same flow swapped with a distant flow produces many swapped pairs.
  std::vector<std::uint64_t> true_sizes{50, 40, 30, 20, 10};
  std::vector<std::uint64_t> sampled{50, 9, 30, 20, 41};  // rank-2 <-> rank-5
  const auto near_r = fm::compute_rank_metrics(
      true_sizes, std::vector<std::uint64_t>{50, 29, 31, 20, 10}, 5);
  const auto far_r = fm::compute_rank_metrics(true_sizes, sampled, 5);
  EXPECT_GT(far_r.ranking_swapped, near_r.ranking_swapped);
}

TEST(RankMetrics, VanishedFlowsCountAsSwapped) {
  std::vector<std::uint64_t> true_sizes{50, 40, 30};
  std::vector<std::uint64_t> sampled{0, 0, 0};
  const auto r = fm::compute_rank_metrics(true_sizes, sampled, 1);
  // Pairs (1,2) and (1,3): all zero ties count as swapped under kPaper.
  EXPECT_DOUBLE_EQ(r.ranking_swapped, 2.0);
  const auto lenient =
      fm::compute_rank_metrics(true_sizes, sampled, 1, fm::TiePolicy::kLenient);
  EXPECT_DOUBLE_EQ(lenient.ranking_swapped, 2.0);  // both-zero also swaps
}

TEST(RankMetrics, LenientPolicyForgivesNonZeroTies) {
  std::vector<std::uint64_t> true_sizes{50, 40};
  std::vector<std::uint64_t> sampled{7, 7};
  EXPECT_DOUBLE_EQ(fm::compute_rank_metrics(true_sizes, sampled, 1).ranking_swapped,
                   1.0);
  EXPECT_DOUBLE_EQ(
      fm::compute_rank_metrics(true_sizes, sampled, 1, fm::TiePolicy::kLenient)
          .ranking_swapped,
      0.0);
}

TEST(RankMetrics, EqualTrueSizesUseEqualConvention) {
  std::vector<std::uint64_t> true_sizes{50, 50};
  // Equal flows, equal non-zero samples: correctly ranked.
  EXPECT_DOUBLE_EQ(fm::compute_rank_metrics(true_sizes,
                                            std::vector<std::uint64_t>{3, 3}, 1)
                       .ranking_swapped,
                   0.0);
  // Different samples: swapped.
  EXPECT_DOUBLE_EQ(fm::compute_rank_metrics(true_sizes,
                                            std::vector<std::uint64_t>{3, 4}, 1)
                       .ranking_swapped,
                   1.0);
  // Both zero: swapped.
  EXPECT_DOUBLE_EQ(fm::compute_rank_metrics(true_sizes,
                                            std::vector<std::uint64_t>{0, 0}, 1)
                       .ranking_swapped,
                   1.0);
}

TEST(RankMetrics, RecallCountsSetOverlapOnly) {
  std::vector<std::uint64_t> true_sizes{100, 90, 80, 70, 1, 2};
  // Top-4 preserved as a set but fully reordered.
  std::vector<std::uint64_t> sampled{70, 80, 90, 100, 1, 2};
  const auto r = fm::compute_rank_metrics(true_sizes, sampled, 4);
  EXPECT_DOUBLE_EQ(r.top_set_recall, 1.0);
  EXPECT_GT(r.ranking_swapped, 0.0);
  EXPECT_DOUBLE_EQ(r.detection_swapped, 0.0);
}

TEST(RankMetrics, MatchesBruteForceOnRandomInstances) {
  auto engine = flowrank::util::make_engine(97);
  std::uniform_int_distribution<std::uint64_t> size_dist(0, 60);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 5 + trial % 60;
    const std::size_t t = 1 + trial % std::min<std::size_t>(n, 12);
    std::vector<std::uint64_t> true_sizes(n), sampled(n);
    for (std::size_t i = 0; i < n; ++i) {
      true_sizes[i] = size_dist(engine) + 1;
      sampled[i] = size_dist(engine) / 3;
    }
    for (auto policy : {fm::TiePolicy::kPaper, fm::TiePolicy::kLenient}) {
      const auto fast = fm::compute_rank_metrics(true_sizes, sampled, t, policy);
      const auto slow = brute_force(true_sizes, sampled, t, policy);
      EXPECT_DOUBLE_EQ(fast.ranking_swapped, slow.ranking_swapped)
          << "trial " << trial << " t=" << t
          << " policy=" << static_cast<int>(policy);
      EXPECT_DOUBLE_EQ(fast.detection_swapped, slow.detection_swapped)
          << "trial " << trial << " t=" << t;
    }
  }
}

TEST(RankMetrics, MatchesTwoFlowModelInExpectation) {
  // For N=2, t=1 the expected ranking metric IS Pm(S1,S2) from Eq. (1).
  auto engine = flowrank::util::make_engine(31);
  const double p = 0.15;
  const std::uint64_t s1 = 40, s2 = 70;
  std::binomial_distribution<std::uint64_t> b1(s1, p), b2(s2, p);
  double swaps = 0.0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    std::vector<std::uint64_t> true_sizes{s2, s1};
    std::vector<std::uint64_t> sampled{b2(engine), b1(engine)};
    swaps +=
        fm::compute_rank_metrics(true_sizes, sampled, 1).ranking_swapped;
  }
  const double empirical = swaps / trials;
  const double exact = flowrank::core::misranking_exact(40, 70, p);
  EXPECT_NEAR(empirical, exact, 0.01);
}

TEST(RankMetrics, InvalidArguments) {
  std::vector<std::uint64_t> a{1, 2, 3}, b{1, 2};
  EXPECT_THROW((void)fm::compute_rank_metrics(a, b, 1), std::invalid_argument);
  EXPECT_THROW((void)fm::compute_rank_metrics(a, a, 0), std::invalid_argument);
  EXPECT_THROW((void)fm::compute_rank_metrics(a, a, 4), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RankMetricsContext: amortized evaluation
// ---------------------------------------------------------------------------

TEST(RankMetricsContext, MatchesOneShotAcrossManyRealizations) {
  auto engine = flowrank::util::make_engine(53);
  std::uniform_int_distribution<std::uint64_t> size_dist(0, 40);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 6 + trial % 50;
    const std::size_t t = 1 + trial % std::min<std::size_t>(n, 9);
    std::vector<std::uint64_t> true_sizes(n);
    // Coarse sizes: plenty of true-size ties, incl. zero-heavy samples.
    for (std::size_t i = 0; i < n; ++i) true_sizes[i] = (size_dist(engine) / 8) * 8 + 1;
    fm::RankMetricsContext context(true_sizes, t);
    EXPECT_EQ(context.n(), n);
    EXPECT_EQ(context.t(), t);
    for (int realization = 0; realization < 10; ++realization) {
      std::vector<std::uint64_t> sampled(n);
      for (std::size_t i = 0; i < n; ++i) sampled[i] = size_dist(engine) / 12;
      for (auto policy : {fm::TiePolicy::kPaper, fm::TiePolicy::kLenient}) {
        const auto via_context = context.evaluate(sampled, policy);
        const auto one_shot = fm::compute_rank_metrics(true_sizes, sampled, t, policy);
        EXPECT_DOUBLE_EQ(via_context.ranking_swapped, one_shot.ranking_swapped)
            << "trial " << trial << " realization " << realization;
        EXPECT_DOUBLE_EQ(via_context.detection_swapped, one_shot.detection_swapped);
        EXPECT_DOUBLE_EQ(via_context.ranking_pairs, one_shot.ranking_pairs);
        EXPECT_DOUBLE_EQ(via_context.detection_pairs, one_shot.detection_pairs);
        EXPECT_DOUBLE_EQ(via_context.top_set_recall, one_shot.top_set_recall);
      }
    }
  }
}

TEST(RankMetricsContext, InvalidArguments) {
  std::vector<std::uint64_t> sizes{3, 2, 1};
  EXPECT_THROW(fm::RankMetricsContext(sizes, 0), std::invalid_argument);
  EXPECT_THROW(fm::RankMetricsContext(sizes, 4), std::invalid_argument);
  EXPECT_THROW(fm::RankMetricsContext({}, 1), std::invalid_argument);
  fm::RankMetricsContext context(sizes, 2);
  std::vector<std::uint64_t> wrong_length{1, 2};
  EXPECT_THROW((void)context.evaluate(wrong_length), std::invalid_argument);
}

// Regression (lenient zeros_after rescan): the lenient policy counted the
// zero-sampled suffix of every top-t row with a fresh O(N) scan — O(t·N)
// total, quadratic when t grows with N (t = N/5 here is ~2e9 elementary
// steps the old way; the suffix counter folded into the existing Fenwick
// pass makes it O(N log N)). With every sample zero, the lenient policy
// swaps every pair, so both metrics are exactly their pair-count
// denominators — an analytic golden value that the old and new paths must
// (and do) agree on; the runtime difference is what this guards.
TEST(RankMetricsContext, LenientAllZeroSamplesAtLargeTopTIsExactAndFast) {
  const std::size_t n = 100000;
  const std::size_t t = n / 5;
  std::vector<std::uint64_t> true_sizes(n);
  for (std::size_t i = 0; i < n; ++i) {
    true_sizes[i] = 1 + (static_cast<std::uint64_t>(i) * 2654435761u) % 1000;
  }
  const std::vector<std::uint64_t> sampled(n, 0);
  fm::RankMetricsContext context(true_sizes, t);
  const auto result = context.evaluate(sampled, fm::TiePolicy::kLenient);
  EXPECT_DOUBLE_EQ(result.ranking_swapped, result.ranking_pairs);
  EXPECT_DOUBLE_EQ(result.detection_swapped, result.detection_pairs);
  EXPECT_DOUBLE_EQ(result.ranking_pairs,
                   0.5 * (2.0 * static_cast<double>(n) - static_cast<double>(t) - 1.0) *
                       static_cast<double>(t));
}

// The evaluator picks a value-indexed Fenwick tree for small sampled
// sizes and a sort-compressed one for large sparse sizes; both must agree
// with brute force (the random-instance test above covers only the small
// direct mode, so force the sparse mode here with huge spread-out sizes).
TEST(RankMetricsContext, SparseLargeSampledSizesMatchBruteForce) {
  auto engine = flowrank::util::make_engine(71);
  std::uniform_int_distribution<std::uint64_t> size_dist(0, 50);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 8 + trial % 40;
    const std::size_t t = 1 + trial % 7;
    std::vector<std::uint64_t> true_sizes(n), sampled(n);
    for (std::size_t i = 0; i < n; ++i) {
      true_sizes[i] = size_dist(engine) + 1;
      // Sparse range far beyond the direct-indexing cap, zeros included.
      const auto draw = size_dist(engine);
      sampled[i] = draw < 10 ? 0 : draw * 700'000'001ull;
    }
    for (auto policy : {fm::TiePolicy::kPaper, fm::TiePolicy::kLenient}) {
      const auto fast = fm::compute_rank_metrics(true_sizes, sampled, t, policy);
      const auto slow = brute_force(true_sizes, sampled, t, policy);
      EXPECT_DOUBLE_EQ(fast.ranking_swapped, slow.ranking_swapped)
          << "trial " << trial;
      EXPECT_DOUBLE_EQ(fast.detection_swapped, slow.detection_swapped);
    }
  }
}
