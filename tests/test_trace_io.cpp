// Dedicated trace_io coverage: FRT1 round-trip equality on every field
// (in-memory and through a file), each malformed-input class throwing
// std::runtime_error — truncated magic, wrong magic, truncated header,
// record count promising more records than the payload holds — and a
// golden CSV export.
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/trace/trace_io.hpp"

namespace fp = flowrank::packet;
namespace ft = flowrank::trace;

namespace {

/// Hand-built records with every field distinct, so a field swapped or
/// dropped by the codec cannot cancel out.
std::vector<fp::FlowRecord> golden_flows() {
  fp::FlowRecord a;
  a.start_s = 0.25;
  a.duration_s = 12.5;
  a.packets = 42;
  a.bytes = 21000;
  a.tuple.src_ip = 0x0A000001;  // 10.0.0.1
  a.tuple.dst_ip = 0xC0A80102;  // 192.168.1.2
  a.tuple.src_port = 1234;
  a.tuple.dst_port = 80;
  a.tuple.protocol = fp::Protocol::kTcp;

  fp::FlowRecord b;
  b.start_s = 3.5;
  b.duration_s = 0.0;
  b.packets = 1;
  b.bytes = 500;
  b.tuple.src_ip = 0x7F000001;  // 127.0.0.1
  b.tuple.dst_ip = 0x08080808;  // 8.8.8.8
  b.tuple.src_port = 53;
  b.tuple.dst_port = 5353;
  b.tuple.protocol = fp::Protocol::kUdp;
  return {a, b};
}

void expect_flows_equal(const std::vector<fp::FlowRecord>& actual,
                        const std::vector<fp::FlowRecord>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_DOUBLE_EQ(actual[i].start_s, expected[i].start_s) << "flow " << i;
    EXPECT_DOUBLE_EQ(actual[i].duration_s, expected[i].duration_s) << "flow " << i;
    EXPECT_EQ(actual[i].packets, expected[i].packets) << "flow " << i;
    EXPECT_EQ(actual[i].bytes, expected[i].bytes) << "flow " << i;
    EXPECT_EQ(actual[i].tuple.src_ip, expected[i].tuple.src_ip) << "flow " << i;
    EXPECT_EQ(actual[i].tuple.dst_ip, expected[i].tuple.dst_ip) << "flow " << i;
    EXPECT_EQ(actual[i].tuple.src_port, expected[i].tuple.src_port) << "flow " << i;
    EXPECT_EQ(actual[i].tuple.dst_port, expected[i].tuple.dst_port) << "flow " << i;
    EXPECT_EQ(actual[i].tuple.protocol, expected[i].tuple.protocol) << "flow " << i;
  }
}

/// The serialized bytes of the golden flows, for corruption tests.
std::string golden_bytes() {
  std::stringstream buffer;
  ft::write_flow_records(buffer, golden_flows());
  return buffer.str();
}

}  // namespace

TEST(TraceIoRoundTrip, EveryFieldSurvivesStreamRoundTrip) {
  std::stringstream buffer;
  ft::write_flow_records(buffer, golden_flows());
  expect_flows_equal(ft::read_flow_records(buffer), golden_flows());
}

TEST(TraceIoRoundTrip, EmptyRecordListRoundTrips) {
  std::stringstream buffer;
  ft::write_flow_records(buffer, {});
  EXPECT_TRUE(ft::read_flow_records(buffer).empty());
}

TEST(TraceIoRoundTrip, FileSaveLoadRoundTrips) {
  const std::string path = ::testing::TempDir() + "trace_io_roundtrip.frt1";
  ft::save_flow_records(path, golden_flows());
  expect_flows_equal(ft::load_flow_records(path), golden_flows());
  std::remove(path.c_str());
}

TEST(TraceIoRoundTrip, LoadMissingFileThrows) {
  EXPECT_THROW((void)ft::load_flow_records("/nonexistent/definitely/missing.frt1"),
               std::runtime_error);
}

TEST(TraceIoMalformed, TruncatedMagicThrows) {
  std::stringstream two_bytes("FR");
  EXPECT_THROW((void)ft::read_flow_records(two_bytes), std::runtime_error);
  std::stringstream empty("");
  EXPECT_THROW((void)ft::read_flow_records(empty), std::runtime_error);
}

TEST(TraceIoMalformed, WrongMagicThrows) {
  std::string data = golden_bytes();
  data[3] = '9';  // FRT1 -> FRT9
  std::stringstream buffer(data);
  EXPECT_THROW((void)ft::read_flow_records(buffer), std::runtime_error);
}

TEST(TraceIoMalformed, TruncatedHeaderThrows) {
  // Magic intact, record count cut short.
  std::stringstream buffer(golden_bytes().substr(0, 6));
  EXPECT_THROW((void)ft::read_flow_records(buffer), std::runtime_error);
}

TEST(TraceIoMalformed, ShortRecordCountThrows) {
  // The header promises 2 records; drop the second one's tail.
  const std::string data = golden_bytes();
  std::stringstream buffer(data.substr(0, data.size() - 17));
  EXPECT_THROW((void)ft::read_flow_records(buffer), std::runtime_error);
}

TEST(TraceIoMalformed, InflatedRecordCountThrows) {
  // Valid payload, header count bumped beyond it.
  std::string data = golden_bytes();
  data[4] = 3;  // little-endian uint64 count: 2 -> 3
  std::stringstream buffer(data);
  EXPECT_THROW((void)ft::read_flow_records(buffer), std::runtime_error);
}

TEST(TraceIoCsv, GoldenExport) {
  std::stringstream csv;
  ft::export_flow_records_csv(csv, golden_flows());
  EXPECT_EQ(csv.str(),
            "start_s,duration_s,packets,bytes,proto,src_ip,src_port,dst_ip,dst_port"
            "\n0.25,12.5,42,21000,6,10.0.0.1,1234,192.168.1.2,80\n"
            "3.5,0,1,500,17,127.0.0.1,53,8.8.8.8,5353\n");
}
