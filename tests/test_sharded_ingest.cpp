// Tests for the sharded multi-threaded ingest pipeline: FlowTable merge
// semantics, and the load-bearing guarantee that hash-sharded
// classification is bit-identical to the single-threaded path at any
// shard count (per-bin flow counters and downstream rank metrics alike).
#include <condition_variable>
#include <map>
#include <mutex>
#include <span>
#include <tuple>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/exec/task_pool.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/ingest/sharded_pipeline.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/trace/bin_counts.hpp"
#include "flowrank/trace/packet_stream.hpp"
#include "flowrank/util/error.hpp"

namespace fp = flowrank::packet;
namespace ftab = flowrank::flowtable;
namespace fing = flowrank::ingest;
namespace ftr = flowrank::trace;
namespace fsim = flowrank::sim;

namespace {

fp::PacketRecord make_packet(std::uint32_t src_ip, std::int64_t ts_ns,
                             std::uint32_t bytes = 500) {
  fp::PacketRecord pkt;
  pkt.timestamp_ns = ts_ns;
  pkt.tuple.src_ip = src_ip;
  pkt.tuple.dst_ip = 0x0A000001;
  pkt.tuple.src_port = 1234;
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = fp::Protocol::kTcp;
  pkt.size_bytes = bytes;
  return pkt;
}

/// A trace whose flows straddle many bin boundaries: mean duration well
/// above the 2.5 s bin used by the equivalence tests.
ftr::FlowTrace make_boundary_heavy_trace() {
  auto cfg = ftr::FlowTraceConfig::sprint_5tuple(1.5, /*seed=*/33);
  cfg.duration_s = 30.0;
  cfg.flow_rate_per_s = 120.0;
  return ftr::generate_flow_trace(cfg);
}

/// Canonical footprint of a table: every flow (completed subflows and
/// active entries) keyed and ordered so two tables can be compared
/// regardless of internal layout.
using FlowFootprint =
    std::map<std::tuple<std::uint64_t, std::uint64_t, std::int64_t>,
             std::tuple<std::uint64_t, std::uint64_t, std::int64_t, std::int64_t>>;

void footprint_add(FlowFootprint& out, const ftab::FlowCounter& f) {
  // (key, first_ns) identifies a subflow even under timeout splitting.
  auto& entry = out[{f.key.hi, f.key.lo, f.first_ns}];
  entry = {std::get<0>(entry) + f.packets, std::get<1>(entry) + f.bytes,
           f.first_ns, f.last_ns};
}

FlowFootprint footprint(const ftab::FlowTable& table) {
  FlowFootprint out;
  table.for_each_all([&out](const ftab::FlowCounter& f) { footprint_add(out, f); });
  return out;
}

FlowFootprint footprint(std::span<const ftab::FlowCounter> flows) {
  FlowFootprint out;
  for (const auto& f : flows) footprint_add(out, f);
  return out;
}

/// Runs the whole trace through a single-threaded BinnedClassifier and
/// returns per-bin footprints.
std::vector<FlowFootprint> classify_inline(const ftr::FlowTrace& trace,
                                           const ftab::FlowTable::Options& opts,
                                           std::int64_t bin_ns) {
  std::vector<FlowFootprint> bins;
  auto classifier = ftab::BinnedClassifier::with_table_view(
      opts, bin_ns, [&bins](std::size_t bin, const ftab::FlowTable& table) {
        if (bins.size() <= bin) bins.resize(bin + 1);
        bins[bin] = footprint(table);
      });
  ftr::PacketStream stream(trace);
  std::vector<fp::PacketRecord> batch;
  while (stream.next_batch(batch, 4096) > 0) classifier.add_batch(batch);
  classifier.finish();
  return bins;
}

std::vector<FlowFootprint> classify_sharded(const ftr::FlowTrace& trace,
                                            const ftab::FlowTable::Options& opts,
                                            std::int64_t bin_ns,
                                            std::size_t num_shards) {
  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = num_shards;
  cfg.num_streams = 1;
  cfg.bin_ns = bin_ns;
  cfg.table_options = opts;
  fing::ShardedPipeline pipeline(cfg);
  ftr::PacketStream stream(trace);
  std::vector<fp::PacketRecord> batch;
  while (stream.next_batch(batch, 4096) > 0) pipeline.add_batch(0, batch);
  pipeline.finish();
  std::vector<FlowFootprint> bins(pipeline.bin_count(0));
  for (std::size_t b = 0; b < bins.size(); ++b) {
    bins[b] = footprint(pipeline.bin_flows(0, b));
  }
  return bins;
}

}  // namespace

TEST(FlowTableMerge, MergeCounterFoldsEveryField) {
  ftab::FlowCounter a;
  a.packets = 3;
  a.bytes = 1500;
  a.first_ns = 100;
  a.last_ns = 900;
  ftab::FlowCounter b = a;
  b.packets = 2;
  b.bytes = 1000;
  b.first_ns = 50;
  b.last_ns = 600;
  b.min_tcp_seq = 10;
  b.max_tcp_seq = 2000;
  b.has_tcp_seq = true;

  ftab::merge_counter(a, b);
  EXPECT_EQ(a.packets, 5u);
  EXPECT_EQ(a.bytes, 2500u);
  EXPECT_EQ(a.first_ns, 50);
  EXPECT_EQ(a.last_ns, 900);
  EXPECT_TRUE(a.has_tcp_seq);
  EXPECT_EQ(a.min_tcp_seq, 10u);
  EXPECT_EQ(a.max_tcp_seq, 2000u);
}

TEST(FlowTableMerge, MergeFromUnionsDisjointTables) {
  const ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  ftab::FlowTable a(opts), b(opts);
  for (std::uint32_t ip = 0; ip < 10; ++ip) a.add(make_packet(ip, 1000 + ip));
  for (std::uint32_t ip = 100; ip < 120; ++ip) b.add(make_packet(ip, 2000 + ip));

  ftab::FlowTable merged(opts);
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.size(), 30u);

  auto expected = footprint(a);
  for (auto& [key, value] : footprint(b)) expected[key] = value;
  EXPECT_EQ(footprint(merged), expected);
}

TEST(FlowTableMerge, MergeFromAccumulatesOnKeyCollision) {
  const ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  ftab::FlowTable a(opts), b(opts);
  a.add(make_packet(7, 100));
  a.add(make_packet(7, 200));
  b.add(make_packet(7, 150));

  a.merge_from(b);
  EXPECT_EQ(a.size(), 1u);
  a.for_each_active([](const ftab::FlowCounter& f) {
    EXPECT_EQ(f.packets, 3u);
    EXPECT_EQ(f.first_ns, 100);
    EXPECT_EQ(f.last_ns, 200);
  });
}

TEST(FlowTableMerge, MergeFromKeepsCompletedSubflowsSeparate) {
  ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  opts.idle_timeout_ns = 100;
  ftab::FlowTable split(opts);
  split.add(make_packet(1, 0));
  split.add(make_packet(1, 1000));  // idle gap: first packet becomes a subflow

  ftab::FlowTable merged(opts);
  merged.merge_from(split);
  EXPECT_EQ(merged.completed().size(), 1u);
  EXPECT_EQ(merged.size(), 1u);
  EXPECT_EQ(footprint(merged), footprint(split));
}

TEST(ShardedPipeline, RejectsBadConfigs) {
  fing::ShardedPipelineConfig cfg;
  cfg.bin_ns = 1000;
  cfg.num_streams = 0;
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
  cfg.num_streams = 1;
  cfg.bin_ns = 0;
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
  // Absurd shard counts fail fast instead of flooding the pool.
  cfg.bin_ns = 1000;
  cfg.num_shards = flowrank::exec::TaskPool::kMaxParallelism + 1;
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
}

TEST(ShardedPipeline, ZeroShardsMeansAllHardwareThreads) {
  fing::ShardedPipelineConfig cfg;
  cfg.bin_ns = 1000;
  cfg.num_shards = 0;  // same convention as SimConfig::num_threads
  fing::ShardedPipeline pipeline(cfg);
  EXPECT_GE(pipeline.config().num_shards, 1u);
  const std::vector<fp::PacketRecord> batch{make_packet(1, 10), make_packet(2, 20)};
  pipeline.add_batch(0, batch);
  pipeline.finish();
  EXPECT_EQ(pipeline.bin_count(0), 1u);
  EXPECT_EQ(pipeline.bin_flows(0, 0).size(), 2u);
}

TEST(ShardedPipeline, LifecycleGuards) {
  fing::ShardedPipelineConfig cfg;
  cfg.bin_ns = 1000;
  fing::ShardedPipeline pipeline(cfg);
  EXPECT_THROW((void)pipeline.bin_count(0), std::logic_error);
  pipeline.finish();
  pipeline.finish();  // idempotent
  EXPECT_EQ(pipeline.bin_count(0), 0u);
  const std::vector<fp::PacketRecord> batch{make_packet(1, 10)};
  EXPECT_THROW(pipeline.add_batch(0, batch), std::logic_error);
  EXPECT_THROW((void)pipeline.bin_flows(0, 0), std::out_of_range);
}

TEST(ShardedPipeline, StreamsAreIndependent) {
  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = 2;
  cfg.num_streams = 2;
  cfg.bin_ns = 1000;
  fing::ShardedPipeline pipeline(cfg);
  const std::vector<fp::PacketRecord> batch0{make_packet(1, 10), make_packet(2, 20)};
  const std::vector<fp::PacketRecord> batch1{make_packet(3, 2500)};
  pipeline.add_batch(0, batch0);
  pipeline.add_batch(1, batch1);
  pipeline.finish();

  ASSERT_EQ(pipeline.bin_count(0), 1u);
  ASSERT_EQ(pipeline.bin_count(1), 3u);
  EXPECT_EQ(pipeline.bin_flows(0, 0).size(), 2u);
  EXPECT_EQ(pipeline.bin_flows(1, 0).size(), 0u);
  EXPECT_EQ(pipeline.bin_flows(1, 2).size(), 1u);
}

TEST(ShardedPipeline, StreamingCallbackReplacesRetention) {
  const auto trace = make_boundary_heavy_trace();
  const ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  const std::int64_t bin_ns = ftr::bin_length_ns(2.5);

  // Streamed flushes, folded into per-bin footprints under a lock (the
  // callback runs on whichever worker flushes).
  std::mutex mutex;
  std::vector<FlowFootprint> streamed;
  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = 4;
  cfg.bin_ns = bin_ns;
  cfg.table_options = opts;
  cfg.on_shard_bin = [&](std::size_t shard, std::size_t stream, std::size_t bin,
                         const ftab::FlowTable& table) {
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(stream, 0u);
    std::lock_guard lock(mutex);
    if (streamed.size() <= bin) streamed.resize(bin + 1);
    table.for_each_all(
        [&](const ftab::FlowCounter& f) { footprint_add(streamed[bin], f); });
  };
  fing::ShardedPipeline pipeline(cfg);
  ftr::PacketStream stream(trace);
  std::vector<fp::PacketRecord> batch;
  while (stream.next_batch(batch, 4096) > 0) pipeline.add_batch(0, batch);
  pipeline.finish();

  EXPECT_EQ(pipeline.bin_count(0), 0u);  // nothing retained
  EXPECT_EQ(streamed, classify_inline(trace, opts, bin_ns));
}

TEST(ShardedPipeline, ShardCountsAreBitIdenticalToInline) {
  const auto trace = make_boundary_heavy_trace();
  const ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  const std::int64_t bin_ns = ftr::bin_length_ns(2.5);

  const auto inline_bins = classify_inline(trace, opts, bin_ns);
  ASSERT_GE(inline_bins.size(), 12u);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto sharded_bins = classify_sharded(trace, opts, bin_ns, shards);
    ASSERT_EQ(sharded_bins.size(), inline_bins.size()) << shards << " shards";
    for (std::size_t b = 0; b < inline_bins.size(); ++b) {
      EXPECT_EQ(sharded_bins[b], inline_bins[b])
          << shards << " shards, bin " << b;
    }
  }
}

TEST(ShardedPipeline, TimeoutSplittingSurvivesSharding) {
  const auto trace = make_boundary_heavy_trace();
  ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  opts.idle_timeout_ns = 500'000'000;  // 0.5 s: plenty of splits
  const std::int64_t bin_ns = ftr::bin_length_ns(5.0);

  const auto inline_bins = classify_inline(trace, opts, bin_ns);
  const auto sharded_bins = classify_sharded(trace, opts, bin_ns, 4);
  EXPECT_EQ(sharded_bins, inline_bins);
}

namespace {

/// A flush callback that takes the worker hostage: it records each
/// flushed bin's packet total, then blocks until released. With a
/// one-chunk queue this wedges the shard deterministically, which is how
/// the overload-policy tests force the full-queue path.
struct HostageFlush {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;
  std::map<std::size_t, std::uint64_t> flushed;  // bin -> packets

  auto callback() {
    return [this](std::size_t, std::size_t, std::size_t bin,
                  const ftab::FlowTable& table) {
      std::unique_lock lock(mutex);
      std::uint64_t packets = 0;
      table.for_each_all(
          [&](const ftab::FlowCounter& f) { packets += f.packets; });
      flushed[bin] += packets;
      cv.wait(lock, [this] { return released; });
    };
  }

  void release() {
    {
      std::lock_guard lock(mutex);
      released = true;
    }
    cv.notify_all();
  }
};

fing::ShardedPipelineConfig tiny_queue_config(HostageFlush& hostage) {
  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = 1;
  cfg.bin_ns = 1000;  // every test packet lands in its own bin
  cfg.table_options = {fp::FlowDefinition::kFiveTuple, 0};
  cfg.max_queue_chunks = 1;
  cfg.chunk_packets = 1;  // every packet is its own chunk
  cfg.on_shard_bin = hostage.callback();
  return cfg;
}

}  // namespace

TEST(ShardedPipeline, ShedPolicyDropsAndCountsOnFullQueue) {
  HostageFlush hostage;
  auto cfg = tiny_queue_config(hostage);
  cfg.overload = fing::OverloadPolicy::kShed;
  fing::ShardedPipeline pipeline(cfg);

  // The worker wedges on the first bin flush; with a one-chunk queue the
  // driver must hit the shed path within a handful of adds.
  std::int64_t ts = 0;
  bool shed = false;
  for (int i = 0; i < 10000 && !shed; ++i) {
    ts += 1000;
    const fp::PacketRecord pkt = make_packet(1, ts);
    pipeline.add_batch(0, std::span<const fp::PacketRecord>(&pkt, 1));
    shed = pipeline.overload_stats().shed_packets > 0;
  }
  EXPECT_TRUE(shed) << "shed path never hit";

  hostage.release();
  pipeline.finish();

  const fing::OverloadStats stats = pipeline.overload_stats();
  EXPECT_GT(stats.queue_full_events, 0u);
  EXPECT_GT(stats.shed_chunks, 0u);
  EXPECT_EQ(stats.shed_packets, stats.shed_chunks);  // one-packet chunks
}

TEST(ShardedPipeline, BlockDeadlineFailsLoudlyOnWedgedShard) {
  HostageFlush hostage;
  auto cfg = tiny_queue_config(hostage);
  cfg.overload = fing::OverloadPolicy::kBlock;
  cfg.block_deadline_ms = 20;
  fing::ShardedPipeline pipeline(cfg);

  std::int64_t ts = 0;
  bool threw = false;
  try {
    for (int i = 0; i < 1000; ++i) {
      ts += 1000;
      const fp::PacketRecord pkt = make_packet(1, ts);
      pipeline.add_batch(0, std::span<const fp::PacketRecord>(&pkt, 1));
    }
  } catch (const flowrank::Error& e) {
    threw = true;
    EXPECT_EQ(e.category(), flowrank::ErrorCategory::kStalled);
    EXPECT_EQ(e.context(), "ingest");
    EXPECT_NE(std::string(e.what()).find("wedged"), std::string::npos);
  }
  EXPECT_TRUE(threw) << "block deadline never fired";

  hostage.release();
  pipeline.finish();
  EXPECT_GT(pipeline.overload_stats().queue_full_events, 0u);
}

TEST(ShardedPipeline, RotateEpochFlushesThroughRequestedBin) {
  std::mutex mutex;
  std::map<std::size_t, std::uint64_t> flushed;  // bin -> packets

  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = 1;
  cfg.bin_ns = 1000;
  cfg.table_options = {fp::FlowDefinition::kFiveTuple, 0};
  cfg.on_shard_bin = [&](std::size_t, std::size_t, std::size_t bin,
                         const ftab::FlowTable& table) {
    std::lock_guard lock(mutex);
    std::uint64_t packets = 0;
    table.for_each_all(
        [&](const ftab::FlowCounter& f) { packets += f.packets; });
    flushed[bin] += packets;
  };
  fing::ShardedPipeline pipeline(cfg);

  // Two packets in bin 0; rotating to bin 2 flushes everything below it
  // synchronously (the monitor's window-boundary move).
  const fp::PacketRecord bin0[] = {make_packet(1, 100), make_packet(2, 200)};
  pipeline.add_batch(0, bin0);
  pipeline.rotate_epoch(2);
  {
    std::lock_guard lock(mutex);
    ASSERT_TRUE(flushed.count(0));
    EXPECT_EQ(flushed[0], 2u);
  }

  // Ingest continues after the rotation; finish() flushes the new bin.
  const fp::PacketRecord bin2 = make_packet(3, 2500);
  pipeline.add_batch(0, std::span<const fp::PacketRecord>(&bin2, 1));
  pipeline.finish();
  {
    std::lock_guard lock(mutex);
    ASSERT_TRUE(flushed.count(2));
    EXPECT_EQ(flushed[2], 1u);
  }
  EXPECT_THROW(pipeline.rotate_epoch(3), std::logic_error);
}

TEST(ShardedSim, PacketLevelMetricsBitIdenticalAcrossShardCounts) {
  const auto trace = make_boundary_heavy_trace();
  fsim::SimConfig cfg;
  cfg.bin_seconds = 2.5;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.2};
  cfg.seed = 17;

  const auto reference = fsim::run_packet_level_once(trace, 0.2, cfg, 77);
  ASSERT_GE(reference.size(), 12u);
  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    const auto sharded = fsim::run_packet_level_once(trace, 0.2, cfg, 77, shards);
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_EQ(sharded[b].ranking_swapped, reference[b].ranking_swapped)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].detection_swapped, reference[b].detection_swapped)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].ranking_pairs, reference[b].ranking_pairs)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].detection_pairs, reference[b].detection_pairs)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].top_set_recall, reference[b].top_set_recall)
          << shards << " shards, bin " << b;
    }
  }
}

TEST(ShardedSim, ZeroShardsResolvesToHardwareThreads) {
  // 0 shards = all hardware threads, the same convention every other
  // thread knob uses — and still bit-identical to the sequential path.
  const auto trace = make_boundary_heavy_trace();
  fsim::SimConfig cfg;
  cfg.bin_seconds = 2.5;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.2};
  cfg.seed = 17;
  const auto reference = fsim::run_packet_level_once(trace, 0.2, cfg, 77);
  const auto resolved = fsim::run_packet_level_once(trace, 0.2, cfg, 77, 0);
  ASSERT_EQ(resolved.size(), reference.size());
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_EQ(resolved[b].ranking_swapped, reference[b].ranking_swapped);
    EXPECT_EQ(resolved[b].top_set_recall, reference[b].top_set_recall);
  }
}

TEST(ShardedSim, RejectsAbsurdShardCounts) {
  const auto trace = make_boundary_heavy_trace();
  fsim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  EXPECT_THROW((void)fsim::run_packet_level_once(
                   trace, 0.5, cfg, 1, flowrank::exec::TaskPool::kMaxParallelism + 1),
               std::invalid_argument);
}

// --- gated per-shard split sampler (ISSUE 9 layer 3) ---------------------

TEST(SplitSampler, OfferSelectAndIndexPathsAgree) {
  // One sampler, three access paths — per-packet offer(), batched
  // select(), and the pipeline's index-carried selects(index) — must
  // pick the identical set for the same seed.
  flowrank::sampler::SplitStreamSampler by_offer(0.3, 99);
  flowrank::sampler::SplitStreamSampler by_select(0.3, 99);
  flowrank::sampler::SplitStreamSampler by_index(0.3, 99);
  std::vector<fp::PacketRecord> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back(make_packet(i, 100 * i));
  std::vector<std::uint32_t> selected;
  by_select.select(batch, selected);
  std::size_t cursor = 0;
  for (std::uint64_t i = 0; i < batch.size(); ++i) {
    const bool offered = by_offer.offer(batch[i]);
    EXPECT_EQ(offered, by_index.selects(i)) << "index " << i;
    const bool in_select =
        cursor < selected.size() && selected[cursor] == i;
    if (in_select) ++cursor;
    EXPECT_EQ(offered, in_select) << "index " << i;
  }
  EXPECT_EQ(cursor, selected.size());
  EXPECT_NEAR(static_cast<double>(selected.size()) / batch.size(), 0.3, 0.05);
}

TEST(ShardedPipeline, SplitSamplerMatchesDriverSideSelectionAtAnyShardCount) {
  // The pipeline thins the source stream per shard by carried global
  // index; a driver-side SplitStreamSampler walking the same stream in
  // order must describe the identical sampled classification — at every
  // shard count, since selection is independent of the partitioning.
  const auto trace = make_boundary_heavy_trace();
  const ftab::FlowTable::Options opts{fp::FlowDefinition::kFiveTuple, 0};
  const std::int64_t bin_ns = 2'500'000'000;

  // Reference: inline classification of the driver-selected subset.
  std::vector<FlowFootprint> expected;
  {
    auto classifier = ftab::BinnedClassifier::with_table_view(
        opts, bin_ns, [&](std::size_t bin, const ftab::FlowTable& table) {
          if (expected.size() <= bin) expected.resize(bin + 1);
          expected[bin] = footprint(table);
        });
    flowrank::sampler::SplitStreamSampler sampler(0.25, 4242);
    ftr::PacketStream stream(trace);
    std::vector<fp::PacketRecord> batch, selected;
    while (stream.next_batch(batch, 4096) > 0) {
      sampler.select_into(batch, selected);
      classifier.add_batch(selected);
    }
    classifier.finish();
  }
  ASSERT_GE(expected.size(), 2u);

  for (const std::size_t shards : {1u, 2u, 4u, 7u}) {
    fing::ShardedPipelineConfig cfg;
    cfg.num_shards = shards;
    cfg.num_streams = 2;
    cfg.bin_ns = bin_ns;
    cfg.table_options = opts;
    cfg.split_sampler.enabled = true;
    cfg.split_sampler.rate = 0.25;
    cfg.split_sampler.seed = 4242;
    fing::ShardedPipeline pipeline(cfg);
    ftr::PacketStream stream(trace);
    std::vector<fp::PacketRecord> batch;
    while (stream.next_batch(batch, 4096) > 0) pipeline.add_batch(0, batch);
    pipeline.finish();
    ASSERT_EQ(pipeline.bin_count(1), expected.size()) << shards << " shards";
    for (std::size_t b = 0; b < expected.size(); ++b) {
      EXPECT_EQ(footprint(pipeline.bin_flows(1, b)), expected[b])
          << shards << " shards, bin " << b;
    }
  }
}

TEST(ShardedPipeline, SplitSamplerConfigValidation) {
  fing::ShardedPipelineConfig cfg;
  cfg.num_shards = 1;
  cfg.num_streams = 2;
  cfg.bin_ns = 1000;
  cfg.table_options = {fp::FlowDefinition::kFiveTuple, 0};
  cfg.split_sampler.enabled = true;
  cfg.split_sampler.rate = 1.5;  // out of range
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
  cfg.split_sampler.rate = 0.5;
  cfg.split_sampler.sampled_stream = 0;  // == source_stream
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
  cfg.split_sampler.sampled_stream = 2;  // >= num_streams
  EXPECT_THROW(fing::ShardedPipeline{cfg}, std::invalid_argument);
}

TEST(ShardedSim, SplitSamplerGateBitIdenticalAcrossShardCounts) {
  // The gated path has its own identity proof: same metrics at every
  // shard count — and a canonically DIFFERENT sampled stream than the
  // default geometric-skip Bernoulli at the same (rate, seed), which is
  // exactly why it ships off by default.
  const auto trace = make_boundary_heavy_trace();
  fsim::SimConfig cfg;
  cfg.bin_seconds = 2.5;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.2};
  cfg.seed = 17;
  const auto ungated = fsim::run_packet_level_once(trace, 0.2, cfg, 77);
  cfg.sampler_split = true;
  const auto reference = fsim::run_packet_level_once(trace, 0.2, cfg, 77);
  ASSERT_EQ(reference.size(), ungated.size());
  bool differs = false;
  for (std::size_t b = 0; b < reference.size(); ++b) {
    differs = differs ||
              reference[b].ranking_swapped != ungated[b].ranking_swapped ||
              reference[b].top_set_recall != ungated[b].top_set_recall;
  }
  EXPECT_TRUE(differs) << "split sampler unexpectedly reproduced the skip stream";
  for (const std::size_t shards : {2u, 4u, 7u}) {
    const auto sharded = fsim::run_packet_level_once(trace, 0.2, cfg, 77, shards);
    ASSERT_EQ(sharded.size(), reference.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_EQ(sharded[b].ranking_swapped, reference[b].ranking_swapped)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].detection_swapped, reference[b].detection_swapped)
          << shards << " shards, bin " << b;
      EXPECT_EQ(sharded[b].top_set_recall, reference[b].top_set_recall)
          << shards << " shards, bin " << b;
    }
  }
}
