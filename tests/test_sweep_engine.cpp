// Tests for the Monte-Carlo sweep engine: pool mechanics, and the
// bit-identity guarantee — run_binned_simulation and run_mc_model must
// produce exactly the sequential results at any thread count (every grid
// cell / run owns an independent RNG stream and result slot; folding is
// in deterministic order). These suites also run under ThreadSanitizer in
// CI next to the Sharded* ingest tests.
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/core/mc_model.hpp"
#include "flowrank/dist/pareto.hpp"
#include "flowrank/sim/binned_sim.hpp"
#include "flowrank/sim/sweep_engine.hpp"

namespace fc = flowrank::core;
namespace fp = flowrank::packet;
namespace fsim = flowrank::sim;
namespace ft = flowrank::trace;

// ---------------------------------------------------------------------------
// SweepEngine mechanics
// ---------------------------------------------------------------------------

TEST(SweepEngine, RunsEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    fsim::SweepEngine pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(), [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(SweepEngine, PoolPersistsAcrossJobs) {
  fsim::SweepEngine pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 50; ++job) {
    pool.parallel_for(20, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50u * (20u * 21u / 2u));
}

TEST(SweepEngine, EmptyJobIsANoOp) {
  fsim::SweepEngine pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(SweepEngine, TaskExceptionPropagatesAndPoolSurvives) {
  fsim::SweepEngine pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::runtime_error("cell 37");
                          ran.fetch_add(1, std::memory_order_relaxed);
                        }),
      std::runtime_error);
  // The pool stays usable after a failed job.
  std::atomic<int> after{0};
  pool.parallel_for(16, [&](std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 16);
}

TEST(SweepEngine, InvalidAndDefaultThreadCounts) {
  EXPECT_THROW(fsim::SweepEngine{0}, std::invalid_argument);
  EXPECT_GE(fsim::SweepEngine::resolve_thread_count(0), 1u);
  EXPECT_EQ(fsim::SweepEngine::resolve_thread_count(5), 5u);
}

// ---------------------------------------------------------------------------
// Bit-identity of the parallel sweeps
// ---------------------------------------------------------------------------

namespace {

/// Hand-built trace: one wave of zero-duration flows per bin with chosen
/// packet counts (a zero-duration flow's packets all land in its start
/// bin, so per-bin true sizes are exactly `sizes` with no RNG involved).
/// Includes deliberate true-size ties and one under-populated final wave.
ft::FlowTrace make_tied_trace() {
  ft::FlowTrace trace;
  trace.config = ft::FlowTraceConfig::sprint_5tuple(1.5, 1);
  trace.config.duration_s = 40.0;
  std::uint32_t next_ip = 1;
  const auto add_wave = [&](double start_s, const std::vector<std::uint64_t>& sizes) {
    for (std::uint64_t packets : sizes) {
      fp::FlowRecord flow;
      flow.tuple.src_ip = next_ip++;
      flow.tuple.dst_ip = 0x0A000001;
      flow.tuple.protocol = fp::Protocol::kUdp;
      flow.start_s = start_s;
      flow.duration_s = 0.0;
      flow.packets = packets;
      flow.bytes = packets * 500;
      trace.flows.push_back(flow);
    }
  };
  // Bins of 10 s. Waves with heavy ties (equal true sizes straddling the
  // top-t boundary) and small sizes (so tiny rates sample all-zero bins).
  add_wave(1.0, {9, 9, 9, 9, 5, 5, 5, 3, 1, 1});
  add_wave(11.0, {7, 7, 7, 7, 7, 7, 2, 2, 2, 2});
  add_wave(21.0, {40, 12, 12, 12, 4, 4, 4, 4, 1, 1});
  add_wave(31.0, {6, 6});  // fewer flows than top_t: bin must be skipped
  return trace;
}

fsim::SimConfig make_sweep_config(flowrank::metrics::TiePolicy policy) {
  fsim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  cfg.top_t = 4;
  // 1e-9 makes every sampled size 0 with near-certainty (all-zero bins);
  // the mid rates exercise partial thinning around the ties.
  cfg.sampling_rates = {1e-9, 0.2, 0.6};
  cfg.runs = 25;
  cfg.seed = 11;
  cfg.tie_policy = policy;
  return cfg;
}

void expect_bin_stats_identical(const fsim::SimResult& a, const fsim::SimResult& b,
                                std::size_t threads) {
  ASSERT_EQ(a.series.size(), b.series.size());
  for (std::size_t r = 0; r < a.series.size(); ++r) {
    ASSERT_EQ(a.series[r].bins.size(), b.series[r].bins.size());
    for (std::size_t bin = 0; bin < a.series[r].bins.size(); ++bin) {
      const auto& sa = a.series[r].bins[bin];
      const auto& sb = b.series[r].bins[bin];
      EXPECT_EQ(sa.flows_in_bin, sb.flows_in_bin);
      EXPECT_EQ(sa.ranking.count(), sb.ranking.count());
      // Bit-identical, not merely close: EXPECT_EQ on the doubles.
      EXPECT_EQ(sa.ranking.mean(), sb.ranking.mean())
          << "rate " << r << " bin " << bin << " threads " << threads;
      EXPECT_EQ(sa.ranking.stddev(), sb.ranking.stddev());
      EXPECT_EQ(sa.detection.mean(), sb.detection.mean());
      EXPECT_EQ(sa.detection.stddev(), sb.detection.stddev());
      EXPECT_EQ(sa.recall.mean(), sb.recall.mean());
      EXPECT_EQ(sa.recall.stddev(), sb.recall.stddev());
    }
  }
}

}  // namespace

TEST(BinnedSimSweep, ThreadCountsAreBitIdenticalBothTiePolicies) {
  const auto trace = make_tied_trace();
  for (auto policy : {flowrank::metrics::TiePolicy::kPaper,
                      flowrank::metrics::TiePolicy::kLenient}) {
    auto cfg = make_sweep_config(policy);
    cfg.num_threads = 1;
    const auto sequential = fsim::run_binned_simulation(trace, cfg);

    // The tiny rate really does produce all-zero sampled bins, and the
    // tied waves really are rankable (sanity of the fixture, not of the
    // threading).
    EXPECT_EQ(sequential.series[0].bins[0].ranking.count(), 25u);
    EXPECT_EQ(sequential.series[0].bins[3].ranking.count(), 0u);  // skipped

    for (std::size_t threads : {2u, 4u, 7u}) {
      cfg.num_threads = threads;
      const auto parallel = fsim::run_binned_simulation(trace, cfg);
      expect_bin_stats_identical(sequential, parallel, threads);
    }
  }
}

TEST(BinnedSimSweep, GeneratedTraceBitIdenticalAcrossThreads) {
  // A generated trace with realistic populations, as the figure drivers
  // run it (multi-bin, multi-rate, paper tie policy).
  auto trace_cfg = ft::FlowTraceConfig::sprint_5tuple(1.5, 21);
  trace_cfg.duration_s = 60.0;
  trace_cfg.flow_rate_per_s = 300.0;
  const auto trace = ft::generate_flow_trace(trace_cfg);

  fsim::SimConfig cfg;
  cfg.bin_seconds = 10.0;
  cfg.top_t = 5;
  cfg.sampling_rates = {0.01, 0.1, 0.5};
  cfg.runs = 10;
  cfg.seed = 3;
  cfg.num_threads = 1;
  const auto sequential = fsim::run_binned_simulation(trace, cfg);
  for (std::size_t threads : {2u, 4u, 7u}) {
    cfg.num_threads = threads;
    expect_bin_stats_identical(sequential, fsim::run_binned_simulation(trace, cfg),
                               threads);
  }
}

TEST(McModelSweep, ThreadCountsAreBitIdentical) {
  fc::RankingModelConfig cfg;
  cfg.n = 800;
  cfg.t = 5;
  cfg.p = 0.08;
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(9.6, 1.5));

  const auto sequential = fc::run_mc_model(cfg, 40, /*seed=*/77, /*num_threads=*/1);
  for (std::size_t threads : {2u, 4u, 7u}) {
    const auto parallel = fc::run_mc_model(cfg, 40, 77, threads);
    EXPECT_EQ(sequential.ranking_metric.count(), parallel.ranking_metric.count());
    EXPECT_EQ(sequential.ranking_metric.mean(), parallel.ranking_metric.mean())
        << "threads " << threads;
    EXPECT_EQ(sequential.ranking_metric.stddev(), parallel.ranking_metric.stddev());
    EXPECT_EQ(sequential.detection_metric.mean(), parallel.detection_metric.mean());
    EXPECT_EQ(sequential.detection_metric.stddev(),
              parallel.detection_metric.stddev());
    EXPECT_EQ(sequential.top_set_recall.mean(), parallel.top_set_recall.mean());
    EXPECT_EQ(sequential.top_set_recall.stddev(), parallel.top_set_recall.stddev());
  }
}

TEST(McModelSweep, DefaultThreadArgumentKeepsLegacySignature) {
  fc::RankingModelConfig cfg;
  cfg.n = 200;
  cfg.t = 3;
  cfg.p = 0.2;
  cfg.size_dist = std::make_shared<flowrank::dist::Pareto>(
      flowrank::dist::Pareto::from_mean(9.6, 1.5));
  // Three-argument call (as every pre-existing caller uses) still works
  // and equals the explicit sequential call.
  const auto a = fc::run_mc_model(cfg, 10, 5);
  const auto b = fc::run_mc_model(cfg, 10, 5, 1);
  EXPECT_EQ(a.ranking_metric.mean(), b.ranking_metric.mean());
}
