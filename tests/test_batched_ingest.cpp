// Tests for the batched ingest pipeline: the flat open-addressing flow
// table (collisions, growth, timeout splitting, clear/reuse), batch vs
// per-packet equivalence of samplers and tables, and distributional
// properties of the skip-based samplers.
#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/core/misranking.hpp"
#include "flowrank/flowtable/binned_classifier.hpp"
#include "flowrank/flowtable/flow_table.hpp"
#include "flowrank/numeric/binomial.hpp"
#include "flowrank/sampler/packet_sampler.hpp"
#include "flowrank/util/rng.hpp"

namespace fp = flowrank::packet;
namespace fs = flowrank::sampler;
namespace ff = flowrank::flowtable;

namespace {

fp::PacketRecord make_packet(std::int64_t ts_ns, std::uint32_t src,
                             std::uint32_t dst = 2,
                             fp::Protocol proto = fp::Protocol::kTcp,
                             std::uint32_t seq = 0) {
  fp::PacketRecord pkt;
  pkt.timestamp_ns = ts_ns;
  pkt.tuple = fp::FiveTuple{src, dst, 10, 80, proto};
  pkt.size_bytes = 500;
  pkt.tcp_seq = seq;
  return pkt;
}

/// A random packet workload over `flow_count` flows.
std::vector<fp::PacketRecord> make_workload(std::size_t packets,
                                            std::uint32_t flow_count,
                                            std::uint64_t seed) {
  std::vector<fp::PacketRecord> out;
  out.reserve(packets);
  auto engine = flowrank::util::make_engine(seed);
  for (std::size_t i = 0; i < packets; ++i) {
    const auto src = static_cast<std::uint32_t>(engine() % flow_count);
    out.push_back(make_packet(static_cast<std::int64_t>(i) * 1000, src,
                              /*dst=*/src % 7,
                              src % 3 == 0 ? fp::Protocol::kUdp : fp::Protocol::kTcp,
                              static_cast<std::uint32_t>(i)));
  }
  return out;
}

/// Canonical view of a table's flows for comparisons: all counters keyed
/// and ordered by flow key (merging is not needed — keys are unique per
/// state within active(), and completed subflows are tagged by first_ns).
std::vector<ff::FlowCounter> canonical_flows(const ff::FlowTable& table) {
  std::vector<ff::FlowCounter> flows;
  table.for_each_all([&flows](const ff::FlowCounter& f) { flows.push_back(f); });
  std::sort(flows.begin(), flows.end(),
            [](const ff::FlowCounter& a, const ff::FlowCounter& b) {
              if (!(a.key == b.key)) return a.key < b.key;
              return a.first_ns < b.first_ns;
            });
  return flows;
}

void expect_identical(const std::vector<ff::FlowCounter>& a,
                      const std::vector<ff::FlowCounter>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << i;
    EXPECT_EQ(a[i].packets, b[i].packets) << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << i;
    EXPECT_EQ(a[i].first_ns, b[i].first_ns) << i;
    EXPECT_EQ(a[i].last_ns, b[i].last_ns) << i;
    EXPECT_EQ(a[i].min_tcp_seq, b[i].min_tcp_seq) << i;
    EXPECT_EQ(a[i].max_tcp_seq, b[i].max_tcp_seq) << i;
    EXPECT_EQ(a[i].has_tcp_seq, b[i].has_tcp_seq) << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Flat open-addressing table
// ---------------------------------------------------------------------------

TEST(FlatFlowTable, CollisionHeavyGrowthMatchesReferenceCounts) {
  // Start tiny so thousands of distinct flows force long probe chains and
  // repeated growth; validate every counter against a reference map.
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0, /*initial_capacity=*/64});
  std::unordered_map<std::uint32_t, std::uint64_t> reference;
  const auto workload = make_workload(60000, 7919, /*seed=*/5);
  for (const auto& pkt : workload) {
    table.add(pkt);
    ++reference[pkt.tuple.src_ip];
  }
  EXPECT_EQ(table.size(), reference.size());
  EXPECT_GE(table.capacity(), table.size());
  // Totals must agree flow-by-flow: aggregate both sides by packet count
  // multiset (key packing is an implementation detail of make_flow_key).
  std::multiset<std::uint64_t> table_counts, ref_counts;
  table.for_each_active(
      [&](const ff::FlowCounter& f) { table_counts.insert(f.packets); });
  for (const auto& [src, count] : reference) ref_counts.insert(count);
  EXPECT_EQ(table_counts, ref_counts);
}

TEST(FlatFlowTable, ActiveMatchesForEachActive) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  for (const auto& pkt : make_workload(5000, 257, 9)) table.add(pkt);
  const auto copied = table.active();
  std::vector<ff::FlowCounter> streamed;
  table.for_each_active([&](const ff::FlowCounter& f) { streamed.push_back(f); });
  ASSERT_EQ(copied.size(), streamed.size());
  for (std::size_t i = 0; i < copied.size(); ++i) {
    EXPECT_EQ(copied[i].key, streamed[i].key);
    EXPECT_EQ(copied[i].packets, streamed[i].packets);
  }
}

TEST(FlatFlowTable, TimeoutSplitRewritesSlotWithoutTombstones) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, /*idle_timeout_ns=*/1000,
                       /*initial_capacity=*/64});
  // Three flows, each split twice by idle gaps.
  for (std::uint32_t src : {1u, 2u, 3u}) {
    table.add(make_packet(0, src));
    table.add(make_packet(100, src));
    table.add(make_packet(5000, src));   // split 1
    table.add(make_packet(10000, src));  // split 2
  }
  EXPECT_EQ(table.size(), 3u);  // one live entry per key, slots reused
  EXPECT_EQ(table.completed().size(), 6u);
  for (const auto& sub : table.completed()) {
    EXPECT_GE(sub.packets, 1u);
  }
  // all() = completed + active.
  EXPECT_EQ(table.all().size(), 9u);
}

TEST(FlatFlowTable, ClearRetainsCapacityAndReusesSlots) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 100, 64});
  const auto workload = make_workload(20000, 4001, 3);
  for (const auto& pkt : workload) table.add(pkt);
  const std::size_t grown_capacity = table.capacity();
  EXPECT_GT(grown_capacity, 64u);

  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.completed().empty());
  EXPECT_EQ(table.capacity(), grown_capacity);
  std::size_t visited = 0;
  table.for_each_all([&visited](const ff::FlowCounter&) { ++visited; });
  EXPECT_EQ(visited, 0u);

  // Refill with a different workload: counters must reflect only the new
  // packets (no stale state behind the cleared probe array).
  table.add(make_packet(0, 77));
  table.add(make_packet(10, 77));
  const auto flows = table.active();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[0].first_ns, 0);
  EXPECT_EQ(flows[0].last_ns, 10);
}

TEST(FlatFlowTable, AddBatchEqualsPerPacketAdd) {
  const auto workload = make_workload(30000, 997, 11);
  for (std::size_t batch_size : {1ul, 7ul, 256ul, 30000ul}) {
    ff::FlowTable per_packet({fp::FlowDefinition::kFiveTuple, 2500, 64});
    ff::FlowTable batched({fp::FlowDefinition::kFiveTuple, 2500, 64});
    for (const auto& pkt : workload) per_packet.add(pkt);
    const std::span<const fp::PacketRecord> all(workload);
    for (std::size_t start = 0; start < all.size(); start += batch_size) {
      batched.add_batch(all.subspan(start, std::min(batch_size, all.size() - start)));
    }
    expect_identical(canonical_flows(per_packet), canonical_flows(batched));
  }
}

// ---------------------------------------------------------------------------
// Batch vs per-packet equivalence of the full sampled pipeline
// ---------------------------------------------------------------------------

namespace {

/// Runs `sampler` over the workload per-packet (offer + add) and returns
/// the sampled table's canonical flows.
template <typename SamplerT>
std::vector<ff::FlowCounter> run_per_packet(SamplerT sampler,
                                            std::span<const fp::PacketRecord> pkts) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  for (const auto& pkt : pkts) {
    if (sampler.offer(pkt)) table.add(pkt);
  }
  return canonical_flows(table);
}

/// Runs `sampler` over the workload in batches (select + add_batch).
template <typename SamplerT>
std::vector<ff::FlowCounter> run_batched(SamplerT sampler,
                                         std::span<const fp::PacketRecord> pkts,
                                         std::size_t batch_size) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  std::vector<std::uint32_t> indices;
  std::vector<fp::PacketRecord> selected;
  for (std::size_t start = 0; start < pkts.size(); start += batch_size) {
    const auto batch = pkts.subspan(start, std::min(batch_size, pkts.size() - start));
    indices.clear();
    sampler.select(batch, indices);
    selected.clear();
    for (const std::uint32_t i : indices) selected.push_back(batch[i]);
    table.add_batch(selected);
  }
  return canonical_flows(table);
}

}  // namespace

TEST(BatchEquivalence, BernoulliSelectsIdenticalPacketsAsOffer) {
  const auto workload = make_workload(50000, 307, 21);
  for (double p : {0.001, 0.05, 0.5, 1.0}) {
    const auto reference = run_per_packet(fs::BernoulliSampler(p, 77), workload);
    for (std::size_t batch_size : {1ul, 13ul, 4096ul}) {
      expect_identical(reference,
                       run_batched(fs::BernoulliSampler(p, 77), workload, batch_size));
    }
  }
}

TEST(BatchEquivalence, PeriodicSelectsIdenticalPacketsAsOffer) {
  const auto workload = make_workload(20000, 101, 22);
  for (std::uint64_t period : {1ull, 3ull, 100ull}) {
    const auto reference = run_per_packet(fs::PeriodicSampler(period, period / 2),
                                          workload);
    for (std::size_t batch_size : {1ul, 13ul, 999ul}) {
      expect_identical(reference, run_batched(fs::PeriodicSampler(period, period / 2),
                                              workload, batch_size));
    }
  }
}

TEST(BatchEquivalence, StratifiedSelectsIdenticalPacketsAsOffer) {
  const auto workload = make_workload(20000, 101, 23);
  for (std::uint64_t period : {1ull, 7ull, 64ull}) {
    const auto reference = run_per_packet(fs::StratifiedSampler(period, 5), workload);
    for (std::size_t batch_size : {1ul, 13ul, 1000ul}) {
      expect_identical(reference,
                       run_batched(fs::StratifiedSampler(period, 5), workload,
                                   batch_size));
    }
  }
}

TEST(BatchEquivalence, FlowSamplerSelectsIdenticalPacketsAsOffer) {
  const auto workload = make_workload(20000, 101, 24);
  const auto reference = run_per_packet(
      fs::FlowSampler(0.3, fp::FlowDefinition::kFiveTuple, 5), workload);
  expect_identical(reference,
                   run_batched(fs::FlowSampler(0.3, fp::FlowDefinition::kFiveTuple, 5),
                               workload, 512));
}

TEST(BatchEquivalence, BinnedClassifierAddBatchMatchesAdd) {
  const auto workload = make_workload(30000, 211, 31);  // 1 us apart, bins below
  const std::int64_t bin_ns = 1000 * 1024;              // boundaries mid-batch
  std::map<std::size_t, std::uint64_t> per_packet_bins, batched_bins;
  ff::BinnedClassifier per_packet(
      {fp::FlowDefinition::kFiveTuple, 0}, bin_ns,
      [&](std::size_t bin, std::vector<ff::FlowCounter> flows) {
        for (const auto& f : flows) per_packet_bins[bin] += f.packets;
      });
  auto batched = ff::BinnedClassifier::with_table_view(
      {fp::FlowDefinition::kFiveTuple, 0}, bin_ns,
      [&](std::size_t bin, const ff::FlowTable& table) {
        table.for_each_all(
            [&](const ff::FlowCounter& f) { batched_bins[bin] += f.packets; });
      });
  for (const auto& pkt : workload) per_packet.add(pkt);
  per_packet.finish();
  const std::span<const fp::PacketRecord> all(workload);
  for (std::size_t start = 0; start < all.size(); start += 777) {
    batched.add_batch(all.subspan(start, std::min<std::size_t>(777, all.size() - start)));
  }
  batched.finish();
  EXPECT_EQ(per_packet_bins, batched_bins);
}

// ---------------------------------------------------------------------------
// Distributional properties of the skip-based samplers
// ---------------------------------------------------------------------------

TEST(SkipSamplerDistribution, GeometricSkipMatchesBernoulliChiSquared) {
  // Counts of selected packets per block of m must follow Bin(m, p) if the
  // skip process really is i.i.d. Bernoulli sampling. Chi-squared GOF over
  // the block-count histogram; the 0.001 critical values leave a seeded
  // deterministic test with ample margin.
  const double p = 0.05;
  const std::size_t block = 40;
  const std::size_t blocks = 20000;
  const auto workload = make_workload(block * blocks, 17, 1);

  fs::BernoulliSampler sampler(p, /*seed=*/1234);
  std::vector<std::uint32_t> indices;
  sampler.select(workload, indices);

  std::vector<std::uint64_t> histogram(block + 1, 0);
  {
    std::vector<std::uint32_t> per_block(blocks, 0);
    for (const std::uint32_t idx : indices) ++per_block[idx / block];
    for (const std::uint32_t c : per_block) ++histogram[c];
  }

  // Pool the tail so every expected cell count is >= 5.
  double chi2 = 0.0;
  int cells = 0;
  double pooled_observed = 0.0, pooled_expected = 0.0;
  for (std::size_t k = 0; k <= block; ++k) {
    const double expected =
        static_cast<double>(blocks) *
        flowrank::numeric::binomial_pmf(static_cast<std::int64_t>(k),
                                        static_cast<std::int64_t>(block), p);
    const auto observed = static_cast<double>(histogram[k]);
    if (expected < 5.0) {
      pooled_observed += observed;
      pooled_expected += expected;
      continue;
    }
    chi2 += (observed - expected) * (observed - expected) / expected;
    ++cells;
  }
  if (pooled_expected > 0.0) {
    chi2 += (pooled_observed - pooled_expected) * (pooled_observed - pooled_expected) /
            pooled_expected;
    ++cells;
  }
  // Critical value of chi^2 at alpha = 0.001 for the df in play (<= 10
  // cells here): chi2_{0.999, 9} = 27.9. Anything wildly above means the
  // skip recurrence does not reproduce Bernoulli sampling.
  EXPECT_LT(chi2, 30.0) << "cells=" << cells;
}

TEST(SkipSamplerDistribution, StratifiedPicksAreUniformChiSquared) {
  // The offset picked within each group must be Uniform{0..period-1}.
  const std::uint64_t period = 25;
  const std::size_t groups = 20000;
  const auto workload = make_workload(period * groups, 17, 2);
  fs::StratifiedSampler sampler(period, /*seed=*/77);
  std::vector<std::uint32_t> indices;
  sampler.select(workload, indices);
  ASSERT_EQ(indices.size(), groups);  // exactly one per group
  std::vector<std::uint64_t> histogram(period, 0);
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint64_t offset = indices[g] - g * period;
    ASSERT_LT(offset, period);
    ++histogram[offset];
  }
  const double expected = static_cast<double>(groups) / static_cast<double>(period);
  double chi2 = 0.0;
  for (const std::uint64_t count : histogram) {
    chi2 += (static_cast<double>(count) - expected) *
            (static_cast<double>(count) - expected) / expected;
  }
  // chi2_{0.999, 24} = 51.2.
  EXPECT_LT(chi2, 52.0);
}

// ---------------------------------------------------------------------------
// Memoized binomial sweeps
// ---------------------------------------------------------------------------

TEST(BinomialSweepCache, SurvivesCacheResetMidExpression) {
  // Regression: misranking_exact holds two sweeps from consecutive
  // shared() calls; the second call may reset the bounded memo, which
  // must not invalidate the first (shared ownership). Fill the cache so
  // the (small, p) lookup hits and the (big, p) lookup forces the reset.
  const double p = 0.01;
  for (int i = 0; i < 255; ++i) {
    (void)flowrank::numeric::BinomialSweep::shared(1000 + i, p);
  }
  (void)flowrank::numeric::BinomialSweep::shared(100, p);  // cache now full
  const double v = flowrank::core::misranking_exact(100, 120, p);
  EXPECT_GT(v, 0.0);
  EXPECT_LE(v, 1.0);
  // And the value matches a fresh evaluation (cache state independent).
  EXPECT_DOUBLE_EQ(v, flowrank::core::misranking_exact(100, 120, p));
}

// ---------------------------------------------------------------------------
// top_k selection
// ---------------------------------------------------------------------------

TEST(TopK, NthElementPathBreaksTiesByKeyDeterministically) {
  // 50 flows tied at 100 packets, 10 above, 40 below; t = 30 cuts through
  // the tie group. The returned tie segment must be the smallest keys in
  // ascending order no matter the input order.
  std::vector<ff::FlowCounter> flows;
  auto add_flow = [&flows](std::uint64_t key_lo, std::uint64_t packets) {
    ff::FlowCounter f;
    f.key = fp::FlowKey{1, key_lo};
    f.packets = packets;
    flows.push_back(f);
  };
  for (std::uint64_t i = 0; i < 10; ++i) add_flow(1000 + i, 500 + i);
  for (std::uint64_t i = 0; i < 50; ++i) add_flow(100 + i, 100);
  for (std::uint64_t i = 0; i < 40; ++i) add_flow(i, 10 + i);

  EXPECT_TRUE(ff::top_k(flows, 0).empty());

  auto engine = flowrank::util::make_engine(8);
  for (int shuffle = 0; shuffle < 5; ++shuffle) {
    std::shuffle(flows.begin(), flows.end(), engine);
    const auto top = ff::top_k(flows, 30);
    ASSERT_EQ(top.size(), 30u);
    // Head: the 10 large flows by size descending.
    for (std::size_t i = 0; i < 10; ++i) {
      EXPECT_EQ(top[i].packets, 509u - i);
    }
    // Tail: exactly the 20 smallest keys of the tie group, ascending.
    for (std::size_t i = 0; i < 20; ++i) {
      EXPECT_EQ(top[10 + i].packets, 100u);
      EXPECT_EQ(top[10 + i].key.lo, 100 + i);
    }
  }
}

TEST(TopK, HeapSelectionOverTableMatchesVectorPath) {
  ff::FlowTable table({fp::FlowDefinition::kFiveTuple, 0});
  for (const auto& pkt : make_workload(40000, 1511, 6)) table.add(pkt);
  for (std::size_t t : {1ul, 10ul, 100ul, 5000ul}) {
    const auto from_vector = ff::top_k(table.all(), t);
    const auto from_table = ff::top_k(table, t);
    ASSERT_EQ(from_vector.size(), from_table.size()) << t;
    for (std::size_t i = 0; i < from_vector.size(); ++i) {
      EXPECT_EQ(from_vector[i].key, from_table[i].key) << t << " " << i;
      EXPECT_EQ(from_vector[i].packets, from_table[i].packets);
    }
  }
}
