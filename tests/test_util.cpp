// Tests for utilities: RNG determinism, table formatting, CLI parsing.
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "flowrank/util/cli.hpp"
#include "flowrank/util/rng.hpp"
#include "flowrank/util/table.hpp"

namespace fu = flowrank::util;

TEST(Rng, DeriveSeedIsDeterministicAndSpreads) {
  EXPECT_EQ(fu::derive_seed(1, 0), fu::derive_seed(1, 0));
  EXPECT_NE(fu::derive_seed(1, 0), fu::derive_seed(1, 1));
  EXPECT_NE(fu::derive_seed(1, 0), fu::derive_seed(2, 0));
  // Nearby streams decorrelate: low bits differ roughly half the time.
  int differing_bits = 0;
  const auto a = fu::derive_seed(42, 100);
  const auto b = fu::derive_seed(42, 101);
  for (int bit = 0; bit < 64; ++bit) {
    differing_bits += ((a >> bit) & 1) != ((b >> bit) & 1);
  }
  EXPECT_GT(differing_bits, 16);
}

// Regression: the simulation used to pack (rate_idx, run, bin) into one
// stream id with shifts ((rate_idx << 40) ^ (run << 20) ^ bin), which
// collides once a trace has >= 2^20 bins — (run=1, bin=0) aliased
// (run=0, bin=2^20), correlating Monte-Carlo runs. The splitmix mixing
// must keep such triples on distinct streams.
TEST(Rng, MixStreamsSeparatesTriplesBeyondShiftFieldWidths) {
  const auto stream_a = fu::mix_streams(0, 1, 0);
  const auto stream_b = fu::mix_streams(0, 0, std::uint64_t{1} << 20);
  EXPECT_NE(stream_a, stream_b);
  // The engines they seed must diverge too.
  auto ea = fu::make_engine(3, stream_a);
  auto eb = fu::make_engine(3, stream_b);
  EXPECT_NE(ea(), eb());
}

TEST(Rng, MixStreamsIsDeterministicAndCollisionFreeOnAGrid) {
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  // Rate/run ranges as the simulation uses them; bins sweep both small
  // indices and the 2^20 / 2^40 aliasing boundaries of the old packing.
  std::vector<std::uint64_t> bins;
  for (std::uint64_t b = 0; b < 64; ++b) bins.push_back(b);
  for (const std::uint64_t base : {std::uint64_t{1} << 20, std::uint64_t{1} << 40}) {
    for (std::uint64_t off = 0; off < 8; ++off) bins.push_back(base + off);
  }
  for (std::uint64_t rate_idx = 0; rate_idx < 4; ++rate_idx) {
    for (std::uint64_t run = 0; run < 30; ++run) {
      for (const std::uint64_t bin : bins) {
        EXPECT_EQ(fu::mix_streams(rate_idx, run, bin),
                  fu::mix_streams(rate_idx, run, bin));
        seen.insert(fu::mix_streams(rate_idx, run, bin));
        ++total;
      }
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(Rng, EnginesReproduce) {
  auto e1 = fu::make_engine(7, 3);
  auto e2 = fu::make_engine(7, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(e1(), e2());
}

TEST(Table, AlignedOutput) {
  fu::Table table({"name", "value"});
  table.add_row(std::string("alpha"), 1.5);
  table.add_row(std::string("b"), 22LL);
  std::ostringstream os;
  table.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
  EXPECT_EQ(table.columns(), 2u);
}

TEST(Table, CsvQuoting) {
  fu::Table table({"a", "b"});
  table.add_row(std::string("x,y"), std::string("say \"hi\""));
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RejectsMalformedUse) {
  EXPECT_THROW(fu::Table{std::vector<std::string>{}}, std::invalid_argument);
  fu::Table table({"only"});
  table.add_cell(std::string("1"));
  EXPECT_THROW(table.add_cell(std::string("2")), std::logic_error);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",     "--alpha=1.5", "--flag", "--name", "value",
                        "positional"};
  fu::Cli cli(6, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 1.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_EQ(cli.get_string("name", ""), "value");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, FallbacksAndValidation) {
  const char* argv[] = {"prog", "--n=12"};
  fu::Cli cli(2, argv);
  EXPECT_EQ(cli.get_int("n", 0), 12);
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_FALSE(cli.has("missing"));
  const char* bad[] = {"prog", "--n=notanumber"};
  fu::Cli bad_cli(2, bad);
  EXPECT_THROW((void)bad_cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)bad_cli.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=yes", "--b=off", "--c=1"};
  fu::Cli cli(4, argv);
  EXPECT_TRUE(cli.get_bool("a", false));
  EXPECT_FALSE(cli.get_bool("b", true));
  EXPECT_TRUE(cli.get_bool("c", false));
  const char* bad[] = {"prog", "--x=maybe"};
  fu::Cli bad_cli(2, bad);
  EXPECT_THROW((void)bad_cli.get_bool("x", false), std::invalid_argument);
}
